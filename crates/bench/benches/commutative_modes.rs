//! Experiment X1 (DESIGN.md): the paper's footnote-1 optimization — the
//! mediator keeps the encrypted tuple sets and circulates fixed-length IDs
//! instead of echoing ciphertexts through the opposite datasource.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secmed_core::workload::WorkloadSpec;
use secmed_core::{CommutativeConfig, CommutativeMode, ProtocolKind, Scenario};
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("commutative_modes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for rows in [32usize, 96] {
        let w = WorkloadSpec {
            left_rows: rows,
            right_rows: rows,
            left_domain: rows / 2,
            right_domain: rows / 2,
            shared_values: rows / 4,
            payload_attrs: 4,
            seed: "bench-comm-modes".to_string(),
            ..Default::default()
        }
        .generate();
        for (name, mode) in [
            ("echo-tuples", CommutativeMode::EchoTuples),
            ("id-references", CommutativeMode::IdReferences),
        ] {
            group.bench_with_input(BenchmarkId::new(name, rows), &rows, |b, _| {
                b.iter(|| {
                    let mut sc = Scenario::from_workload(&w, "bench-comm-modes", 512);
                    black_box(
                        sc.run(ProtocolKind::Commutative(CommutativeConfig { mode }))
                            .unwrap(),
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
