//! Experiment X1 (DESIGN.md): the paper's footnote-1 optimization — the
//! mediator keeps the encrypted tuple sets and circulates fixed-length IDs
//! instead of echoing ciphertexts through the opposite datasource.

use std::time::Duration;

use secmed_core::workload::WorkloadSpec;
use secmed_core::{CommutativeConfig, CommutativeMode, Engine, RunOptions, ScenarioBuilder};
use secmed_obs::bench::{black_box, cli_filter, Bench, Suite};

fn bench_modes(filter: &Option<String>) {
    let mut suite = Suite::new("commutative_modes").filter(filter.clone());
    for rows in [32usize, 96] {
        let w = WorkloadSpec {
            left_rows: rows,
            right_rows: rows,
            left_domain: rows / 2,
            right_domain: rows / 2,
            shared_values: rows / 4,
            payload_attrs: 4,
            seed: "bench-comm-modes".to_string(),
            ..Default::default()
        }
        .generate();
        for (name, mode) in [
            ("echo-tuples", CommutativeMode::EchoTuples),
            ("id-references", CommutativeMode::IdReferences),
        ] {
            suite.bench(
                Bench::new(format!("{name}/{rows}"))
                    .samples(10)
                    .warmup(Duration::from_millis(500)),
                || {
                    let mut sc = ScenarioBuilder::new(&w)
                        .seed("bench-comm-modes")
                        .paillier_bits(512)
                        .build();
                    black_box(
                        Engine::run(
                            &mut sc,
                            &RunOptions::commutative(CommutativeConfig { mode }),
                        )
                        .unwrap(),
                    );
                },
            );
            secmed_obs::trace::reset();
        }
    }
    suite.finish();
}

fn main() {
    let filter = cli_filter();
    bench_modes(&filter);
}
