//! Experiment S6c (DESIGN.md): the DAS partitioning trade-off — fewer,
//! larger partitions mean lower inference exposure but a bigger superset
//! for the client to post-process (paper §6, citing Hore et al. and
//! Ceselli et al.).  Also the equi-width vs equi-depth ablation.
//!
//! The timing here captures the mediator's server-join cost as the
//! partition count varies; the companion report binary
//! `figure_das_tradeoff` prints the exposure/superset curves.

use std::time::Duration;

use secmed_core::workload::WorkloadSpec;
use secmed_core::{DasConfig, Engine, RunOptions, ScenarioBuilder};
use secmed_das::PartitionScheme;
use secmed_obs::bench::{black_box, cli_filter, Bench, Suite};

fn slow(name: String) -> Bench {
    Bench::new(name)
        .samples(10)
        .warmup(Duration::from_millis(500))
}

fn bench_partition_sweep(filter: &Option<String>) {
    let w = WorkloadSpec {
        left_rows: 48,
        right_rows: 48,
        left_domain: 32,
        right_domain: 32,
        shared_values: 12,
        seed: "bench-das".to_string(),
        ..Default::default()
    }
    .generate();

    let mut suite = Suite::new("das_partitions").filter(filter.clone());
    let run_scheme = |suite: &mut Suite, name: String, scheme: PartitionScheme| {
        suite.bench(slow(name), || {
            let mut sc = ScenarioBuilder::new(&w)
                .seed("bench-das")
                .paillier_bits(512)
                .build();
            black_box(
                Engine::run(
                    &mut sc,
                    &RunOptions::das(DasConfig {
                        scheme,
                        ..Default::default()
                    }),
                )
                .unwrap(),
            );
        });
        secmed_obs::trace::reset();
    };
    for k in [1usize, 4, 16] {
        run_scheme(
            &mut suite,
            format!("equidepth/{k}"),
            PartitionScheme::EquiDepth(k),
        );
        run_scheme(
            &mut suite,
            format!("equiwidth/{k}"),
            PartitionScheme::EquiWidth(k),
        );
    }
    run_scheme(
        &mut suite,
        "pervalue".to_string(),
        PartitionScheme::PerValue,
    );
    suite.finish();
}

fn main() {
    let filter = cli_filter();
    bench_partition_sweep(&filter);
}
