//! Experiment S6c (DESIGN.md): the DAS partitioning trade-off — fewer,
//! larger partitions mean lower inference exposure but a bigger superset
//! for the client to post-process (paper §6, citing Hore et al. and
//! Ceselli et al.).  Also the equi-width vs equi-depth ablation.
//!
//! The timing here captures the mediator's server-join cost as the
//! partition count varies; the companion report binary
//! `figure_das_tradeoff` prints the exposure/superset curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secmed_core::workload::WorkloadSpec;
use secmed_core::{DasConfig, ProtocolKind, Scenario};
use secmed_das::PartitionScheme;
use std::hint::black_box;

fn bench_partition_sweep(c: &mut Criterion) {
    let w = WorkloadSpec {
        left_rows: 48,
        right_rows: 48,
        left_domain: 32,
        right_domain: 32,
        shared_values: 12,
        seed: "bench-das".to_string(),
        ..Default::default()
    }
    .generate();

    let mut group = c.benchmark_group("das_partitions");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [1usize, 4, 16] {
        for (name, scheme) in [
            ("equidepth", PartitionScheme::EquiDepth(k)),
            ("equiwidth", PartitionScheme::EquiWidth(k)),
        ] {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, _| {
                b.iter(|| {
                    let mut sc = Scenario::from_workload(&w, "bench-das", 512);
                    black_box(
                        sc.run(ProtocolKind::Das(DasConfig {
                            scheme,
                            ..Default::default()
                        }))
                        .unwrap(),
                    )
                });
            });
        }
    }
    group.bench_function("pervalue", |b| {
        b.iter(|| {
            let mut sc = Scenario::from_workload(&w, "bench-das", 512);
            black_box(
                sc.run(ProtocolKind::Das(DasConfig {
                    scheme: PartitionScheme::PerValue,
                    ..Default::default()
                }))
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_partition_sweep);
criterion_main!(benches);
