//! Big-integer ablations (DESIGN.md §3):
//!
//! * Montgomery vs plain division-based modular exponentiation — justifies
//!   the Montgomery context every cryptosystem leans on,
//! * Karatsuba/schoolbook multiplication across operand sizes — justifies
//!   the threshold in `mpint::mul`,
//! * Knuth-D division at cryptographic operand sizes.

use mpint::{Montgomery, Natural};
use secmed_crypto::drbg::HmacDrbg;
use secmed_obs::bench::{black_box, cli_filter, Bench, Suite};

fn random_odd(bits: u64, rng: &mut HmacDrbg) -> Natural {
    let mut n = mpint::random::random_bits(rng, bits);
    n.set_bit(0, true);
    n
}

fn bench_modpow(filter: &Option<String>) {
    let mut rng = HmacDrbg::from_label("bench-modpow");
    let mut suite = Suite::new("modpow").filter(filter.clone());
    for bits in [256u64, 512, 1024] {
        let m = random_odd(bits, &mut rng);
        let base = mpint::random::random_below(&mut rng, &m);
        let exp = mpint::random::random_bits(&mut rng, bits);
        let ctx = Montgomery::new(m.clone());
        suite.bench(Bench::new(format!("montgomery/{bits}")), || {
            black_box(ctx.modpow(&base, &exp));
        });
        suite.bench(Bench::new(format!("plain-division/{bits}")), || {
            black_box(base.modpow_plain(&exp, &m));
        });
    }
    suite.finish();
}

fn bench_mul(filter: &Option<String>) {
    let mut rng = HmacDrbg::from_label("bench-mul");
    let mut suite = Suite::new("mul").filter(filter.clone());
    for limbs in [8u64, 32, 64, 128, 256] {
        let a = mpint::random::random_bits(&mut rng, limbs * 64);
        let b = mpint::random::random_bits(&mut rng, limbs * 64);
        suite.bench(Bench::new(format!("auto/{limbs}")), || {
            black_box(&a * &b);
        });
    }
    suite.finish();
}

fn bench_div(filter: &Option<String>) {
    let mut rng = HmacDrbg::from_label("bench-div");
    let mut suite = Suite::new("div_rem").filter(filter.clone());
    for (nbits, dbits) in [(1024u64, 512u64), (2048, 1024)] {
        let a = mpint::random::random_bits(&mut rng, nbits);
        let b = mpint::random::random_bits(&mut rng, dbits);
        suite.bench(Bench::new(format!("knuth-d/{nbits}/{dbits}")), || {
            black_box(a.div_rem(&b));
        });
    }
    suite.finish();
}

fn main() {
    let filter = cli_filter();
    bench_modpow(&filter);
    bench_mul(&filter);
    bench_div(&filter);
}
