//! Big-integer ablations (DESIGN.md §3):
//!
//! * Montgomery vs plain division-based modular exponentiation — justifies
//!   the Montgomery context every cryptosystem leans on,
//! * Karatsuba/schoolbook multiplication across operand sizes — justifies
//!   the threshold in `mpint::mul`,
//! * Knuth-D division at cryptographic operand sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpint::{Montgomery, Natural};
use secmed_crypto::drbg::HmacDrbg;
use std::hint::black_box;

fn random_odd(bits: u64, rng: &mut HmacDrbg) -> Natural {
    let mut n = mpint::random::random_bits(rng, bits);
    n.set_bit(0, true);
    n
}

fn bench_modpow(c: &mut Criterion) {
    let mut rng = HmacDrbg::from_label("bench-modpow");
    let mut group = c.benchmark_group("modpow");
    for bits in [256u64, 512, 1024] {
        let m = random_odd(bits, &mut rng);
        let base = mpint::random::random_below(&mut rng, &m);
        let exp = mpint::random::random_bits(&mut rng, bits);
        group.bench_with_input(BenchmarkId::new("montgomery", bits), &bits, |b, _| {
            let ctx = Montgomery::new(m.clone());
            b.iter(|| black_box(ctx.modpow(&base, &exp)));
        });
        group.bench_with_input(BenchmarkId::new("plain-division", bits), &bits, |b, _| {
            b.iter(|| black_box(base.modpow_plain(&exp, &m)));
        });
    }
    group.finish();
}

fn bench_mul(c: &mut Criterion) {
    let mut rng = HmacDrbg::from_label("bench-mul");
    let mut group = c.benchmark_group("mul");
    for limbs in [8u64, 32, 64, 128, 256] {
        let a = mpint::random::random_bits(&mut rng, limbs * 64);
        let b = mpint::random::random_bits(&mut rng, limbs * 64);
        group.bench_with_input(BenchmarkId::new("auto", limbs), &limbs, |bch, _| {
            bch.iter(|| black_box(&a * &b));
        });
    }
    group.finish();
}

fn bench_div(c: &mut Criterion) {
    let mut rng = HmacDrbg::from_label("bench-div");
    let mut group = c.benchmark_group("div_rem");
    for (nbits, dbits) in [(1024u64, 512u64), (2048, 1024)] {
        let a = mpint::random::random_bits(&mut rng, nbits);
        let b = mpint::random::random_bits(&mut rng, dbits);
        group.bench_with_input(
            BenchmarkId::new("knuth-d", format!("{nbits}/{dbits}")),
            &nbits,
            |bch, _| {
                bch.iter(|| black_box(a.div_rem(&b)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_modpow, bench_mul, bench_div);
criterion_main!(benches);
