//! Experiment X2 (DESIGN.md): the paper's footnote-2 optimization — per
//! tuple-set session keys with an ID table versus inlining tuple sets in
//! the homomorphic payload; plus the evaluation-strategy sweep at protocol
//! level.

use std::time::Duration;

use relalg::{Relation, Schema, Tuple, Type, Value};
use secmed_core::workload::Workload;
use secmed_core::{Engine, PmConfig, PmEval, PmPayloadMode, RunOptions, ScenarioBuilder};
use secmed_obs::bench::{black_box, cli_filter, Bench, Suite};

/// One small tuple per join value so the inline mode always fits.
fn slim_workload(values: usize, shared: usize) -> Workload {
    let schema = |n: &str| Schema::new(&[("k", Type::Int), (n, Type::Str)]);
    let mut left = Relation::empty(schema("lp"));
    let mut right = Relation::empty(schema("rp"));
    for i in 0..values as i64 {
        left.insert(Tuple::new(vec![Value::Int(i), Value::from("l")]))
            .unwrap();
    }
    let offset = (values - shared) as i64;
    for i in 0..values as i64 {
        right
            .insert(Tuple::new(vec![Value::Int(i + offset), Value::from("r")]))
            .unwrap();
    }
    Workload {
        left,
        right,
        expected_join_size: shared,
    }
}

fn slow(name: String) -> Bench {
    Bench::new(name)
        .samples(10)
        .warmup(Duration::from_millis(500))
}

fn bench_payload_modes(filter: &Option<String>) {
    let mut suite = Suite::new("pm_payload_modes").filter(filter.clone());
    for values in [16usize, 48] {
        let w = slim_workload(values, values / 4);
        for (name, payload) in [
            ("inline", PmPayloadMode::Inline),
            ("session-table", PmPayloadMode::SessionKeyTable),
        ] {
            suite.bench(slow(format!("{name}/{values}")), || {
                let mut sc = ScenarioBuilder::new(&w)
                    .seed("bench-pm-modes")
                    .paillier_bits(512)
                    .build();
                black_box(
                    Engine::run(
                        &mut sc,
                        &RunOptions::pm(PmConfig {
                            eval: PmEval::Horner,
                            payload,
                        }),
                    )
                    .unwrap(),
                );
            });
            secmed_obs::trace::reset();
        }
    }
    suite.finish();
}

fn bench_eval_modes(filter: &Option<String>) {
    let mut suite = Suite::new("pm_eval_modes").filter(filter.clone());
    let w = slim_workload(48, 12);
    for (name, eval) in [
        ("naive", PmEval::Naive),
        ("horner", PmEval::Horner),
        ("bucketed-8", PmEval::Bucketed(8)),
    ] {
        suite.bench(slow(name.to_string()), || {
            let mut sc = ScenarioBuilder::new(&w)
                .seed("bench-pm-eval")
                .paillier_bits(512)
                .build();
            black_box(
                Engine::run(
                    &mut sc,
                    &RunOptions::pm(PmConfig {
                        eval,
                        payload: PmPayloadMode::SessionKeyTable,
                    }),
                )
                .unwrap(),
            );
        });
        secmed_obs::trace::reset();
    }
    suite.finish();
}

fn main() {
    let filter = cli_filter();
    bench_payload_modes(&filter);
    bench_eval_modes(&filter);
}
