//! Experiment X2 (DESIGN.md): the paper's footnote-2 optimization — per
//! tuple-set session keys with an ID table versus inlining tuple sets in
//! the homomorphic payload; plus the evaluation-strategy sweep at protocol
//! level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relalg::{Relation, Schema, Tuple, Type, Value};
use secmed_core::workload::Workload;
use secmed_core::{PmConfig, PmEval, PmPayloadMode, ProtocolKind, Scenario};
use std::hint::black_box;

/// One small tuple per join value so the inline mode always fits.
fn slim_workload(values: usize, shared: usize) -> Workload {
    let schema = |n: &str| Schema::new(&[("k", Type::Int), (n, Type::Str)]);
    let mut left = Relation::empty(schema("lp"));
    let mut right = Relation::empty(schema("rp"));
    for i in 0..values as i64 {
        left.insert(Tuple::new(vec![Value::Int(i), Value::from("l")]))
            .unwrap();
    }
    let offset = (values - shared) as i64;
    for i in 0..values as i64 {
        right
            .insert(Tuple::new(vec![Value::Int(i + offset), Value::from("r")]))
            .unwrap();
    }
    Workload {
        left,
        right,
        expected_join_size: shared,
    }
}

fn bench_payload_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pm_payload_modes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for values in [16usize, 48] {
        let w = slim_workload(values, values / 4);
        for (name, payload) in [
            ("inline", PmPayloadMode::Inline),
            ("session-table", PmPayloadMode::SessionKeyTable),
        ] {
            group.bench_with_input(BenchmarkId::new(name, values), &values, |b, _| {
                b.iter(|| {
                    let mut sc = Scenario::from_workload(&w, "bench-pm-modes", 512);
                    black_box(
                        sc.run(ProtocolKind::Pm(PmConfig {
                            eval: PmEval::Horner,
                            payload,
                        }))
                        .unwrap(),
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_eval_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pm_eval_modes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let w = slim_workload(48, 12);
    for (name, eval) in [
        ("naive", PmEval::Naive),
        ("horner", PmEval::Horner),
        ("bucketed-8", PmEval::Bucketed(8)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sc = Scenario::from_workload(&w, "bench-pm-eval", 512);
                black_box(
                    sc.run(ProtocolKind::Pm(PmConfig {
                        eval,
                        payload: PmPayloadMode::SessionKeyTable,
                    }))
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_payload_modes, bench_eval_modes);
criterion_main!(benches);
