//! Experiment S5a (DESIGN.md): the PM protocol's expensive step is the
//! encrypted polynomial evaluation; Freedman et al.'s tricks make it
//! tractable.  This bench compares, at growing domain sizes:
//!
//! * naive power-sum evaluation,
//! * Horner's rule,
//! * bucket allocation (per-evaluation degree drops to ~n/B).

use std::time::Duration;

use mpint::Natural;
use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::paillier::Paillier;
use secmed_crypto::polynomial::{BucketedPoly, EncryptedBucketedPoly, EncryptedPoly, ZnPoly};
use secmed_obs::bench::{black_box, cli_filter, Bench, Suite};

fn roots(n: usize) -> Vec<Natural> {
    (0..n as u64)
        .map(|i| Natural::from(i * 7919 + 13))
        .collect()
}

/// These measurements are expensive per iteration, so fewer samples with a
/// shorter warmup (criterion's former `sample_size(10)` configuration).
fn slow(name: String) -> Bench {
    Bench::new(name)
        .samples(10)
        .warmup(Duration::from_millis(500))
}

fn bench_eval_strategies(filter: &Option<String>) {
    let kp = Paillier::test_keypair(512, "bench-poly");
    let pk = kp.public();
    let mut rng = HmacDrbg::from_label("bench-poly-rng");
    let mut suite = Suite::new("pm_eval").filter(filter.clone());

    for degree in [8usize, 32, 128] {
        let rs = roots(degree);
        let poly = ZnPoly::from_roots(&rs, pk.n());
        let enc = EncryptedPoly::encrypt(&poly, pk, &mut rng);
        let point = Natural::from(999_983u64);

        suite.bench(slow(format!("naive/{degree}")), || {
            black_box(enc.eval_naive(&point));
        });
        suite.bench(slow(format!("horner/{degree}")), || {
            black_box(enc.eval_horner(&point));
        });

        let buckets = (degree / 8).max(1);
        let bp = BucketedPoly::from_roots(&rs, pk.n(), buckets);
        let benc = EncryptedBucketedPoly::encrypt(&bp, pk, &mut rng);
        let payload = Natural::from(1u64);
        suite.bench(slow(format!("bucketed-B{buckets}/{degree}")), || {
            black_box(benc.eval_masked(&point, &payload, &mut rng).unwrap());
        });
    }
    suite.finish();
}

fn bench_coefficient_encryption(filter: &Option<String>) {
    let kp = Paillier::test_keypair(512, "bench-poly-enc");
    let pk = kp.public();
    let mut rng = HmacDrbg::from_label("bench-poly-enc-rng");
    let mut suite = Suite::new("pm_encrypt_coeffs").filter(filter.clone());
    for degree in [8usize, 32, 128] {
        let poly = ZnPoly::from_roots(&roots(degree), pk.n());
        suite.bench(slow(format!("{degree}")), || {
            black_box(EncryptedPoly::encrypt(&poly, pk, &mut rng));
        });
    }
    suite.finish();
}

fn main() {
    let filter = cli_filter();
    bench_eval_strategies(&filter);
    bench_coefficient_encryption(&filter);
}
