//! Experiment S5a (DESIGN.md): the PM protocol's expensive step is the
//! encrypted polynomial evaluation; Freedman et al.'s tricks make it
//! tractable.  This bench compares, at growing domain sizes:
//!
//! * naive power-sum evaluation,
//! * Horner's rule,
//! * bucket allocation (per-evaluation degree drops to ~n/B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpint::Natural;
use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::paillier::Paillier;
use secmed_crypto::polynomial::{BucketedPoly, EncryptedBucketedPoly, EncryptedPoly, ZnPoly};
use std::hint::black_box;

fn roots(n: usize) -> Vec<Natural> {
    (0..n as u64)
        .map(|i| Natural::from(i * 7919 + 13))
        .collect()
}

fn bench_eval_strategies(c: &mut Criterion) {
    let kp = Paillier::test_keypair(512, "bench-poly");
    let pk = kp.public();
    let mut rng = HmacDrbg::from_label("bench-poly-rng");
    let mut group = c.benchmark_group("pm_eval");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for degree in [8usize, 32, 128] {
        let rs = roots(degree);
        let poly = ZnPoly::from_roots(&rs, pk.n());
        let enc = EncryptedPoly::encrypt(&poly, pk, &mut rng);
        let point = Natural::from(999_983u64);

        group.bench_with_input(BenchmarkId::new("naive", degree), &degree, |b, _| {
            b.iter(|| black_box(enc.eval_naive(&point)));
        });
        group.bench_with_input(BenchmarkId::new("horner", degree), &degree, |b, _| {
            b.iter(|| black_box(enc.eval_horner(&point)));
        });

        let buckets = (degree / 8).max(1);
        let bp = BucketedPoly::from_roots(&rs, pk.n(), buckets);
        let benc = EncryptedBucketedPoly::encrypt(&bp, pk, &mut rng);
        group.bench_with_input(
            BenchmarkId::new(format!("bucketed-B{buckets}"), degree),
            &degree,
            |b, _| {
                let payload = Natural::from(1u64);
                b.iter(|| black_box(benc.eval_masked(&point, &payload, &mut rng).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_coefficient_encryption(c: &mut Criterion) {
    let kp = Paillier::test_keypair(512, "bench-poly-enc");
    let pk = kp.public();
    let mut rng = HmacDrbg::from_label("bench-poly-enc-rng");
    let mut group = c.benchmark_group("pm_encrypt_coeffs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for degree in [8usize, 32, 128] {
        let poly = ZnPoly::from_roots(&roots(degree), pk.n());
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, _| {
            b.iter(|| black_box(EncryptedPoly::encrypt(&poly, pk, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval_strategies, bench_coefficient_encryption);
criterion_main!(benches);
