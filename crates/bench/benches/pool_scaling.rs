//! Thread-pool scaling of the protocols' hot loops: PM encrypted
//! polynomial evaluation, Paillier coefficient encryption, and the
//! commutative protocol's SRA re-encryption pass, each at 1, 2, and 4
//! worker threads.
//!
//! The work items are identical at every thread count (same DRBG streams,
//! same inputs), so the only variable is scheduling — the measured ratio
//! is the pool's parallel speedup.  Results, including the host's
//! available parallelism (speedups cannot exceed it; a single-core host
//! reports ~1.0× regardless of thread count), are written as JSONL to
//! `target/bench/pool_scaling.jsonl`.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use mpint::Natural;
use secmed_crypto::drbg::{DrbgFamily, HmacDrbg};
use secmed_crypto::group::{GroupSize, SafePrimeGroup};
use secmed_crypto::paillier::Paillier;
use secmed_crypto::polynomial::{EncryptedPoly, ZnPoly};
use secmed_crypto::{SraCipher, SraDomain};
use secmed_obs::bench::{black_box, cli_filter, Bench, BenchResult, Suite};
use secmed_obs::json::Json;
use secmed_pool::Pool;

const THREADS: [usize; 3] = [1, 2, 4];

fn slow(name: String) -> Bench {
    Bench::new(name)
        .samples(10)
        .warmup(Duration::from_millis(300))
}

fn roots(n: usize) -> Vec<Natural> {
    (0..n as u64)
        .map(|i| Natural::from(i * 7919 + 13))
        .collect()
}

/// PM hot loop 1: evaluating the opposite source's encrypted polynomial at
/// every own active value (Horner's rule per point, points fanned out).
fn bench_pm_eval(filter: &Option<String>, results: &mut Vec<BenchResult>) {
    let kp = Paillier::test_keypair(512, "pool-scaling-pm");
    let pk = kp.public();
    let mut rng = HmacDrbg::from_label("pool-scaling-pm-rng");
    let poly = ZnPoly::from_roots(&roots(48), pk.n());
    let enc = EncryptedPoly::encrypt(&poly, pk, &mut rng);
    let points: Vec<Natural> = (0..24u64).map(|i| Natural::from(i * 104_729 + 7)).collect();

    let mut suite = Suite::new("pool_scaling/pm_eval").filter(filter.clone());
    for threads in THREADS {
        let pool = Pool::with_threads(threads);
        suite.bench(slow(format!("horner-x24/t{threads}")), || {
            black_box(pool.par_map(&points, |_, p| enc.eval_horner(p)));
        });
    }
    results.extend(suite.finish());
}

/// PM hot loop 2: Paillier-encrypting the polynomial coefficients with
/// per-coefficient DRBG streams.
fn bench_coeff_encrypt(filter: &Option<String>, results: &mut Vec<BenchResult>) {
    let kp = Paillier::test_keypair(512, "pool-scaling-enc");
    let pk = kp.public();
    let poly = ZnPoly::from_roots(&roots(48), pk.n());

    let mut suite = Suite::new("pool_scaling/pm_encrypt").filter(filter.clone());
    for threads in THREADS {
        let pool = Pool::with_threads(threads);
        suite.bench(slow(format!("coeffs-48/t{threads}")), || {
            let mut parent = HmacDrbg::from_label("pool-scaling-enc-rng");
            let streams = DrbgFamily::derive(&mut parent);
            black_box(EncryptedPoly::encrypt_par(&poly, pk, &pool, &streams));
        });
    }
    results.extend(suite.finish());
}

/// Commutative hot loop: the double-encryption pass — applying one
/// source's SRA exponent to the other source's already-encrypted hashes.
fn bench_sra_pass(filter: &Option<String>, results: &mut Vec<BenchResult>) {
    let domain = SraDomain::new(SafePrimeGroup::preset(GroupSize::S512));
    let mut rng = HmacDrbg::from_label("pool-scaling-sra");
    let s1 = SraCipher::generate(domain.clone(), &mut rng);
    let s2 = SraCipher::generate(domain, &mut rng);
    let singles: Vec<Natural> = (0..32u64)
        .map(|i| s2.encrypt_value(&i.to_be_bytes()))
        .collect();

    let mut suite = Suite::new("pool_scaling/sra_pass").filter(filter.clone());
    for threads in THREADS {
        let pool = Pool::with_threads(threads);
        suite.bench(slow(format!("double-x32/t{threads}")), || {
            black_box(pool.par_map(&singles, |_, h| s1.encrypt(h)));
        });
    }
    results.extend(suite.finish());
}

fn main() {
    let filter = cli_filter();
    let mut results: Vec<BenchResult> = Vec::new();
    bench_pm_eval(&filter, &mut results);
    bench_coeff_encrypt(&filter, &mut results);
    bench_sra_pass(&filter, &mut results);

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Speedup per measurement relative to its group's t1 baseline.
    let baseline = |name: &str| -> Option<f64> {
        let stem = name.split("/t").next()?;
        results
            .iter()
            .find(|r| r.name.starts_with(stem) && r.name.ends_with("/t1"))
            .map(|r| r.mean_ns)
    };

    let mut jsonl = String::new();
    for r in &results {
        let speedup = baseline(&r.name).map(|b| b / r.mean_ns);
        jsonl.push_str(
            &Json::obj([
                ("experiment", Json::Str("pool-scaling".to_string())),
                ("name", Json::Str(r.name.clone())),
                ("mean_ns", Json::Float(r.mean_ns)),
                ("median_ns", Json::Float(r.median_ns)),
                ("speedup_vs_t1", speedup.map_or(Json::Null, Json::Float)),
                ("available_parallelism", Json::UInt(cores as u64)),
            ])
            .render(),
        );
        jsonl.push('\n');
    }
    // `cargo bench` runs with the package dir as cwd; anchor the output
    // under the workspace-level target/ so all artifacts land together.
    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/bench");
    fs::create_dir_all(&out_dir).expect("create target/bench");
    let path = out_dir.join("pool_scaling.jsonl");
    fs::write(&path, jsonl).expect("write pool_scaling JSONL");
    println!("host parallelism: {cores}; jsonl: {}", path.display());
}
