//! Microbenchmarks for every cryptographic primitive the protocols invoke
//! (the cost model behind Table 2 / §6 of the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpint::Natural;
use secmed_crypto::chacha20::ChaCha20;
use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::group::{GroupSize, SafePrimeGroup};
use secmed_crypto::hmac::hmac_sha256;
use secmed_crypto::hybrid::HybridKeyPair;
use secmed_crypto::paillier::Paillier;
use secmed_crypto::schnorr::SchnorrKeyPair;
use secmed_crypto::sha256::sha256;
use secmed_crypto::{SraCipher, SraDomain};
use std::hint::black_box;

fn bench_hash_and_cipher(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &size, |b, _| {
            b.iter(|| black_box(sha256(&data)));
        });
        group.bench_with_input(BenchmarkId::new("chacha20", size), &size, |b, _| {
            let key = [7u8; 32];
            let nonce = [1u8; 12];
            b.iter(|| black_box(ChaCha20::new(&key, &nonce).apply(&data)));
        });
        group.bench_with_input(BenchmarkId::new("hmac-sha256", size), &size, |b, _| {
            b.iter(|| black_box(hmac_sha256(b"key", &data)));
        });
    }
    group.finish();
}

fn bench_hybrid(c: &mut Criterion) {
    let mut rng = HmacDrbg::from_label("bench-hybrid");
    let mut group = c.benchmark_group("hybrid");
    for bits in [GroupSize::S512, GroupSize::S1024] {
        let kp = HybridKeyPair::generate(SafePrimeGroup::preset(bits), &mut rng);
        let msg = vec![0x42u8; 256];
        group.bench_with_input(
            BenchmarkId::new("encrypt-256B", bits.bits()),
            &bits,
            |b, _| {
                b.iter(|| black_box(kp.public().encrypt(&msg, &mut rng)));
            },
        );
        let ct = kp.public().encrypt(&msg, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("decrypt-256B", bits.bits()),
            &bits,
            |b, _| {
                b.iter(|| black_box(kp.decrypt(&ct).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_sra(c: &mut Criterion) {
    let mut rng = HmacDrbg::from_label("bench-sra");
    let mut group = c.benchmark_group("commutative");
    for bits in [GroupSize::S512, GroupSize::S1024] {
        let domain = SraDomain::new(SafePrimeGroup::preset(bits));
        let cipher = SraCipher::generate(domain.clone(), &mut rng);
        let x = domain.hash(b"join-value");
        group.bench_with_input(
            BenchmarkId::new("hash-to-group", bits.bits()),
            &bits,
            |b, _| {
                b.iter(|| black_box(domain.hash(b"join-value")));
            },
        );
        group.bench_with_input(BenchmarkId::new("encrypt", bits.bits()), &bits, |b, _| {
            b.iter(|| black_box(cipher.encrypt(&x)));
        });
        let y = cipher.encrypt(&x);
        group.bench_with_input(BenchmarkId::new("decrypt", bits.bits()), &bits, |b, _| {
            b.iter(|| black_box(cipher.decrypt(&y)));
        });
    }
    group.finish();
}

fn bench_paillier(c: &mut Criterion) {
    let mut rng = HmacDrbg::from_label("bench-paillier");
    let mut group = c.benchmark_group("paillier");
    for bits in [512u64, 1024] {
        let kp = Paillier::test_keypair(bits, &format!("bench-{bits}"));
        let m = Natural::from(123_456u64);
        group.bench_with_input(BenchmarkId::new("encrypt", bits), &bits, |b, _| {
            b.iter(|| black_box(kp.public().encrypt(&m, &mut rng).unwrap()));
        });
        let ct = kp.public().encrypt(&m, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("decrypt-crt", bits), &bits, |b, _| {
            b.iter(|| black_box(kp.decrypt(&ct)));
        });
        group.bench_with_input(BenchmarkId::new("decrypt-plain", bits), &bits, |b, _| {
            b.iter(|| black_box(kp.decrypt_plain(&ct)));
        });
        group.bench_with_input(BenchmarkId::new("add", bits), &bits, |b, _| {
            b.iter(|| black_box(kp.public().add(&ct, &ct)));
        });
        let gamma = Natural::from(0xffff_ffffu64);
        group.bench_with_input(BenchmarkId::new("scale", bits), &bits, |b, _| {
            b.iter(|| black_box(kp.public().scale(&ct, &gamma)));
        });
    }
    group.finish();
}

/// The paper's alternative homomorphic instantiation (§5): exponential
/// ElGamal vs Paillier on the same operations.
fn bench_exp_elgamal(c: &mut Criterion) {
    use secmed_crypto::exp_elgamal::ExpElGamalKeyPair;
    let mut rng = HmacDrbg::from_label("bench-expeg");
    let kp = ExpElGamalKeyPair::generate(SafePrimeGroup::preset(GroupSize::S512), &mut rng);
    let m = Natural::from(12_345u64);
    let mut group = c.benchmark_group("exp_elgamal");
    group.bench_function("encrypt/512", |b| {
        b.iter(|| black_box(kp.public().encrypt(&m, &mut rng)));
    });
    let ct = kp.public().encrypt(&m, &mut rng);
    group.bench_function("add/512", |b| {
        b.iter(|| black_box(kp.public().add(&ct, &ct)));
    });
    group.bench_function("scale/512", |b| {
        b.iter(|| black_box(kp.public().scale(&ct, &Natural::from(999u64))));
    });
    group.bench_function("decrypt-bsgs-64k/512", |b| {
        b.iter(|| black_box(kp.decrypt(&ct, 65_536).unwrap()));
    });
    group.bench_function("zero-test/512", |b| {
        b.iter(|| black_box(kp.decrypts_to_zero(&ct)));
    });
    group.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let mut rng = HmacDrbg::from_label("bench-schnorr");
    let kp = SchnorrKeyPair::generate(SafePrimeGroup::preset(GroupSize::S512), &mut rng);
    let msg = b"credential: role=physician, dept=cardiology";
    let mut group = c.benchmark_group("schnorr");
    group.bench_function("sign", |b| {
        b.iter(|| black_box(kp.sign(msg, &mut rng)));
    });
    let sig = kp.sign(msg, &mut rng);
    group.bench_function("verify", |b| {
        b.iter(|| black_box(kp.public().verify(msg, &sig)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hash_and_cipher,
    bench_hybrid,
    bench_sra,
    bench_paillier,
    bench_exp_elgamal,
    bench_schnorr
);
criterion_main!(benches);
