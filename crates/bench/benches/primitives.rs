//! Microbenchmarks for every cryptographic primitive the protocols invoke
//! (the cost model behind Table 2 / §6 of the paper).

use mpint::Natural;
use secmed_crypto::chacha20::ChaCha20;
use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::group::{GroupSize, SafePrimeGroup};
use secmed_crypto::hmac::hmac_sha256;
use secmed_crypto::hybrid::HybridKeyPair;
use secmed_crypto::paillier::Paillier;
use secmed_crypto::schnorr::SchnorrKeyPair;
use secmed_crypto::sha256::sha256;
use secmed_crypto::{SraCipher, SraDomain};
use secmed_obs::bench::{black_box, cli_filter, Bench, Suite};

fn bench_hash_and_cipher(filter: &Option<String>) {
    let mut suite = Suite::new("symmetric").filter(filter.clone());
    for size in [64usize, 1024, 16384] {
        let data = vec![0xabu8; size];
        suite.bench(
            Bench::new(format!("sha256/{size}")).throughput_bytes(size as u64),
            || {
                black_box(sha256(&data));
            },
        );
        let key = [7u8; 32];
        let nonce = [1u8; 12];
        suite.bench(
            Bench::new(format!("chacha20/{size}")).throughput_bytes(size as u64),
            || {
                black_box(ChaCha20::new(&key, &nonce).apply(&data));
            },
        );
        suite.bench(
            Bench::new(format!("hmac-sha256/{size}")).throughput_bytes(size as u64),
            || {
                black_box(hmac_sha256(b"key", &data));
            },
        );
    }
    suite.finish();
}

fn bench_hybrid(filter: &Option<String>) {
    let mut rng = HmacDrbg::from_label("bench-hybrid");
    let mut suite = Suite::new("hybrid").filter(filter.clone());
    for bits in [GroupSize::S512, GroupSize::S1024] {
        let kp = HybridKeyPair::generate(SafePrimeGroup::preset(bits), &mut rng);
        let msg = vec![0x42u8; 256];
        suite.bench(Bench::new(format!("encrypt-256B/{}", bits.bits())), || {
            black_box(kp.public().encrypt(&msg, &mut rng));
        });
        let ct = kp.public().encrypt(&msg, &mut rng);
        suite.bench(Bench::new(format!("decrypt-256B/{}", bits.bits())), || {
            black_box(kp.decrypt(&ct).unwrap());
        });
    }
    suite.finish();
}

fn bench_sra(filter: &Option<String>) {
    let mut rng = HmacDrbg::from_label("bench-sra");
    let mut suite = Suite::new("commutative").filter(filter.clone());
    for bits in [GroupSize::S512, GroupSize::S1024] {
        let domain = SraDomain::new(SafePrimeGroup::preset(bits));
        let cipher = SraCipher::generate(domain.clone(), &mut rng);
        let x = domain.hash(b"join-value");
        suite.bench(Bench::new(format!("hash-to-group/{}", bits.bits())), || {
            black_box(domain.hash(b"join-value"));
        });
        suite.bench(Bench::new(format!("encrypt/{}", bits.bits())), || {
            black_box(cipher.encrypt(&x));
        });
        let y = cipher.encrypt(&x);
        suite.bench(Bench::new(format!("decrypt/{}", bits.bits())), || {
            black_box(cipher.decrypt(&y));
        });
    }
    suite.finish();
}

fn bench_paillier(filter: &Option<String>) {
    let mut rng = HmacDrbg::from_label("bench-paillier");
    let mut suite = Suite::new("paillier").filter(filter.clone());
    for bits in [512u64, 1024] {
        let kp = Paillier::test_keypair(bits, &format!("bench-{bits}"));
        let m = Natural::from(123_456u64);
        suite.bench(Bench::new(format!("encrypt/{bits}")), || {
            black_box(kp.public().encrypt(&m, &mut rng).unwrap());
        });
        let ct = kp.public().encrypt(&m, &mut rng).unwrap();
        suite.bench(Bench::new(format!("decrypt-crt/{bits}")), || {
            black_box(kp.decrypt(&ct));
        });
        suite.bench(Bench::new(format!("decrypt-plain/{bits}")), || {
            black_box(kp.decrypt_plain(&ct));
        });
        suite.bench(Bench::new(format!("add/{bits}")), || {
            black_box(kp.public().add(&ct, &ct));
        });
        let gamma = Natural::from(0xffff_ffffu64);
        suite.bench(Bench::new(format!("scale/{bits}")), || {
            black_box(kp.public().scale(&ct, &gamma));
        });
    }
    suite.finish();
}

/// The paper's alternative homomorphic instantiation (§5): exponential
/// ElGamal vs Paillier on the same operations.
fn bench_exp_elgamal(filter: &Option<String>) {
    use secmed_crypto::exp_elgamal::ExpElGamalKeyPair;
    let mut rng = HmacDrbg::from_label("bench-expeg");
    let kp = ExpElGamalKeyPair::generate(SafePrimeGroup::preset(GroupSize::S512), &mut rng);
    let m = Natural::from(12_345u64);
    let mut suite = Suite::new("exp_elgamal").filter(filter.clone());
    suite.bench(Bench::new("encrypt/512"), || {
        black_box(kp.public().encrypt(&m, &mut rng));
    });
    let ct = kp.public().encrypt(&m, &mut rng);
    suite.bench(Bench::new("add/512"), || {
        black_box(kp.public().add(&ct, &ct));
    });
    suite.bench(Bench::new("scale/512"), || {
        black_box(kp.public().scale(&ct, &Natural::from(999u64)));
    });
    suite.bench(Bench::new("decrypt-bsgs-64k/512"), || {
        black_box(kp.decrypt(&ct, 65_536).unwrap());
    });
    suite.bench(Bench::new("zero-test/512"), || {
        black_box(kp.decrypts_to_zero(&ct));
    });
    suite.finish();
}

fn bench_schnorr(filter: &Option<String>) {
    let mut rng = HmacDrbg::from_label("bench-schnorr");
    let kp = SchnorrKeyPair::generate(SafePrimeGroup::preset(GroupSize::S512), &mut rng);
    let msg = b"credential: role=physician, dept=cardiology";
    let mut suite = Suite::new("schnorr").filter(filter.clone());
    suite.bench(Bench::new("sign"), || {
        black_box(kp.sign(msg, &mut rng));
    });
    let sig = kp.sign(msg, &mut rng);
    suite.bench(Bench::new("verify"), || {
        black_box(kp.public().verify(msg, &sig));
    });
    suite.finish();
}

fn main() {
    let filter = cli_filter();
    bench_hash_and_cipher(&filter);
    bench_hybrid(&filter);
    bench_sra(&filter);
    bench_paillier(&filter);
    bench_exp_elgamal(&filter);
    bench_schnorr(&filter);
}
