//! Experiment S6b (DESIGN.md): end-to-end protocol cost across workload
//! sizes — the measured backing for the paper's §6 conclusion that "the
//! commutative approach seems to be the most efficient one to be employed
//! in a secure mediation system".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secmed_core::workload::WorkloadSpec;
use secmed_core::{CommutativeConfig, DasConfig, PmConfig, ProtocolKind, Scenario};
use std::hint::black_box;

fn workload(rows: usize, seed: &str) -> secmed_core::workload::Workload {
    WorkloadSpec {
        left_rows: rows,
        right_rows: rows,
        left_domain: (rows / 2).max(2),
        right_domain: (rows / 2).max(2),
        shared_values: (rows / 4).max(1),
        payload_attrs: 2,
        seed: seed.to_string(),
        ..Default::default()
    }
    .generate()
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for rows in [16usize, 64] {
        let w = workload(rows, "bench-e2e");
        for (name, kind) in [
            ("das", ProtocolKind::Das(DasConfig::default())),
            (
                "commutative",
                ProtocolKind::Commutative(CommutativeConfig::default()),
            ),
            ("pm", ProtocolKind::Pm(PmConfig::default())),
        ] {
            group.bench_with_input(BenchmarkId::new(name, rows), &rows, |b, _| {
                b.iter(|| {
                    let mut sc = Scenario::from_workload(&w, "bench-e2e", 512);
                    black_box(sc.run(kind).unwrap())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
