//! Experiment S6b (DESIGN.md): end-to-end protocol cost across workload
//! sizes — the measured backing for the paper's §6 conclusion that "the
//! commutative approach seems to be the most efficient one to be employed
//! in a secure mediation system".

use std::time::Duration;

use secmed_core::workload::WorkloadSpec;
use secmed_core::{
    CommutativeConfig, DasConfig, Engine, PmConfig, ProtocolKind, RunOptions, ScenarioBuilder,
};
use secmed_obs::bench::{black_box, cli_filter, Bench, Suite};

fn workload(rows: usize, seed: &str) -> secmed_core::workload::Workload {
    WorkloadSpec {
        left_rows: rows,
        right_rows: rows,
        left_domain: (rows / 2).max(2),
        right_domain: (rows / 2).max(2),
        shared_values: (rows / 4).max(1),
        payload_attrs: 2,
        seed: seed.to_string(),
        ..Default::default()
    }
    .generate()
}

fn bench_protocols(filter: &Option<String>) {
    let mut suite = Suite::new("end_to_end").filter(filter.clone());
    for rows in [16usize, 64] {
        let w = workload(rows, "bench-e2e");
        for (name, kind) in [
            ("das", ProtocolKind::Das(DasConfig::default())),
            (
                "commutative",
                ProtocolKind::Commutative(CommutativeConfig::default()),
            ),
            ("pm", ProtocolKind::Pm(PmConfig::default())),
        ] {
            suite.bench(
                Bench::new(format!("{name}/{rows}"))
                    .samples(10)
                    .warmup(Duration::from_millis(500)),
                || {
                    let mut sc = ScenarioBuilder::new(&w)
                        .seed("bench-e2e")
                        .paillier_bits(512)
                        .build();
                    black_box(Engine::run(&mut sc, &RunOptions::new(kind)).unwrap());
                },
            );
            // Each run appends trace spans to the process-global buffer;
            // drain between measurements to keep memory flat.
            secmed_obs::trace::reset();
        }
    }
    suite.finish();
}

fn main() {
    let filter = cli_filter();
    bench_protocols(&filter);
}
