//! `BENCH_*.json` regression gate.
//!
//! Validates a freshly emitted trajectory file against schema version 1
//! and, optionally, against a committed baseline:
//!
//! ```text
//! bench_check FILE [--require NAME]... [--require-timing NAME]...
//!             [--baseline FILE] [--max-ratio R]
//! ```
//!
//! * `--require NAME` — the file must contain a bench series `NAME`
//!   (repeatable).
//! * `--require-timing NAME` — like `--require`, but the series must also
//!   be *declared* as wall-clock (`"ns"`), i.e. one the baseline compare
//!   treats ratio-wise and never byte-exactly.  Guards against a timing
//!   series being accidentally re-declared deterministic, which would
//!   make CI flaky on machine variance.
//! * `--baseline FILE` — compare against a baseline trajectory.  For every
//!   series present in both files: deterministic units (anything but
//!   `"ns"`) must match the baseline median *exactly*; wall-clock series
//!   (`"ns"`) must keep `fresh ≤ baseline × R` (`--max-ratio`, default
//!   `2.0` — generous because CI machines vary; the trajectory history is
//!   the fine-grained record).
//!
//! Exit status 0 iff every check passes; each failure prints one line.

use std::path::Path;
use std::process::ExitCode;

use secmed_obs::json::Json;
use secmed_obs::trajectory;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_check FILE [--require NAME]... [--require-timing NAME]... \
         [--baseline FILE] [--max-ratio R]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut required_timing: Vec<String> = Vec::new();
    let mut baseline: Option<String> = None;
    let mut max_ratio = 2.0f64;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require" => match it.next() {
                Some(name) => required.push(name.clone()),
                None => return usage(),
            },
            "--require-timing" => match it.next() {
                Some(name) => required_timing.push(name.clone()),
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(path) => baseline = Some(path.clone()),
                None => return usage(),
            },
            "--max-ratio" => match it.next().and_then(|r| r.parse::<f64>().ok()) {
                Some(r) if r > 0.0 => max_ratio = r,
                _ => return usage(),
            },
            _ if file.is_none() && !arg.starts_with("--") => file = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };

    let mut failures: Vec<String> = Vec::new();
    let doc = match trajectory::load(Path::new(&file)) {
        Ok(doc) => doc,
        Err(errors) => {
            for e in errors {
                eprintln!("FAIL {file}: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    let names = trajectory::bench_names(&doc);
    println!(
        "{file}: schema v{} ok, suite {:?}, {} series",
        trajectory::SCHEMA_VERSION,
        doc.get("suite").and_then(Json::as_str).unwrap_or("?"),
        names.len()
    );

    for name in &required {
        if !names.iter().any(|n| n == name) {
            failures.push(format!("required series {name:?} is missing"));
        }
    }

    for name in &required_timing {
        if !names.iter().any(|n| n == name) {
            failures.push(format!("required timing series {name:?} is missing"));
        } else {
            let unit = unit_of(&doc, name);
            if unit != "ns" {
                failures.push(format!(
                    "{name}: declared unit {unit:?}, expected \"ns\" — wall-clock \
                     must stay a timing series or baseline compares become flaky"
                ));
            }
        }
    }

    if let Some(baseline) = baseline {
        match trajectory::load(Path::new(&baseline)) {
            Err(errors) => {
                for e in errors {
                    failures.push(format!("baseline {baseline}: {e}"));
                }
            }
            Ok(base) => {
                let mut compared = 0usize;
                for name in &names {
                    let (Some(fresh), Some(old)) = (
                        trajectory::bench_median(&doc, name),
                        trajectory::bench_median(&base, name),
                    ) else {
                        continue;
                    };
                    let unit = unit_of(&doc, name);
                    compared += 1;
                    if unit == "ns" {
                        if old > 0.0 && fresh > old * max_ratio {
                            failures.push(format!(
                                "{name}: {fresh:.0} ns exceeds baseline {old:.0} ns × {max_ratio}"
                            ));
                        }
                    } else if fresh != old {
                        failures.push(format!(
                            "{name}: deterministic series changed, {fresh} != baseline {old} ({unit})"
                        ));
                    }
                }
                println!("compared {compared} series against {baseline} (max ratio {max_ratio})");
            }
        }
    }

    if failures.is_empty() {
        println!("bench_check: ok");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        ExitCode::FAILURE
    }
}

/// The declared unit of a named series (empty if absent).
fn unit_of(doc: &Json, name: &str) -> String {
    doc.get("benches")
        .and_then(Json::as_array)
        .and_then(|benches| {
            benches
                .iter()
                .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
        })
        .and_then(|b| b.get("unit").and_then(Json::as_str))
        .unwrap_or("")
        .to_string()
}
