//! Chaos sweep: retry overhead under deterministic fault plans.
//!
//! Runs every protocol over the chaos suite's seeded fault plans and
//! reports what fault recovery *costs* on the wire: retransmissions, the
//! overhead messages and bytes they add on top of a fault-free run, and
//! how the outcomes distribute across clean / recovered / degraded /
//! aborted.  Everything is seeded, so the table reproduces exactly.

use secmed_core::workload::{Workload, WorkloadSpec};
use secmed_core::{
    CommutativeConfig, DasConfig, DeliveryPolicy, Engine, FaultPlan, OnExhausted, Outage, PartyId,
    PmConfig, ProtocolKind, RunOptions, RunOutcome, ScenarioBuilder, TraceSink,
};
use secmed_obs::metrics;
use secmed_obs::trajectory::TrajectoryFile;
use secmed_testkit::Gen;

const SEEDS: u64 = 64;

fn workload() -> Workload {
    WorkloadSpec {
        left_rows: 6,
        right_rows: 6,
        left_domain: 3,
        right_domain: 3,
        shared_values: 2,
        payload_attrs: 1,
        seed: "chaos".to_string(),
        ..Default::default()
    }
    .generate()
}

/// The same plan generator the chaos suite uses (`chaos-plan` label), so
/// the bench measures exactly the plans the tests certify.
fn plan_for(seed: u64) -> (FaultPlan, DeliveryPolicy) {
    let mut g = Gen::for_case("chaos-plan", seed);
    let mut plan = FaultPlan::none(format!("chaos/{seed}"));
    plan.drop_per_mille = g.per_mille(120);
    plan.corrupt_per_mille = g.per_mille(120);
    plan.truncate_per_mille = g.per_mille(100);
    plan.duplicate_per_mille = g.per_mille(100);
    plan.delay_per_mille = g.per_mille(100);
    if g.u64_below(4) == 0 {
        let party = g
            .choose(&[
                PartyId::Mediator,
                PartyId::Client,
                PartyId::source("r1"),
                PartyId::source("r2"),
            ])
            .clone();
        plan.outages.push(Outage {
            party,
            from_step: g.u64_below(12),
            steps: 1 + g.u64_below(3),
        });
    }
    let policy = DeliveryPolicy {
        max_attempts: 2 + (seed % 3) as u32,
        on_exhausted: if seed.is_multiple_of(2) {
            OnExhausted::Abort
        } else {
            OnExhausted::Degrade
        },
    };
    (plan, policy)
}

#[derive(Default)]
struct Tally {
    outcomes: [u64; 4],
    retries: u64,
    overhead_msgs: u64,
    overhead_bytes: u64,
    total_msgs: u64,
    total_bytes: u64,
}

fn main() {
    let w = workload();
    // Everything in this sweep is seeded, so the whole trajectory is
    // deterministic — retries and overhead bytes compare exactly across
    // machines.  The engine runs its default single-worker pool here.
    let mut traj = TrajectoryFile::new("chaos", "chaos_sweep", 1);
    let kinds = [
        (
            "Database-as-a-Service",
            ProtocolKind::Das(DasConfig::default()),
        ),
        (
            "Commutative Encryption",
            ProtocolKind::Commutative(CommutativeConfig::default()),
        ),
        ("Private Matching", ProtocolKind::Pm(PmConfig::default())),
    ];

    println!("Chaos sweep: retry overhead per protocol ({SEEDS} seeded fault plans each)");
    println!(
        "(workload: |R1|={}, |R2|={}; plans drawn from testkit label \"chaos-plan\")\n",
        w.left.len(),
        w.right.len()
    );
    println!(
        "{:<24} {:>7} {:>7} {:>7} {:>7} {:>9} {:>12} {:>14} {:>9}",
        "protocol",
        "clean",
        "recov",
        "degr",
        "abort",
        "retries",
        "extra msgs",
        "extra bytes",
        "overhead"
    );

    for (name, kind) in kinds {
        // The fault-free baseline the overhead is measured against.
        let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
        let clean = Engine::run(&mut sc, &RunOptions::new(kind).trace(TraceSink::Discard))
            .expect("fault-free run succeeds");
        let clean_bytes = clean.transport.total_bytes() as u64;

        let mut t = Tally::default();
        for seed in 0..SEEDS {
            let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
            let (plan, policy) = plan_for(seed);
            let opts = RunOptions::new(kind)
                .trace(TraceSink::Discard)
                .delivery(policy)
                .faults(plan);
            let report = Engine::run(&mut sc, &opts).expect("chaos runs return typed reports");
            let slot = match report.outcome {
                RunOutcome::Clean => 0,
                RunOutcome::RecoveredWithRetries { .. } => 1,
                RunOutcome::Degraded { .. } => 2,
                RunOutcome::Aborted { .. } => 3,
            };
            t.outcomes[slot] += 1;
            t.retries += report.transport.retries();
            let (msgs, bytes) = report.transport.overhead();
            t.overhead_msgs += msgs as u64;
            t.overhead_bytes += bytes as u64;
            t.total_msgs += report.transport.message_count() as u64;
            t.total_bytes += report.transport.total_bytes() as u64;
        }

        let key = kind.key();
        traj.push(&format!("{key}/retries"), "count", vec![t.retries as f64]);
        traj.push(
            &format!("{key}/overhead_bytes"),
            "bytes",
            vec![t.overhead_bytes as f64],
        );
        traj.push(
            &format!("{key}/total_bytes"),
            "bytes",
            vec![t.total_bytes as f64],
        );
        traj.push(
            &format!("{key}/aborted"),
            "count",
            vec![t.outcomes[3] as f64],
        );

        // Overhead relative to what fault-free transfers would have cost.
        let pct = 100.0 * t.overhead_bytes as f64 / (clean_bytes * SEEDS) as f64;
        println!(
            "{:<24} {:>7} {:>7} {:>7} {:>7} {:>9} {:>12} {:>14} {:>8.2}%",
            name,
            t.outcomes[0],
            t.outcomes[1],
            t.outcomes[2],
            t.outcomes[3],
            t.retries,
            t.overhead_msgs,
            t.overhead_bytes,
            pct
        );
    }

    println!(
        "\nextra msgs/bytes = log entries the receiver did not accept (failed attempts,\n\
         duplicate copies); overhead% is extra bytes relative to {SEEDS} fault-free runs."
    );

    traj.set_metrics(&metrics::snapshot());
    let path = traj
        .write_under(std::path::Path::new("target/bench"))
        .expect("write BENCH_chaos.json");
    println!("bench: {}", path.display());
}
