//! Regenerates experiment S6c (DESIGN.md): the DAS partition-count
//! trade-off curve — inference exposure versus client post-processing
//! (superset factor) — the tension the paper describes in §6 citing Hore
//! et al. [15] and Ceselli et al. [8].
//!
//! Output is a table (one row per partition count, both partitioning
//! schemes) suitable for plotting.

use std::fs;
use std::path::PathBuf;

use secmed_core::workload::WorkloadSpec;
use secmed_core::{DasConfig, Engine, RunOptions, ScenarioBuilder};
use secmed_das::exposure::{entropy_bits, guessing_exposure, superset_factor};
use secmed_das::{IndexTable, PartitionScheme};
use secmed_obs::bench::cli_threads;
use secmed_obs::json::Json;

fn main() {
    let threads = cli_threads();
    let w = WorkloadSpec {
        left_rows: 96,
        right_rows: 96,
        left_domain: 64,
        right_domain: 64,
        shared_values: 24,
        seed: "figure-das".to_string(),
        ..Default::default()
    }
    .generate();
    let dom1 = w.left.active_domain("k").unwrap();
    let true_join = w.expected_join_size;

    println!(
        "DAS partitioning trade-off (|dom|={}, true join={true_join})",
        dom1.len()
    );
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>12} {:>12}",
        "scheme", "partitions", "exposure", "entropy(bits)", "|RC|", "superset"
    );

    let mut ks: Vec<usize> = vec![1, 2, 4, 8, 16, 32];
    ks.push(dom1.len()); // effectively per-value

    let mut jsonl = String::new();
    for &k in &ks {
        for (name, scheme) in [
            ("equidepth", PartitionScheme::EquiDepth(k)),
            ("equiwidth", PartitionScheme::EquiWidth(k)),
        ] {
            let table = IndexTable::build(&dom1, scheme, 42).expect("partitioning succeeds");
            let exposure = guessing_exposure(&table, &dom1);
            let entropy = entropy_bits(&table, &dom1);

            let mut sc = ScenarioBuilder::new(&w)
                .seed("figure-das")
                .paillier_bits(512)
                .build();
            let opts = RunOptions::das(DasConfig {
                scheme,
                ..Default::default()
            })
            .threads(threads);
            let report = Engine::run(&mut sc, &opts).expect("protocol run succeeds");
            let rc = report.mediator_view.server_result_size.unwrap();
            assert_eq!(report.result.len(), true_join);

            println!(
                "{:<12} {:>10} {:>12.4} {:>14.3} {:>12} {:>12.2}",
                name,
                table.len(),
                exposure,
                entropy,
                rc,
                superset_factor(rc, true_join),
            );
            jsonl.push_str(
                &Json::obj([
                    ("experiment", Json::Str("s6c-das-tradeoff".to_string())),
                    ("scheme", Json::Str(name.to_string())),
                    ("partitions", Json::UInt(table.len() as u64)),
                    ("threads", Json::UInt(threads as u64)),
                    ("exposure", Json::Float(exposure)),
                    ("entropy_bits", Json::Float(entropy)),
                    ("rc", Json::UInt(rc as u64)),
                    ("superset", Json::Float(superset_factor(rc, true_join))),
                ])
                .render(),
            );
            jsonl.push('\n');
        }
    }

    let out_dir = PathBuf::from("target/bench");
    fs::create_dir_all(&out_dir).expect("create target/bench");
    let path = out_dir.join("figure_das_tradeoff.jsonl");
    fs::write(&path, jsonl).expect("write tradeoff JSONL");
    println!("jsonl: {}", path.display());

    println!("\nreading: more partitions → higher exposure (worse privacy), smaller |RC| (less client post-processing).");
}
