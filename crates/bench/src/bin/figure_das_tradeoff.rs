//! Regenerates experiment S6c (DESIGN.md): the DAS partition-count
//! trade-off curve — inference exposure versus client post-processing
//! (superset factor) — the tension the paper describes in §6 citing Hore
//! et al. [15] and Ceselli et al. [8].
//!
//! Output is a table (one row per partition count, both partitioning
//! schemes) suitable for plotting.

use secmed_core::workload::WorkloadSpec;
use secmed_core::{DasConfig, ProtocolKind, Scenario};
use secmed_das::exposure::{entropy_bits, guessing_exposure, superset_factor};
use secmed_das::{IndexTable, PartitionScheme};

fn main() {
    let w = WorkloadSpec {
        left_rows: 96,
        right_rows: 96,
        left_domain: 64,
        right_domain: 64,
        shared_values: 24,
        seed: "figure-das".to_string(),
        ..Default::default()
    }
    .generate();
    let dom1 = w.left.active_domain("k").unwrap();
    let true_join = w.expected_join_size;

    println!(
        "DAS partitioning trade-off (|dom|={}, true join={true_join})",
        dom1.len()
    );
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>12} {:>12}",
        "scheme", "partitions", "exposure", "entropy(bits)", "|RC|", "superset"
    );

    let mut ks: Vec<usize> = vec![1, 2, 4, 8, 16, 32];
    ks.push(dom1.len()); // effectively per-value

    for &k in &ks {
        for (name, scheme) in [
            ("equidepth", PartitionScheme::EquiDepth(k)),
            ("equiwidth", PartitionScheme::EquiWidth(k)),
        ] {
            let table = IndexTable::build(&dom1, scheme, 42).expect("partitioning succeeds");
            let exposure = guessing_exposure(&table, &dom1);
            let entropy = entropy_bits(&table, &dom1);

            let mut sc = Scenario::from_workload(&w, "figure-das", 512);
            let report = sc
                .run(ProtocolKind::Das(DasConfig {
                    scheme,
                    ..Default::default()
                }))
                .expect("protocol run succeeds");
            let rc = report.mediator_view.server_result_size.unwrap();
            assert_eq!(report.result.len(), true_join);

            println!(
                "{:<12} {:>10} {:>12.4} {:>14.3} {:>12} {:>12.2}",
                name,
                table.len(),
                exposure,
                entropy,
                rc,
                superset_factor(rc, true_join),
            );
        }
    }

    println!("\nreading: more partitions → higher exposure (worse privacy), smaller |RC| (less client post-processing).");
}
