//! Planner bench: deterministic planning series plus throughput timing.
//!
//! Plans seeded chain federations of growing width (3, 4, and 5 tables)
//! under an open leakage budget and emits
//! `target/bench/BENCH_plan.json` in the PR 6 trajectory format:
//!
//! * `plan/nodes`, `plan/cost`, `plan/est_rows` — one sample per
//!   federation width, all pure functions of the seeded inputs, so the
//!   series is byte-exact across machines and comparable against any
//!   baseline,
//! * `plan/wall` (ns) and `plan/plans_per_sec` — machine-local timing of
//!   repeated planning rounds over all three widths.
//!
//! ```text
//! plan_bench [ROUNDS]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use secmed_core::plan::LeakageBudget;
use secmed_obs::trajectory::TrajectoryFile;
use secmed_plan::{stats_of, Planner};
use secmed_testkit::federation::{self, FederationSpec};
use secmed_testkit::Gen;

fn main() {
    let rounds: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("ROUNDS must be a number"))
        .unwrap_or(50);
    assert!(rounds >= 1, "need at least one round");

    let widths: [usize; 3] = [3, 4, 5];
    let planner = Planner::new();
    let inputs: Vec<_> = widths
        .iter()
        .map(|&tables| {
            let fed = federation::chain(
                &mut Gen::for_case("plan-bench", tables as u64),
                &FederationSpec {
                    tables,
                    rows: 32,
                    key_domain: 10,
                    payload_domain: 200,
                },
            );
            let schemas = fed.schemas();
            let stats = stats_of(&fed.catalog);
            (fed.query(), schemas, stats)
        })
        .collect();

    let mut nodes: Vec<f64> = Vec::new();
    let mut cost: Vec<f64> = Vec::new();
    let mut est_rows: Vec<f64> = Vec::new();
    for (query, schemas, stats) in &inputs {
        let plan = planner
            .plan(query, schemas, stats, LeakageBudget::open())
            .expect("chain federations always plan");
        nodes.push(plan.nodes.len() as f64);
        cost.push(
            plan.nodes
                .iter()
                .map(|n| n.predicted.weighted_cost())
                .sum::<u64>() as f64,
        );
        est_rows.push(plan.nodes.last().expect("non-empty plan").estimated_rows as f64);
    }

    let start = Instant::now();
    for _ in 0..rounds {
        for (query, schemas, stats) in &inputs {
            planner
                .plan(query, schemas, stats, LeakageBudget::open())
                .expect("chain federations always plan");
        }
    }
    let wall = start.elapsed();
    let plans = rounds * widths.len() as u64;
    let rate = plans as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "plan_bench: {plans} plans over widths {widths:?} in {:?} ({rate:.0} plans/sec)",
        wall
    );

    let mut traj = TrajectoryFile::new("plan", "plan_bench", 1);
    traj.push("plan/nodes", "count", nodes);
    traj.push("plan/cost", "ops", cost);
    traj.push("plan/est_rows", "rows", est_rows);
    traj.push("plan/wall", "ns", vec![wall.as_nanos() as f64]);
    traj.push("plan/plans_per_sec", "hz", vec![rate]);
    let path = traj
        .write_under(&PathBuf::from("target/bench"))
        .expect("write BENCH_plan.json");
    println!("bench: {}", path.display());
}
