//! Experiment S6b (DESIGN.md): the full cost comparison behind the
//! paper's §6 conclusion — wall-clock per protocol across workload sizes,
//! split by what each participant pays, plus communication volume.
//!
//! "Based on these performance considerations, the commutative approach
//! seems to be the most efficient one to be employed in a secure
//! mediation system."  This binary measures that claim.

use std::time::Instant;

use secmed_core::workload::WorkloadSpec;
use secmed_core::{CommutativeConfig, DasConfig, PartyId, PmConfig, ProtocolKind, Scenario};

fn main() {
    println!("End-to-end protocol comparison (S6b). 512-bit groups, 512-bit Paillier.\n");
    println!(
        "{:<8} {:<24} {:>12} {:>10} {:>12} {:>14} {:>12}",
        "rows", "protocol", "time (ms)", "messages", "total bytes", "client bytes", "result"
    );

    for rows in [16usize, 32, 64, 128] {
        let w = WorkloadSpec {
            left_rows: rows,
            right_rows: rows,
            left_domain: (rows / 2).max(2),
            right_domain: (rows / 2).max(2),
            shared_values: (rows / 4).max(1),
            seed: "report".to_string(),
            ..Default::default()
        }
        .generate();

        let kinds: [(&str, ProtocolKind); 3] = [
            (
                "Database-as-a-Service",
                ProtocolKind::Das(DasConfig::default()),
            ),
            (
                "Commutative Encryption",
                ProtocolKind::Commutative(CommutativeConfig::default()),
            ),
            ("Private Matching", ProtocolKind::Pm(PmConfig::default())),
        ];

        for (name, kind) in kinds {
            let mut sc = Scenario::from_workload(&w, "report", 512);
            let start = Instant::now();
            let report = sc.run(kind).expect("protocol run succeeds");
            let elapsed = start.elapsed();
            assert_eq!(report.result.len(), w.expected_join_size);
            println!(
                "{:<8} {:<24} {:>12.1} {:>10} {:>12} {:>14} {:>12}",
                rows,
                name,
                elapsed.as_secs_f64() * 1000.0,
                report.transport.message_count(),
                report.transport.total_bytes(),
                report.transport.bytes_received_by(&PartyId::Client),
                report.result.len(),
            );
        }
        println!();
    }
}
