//! Experiment S6b (DESIGN.md): the full cost comparison behind the
//! paper's §6 conclusion — wall-clock per protocol across workload sizes,
//! split by what each participant pays, plus communication volume.
//!
//! "Based on these performance considerations, the commutative approach
//! seems to be the most efficient one to be employed in a secure
//! mediation system."  This binary measures that claim.
//!
//! Accepts `--threads N` to run the engine's fork-join pool with N
//! workers; the thread count is recorded in every emitted JSONL record, so
//! archived measurements are never ambiguous about how they were taken.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use secmed_core::workload::WorkloadSpec;
use secmed_core::{
    CommutativeConfig, DasConfig, Engine, PartyId, PmConfig, ProtocolKind, RunOptions,
    ScenarioBuilder,
};
use secmed_obs::bench::cli_threads;
use secmed_obs::json::Json;
use secmed_obs::metrics;
use secmed_obs::trajectory::TrajectoryFile;

fn main() {
    let threads = cli_threads();
    let mut traj = TrajectoryFile::new("core", "report", threads as u64);
    println!(
        "End-to-end protocol comparison (S6b). 512-bit groups, 512-bit Paillier, {threads} thread(s).\n"
    );
    println!(
        "{:<8} {:<24} {:>12} {:>10} {:>12} {:>14} {:>12}",
        "rows", "protocol", "time (ms)", "messages", "total bytes", "client bytes", "result"
    );

    let mut jsonl = String::new();
    for rows in [16usize, 32, 64, 128] {
        let w = WorkloadSpec {
            left_rows: rows,
            right_rows: rows,
            left_domain: (rows / 2).max(2),
            right_domain: (rows / 2).max(2),
            shared_values: (rows / 4).max(1),
            seed: "report".to_string(),
            ..Default::default()
        }
        .generate();

        let kinds: [(&str, ProtocolKind); 3] = [
            (
                "Database-as-a-Service",
                ProtocolKind::Das(DasConfig::default()),
            ),
            (
                "Commutative Encryption",
                ProtocolKind::Commutative(CommutativeConfig::default()),
            ),
            ("Private Matching", ProtocolKind::Pm(PmConfig::default())),
        ];

        for (name, kind) in kinds {
            let mut sc = ScenarioBuilder::new(&w)
                .seed("report")
                .paillier_bits(512)
                .build();
            let start = Instant::now();
            let report = Engine::run(&mut sc, &RunOptions::new(kind).threads(threads))
                .expect("protocol run succeeds");
            let elapsed = start.elapsed();
            assert_eq!(report.result.len(), w.expected_join_size);
            println!(
                "{:<8} {:<24} {:>12.1} {:>10} {:>12} {:>14} {:>12}",
                rows,
                name,
                elapsed.as_secs_f64() * 1000.0,
                report.transport.message_count(),
                report.transport.total_bytes(),
                report.transport.bytes_received_by(&PartyId::Client),
                report.result.len(),
            );
            // Trajectory rows: wall-clock is machine-local, byte volume
            // is deterministic and comparable against any baseline.
            traj.push(
                &format!("{}/rows{rows}", kind.key()),
                "ns",
                vec![elapsed.as_nanos() as f64],
            );
            traj.push(
                &format!("{}/rows{rows}/bytes", kind.key()),
                "bytes",
                vec![report.transport.total_bytes() as f64],
            );
            jsonl.push_str(
                &Json::obj([
                    ("experiment", Json::Str("s6b-report".to_string())),
                    ("rows", Json::UInt(rows as u64)),
                    ("protocol", Json::Str(kind.key().to_string())),
                    ("threads", Json::UInt(threads as u64)),
                    ("time_ms", Json::Float(elapsed.as_secs_f64() * 1000.0)),
                    (
                        "messages",
                        Json::UInt(report.transport.message_count() as u64),
                    ),
                    (
                        "total_bytes",
                        Json::UInt(report.transport.total_bytes() as u64),
                    ),
                    (
                        "client_bytes",
                        Json::UInt(report.transport.bytes_received_by(&PartyId::Client) as u64),
                    ),
                    ("result_rows", Json::UInt(report.result.len() as u64)),
                ])
                .render(),
            );
            jsonl.push('\n');
        }
        println!();
    }

    let out_dir = PathBuf::from("target/bench");
    fs::create_dir_all(&out_dir).expect("create target/bench");
    let path = out_dir.join("report.jsonl");
    fs::write(&path, jsonl).expect("write report JSONL");
    println!("jsonl: {}", path.display());

    // The performance trajectory, with the process's metrics registry
    // split into deterministic (portable) and timing (machine-local).
    traj.set_metrics(&metrics::snapshot());
    let bench_path = traj.write_under(&out_dir).expect("write BENCH_core.json");
    println!("bench: {}", bench_path.display());
}
