//! Resilience bench: the session-resilience layer under load, measured.
//!
//! Three phases against in-process servers over loopback TCP:
//!
//! 1. **Overload ramp** — a server with `max_sessions = 8` holds eight
//!    admitted sessions open while 24 more clients dial in; every
//!    over-limit Hello must be refused with a typed `ServerBusy` NACK.
//!    The admitted/refused counts are deterministic (the table is full
//!    by construction, not by racing).
//! 2. **Chaos-kill workload** — a server with a seeded
//!    [`ServerFaultPlan`] kills, stalls, and half-writes its way through
//!    sequential protocol sessions; the client fabric heals every cut by
//!    reconnect-and-resume.  The interruption (resume) count and the
//!    per-session byte volumes are deterministic: fault rolls are keyed
//!    by session/frame/incarnation and resume replay keeps each
//!    `RunReport` byte-identical to an undisturbed run.
//! 3. **Drain** — a server with two completed and two parked sessions is
//!    shut down; the time from `shutdown()` to the serving scope joining
//!    is the drain latency, a timing series (machine-local).
//!
//! Emits `target/bench/BENCH_resilience.json` in the PR 6 trajectory
//! format.  All wall-clock goes through [`secmed_obs::metrics::Clock`].

use std::path::PathBuf;

use secmed_core::workload::WorkloadSpec;
use secmed_core::{
    CommutativeConfig, DasConfig, Fabric, MedError, PmConfig, ReconnectPolicy, RunOptions,
    ScenarioBuilder, SocketFabric, TraceSink,
};
use secmed_obs::metrics::{self, Clock, MonotonicClock};
use secmed_obs::trajectory::TrajectoryFile;
use secmed_server::{Server, ServerConfig, ServerFaultPlan, SessionOutcome};

const HELD: u64 = 8;
const OVERFLOW: u64 = 24;
const CHAOS_SESSIONS: u64 = 12;

/// Phase 1: fill the admission table, then count typed refusals.
fn overload_ramp() -> (u64, u64) {
    let config = ServerConfig {
        max_sessions: HELD as usize,
        ..ServerConfig::default()
    };
    let server = Server::bind_with(config).expect("bind overload server");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let held: Vec<SocketFabric> = (1..=HELD)
            .map(|i| SocketFabric::connect(addr, i, Default::default()).expect("admit"))
            .collect();
        for i in 0..OVERFLOW {
            match SocketFabric::connect(addr, HELD + 1 + i, Default::default()) {
                Err(MedError::Busy(_)) => {}
                Err(other) => panic!("over-limit Hello must be refused Busy, got {other}"),
                Ok(_) => panic!("over-limit Hello must be refused Busy, got an admission"),
            }
        }
        for fabric in held {
            fabric.into_recorder().expect("clean goodbye");
        }
        handle.shutdown();
    });
    let ledger = server.summaries();
    let admitted = ledger.iter().filter(|l| l.completed()).count() as u64;
    let refused = ledger
        .iter()
        .filter(|l| matches!(l.outcome, SessionOutcome::Rejected(_)))
        .count() as u64;
    assert_eq!(admitted, HELD, "every held session completes: {ledger:?}");
    assert_eq!(
        refused, OVERFLOW,
        "every overflow Hello refused: {ledger:?}"
    );
    assert_eq!(server.active_sessions(), 0, "overload table leaked");
    (admitted, refused)
}

/// Phase 2: sequential protocol sessions against a chaotic server, all
/// healed by resume.  Returns (interruptions, per-session bytes).
fn chaos_workload() -> (u64, Vec<f64>) {
    let config = ServerConfig {
        replay_window: 8,
        chaos: Some(ServerFaultPlan::for_seed(7)),
        ..ServerConfig::default()
    };
    let server = Server::bind_with(config).expect("bind chaos server");
    let addr = server.addr();
    let bytes = secmed_pool::scope(|s| {
        let handle = server.start(s);
        // Sequential on purpose: one session at a time keeps the fault
        // rolls (keyed per session/frame/incarnation) and therefore the
        // interruption count deterministic.
        let bytes: Vec<f64> = (0..CHAOS_SESSIONS)
            .map(|i| {
                let w = WorkloadSpec {
                    left_rows: 4,
                    right_rows: 4,
                    left_domain: 3,
                    right_domain: 3,
                    shared_values: 2,
                    payload_attrs: 1,
                    seed: format!("resilience/{i}"),
                    ..Default::default()
                }
                .generate();
                let mut sc = ScenarioBuilder::new(&w).seed("resilience").build();
                let opts = match i % 3 {
                    0 => RunOptions::das(DasConfig::default()),
                    1 => RunOptions::commutative(CommutativeConfig::default()),
                    _ => RunOptions::pm(PmConfig::default()),
                }
                .trace(TraceSink::Discard);
                let reconnect = ReconnectPolicy {
                    max_reconnects: 64,
                    base_backoff_ns: 50_000,
                    backoff_cap_ns: 2_000_000,
                    seed: i,
                };
                let report =
                    secmed_client::run_session_with(addr, i + 1, &mut sc, &opts, reconnect)
                        .unwrap_or_else(|e| panic!("chaos session {i} failed: {e}"));
                assert!(
                    report.outcome.is_clean(),
                    "chaos session {i} not clean: {:?}",
                    report.outcome
                );
                report.transport.total_bytes() as f64
            })
            .collect();
        handle.shutdown();
        bytes
    });
    let ledger = server.summaries();
    let interruptions = ledger
        .iter()
        .filter(|l| matches!(l.outcome, SessionOutcome::Suspended(_)))
        .count() as u64;
    assert!(
        interruptions > 0,
        "server chaos never struck — the resume path went unmeasured"
    );
    assert_eq!(server.active_sessions(), 0, "chaos table leaked");
    assert_eq!(server.parked_sessions(), 0, "chaos parked leaked");
    (interruptions, bytes)
}

/// Phase 3: drain a server holding parked sessions; returns the latency
/// from `shutdown()` to the serving scope joining, in nanoseconds.
fn drain_latency(clock: &MonotonicClock) -> u64 {
    let config = ServerConfig {
        replay_window: 4,
        drain_deadline_ns: 500_000_000,
        ..ServerConfig::default()
    };
    let server = Server::bind_with(config).expect("bind drain server");
    let addr = server.addr();
    let mut started_ns = 0;
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        for i in 1..=2u64 {
            SocketFabric::connect(addr, i, Default::default())
                .expect("admit")
                .into_recorder()
                .expect("clean goodbye");
        }
        for i in 3..=4u64 {
            // Admitted, then dropped without a Goodbye: parked, and
            // reaped by the drain into a typed abort.
            drop(SocketFabric::connect(addr, i, Default::default()).expect("admit"));
        }
        started_ns = clock.now_ns();
        handle.shutdown();
    });
    let drain_ns = clock.now_ns().saturating_sub(started_ns);
    assert_eq!(server.active_sessions(), 0, "drain left live sessions");
    assert_eq!(server.parked_sessions(), 0, "drain left parked sessions");
    let ledger = server.summaries();
    let aborted = ledger
        .iter()
        .filter(|l| matches!(l.outcome, SessionOutcome::Aborted(_)))
        .count();
    assert_eq!(
        aborted, 2,
        "drain must reap both parked sessions: {ledger:?}"
    );
    drain_ns
}

fn main() {
    let clock = MonotonicClock;
    let bench_start = clock.now_ns();

    let (admitted, refused) = overload_ramp();
    println!("resilience: overload ramp — {admitted} admitted, {refused} refused (typed)");

    let (resumed, session_bytes) = chaos_workload();
    println!(
        "resilience: chaos workload — {CHAOS_SESSIONS} sessions, {resumed} interruptions resumed"
    );

    let drain_ns = drain_latency(&clock);
    println!(
        "resilience: drain — parked sessions reaped in {:.2}ms",
        drain_ns as f64 / 1e6
    );

    let wall_ns = clock.now_ns().saturating_sub(bench_start);
    let mut traj = TrajectoryFile::new("resilience", "resilience", 1);
    traj.push("resilience/admitted", "count", vec![admitted as f64]);
    traj.push("resilience/refused", "count", vec![refused as f64]);
    traj.push("resilience/resumed", "count", vec![resumed as f64]);
    traj.push("resilience/session/bytes", "bytes", session_bytes);
    traj.push("resilience/drain/wall", "ns", vec![drain_ns as f64]);
    traj.push("resilience/wall", "ns", vec![wall_ns as f64]);
    traj.set_metrics(&metrics::snapshot());
    let path = traj
        .write_under(&PathBuf::from("target/bench"))
        .expect("write BENCH_resilience.json");
    println!("bench: {}", path.display());
}
