//! Soak bench: many concurrent client sessions against one mediation
//! server over loopback TCP.
//!
//! One `secmed-server` is hosted in-process; `N` client threads (default
//! 128, ISSUE 8 floor is 100) each dial it with a distinct session id
//! and run a full protocol scenario — protocols round-robin across
//! DAS/commutative/PM so the relay sees all three frame mixes at once.
//! Every session must end `Clean`; afterwards the server ledger must
//! show exactly `N` completed sessions and an empty session table.
//!
//! Emits `target/bench/BENCH_soak.json` in the PR 6 trajectory format:
//! sessions/sec and total wall-clock as timing series (machine-local),
//! the per-session byte volumes as a deterministic series (comparable
//! against any baseline).
//!
//! ```text
//! soak [SESSIONS]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use secmed_core::workload::WorkloadSpec;
use secmed_core::{CommutativeConfig, DasConfig, PmConfig, RunOptions, ScenarioBuilder, TraceSink};
use secmed_obs::metrics;
use secmed_obs::trajectory::TrajectoryFile;
use secmed_server::Server;

fn main() {
    let sessions: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("SESSIONS must be a number"))
        .unwrap_or(128);
    assert!(sessions >= 1, "need at least one session");

    let server = Server::bind().expect("bind loopback");
    let addr = server.addr();
    println!("soak: {sessions} concurrent sessions against {addr}");

    let start = Instant::now();
    let per_session_bytes: Vec<f64> = secmed_pool::scope(|s| {
        let handle = server.start(s);
        let workers: Vec<_> = (0..sessions)
            .map(|i| {
                s.spawn(move || {
                    let w = WorkloadSpec {
                        left_rows: 4,
                        right_rows: 4,
                        left_domain: 3,
                        right_domain: 3,
                        shared_values: 2,
                        payload_attrs: 1,
                        seed: format!("soak/{i}"),
                        ..Default::default()
                    }
                    .generate();
                    let mut sc = ScenarioBuilder::new(&w).seed("soak").build();
                    let opts = match i % 3 {
                        0 => RunOptions::das(DasConfig::default()),
                        1 => RunOptions::commutative(CommutativeConfig::default()),
                        _ => RunOptions::pm(PmConfig::default()),
                    }
                    .trace(TraceSink::Discard);
                    let report = secmed_client::run_session(addr, i + 1, &mut sc, &opts)
                        .unwrap_or_else(|e| panic!("session {i} failed: {e}"));
                    assert!(
                        report.outcome.is_clean(),
                        "session {i} not clean: {:?}",
                        report.outcome
                    );
                    report.transport.total_bytes() as f64
                })
            })
            .collect();
        // Join in spawn order: the byte series is indexed by session, so
        // its sample order is deterministic even though completion
        // order is not.
        let bytes = workers
            .into_iter()
            .map(|w| w.join().expect("session thread panicked"))
            .collect();
        handle.shutdown();
        bytes
    });
    let wall = start.elapsed();

    let summaries = server.summaries();
    assert_eq!(summaries.len() as u64, sessions, "ledger incomplete");
    assert!(
        summaries.iter().all(|s| s.completed()),
        "not every session completed: {summaries:?}"
    );
    assert_eq!(server.active_sessions(), 0, "session table leaked");

    let rate = sessions as f64 / wall.as_secs_f64();
    let total_bytes: f64 = per_session_bytes.iter().sum();
    println!(
        "soak: {sessions} sessions in {:.2}s — {rate:.1} sessions/sec, {} bytes relayed",
        wall.as_secs_f64(),
        total_bytes as u64
    );

    let mut traj = TrajectoryFile::new("soak", "soak", sessions);
    traj.push("soak/sessions", "count", vec![sessions as f64]);
    traj.push("soak/wall", "ns", vec![wall.as_nanos() as f64]);
    traj.push("soak/sessions_per_sec", "hz", vec![rate]);
    traj.push("soak/session/bytes", "bytes", per_session_bytes);
    traj.set_metrics(&metrics::snapshot());
    let path = traj
        .write_under(&PathBuf::from("target/bench"))
        .expect("write BENCH_soak.json");
    println!("bench: {}", path.display());
}
