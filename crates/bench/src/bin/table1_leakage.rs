//! Regenerates **Table 1** of the paper — "Extra information disclosed to
//! client and mediator" — empirically: runs each protocol on the same
//! workload and prints what the instrumented mediator and client views
//! actually contained, next to the paper's claims.

use secmed_core::audit::Table1Row;
use secmed_core::workload::WorkloadSpec;
use secmed_core::{
    CommutativeConfig, DasConfig, Engine, PmConfig, ProtocolKind, RunOptions, ScenarioBuilder,
};

fn main() {
    let w = WorkloadSpec {
        left_rows: 40,
        right_rows: 50,
        left_domain: 24,
        right_domain: 30,
        shared_values: 10,
        seed: "table1".to_string(),
        ..Default::default()
    }
    .generate();

    let true_join = w.expected_join_size;
    let dom1 = w.left.active_domain("k").unwrap().len();
    let dom2 = w.right.active_domain("k").unwrap().len();
    let intersection = w
        .left
        .active_domain("k")
        .unwrap()
        .intersection(&w.right.active_domain("k").unwrap())
        .count();

    println!("Regenerated Table 1: extra information disclosed to client and mediator");
    println!(
        "(workload: |R1|={}, |R2|={}, |dom1|={dom1}, |dom2|={dom2}, |dom1∩dom2|={intersection}, |R1⨝R2|={true_join})\n",
        w.left.len(),
        w.right.len()
    );

    let paper_claims = [
        (
            "Database-as-a-Service",
            "superset of global result, index tables",
            "|Ri| and |RC|",
        ),
        (
            "Commutative Encryption",
            "(only exact global result)",
            "|domactive(Ri.Ajoin)| and size of intersection",
        ),
        (
            "Private Matching",
            "n+m ciphertexts, intersection decryptable",
            "|domactive(Ri.Ajoin)|",
        ),
    ];

    let kinds = [
        ProtocolKind::Das(DasConfig::default()),
        ProtocolKind::Commutative(CommutativeConfig::default()),
        ProtocolKind::Pm(PmConfig::default()),
    ];

    for (kind, (name, paper_client, paper_mediator)) in kinds.into_iter().zip(paper_claims) {
        let mut sc = ScenarioBuilder::new(&w)
            .seed("table1")
            .paillier_bits(768)
            .build();
        let report = Engine::run(&mut sc, &RunOptions::new(kind)).expect("protocol run succeeds");
        assert_eq!(report.result.len(), true_join, "{name}: result verified");
        let row = Table1Row {
            protocol: name,
            client_extra: report.client_view.describe(),
            mediator_extra: report.mediator_view.describe(),
        };
        println!("== {name}");
        println!("   paper    | client: {paper_client:<55} | mediator: {paper_mediator}");
        println!(
            "   measured | client: {:<55} | mediator: {}",
            row.client_extra, row.mediator_extra
        );
        println!();
    }

    println!(
        "All three protocols delivered the exact global result ({true_join} tuples) to the client."
    );
}
