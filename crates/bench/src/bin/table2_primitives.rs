//! Regenerates **Table 2** of the paper — "Applied cryptographic
//! primitives" — from operation counters: runs each protocol and prints
//! the primitives that were *actually invoked*, with counts.

use std::fs;
use std::path::PathBuf;

use secmed_core::workload::WorkloadSpec;
use secmed_core::{
    CommutativeConfig, DasConfig, Engine, PmConfig, ProtocolKind, RunOptions, ScenarioBuilder,
};
use secmed_obs::bench::cli_threads;
use secmed_obs::json::Json;
use secmed_obs::metrics;
use secmed_obs::trajectory::TrajectoryFile;

fn main() {
    let threads = cli_threads();
    let mut traj = TrajectoryFile::new("table2", "table2_primitives", threads as u64);
    let w = WorkloadSpec {
        left_rows: 30,
        right_rows: 30,
        left_domain: 20,
        right_domain: 20,
        shared_values: 8,
        seed: "table2".to_string(),
        ..Default::default()
    }
    .generate();

    println!("Regenerated Table 2: applied cryptographic primitives (measured op counts)\n");

    let rows = [
        (
            "Database-as-a-Service",
            "hash function (index values) + hybrid encryption",
            ProtocolKind::Das(DasConfig::default()),
        ),
        (
            "Commutative Encryption",
            "hash function (random oracle) + commutative encryption",
            ProtocolKind::Commutative(CommutativeConfig::default()),
        ),
        (
            "Private Matching",
            "homomorphic encryption + random numbers",
            ProtocolKind::Pm(PmConfig::default()),
        ),
    ];

    let mut jsonl = String::new();
    for (name, paper, kind) in rows {
        let mut sc = ScenarioBuilder::new(&w)
            .seed("table2")
            .paillier_bits(768)
            .build();
        let before = metrics::snapshot();
        let report = Engine::run(&mut sc, &RunOptions::new(kind).threads(threads))
            .expect("protocol run succeeds");
        // The obs registry mirrors every census bump as a `crypto.<op>`
        // counter; its delta over the run must agree with the report's
        // census exactly — two recorders, one truth.
        let delta = metrics::snapshot().since(&before);
        for (op, count) in &report.primitives {
            let mirrored = delta.counter(&secmed_crypto::metrics::registry_name(*op));
            assert_eq!(
                mirrored,
                *count,
                "{name}: registry mirror disagrees with census for {}",
                op.name()
            );
        }
        println!("== {name}");
        println!("   paper:    {paper}");
        print!("   measured:");
        for (op, count) in &report.primitives {
            print!(" {}×{count}", op.name());
            traj.push(
                &format!("{}/{}", kind.key(), op.name()),
                "count",
                vec![*count as f64],
            );
        }
        println!("\n");
        jsonl.push_str(
            &Json::obj([
                ("experiment", Json::Str("table2-primitives".to_string())),
                ("protocol", Json::Str(kind.key().to_string())),
                ("threads", Json::UInt(threads as u64)),
                (
                    "primitives",
                    Json::obj(
                        report
                            .primitives
                            .iter()
                            .map(|(op, count)| (op.name(), Json::UInt(*count))),
                    ),
                ),
            ])
            .render(),
        );
        jsonl.push('\n');
    }

    let out_dir = PathBuf::from("target/bench");
    fs::create_dir_all(&out_dir).expect("create target/bench");
    let path = out_dir.join("table2_primitives.jsonl");
    fs::write(&path, jsonl).expect("write table2 JSONL");
    println!("jsonl: {}", path.display());

    traj.set_metrics(&metrics::snapshot());
    let bench_path = traj.write_under(&out_dir).expect("write BENCH_table2.json");
    println!("bench: {}", bench_path.display());
}
