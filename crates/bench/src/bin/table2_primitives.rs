//! Regenerates **Table 2** of the paper — "Applied cryptographic
//! primitives" — from operation counters: runs each protocol and prints
//! the primitives that were *actually invoked*, with counts.

use secmed_core::workload::WorkloadSpec;
use secmed_core::{CommutativeConfig, DasConfig, PmConfig, ProtocolKind, Scenario};

fn main() {
    let w = WorkloadSpec {
        left_rows: 30,
        right_rows: 30,
        left_domain: 20,
        right_domain: 20,
        shared_values: 8,
        seed: "table2".to_string(),
        ..Default::default()
    }
    .generate();

    println!("Regenerated Table 2: applied cryptographic primitives (measured op counts)\n");

    let rows = [
        (
            "Database-as-a-Service",
            "hash function (index values) + hybrid encryption",
            ProtocolKind::Das(DasConfig::default()),
        ),
        (
            "Commutative Encryption",
            "hash function (random oracle) + commutative encryption",
            ProtocolKind::Commutative(CommutativeConfig::default()),
        ),
        (
            "Private Matching",
            "homomorphic encryption + random numbers",
            ProtocolKind::Pm(PmConfig::default()),
        ),
    ];

    for (name, paper, kind) in rows {
        let mut sc = Scenario::from_workload(&w, "table2", 768);
        let report = sc.run(kind).expect("protocol run succeeds");
        println!("== {name}");
        println!("   paper:    {paper}");
        print!("   measured:");
        for (op, count) in &report.primitives {
            print!(" {}×{count}", op.name());
        }
        println!("\n");
    }
}
