//! Regenerates the §6 interaction-pattern analysis (S6a in DESIGN.md):
//! how often each participant interacts, and how many bytes cross each
//! link, per protocol.  (The paper states these patterns in prose; this
//! binary prints them as a table from the recorded transport.)

use secmed_core::workload::WorkloadSpec;
use secmed_core::{
    CommutativeConfig, DasConfig, Engine, PartyId, PmConfig, ProtocolKind, RunOptions,
    ScenarioBuilder,
};

fn main() {
    let w = WorkloadSpec {
        left_rows: 40,
        right_rows: 40,
        left_domain: 25,
        right_domain: 25,
        shared_values: 10,
        seed: "table3".to_string(),
        ..Default::default()
    }
    .generate();

    println!("Regenerated §6 interaction patterns (from the recorded transport)\n");
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "protocol", "client", "S1", "S2", "messages", "total bytes", "client recv"
    );

    let kinds: [(&str, ProtocolKind); 3] = [
        (
            "Database-as-a-Service",
            ProtocolKind::Das(DasConfig::default()),
        ),
        (
            "Commutative Encryption",
            ProtocolKind::Commutative(CommutativeConfig::default()),
        ),
        ("Private Matching", ProtocolKind::Pm(PmConfig::default())),
    ];

    for (name, kind) in kinds {
        let mut sc = ScenarioBuilder::new(&w)
            .seed("table3")
            .paillier_bits(768)
            .build();
        let report = Engine::run(&mut sc, &RunOptions::new(kind)).expect("protocol run succeeds");
        let t = &report.transport;
        println!(
            "{:<24} {:>8} {:>8} {:>8} {:>10} {:>12} {:>12}",
            name,
            t.interactions_of(&PartyId::Client),
            t.interactions_of(&PartyId::source("r1")),
            t.interactions_of(&PartyId::source("r2")),
            t.message_count(),
            t.total_bytes(),
            t.bytes_received_by(&PartyId::Client),
        );
    }

    println!("\npaper §6: DAS — client interacts twice, sources send once;");
    println!("          commutative & PM — sources interact twice, client once.");
}
