//! Unified observability report for all three protocols over a common
//! synthetic workload.
//!
//! For each protocol (DAS client setting, commutative encryption with ID
//! references, private matching with Horner evaluation and session-key
//! tables) this binary:
//!
//! 1. runs the full mediation scenario under structured tracing,
//! 2. writes the raw span/event trace as JSONL to
//!    `target/obs/<protocol>.trace.jsonl`,
//! 3. writes the unified run report (phase timings, per-edge traffic,
//!    primitive census, §6 interaction pattern, leakage audit) as JSON to
//!    `target/obs/<protocol>.report.json`,
//! 4. prints the report as an aligned table.
//!
//! The report totals are asserted against the raw transport and metrics
//! recorders before anything is written, so the emitted numbers are
//! guaranteed to match the measured ones.

use std::fs;
use std::path::PathBuf;

use secmed_core::observe::{unified_report, workload_pairs};
use secmed_core::workload::WorkloadSpec;
use secmed_core::{
    CommutativeConfig, DasConfig, Engine, PmConfig, ProtocolKind, RunOptions, ScenarioBuilder,
};
use secmed_obs::bench::cli_threads;
use secmed_obs::json::Json;
use secmed_obs::profile;
use secmed_obs::trace;

fn main() {
    let threads = cli_threads();
    let spec = WorkloadSpec {
        left_rows: 24,
        right_rows: 24,
        left_domain: 12,
        right_domain: 12,
        shared_values: 6,
        payload_attrs: 2,
        seed: "trace-report".to_string(),
        ..Default::default()
    };
    let w = spec.generate();
    let out_dir = PathBuf::from("target/obs");
    fs::create_dir_all(&out_dir).expect("create target/obs");

    println!(
        "Workload: {} ⨝ {} rows, domains {}/{}, {} shared join values.\n",
        spec.left_rows, spec.right_rows, spec.left_domain, spec.right_domain, spec.shared_values
    );

    for kind in [
        ProtocolKind::Das(DasConfig::default()),
        ProtocolKind::Commutative(CommutativeConfig::default()),
        ProtocolKind::Pm(PmConfig::default()),
    ] {
        let mark = trace::checkpoint();
        let mut sc = ScenarioBuilder::new(&w)
            .seed("trace-report")
            .paillier_bits(512)
            .build();
        let report = Engine::run(&mut sc, &RunOptions::new(kind).threads(threads))
            .expect("protocol run succeeds");
        let records = trace::take_since(mark);

        let unified = unified_report(kind, &report, &records, workload_pairs(&spec));

        // The unified report must agree exactly with the raw recorders.
        assert_eq!(
            unified.total_messages(),
            report.transport.message_count() as u64
        );
        assert_eq!(unified.total_bytes(), report.transport.total_bytes() as u64);
        assert_eq!(
            unified.total_ops(),
            report.primitives.iter().map(|(_, c)| c).sum::<u64>()
        );
        assert_eq!(report.result.len(), w.expected_join_size);

        // Fold the span trace into a self/total-time profile; per-phase
        // totals must reconcile exactly with the trace-derived phase rows
        // before the collapsed stacks are written.
        let prof = profile::aggregate(&records);
        for phase in &unified.phases {
            assert_eq!(
                prof.total_of(&phase.name),
                phase.wall_ns,
                "profile total for {} disagrees with the span trace",
                phase.name
            );
        }

        let key = kind.key();
        let trace_path = out_dir.join(format!("{key}.trace.jsonl"));
        fs::write(&trace_path, trace::export_jsonl(&records)).expect("write trace JSONL");
        let collapsed_path = out_dir.join(format!("{key}.collapsed.txt"));
        fs::write(&collapsed_path, prof.collapsed()).expect("write collapsed stacks");
        let json_path = out_dir.join(format!("{key}.report.json"));
        let mut value = unified.to_json();
        // Record how the run was executed alongside what it measured.
        if let Json::Object(fields) = &mut value {
            fields.push(("threads".to_string(), Json::UInt(threads as u64)));
        }
        let mut json = value.render_pretty();
        json.push('\n');
        fs::write(&json_path, json).expect("write report JSON");

        println!("{}", unified.render_table());
        let pattern: Vec<String> = unified
            .interactions
            .iter()
            .map(|(p, n)| format!("{p} ×{n}"))
            .collect();
        println!("§6 interaction pattern: {}", pattern.join(", "));
        println!("{}", prof.render_table());
        println!("trace:   {}", trace_path.display());
        println!("report:  {}", json_path.display());
        println!("profile: {}", collapsed_path.display());
        println!();
    }
}
