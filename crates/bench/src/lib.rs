//! Benchmark harness (see benches/ and src/bin/).
