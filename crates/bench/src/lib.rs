#![forbid(unsafe_code)]

//! Benchmark harness (see benches/ and src/bin/).
