#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `secmed-client` — one mediation session over a real socket.
//!
//! The thinnest possible shim over the redesigned engine API: dial a
//! `secmed-server`, run one scenario through [`Engine::run_on`] with a
//! [`SocketFabric`], and disconnect.  Everything protocol-shaped lives
//! in `secmed-core`; this crate only decides *which* fabric carries the
//! bytes.  By construction (the server is a validating relay and the
//! recorder logs the echoed copies), the report returned here is
//! byte-identical to an in-process [`Engine::run`] of the same scenario
//! — including the Table 1 views and the traffic metrics.

use std::net::SocketAddr;

use secmed_core::{
    Engine, MedError, ReconnectPolicy, RunOptions, RunReport, Scenario, SocketFabric,
};

/// Runs `scenario` against the server at `addr` as session `session`.
///
/// Connects (performing the `Hello`/`HelloAck` handshake with the
/// delivery policy from `opts`), drives the selected protocol over the
/// socket, says `Goodbye`, and returns the full [`RunReport`].  Session
/// ids are chosen by the caller; the server refuses duplicates among its
/// live connections, so concurrent clients must pick distinct ids.
pub fn run_session(
    addr: SocketAddr,
    session: u64,
    scenario: &mut Scenario,
    opts: &RunOptions,
) -> Result<RunReport, MedError> {
    run_session_with(addr, session, scenario, opts, ReconnectPolicy::none())
}

/// Like [`run_session`], but with a client-side [`ReconnectPolicy`]: a
/// connection that dies mid-session (or a `ServerBusy` refusal at
/// connect time) is retried with deterministic capped-exponential
/// backoff, and the session resumes where it left off.  Because resume
/// replays exactly the echoes the client missed, the returned
/// [`RunReport`] is byte-identical to an uninterrupted run.
pub fn run_session_with(
    addr: SocketAddr,
    session: u64,
    scenario: &mut Scenario,
    opts: &RunOptions,
    reconnect: ReconnectPolicy,
) -> Result<RunReport, MedError> {
    let fabric = SocketFabric::connect_with(addr, session, opts.delivery, reconnect)?;
    Engine::run_on(fabric, scenario, opts)
}
