#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `secmed-client` — one mediation session over a real socket.
//!
//! The thinnest possible shim over the redesigned engine API: dial a
//! `secmed-server`, run one scenario through [`Engine::run_on`] with a
//! [`SocketFabric`], and disconnect.  Everything protocol-shaped lives
//! in `secmed-core`; this crate only decides *which* fabric carries the
//! bytes.  By construction (the server is a validating relay and the
//! recorder logs the echoed copies), the report returned here is
//! byte-identical to an in-process [`Engine::run`] of the same scenario
//! — including the Table 1 views and the traffic metrics.

use std::net::SocketAddr;

use secmed_core::{Engine, MedError, RunOptions, RunReport, Scenario, SocketFabric};

/// Runs `scenario` against the server at `addr` as session `session`.
///
/// Connects (performing the `Hello`/`HelloAck` handshake with the
/// delivery policy from `opts`), drives the selected protocol over the
/// socket, says `Goodbye`, and returns the full [`RunReport`].  Session
/// ids are chosen by the caller; the server refuses duplicates among its
/// live connections, so concurrent clients must pick distinct ids.
pub fn run_session(
    addr: SocketAddr,
    session: u64,
    scenario: &mut Scenario,
    opts: &RunOptions,
) -> Result<RunReport, MedError> {
    let fabric = SocketFabric::connect(addr, session, opts.delivery)?;
    Engine::run_on(fabric, scenario, opts)
}
