//! The `secmed-client` binary: dial a `secmed-server`, run one protocol
//! session over loopback TCP, print what came back, disconnect.
//!
//! ```text
//! secmed-client [ADDR] [PROTOCOL] [SESSION]
//!   ADDR      server address       (default 127.0.0.1:7788)
//!   PROTOCOL  das|commutative|pm   (default commutative)
//!   SESSION   numeric session id   (default 1)
//! ```

use std::net::SocketAddr;

use secmed_core::workload::WorkloadSpec;
use secmed_core::{CommutativeConfig, DasConfig, PmConfig, RunOptions, ScenarioBuilder};

fn usage(msg: &str) -> ! {
    eprintln!("secmed-client: {msg}");
    eprintln!("usage: secmed-client [ADDR] [PROTOCOL: das|commutative|pm] [SESSION]");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr: SocketAddr = args
        .next()
        .unwrap_or_else(|| "127.0.0.1:7788".to_string())
        .parse()
        .unwrap_or_else(|e| usage(&format!("bad address: {e}")));
    let protocol = args.next().unwrap_or_else(|| "commutative".to_string());
    let opts = match protocol.as_str() {
        "das" => RunOptions::das(DasConfig::default()),
        "commutative" => RunOptions::commutative(CommutativeConfig::default()),
        "pm" => RunOptions::pm(PmConfig::default()),
        other => usage(&format!("unknown protocol `{other}`")),
    };
    let session: u64 = args
        .next()
        .unwrap_or_else(|| "1".to_string())
        .parse()
        .unwrap_or_else(|e| usage(&format!("bad session id: {e}")));

    let workload = WorkloadSpec {
        left_rows: 12,
        right_rows: 12,
        left_domain: 8,
        right_domain: 8,
        shared_values: 4,
        payload_attrs: 1,
        seed: "secmed-client".to_string(),
        ..Default::default()
    }
    .generate();
    let mut scenario = ScenarioBuilder::new(&workload)
        .seed("secmed-client")
        .paillier_bits(512)
        .build();

    println!("dialing {addr} as session {session} ({protocol})");
    let report = match secmed_client::run_session(addr, session, &mut scenario, &opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("secmed-client: session failed: {e}");
            std::process::exit(1);
        }
    };
    println!("outcome: {:?}", report.outcome);
    println!(
        "result: {} tuples; transport: {} frames, {} bytes",
        report.result.len(),
        report.transport.message_count(),
        report.transport.total_bytes(),
    );
    println!("mediator learned: {}", report.mediator_view.describe());
    println!("client received:  {}", report.client_view.describe());
}
