//! Soak smoke: eight concurrent client sessions against one server
//! process — the small, always-on version of the `soak` bench bin, run
//! by name from `scripts/ci.sh`.
//!
//! Each session picks a distinct id and a distinct workload seed, runs a
//! full commutative-protocol scenario over its own socket, and must come
//! back `Clean` with a non-empty transport log.  Afterwards the server's
//! ledger shows exactly eight completed sessions and an empty session
//! table.

use secmed_core::workload::WorkloadSpec;
use secmed_core::{CommutativeConfig, RunOptions, ScenarioBuilder, TraceSink};
use secmed_server::Server;

const SESSIONS: u64 = 8;

#[test]
fn eight_concurrent_sessions_complete_cleanly() {
    let server = Server::bind().expect("bind loopback");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let workers: Vec<_> = (0..SESSIONS)
            .map(|i| {
                s.spawn(move || {
                    let w = WorkloadSpec {
                        left_rows: 4,
                        right_rows: 4,
                        left_domain: 3,
                        right_domain: 3,
                        shared_values: 2,
                        payload_attrs: 1,
                        seed: format!("soak-smoke/{i}"),
                        ..Default::default()
                    }
                    .generate();
                    let mut sc = ScenarioBuilder::new(&w).seed("soak-smoke").build();
                    let opts = RunOptions::commutative(CommutativeConfig::default())
                        .trace(TraceSink::Discard);
                    let report = secmed_client::run_session(addr, 1000 + i, &mut sc, &opts)
                        .unwrap_or_else(|e| panic!("session {i} failed: {e}"));
                    assert!(
                        report.outcome.is_clean(),
                        "session {i}: {:?}",
                        report.outcome
                    );
                    assert!(report.transport.message_count() > 0);
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("session thread");
        }
        handle.shutdown();
    });
    let summaries = server.summaries();
    assert_eq!(summaries.len() as u64, SESSIONS);
    assert!(summaries.iter().all(|s| s.completed()), "{summaries:?}");
    assert_eq!(server.active_sessions(), 0, "session table leaked");
}
