//! The leakage audit: empirical regeneration of the paper's Table 1.
//!
//! Table 1 is *empirical* here: the protocol drivers move every message
//! as an encoded frame, and [`derive_views`] recomputes what the mediator
//! and the client learned by folding over the decoded transport log — the
//! same bytes an eavesdropping mediator would fold over.  The only cell a
//! driver reports directly is the client's useful-payload count (PM),
//! which needs the client's secret key.  The `table1_leakage` report
//! binary prints these observations side by side with the paper's claims,
//! and the integration tests assert each cell.

use std::collections::BTreeSet;
use std::fmt;

use crate::transport::{DasTable, Envelope, Frame, PartyId, PolyCoeffs};

/// What the mediator can derive from its view of one protocol run.
///
/// Fields are `Option` because each protocol leaks a different subset —
/// `None` means "this quantity is not observable by the mediator in this
/// protocol", which is itself a Table 1 cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MediatorView {
    /// DAS: number of rows in each encrypted partial result (`|R_i|`).
    pub left_result_rows: Option<usize>,
    /// DAS: rows of the right encrypted partial result.
    pub right_result_rows: Option<usize>,
    /// DAS: size of the server-query result (`|R_C|`, an upper bound on
    /// the global result size).
    pub server_result_size: Option<usize>,
    /// Commutative/PM: `|domactive(R1.A_join)|`.
    pub left_domain_size: Option<usize>,
    /// Commutative/PM: `|domactive(R2.A_join)|`.
    pub right_domain_size: Option<usize>,
    /// Commutative: `|domactive(R1) ∩ domactive(R2)|` — a lower bound on
    /// the global result size.
    pub intersection_size: Option<usize>,
    /// DAS mediator setting only: the mediator held the *plaintext* index
    /// tables and can approximate every tuple's join value — the leakage
    /// that makes the client setting the right default.
    pub plaintext_index_tables: bool,
    /// Total ciphertext bytes that crossed the mediator.
    pub bytes_observed: usize,
}

/// What the client ends up holding beyond the exact global result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientView {
    /// DAS: the client decrypts a *superset* of the global result; this is
    /// the number of candidate tuple pairs received.
    pub superset_pairs: Option<usize>,
    /// DAS: the client sees both (decrypted) index tables.
    pub index_tables_seen: bool,
    /// PM: number of ciphertexts received (`n + m` — one per active-domain
    /// value of either source); only the intersection decrypts usefully.
    pub ciphertexts_received: Option<usize>,
    /// Number of payloads that actually decrypted to protocol data.
    pub useful_payloads: Option<usize>,
    /// Bytes received over the fabric.
    pub bytes_received: usize,
}

/// A row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Protocol name as in the paper.
    pub protocol: &'static str,
    /// What the client gained beyond the exact result (rendered).
    pub client_extra: String,
    /// What the mediator gained (rendered).
    pub mediator_extra: String,
}

impl MediatorView {
    /// Renders the mediator column of Table 1 from actual observations.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let (Some(l), Some(r)) = (self.left_result_rows, self.right_result_rows) {
            parts.push(format!("|R1|={l}, |R2|={r}"));
        }
        if let Some(s) = self.server_result_size {
            parts.push(format!("|RC|={s}"));
        }
        if let (Some(l), Some(r)) = (self.left_domain_size, self.right_domain_size) {
            parts.push(format!("|dom1|={l}, |dom2|={r}"));
        }
        if let Some(i) = self.intersection_size {
            parts.push(format!("|dom1 ∩ dom2|={i}"));
        }
        if self.plaintext_index_tables {
            parts.push("PLAINTEXT index tables (partition ranges!)".to_string());
        }
        if parts.is_empty() {
            parts.push("nothing beyond ciphertext volume".to_string());
        }
        parts.join("; ")
    }
}

impl ClientView {
    /// Renders the client column of Table 1 from actual observations.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(s) = self.superset_pairs {
            parts.push(format!("superset of global result ({s} candidate pairs)"));
        }
        if self.index_tables_seen {
            parts.push("both index tables".to_string());
        }
        if let Some(c) = self.ciphertexts_received {
            parts.push(format!("{c} ciphertexts (n+m)"));
        }
        if let Some(u) = self.useful_payloads {
            parts.push(format!("{u} decryptable payloads"));
        }
        if parts.is_empty() {
            parts.push("only the exact global result".to_string());
        }
        parts.join("; ")
    }
}

/// The frames the receivers actually accepted, decoded in log order.
///
/// Under a fault plan the raw log also holds copies the receiver never
/// used: dropped/corrupted/truncated attempts, unavailable-party sends,
/// and duplicate extras.  Those copies *do* count towards byte accounting
/// (they crossed the fabric), but folding them into [`derive_views`] would
/// double-count protocol messages — the positional conventions below
/// assume one frame per logical message.  This filter keeps exactly the
/// accepted copy of each delivery (a delayed copy was still received) and
/// skips anything whose decode fails, which for accepted copies is
/// impossible by construction.
pub fn effective_frames(log: &[Envelope]) -> Vec<(PartyId, PartyId, Frame)> {
    log.iter()
        .filter(|e| e.accepted())
        .filter_map(|e| Some((e.from.clone(), e.to.clone(), e.frame().ok()?)))
        .collect()
}

/// The observable degree of a transported polynomial: what the mediator
/// reads off the coefficient count.  For the flat encoding this is exactly
/// `|domactive|`; for the bucketed encoding it is the padded per-bucket
/// total (the padding is the point — see paper Section 5.2).
fn poly_degree(poly: &PolyCoeffs) -> usize {
    match poly {
        PolyCoeffs::Flat(coeffs) => coeffs.len().saturating_sub(1),
        PolyCoeffs::Bucketed(buckets) => buckets.iter().map(|b| b.len().saturating_sub(1)).sum(),
    }
}

/// Recomputes both Table 1 views from the decoded transport log.
///
/// This folds over exactly the frames that crossed the fabric, in order —
/// no driver-side bookkeeping is involved, so every `Some` below is
/// genuinely derivable from ciphertext traffic.  Positional conventions
/// follow the listings: the first DAS relation / commutative set /
/// polynomial on the wire is the left source's (L2.3, L3.3, L4.2).
pub fn derive_views(log: &[(PartyId, PartyId, Frame)]) -> (MediatorView, ClientView) {
    let mut med = MediatorView::default();
    let mut client = ClientView::default();
    let mut das_relations = 0usize;
    let mut commutative_sets = 0usize;
    let mut polynomials = 0usize;
    let mut doubled_sets: Vec<Vec<Vec<u8>>> = Vec::new();
    for (_, to, frame) in log {
        match frame {
            Frame::DasRelation { rows, table } => {
                das_relations += 1;
                match das_relations {
                    1 => med.left_result_rows = Some(rows.len()),
                    2 => med.right_result_rows = Some(rows.len()),
                    _ => {}
                }
                if matches!(table, DasTable::Plain(_)) {
                    med.plaintext_index_tables = true;
                }
            }
            Frame::DasIndexTables { .. } if *to == PartyId::Client => {
                client.index_tables_seen = true;
            }
            Frame::DasCandidates { pairs } => {
                med.server_result_size = Some(pairs.len());
                if *to == PartyId::Client {
                    client.superset_pairs = Some(pairs.len());
                }
            }
            Frame::CommutativeSet { items } if *to == PartyId::Mediator => {
                commutative_sets += 1;
                match commutative_sets {
                    1 => med.left_domain_size = Some(items.len()),
                    2 => med.right_domain_size = Some(items.len()),
                    _ => {}
                }
            }
            Frame::CommutativeDoubled { items } if *to == PartyId::Mediator => {
                doubled_sets.push(items.iter().map(|(d, _)| d.to_bytes_be()).collect());
            }
            Frame::PmPolynomial { poly } if *to == PartyId::Mediator => {
                polynomials += 1;
                match polynomials {
                    1 => med.left_domain_size = Some(poly_degree(poly)),
                    2 => med.right_domain_size = Some(poly_degree(poly)),
                    _ => {}
                }
            }
            Frame::PmDelivery { left, right } if *to == PartyId::Client => {
                client.ciphertexts_received = Some(left.evals.len() + right.evals.len());
            }
            _ => {}
        }
    }
    // Commutative step 7: equal double encryptions across the two returned
    // sets are exactly the active-domain intersection.
    if let [first, second] = &doubled_sets[..] {
        let lookup: BTreeSet<&Vec<u8>> = first.iter().collect();
        med.intersection_size = Some(second.iter().filter(|d| lookup.contains(d)).count());
    }
    (med, client)
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} | client: {:<55} | mediator: {}",
            self.protocol, self.client_extra, self.mediator_extra
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das_mediator_view_renders_sizes() {
        let v = MediatorView {
            left_result_rows: Some(10),
            right_result_rows: Some(20),
            server_result_size: Some(7),
            ..Default::default()
        };
        let d = v.describe();
        assert!(d.contains("|R1|=10"));
        assert!(d.contains("|RC|=7"));
    }

    #[test]
    fn commutative_mediator_view_renders_domains() {
        let v = MediatorView {
            left_domain_size: Some(5),
            right_domain_size: Some(6),
            intersection_size: Some(3),
            ..Default::default()
        };
        let d = v.describe();
        assert!(d.contains("|dom1|=5"));
        assert!(d.contains("∩"));
    }

    #[test]
    fn empty_views_have_default_text() {
        assert!(MediatorView::default()
            .describe()
            .contains("nothing beyond"));
        assert!(ClientView::default().describe().contains("only the exact"));
    }

    #[test]
    fn client_view_renders_superset() {
        let v = ClientView {
            superset_pairs: Some(12),
            index_tables_seen: true,
            ..Default::default()
        };
        let d = v.describe();
        assert!(d.contains("superset"));
        assert!(d.contains("index tables"));
    }
}
