//! The leakage audit: empirical regeneration of the paper's Table 1.
//!
//! Instead of asserting Table 1's cells, the protocol drivers *record*
//! what the mediator and the client can derive from their views; the
//! `table1_leakage` report binary prints these observations side by side
//! with the paper's claims, and the integration tests assert each cell.

use std::fmt;

/// What the mediator can derive from its view of one protocol run.
///
/// Fields are `Option` because each protocol leaks a different subset —
/// `None` means "this quantity is not observable by the mediator in this
/// protocol", which is itself a Table 1 cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MediatorView {
    /// DAS: number of rows in each encrypted partial result (`|R_i|`).
    pub left_result_rows: Option<usize>,
    /// DAS: rows of the right encrypted partial result.
    pub right_result_rows: Option<usize>,
    /// DAS: size of the server-query result (`|R_C|`, an upper bound on
    /// the global result size).
    pub server_result_size: Option<usize>,
    /// Commutative/PM: `|domactive(R1.A_join)|`.
    pub left_domain_size: Option<usize>,
    /// Commutative/PM: `|domactive(R2.A_join)|`.
    pub right_domain_size: Option<usize>,
    /// Commutative: `|domactive(R1) ∩ domactive(R2)|` — a lower bound on
    /// the global result size.
    pub intersection_size: Option<usize>,
    /// DAS mediator setting only: the mediator held the *plaintext* index
    /// tables and can approximate every tuple's join value — the leakage
    /// that makes the client setting the right default.
    pub plaintext_index_tables: bool,
    /// Total ciphertext bytes that crossed the mediator.
    pub bytes_observed: usize,
}

/// What the client ends up holding beyond the exact global result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientView {
    /// DAS: the client decrypts a *superset* of the global result; this is
    /// the number of candidate tuple pairs received.
    pub superset_pairs: Option<usize>,
    /// DAS: the client sees both (decrypted) index tables.
    pub index_tables_seen: bool,
    /// PM: number of ciphertexts received (`n + m` — one per active-domain
    /// value of either source); only the intersection decrypts usefully.
    pub ciphertexts_received: Option<usize>,
    /// Number of payloads that actually decrypted to protocol data.
    pub useful_payloads: Option<usize>,
    /// Bytes received over the fabric.
    pub bytes_received: usize,
}

/// A row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Protocol name as in the paper.
    pub protocol: &'static str,
    /// What the client gained beyond the exact result (rendered).
    pub client_extra: String,
    /// What the mediator gained (rendered).
    pub mediator_extra: String,
}

impl MediatorView {
    /// Renders the mediator column of Table 1 from actual observations.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let (Some(l), Some(r)) = (self.left_result_rows, self.right_result_rows) {
            parts.push(format!("|R1|={l}, |R2|={r}"));
        }
        if let Some(s) = self.server_result_size {
            parts.push(format!("|RC|={s}"));
        }
        if let (Some(l), Some(r)) = (self.left_domain_size, self.right_domain_size) {
            parts.push(format!("|dom1|={l}, |dom2|={r}"));
        }
        if let Some(i) = self.intersection_size {
            parts.push(format!("|dom1 ∩ dom2|={i}"));
        }
        if self.plaintext_index_tables {
            parts.push("PLAINTEXT index tables (partition ranges!)".to_string());
        }
        if parts.is_empty() {
            parts.push("nothing beyond ciphertext volume".to_string());
        }
        parts.join("; ")
    }
}

impl ClientView {
    /// Renders the client column of Table 1 from actual observations.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(s) = self.superset_pairs {
            parts.push(format!("superset of global result ({s} candidate pairs)"));
        }
        if self.index_tables_seen {
            parts.push("both index tables".to_string());
        }
        if let Some(c) = self.ciphertexts_received {
            parts.push(format!("{c} ciphertexts (n+m)"));
        }
        if let Some(u) = self.useful_payloads {
            parts.push(format!("{u} decryptable payloads"));
        }
        if parts.is_empty() {
            parts.push("only the exact global result".to_string());
        }
        parts.join("; ")
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} | client: {:<55} | mediator: {}",
            self.protocol, self.client_extra, self.mediator_extra
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das_mediator_view_renders_sizes() {
        let v = MediatorView {
            left_result_rows: Some(10),
            right_result_rows: Some(20),
            server_result_size: Some(7),
            ..Default::default()
        };
        let d = v.describe();
        assert!(d.contains("|R1|=10"));
        assert!(d.contains("|RC|=7"));
    }

    #[test]
    fn commutative_mediator_view_renders_domains() {
        let v = MediatorView {
            left_domain_size: Some(5),
            right_domain_size: Some(6),
            intersection_size: Some(3),
            ..Default::default()
        };
        let d = v.describe();
        assert!(d.contains("|dom1|=5"));
        assert!(d.contains("∩"));
    }

    #[test]
    fn empty_views_have_default_text() {
        assert!(MediatorView::default()
            .describe()
            .contains("nothing beyond"));
        assert!(ClientView::default().describe().contains("only the exact"));
    }

    #[test]
    fn client_view_renders_superset() {
        let v = ClientView {
            superset_pairs: Some(12),
            index_tables_seen: true,
            ..Default::default()
        };
        let d = v.describe();
        assert!(d.contains("superset"));
        assert!(d.contains("index tables"));
    }
}
