//! Analytic cost model — the paper's §6 computational analysis as code.
//!
//! For each protocol, [`predict`] computes the exact number of public-key
//! operations a run must perform as a function of the workload shape
//! (`|R_i|`, `|domactive_i|`, intersection size, DAS parameters).  The
//! test suite runs the protocols and checks the *measured* operation
//! counters against these closed forms — if an implementation change adds
//! a stray encryption somewhere, the model test catches it, and the model
//! doubles as documentation of where each protocol spends its budget.

use secmed_crypto::metrics::Op;

use crate::protocol::{CommutativeConfig, DasConfig, DasSetting, PmConfig, PmEval, ProtocolKind};

/// The shape parameters the predictions are functions of.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadShape {
    /// `|R_1|` after access-control filtering.
    pub left_rows: usize,
    /// `|R_2|` after access-control filtering.
    pub right_rows: usize,
    /// `|domactive(R_1.A_join)|`.
    pub left_domain: usize,
    /// `|domactive(R_2.A_join)|`.
    pub right_domain: usize,
    /// `|domactive(R_1) ∩ domactive(R_2)|`.
    pub intersection: usize,
    /// DAS only: `|R_C|`, the server-query result size.
    pub server_result: usize,
}

/// Predicted counts of the protocol-level public-key operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictedOps {
    /// Hybrid encryptions (`encrypt(...)` calls).
    pub hybrid_encrypt: u64,
    /// Hybrid decryptions at the client.
    pub hybrid_decrypt: u64,
    /// Commutative (SRA) encryptions.
    pub commutative_encrypt: u64,
    /// Random-oracle hashes into the group.
    pub hash_to_group: u64,
    /// Paillier encryptions.
    pub paillier_encrypt: u64,
    /// Paillier decryptions.
    pub paillier_decrypt: u64,
    /// Homomorphic additions.
    pub paillier_add: u64,
    /// Homomorphic scalar multiplications.
    pub paillier_scale: u64,
    /// Fresh polynomial-evaluation masks.
    pub random_mask: u64,
}

/// Predicts the public-key operation counts for one protocol run.
///
/// Only flat-polynomial PM modes are modeled (`Naive`/`Horner`; the
/// bucketed mode's padded degrees depend on the hash distribution).
pub fn predict(kind: &ProtocolKind, shape: &WorkloadShape) -> PredictedOps {
    let d1 = shape.left_domain as u64;
    let d2 = shape.right_domain as u64;
    match kind {
        ProtocolKind::Das(DasConfig { setting, .. }) => {
            let table_encryptions = 2; // each source encrypts its index table
            let table_decryptions = match setting {
                DasSetting::ClientSetting => 2,
                DasSetting::MediatorSetting => 0, // tables travel in plaintext
            };
            PredictedOps {
                // One etuple per row, plus the index tables.
                hybrid_encrypt: (shape.left_rows + shape.right_rows) as u64 + table_encryptions,
                // The client opens both sides of every candidate pair,
                // plus the index tables (client setting only).
                hybrid_decrypt: 2 * shape.server_result as u64 + table_decryptions,
                ..Default::default()
            }
        }
        ProtocolKind::Commutative(CommutativeConfig { .. }) => PredictedOps {
            // One tuple-set encryption per active value...
            hybrid_encrypt: d1 + d2,
            // ...but the client only opens the matched pairs.
            hybrid_decrypt: 2 * shape.intersection as u64,
            // Each hash value is encrypted once at home and once by the
            // opposite source.
            commutative_encrypt: 2 * (d1 + d2),
            hash_to_group: d1 + d2,
            ..Default::default()
        },
        ProtocolKind::Pm(PmConfig { eval, payload }) => {
            let (adds, scales) = match eval {
                // Horner: per evaluation of a degree-d polynomial, d adds
                // and d scales, plus one mask scale and one payload add.
                PmEval::Horner | PmEval::Bucketed(_) => {
                    (d1 * (d2 + 1) + d2 * (d1 + 1), d1 * (d2 + 1) + d2 * (d1 + 1))
                }
                // Naive: same asymptotics, same op count at the counter
                // granularity (d scale-and-adds per evaluation) — the
                // difference is the *size* of the exponents, not their
                // number.
                PmEval::Naive => (d1 * (d2 + 1) + d2 * (d1 + 1), d1 * (d2 + 1) + d2 * (d1 + 1)),
            };
            let session_encryptions = match payload {
                crate::protocol::PmPayloadMode::SessionKeyTable => 0, // session keys are symmetric-only
                crate::protocol::PmPayloadMode::Inline => 0,
            };
            PredictedOps {
                // d+1 coefficients per polynomial.
                paillier_encrypt: (d1 + 1) + (d2 + 1),
                // The client decrypts every received evaluation.
                paillier_decrypt: d1 + d2,
                paillier_add: adds,
                paillier_scale: scales,
                random_mask: d1 + d2,
                hybrid_encrypt: session_encryptions,
                ..Default::default()
            }
        }
    }
}

/// Extracts the comparable counters from a measured primitives delta.
pub fn observed(primitives: &[(Op, u64)]) -> PredictedOps {
    let get = |op: Op| {
        primitives
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    PredictedOps {
        hybrid_encrypt: get(Op::HybridEncrypt),
        hybrid_decrypt: get(Op::HybridDecrypt),
        commutative_encrypt: get(Op::CommutativeEncrypt),
        hash_to_group: get(Op::HashToGroup),
        paillier_encrypt: get(Op::PaillierEncrypt),
        paillier_decrypt: get(Op::PaillierDecrypt),
        paillier_add: get(Op::PaillierAdd),
        paillier_scale: get(Op::PaillierScale),
        random_mask: get(Op::RandomMask),
    }
}

/// Derives the shape parameters of a scenario's workload (ground truth for
/// the model tests).
pub fn shape_of(
    left: &relalg::Relation,
    right: &relalg::Relation,
    join_attr: &str,
    server_result: usize,
) -> Result<WorkloadShape, crate::MedError> {
    let d1 = left.active_domain(join_attr)?;
    let d2 = right.active_domain(join_attr)?;
    Ok(WorkloadShape {
        left_rows: left.len(),
        right_rows: right.len(),
        left_domain: d1.len(),
        right_domain: d2.len(),
        intersection: d1.intersection(&d2).count(),
        server_result,
    })
}
