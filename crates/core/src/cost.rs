//! Analytic cost model — the paper's §6 computational analysis as code.
//!
//! For each protocol, [`predict`] computes the exact number of public-key
//! operations a run must perform as a function of the workload shape
//! (`|R_i|`, `|domactive_i|`, intersection size, DAS parameters).  The
//! test suite runs the protocols and checks the *measured* operation
//! counters against these closed forms — if an implementation change adds
//! a stray encryption somewhere, the model test catches it, and the model
//! doubles as documentation of where each protocol spends its budget.

use secmed_crypto::metrics::Op;

use crate::protocol::{CommutativeConfig, DasConfig, DasSetting, PmConfig, PmEval, ProtocolKind};

/// The shape parameters the predictions are functions of.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadShape {
    /// `|R_1|` after access-control filtering.
    pub left_rows: usize,
    /// `|R_2|` after access-control filtering.
    pub right_rows: usize,
    /// `|domactive(R_1.A_join)|`.
    pub left_domain: usize,
    /// `|domactive(R_2.A_join)|`.
    pub right_domain: usize,
    /// `|domactive(R_1) ∩ domactive(R_2)|`.
    pub intersection: usize,
    /// DAS only: `|R_C|`, the server-query result size.
    pub server_result: usize,
}

/// Predicted counts of the protocol-level public-key operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictedOps {
    /// Hybrid encryptions (`encrypt(...)` calls).
    pub hybrid_encrypt: u64,
    /// Hybrid decryptions at the client.
    pub hybrid_decrypt: u64,
    /// Commutative (SRA) encryptions.
    pub commutative_encrypt: u64,
    /// Random-oracle hashes into the group.
    pub hash_to_group: u64,
    /// Paillier encryptions.
    pub paillier_encrypt: u64,
    /// Paillier decryptions.
    pub paillier_decrypt: u64,
    /// Homomorphic additions.
    pub paillier_add: u64,
    /// Homomorphic scalar multiplications.
    pub paillier_scale: u64,
    /// Fresh polynomial-evaluation masks.
    pub random_mask: u64,
}

impl PredictedOps {
    /// Total operation count across all counters.
    pub fn total(&self) -> u64 {
        self.hybrid_encrypt
            + self.hybrid_decrypt
            + self.commutative_encrypt
            + self.hash_to_group
            + self.paillier_encrypt
            + self.paillier_decrypt
            + self.paillier_add
            + self.paillier_scale
            + self.random_mask
    }

    /// Deterministic integer cost score for planner comparisons.
    ///
    /// Weights approximate relative public-key expense: modular-
    /// exponentiation-class operations (hybrid/commutative/Paillier
    /// encrypt/decrypt, hash-to-group, masks, homomorphic scaling) are
    /// priced at 16 units; a homomorphic addition (one modular
    /// multiplication) at 1.  The absolute scale is arbitrary — only the
    /// ordering matters, and it is stable across platforms because the
    /// score is pure integer arithmetic over predicted counts.
    pub fn weighted_cost(&self) -> u64 {
        const EXP: u64 = 16; // modexp-class operation
        const MUL: u64 = 1; // single modular multiplication
        EXP * (self.hybrid_encrypt
            + self.hybrid_decrypt
            + self.commutative_encrypt
            + self.hash_to_group
            + self.paillier_encrypt
            + self.paillier_decrypt
            + self.paillier_scale
            + self.random_mask)
            + MUL * self.paillier_add
    }
}

/// Relative tolerance (parts per million) for predicted-vs-observed
/// comparisons.  The closed forms are exact for the modeled
/// configurations, so the tolerance is zero: any drift between model and
/// census is a bug in one of them.
pub const DIVERGENCE_TOLERANCE_PPM: u64 = 0;

/// The per-counter comparison of a prediction against a measured census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Largest relative error across counters, in parts per million
    /// (counters where both sides are zero contribute nothing; a counter
    /// where exactly one side is zero contributes `1_000_000`).
    pub max_ppm: u64,
    /// Counter names where predicted != observed.
    pub mismatched: Vec<&'static str>,
}

impl Divergence {
    /// True when every counter agrees within
    /// [`DIVERGENCE_TOLERANCE_PPM`].
    pub fn within_tolerance(&self) -> bool {
        self.max_ppm == DIVERGENCE_TOLERANCE_PPM
    }
}

/// Compares a prediction against an observed census counter-by-counter.
pub fn divergence(predicted: &PredictedOps, observed: &PredictedOps) -> Divergence {
    let pairs: [(&'static str, u64, u64); 9] = [
        (
            "hybrid_encrypt",
            predicted.hybrid_encrypt,
            observed.hybrid_encrypt,
        ),
        (
            "hybrid_decrypt",
            predicted.hybrid_decrypt,
            observed.hybrid_decrypt,
        ),
        (
            "commutative_encrypt",
            predicted.commutative_encrypt,
            observed.commutative_encrypt,
        ),
        (
            "hash_to_group",
            predicted.hash_to_group,
            observed.hash_to_group,
        ),
        (
            "paillier_encrypt",
            predicted.paillier_encrypt,
            observed.paillier_encrypt,
        ),
        (
            "paillier_decrypt",
            predicted.paillier_decrypt,
            observed.paillier_decrypt,
        ),
        (
            "paillier_add",
            predicted.paillier_add,
            observed.paillier_add,
        ),
        (
            "paillier_scale",
            predicted.paillier_scale,
            observed.paillier_scale,
        ),
        ("random_mask", predicted.random_mask, observed.random_mask),
    ];
    let mut max_ppm = 0u64;
    let mut mismatched = Vec::new();
    for (name, p, o) in pairs {
        if p == o {
            continue;
        }
        mismatched.push(name);
        let denom = p.max(o);
        let diff = p.abs_diff(o);
        max_ppm = max_ppm.max(diff.saturating_mul(1_000_000) / denom);
    }
    Divergence {
        max_ppm,
        mismatched,
    }
}

/// Predicts the public-key operation counts for one protocol run.
///
/// Only flat-polynomial PM modes are modeled (`Naive`/`Horner`; the
/// bucketed mode's padded degrees depend on the hash distribution).
pub fn predict(kind: &ProtocolKind, shape: &WorkloadShape) -> PredictedOps {
    let d1 = shape.left_domain as u64;
    let d2 = shape.right_domain as u64;
    match kind {
        ProtocolKind::Das(DasConfig { setting, .. }) => {
            let table_encryptions = 2; // each source encrypts its index table
            let table_decryptions = match setting {
                DasSetting::ClientSetting => 2,
                DasSetting::MediatorSetting => 0, // tables travel in plaintext
            };
            PredictedOps {
                // One etuple per row, plus the index tables.
                hybrid_encrypt: (shape.left_rows + shape.right_rows) as u64 + table_encryptions,
                // The client opens both sides of every candidate pair,
                // plus the index tables (client setting only).
                hybrid_decrypt: 2 * shape.server_result as u64 + table_decryptions,
                ..Default::default()
            }
        }
        ProtocolKind::Commutative(CommutativeConfig { .. }) => PredictedOps {
            // One tuple-set encryption per active value...
            hybrid_encrypt: d1 + d2,
            // ...but the client only opens the matched pairs.
            hybrid_decrypt: 2 * shape.intersection as u64,
            // Each hash value is encrypted once at home and once by the
            // opposite source.
            commutative_encrypt: 2 * (d1 + d2),
            hash_to_group: d1 + d2,
            ..Default::default()
        },
        ProtocolKind::Pm(PmConfig { eval, payload }) => {
            let (adds, scales) = match eval {
                // Horner: per evaluation of a degree-d polynomial, d adds
                // and d scales, plus one mask scale and one payload add.
                PmEval::Horner | PmEval::Bucketed(_) => {
                    (d1 * (d2 + 1) + d2 * (d1 + 1), d1 * (d2 + 1) + d2 * (d1 + 1))
                }
                // Naive: same asymptotics, same op count at the counter
                // granularity (d scale-and-adds per evaluation) — the
                // difference is the *size* of the exponents, not their
                // number.
                PmEval::Naive => (d1 * (d2 + 1) + d2 * (d1 + 1), d1 * (d2 + 1) + d2 * (d1 + 1)),
            };
            let session_encryptions = match payload {
                crate::protocol::PmPayloadMode::SessionKeyTable => 0, // session keys are symmetric-only
                crate::protocol::PmPayloadMode::Inline => 0,
            };
            PredictedOps {
                // d+1 coefficients per polynomial.
                paillier_encrypt: (d1 + 1) + (d2 + 1),
                // The client decrypts every received evaluation.
                paillier_decrypt: d1 + d2,
                paillier_add: adds,
                paillier_scale: scales,
                random_mask: d1 + d2,
                hybrid_encrypt: session_encryptions,
                ..Default::default()
            }
        }
    }
}

/// Extracts the comparable counters from a measured primitives delta.
pub fn observed(primitives: &[(Op, u64)]) -> PredictedOps {
    let get = |op: Op| {
        primitives
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    PredictedOps {
        hybrid_encrypt: get(Op::HybridEncrypt),
        hybrid_decrypt: get(Op::HybridDecrypt),
        commutative_encrypt: get(Op::CommutativeEncrypt),
        hash_to_group: get(Op::HashToGroup),
        paillier_encrypt: get(Op::PaillierEncrypt),
        paillier_decrypt: get(Op::PaillierDecrypt),
        paillier_add: get(Op::PaillierAdd),
        paillier_scale: get(Op::PaillierScale),
        random_mask: get(Op::RandomMask),
    }
}

/// Derives the shape parameters of a scenario's workload (ground truth for
/// the model tests).
pub fn shape_of(
    left: &relalg::Relation,
    right: &relalg::Relation,
    join_attr: &str,
    server_result: usize,
) -> Result<WorkloadShape, crate::MedError> {
    let d1 = left.active_domain(join_attr)?;
    let d2 = right.active_domain(join_attr)?;
    Ok(WorkloadShape {
        left_rows: left.len(),
        right_rows: right.len(),
        left_domain: d1.len(),
        right_domain: d2.len(),
        intersection: d1.intersection(&d2).count(),
        server_result,
    })
}

/// [`shape_of`] generalized to composite join keys: the active domain is
/// the set of distinct join-key *tuples* (the multi-attribute extension of
/// Section 8).  For a single attribute this coincides with [`shape_of`].
pub fn shape_of_join(
    left: &relalg::Relation,
    right: &relalg::Relation,
    join_attrs: &[String],
    server_result: usize,
) -> Result<WorkloadShape, crate::MedError> {
    use std::collections::BTreeSet;
    let key_of = |rel: &relalg::Relation| -> Result<BTreeSet<Vec<relalg::Value>>, crate::MedError> {
        let idx: Vec<usize> = join_attrs
            .iter()
            .map(|a| rel.schema().index_of(a))
            .collect::<Result<_, _>>()?;
        Ok(rel
            .tuples()
            .iter()
            .map(|t| idx.iter().map(|&i| t.at(i).clone()).collect())
            .collect())
    };
    let d1 = key_of(left)?;
    let d2 = key_of(right)?;
    Ok(WorkloadShape {
        left_rows: left.len(),
        right_rows: right.len(),
        left_domain: d1.len(),
        right_domain: d2.len(),
        intersection: d1.intersection(&d2).count(),
        server_result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_is_zero_for_identical_counts() {
        let p = PredictedOps {
            hybrid_encrypt: 10,
            paillier_add: 100,
            ..Default::default()
        };
        let d = divergence(&p, &p.clone());
        assert_eq!(d.max_ppm, 0);
        assert!(d.mismatched.is_empty());
        assert!(d.within_tolerance());
    }

    #[test]
    fn divergence_names_mismatched_counters() {
        let p = PredictedOps {
            hybrid_encrypt: 100,
            ..Default::default()
        };
        let o = PredictedOps {
            hybrid_encrypt: 99,
            random_mask: 1,
            ..Default::default()
        };
        let d = divergence(&p, &o);
        assert_eq!(d.mismatched, vec!["hybrid_encrypt", "random_mask"]);
        // random_mask: 0 vs 1 → full-scale error.
        assert_eq!(d.max_ppm, 1_000_000);
        assert!(!d.within_tolerance());
    }

    #[test]
    fn weighted_cost_orders_adds_below_exponentiations() {
        let adds = PredictedOps {
            paillier_add: 15,
            ..Default::default()
        };
        let exps = PredictedOps {
            commutative_encrypt: 1,
            ..Default::default()
        };
        assert!(adds.weighted_cost() < exps.weighted_cost());
        assert_eq!(adds.total(), 15);
        assert_eq!(exps.total(), 1);
    }
}
