//! Credentials and the certification authority (paper Section 2).
//!
//! "Each credential links properties of the client to one of his public
//! encryption keys but in general does not contain details on his
//! identity."  A [`Credential`] therefore carries a property set, the
//! client's hybrid public key (and, for the PM protocol, optionally the
//! client's Paillier public key — Section 5.1: "this key is distributed
//! with the client's credentials"), and the CA's Schnorr signature over a
//! canonical encoding of all of it.

use mpint::rng::Rng;

use secmed_crypto::hybrid::HybridPublicKey;
use secmed_crypto::paillier::PaillierPublicKey;
use secmed_crypto::schnorr::{SchnorrKeyPair, SchnorrPublicKey, SchnorrSignature};
use secmed_crypto::SafePrimeGroup;

use crate::MedError;

/// A property asserted by a credential, e.g. `role = physician`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Property {
    /// Property name.
    pub name: String,
    /// Property value.
    pub value: String,
}

impl Property {
    /// Creates a property.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Property {
            name: name.into(),
            value: value.into(),
        }
    }
}

impl std::fmt::Display for Property {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// A CA-signed credential: properties bound to the client's public keys.
#[derive(Debug, Clone)]
pub struct Credential {
    properties: Vec<Property>,
    hybrid_key: HybridPublicKey,
    paillier_key: Option<PaillierPublicKey>,
    signature: SchnorrSignature,
}

impl Credential {
    /// The asserted properties.
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// The client's hybrid (KEM) public key — the key datasources encrypt
    /// partial results under.
    pub fn hybrid_key(&self) -> &HybridPublicKey {
        &self.hybrid_key
    }

    /// The client's homomorphic public key, when present.
    pub fn paillier_key(&self) -> Option<&PaillierPublicKey> {
        self.paillier_key.as_ref()
    }

    /// Does this credential assert `prop`?
    pub fn asserts(&self, prop: &Property) -> bool {
        self.properties.contains(prop)
    }

    /// A credential with the same signature but only the named properties
    /// visible is NOT constructible — property subsets are selected at the
    /// credential level (the mediator forwards a *subset of credentials*,
    /// not parts of one; paper Listing 1, step 2).
    ///
    /// Canonical byte encoding covered by the CA signature.
    fn message_bytes(
        properties: &[Property],
        hybrid_key: &HybridPublicKey,
        paillier_key: Option<&PaillierPublicKey>,
    ) -> Vec<u8> {
        let mut msg = Vec::new();
        msg.extend_from_slice(b"secmed-credential-v1\0");
        for p in properties {
            msg.extend_from_slice(p.name.as_bytes());
            msg.push(0x1f);
            msg.extend_from_slice(p.value.as_bytes());
            msg.push(0x1e);
        }
        msg.push(0x1d);
        msg.extend_from_slice(&hybrid_key.element().to_bytes_be());
        msg.push(0x1d);
        if let Some(pk) = paillier_key {
            msg.extend_from_slice(&pk.n().to_bytes_be());
        }
        msg
    }

    /// Verifies the CA signature.
    pub fn verify(&self, ca_key: &SchnorrPublicKey) -> Result<(), MedError> {
        let msg = Self::message_bytes(
            &self.properties,
            &self.hybrid_key,
            self.paillier_key.as_ref(),
        );
        if ca_key.verify(&msg, &self.signature) {
            Ok(())
        } else {
            Err(MedError::BadCredential(
                "signature verification failed".to_string(),
            ))
        }
    }
}

impl Credential {
    /// Wire encoding of a complete credential (properties, both public
    /// keys, CA signature) — what actually travels in Listing 1's
    /// `⟨q_i, CR_i, A_i⟩` messages.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.properties.len() as u16).to_be_bytes());
        for p in &self.properties {
            put_str(&mut out, &p.name);
            put_str(&mut out, &p.value);
        }
        put_bytes(&mut out, &self.hybrid_key.element().to_bytes_be());
        match &self.paillier_key {
            Some(pk) => {
                out.push(1);
                put_bytes(&mut out, &pk.n().to_bytes_be());
            }
            None => out.push(0),
        }
        put_bytes(&mut out, &self.signature.encode());
        out
    }

    /// Decodes a credential; `group` is the deployment's public group
    /// parameter (needed to rebuild the hybrid key).  The signature is NOT
    /// verified here — call [`Credential::verify`] afterwards.
    pub fn decode(bytes: &[u8], group: &secmed_crypto::SafePrimeGroup) -> Result<Self, MedError> {
        let mut pos = 0usize;
        let nprops = take_u16(bytes, &mut pos)? as usize;
        let mut properties = Vec::with_capacity(nprops.min(64));
        for _ in 0..nprops {
            let name = take_str(bytes, &mut pos)?;
            let value = take_str(bytes, &mut pos)?;
            properties.push(Property { name, value });
        }
        let element = mpint::Natural::from_bytes_be(take_bytes(bytes, &mut pos)?);
        let hybrid_key =
            HybridPublicKey::from_parts(group.clone(), element).map_err(MedError::Crypto)?;
        let paillier_key = match take_u8(bytes, &mut pos)? {
            0 => None,
            1 => {
                let n = mpint::Natural::from_bytes_be(take_bytes(bytes, &mut pos)?);
                Some(PaillierPublicKey::from_modulus(n))
            }
            _ => return Err(MedError::BadCredential("bad paillier flag".to_string())),
        };
        let signature =
            SchnorrSignature::decode(take_bytes(bytes, &mut pos)?).map_err(MedError::Crypto)?;
        if pos != bytes.len() {
            return Err(MedError::BadCredential("trailing bytes".to_string()));
        }
        Ok(Credential {
            properties,
            hybrid_key,
            paillier_key,
            signature,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

fn take_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, MedError> {
    let b = *bytes
        .get(*pos)
        .ok_or_else(|| MedError::BadCredential("truncated".to_string()))?;
    *pos += 1;
    Ok(b)
}

fn take_u16(bytes: &[u8], pos: &mut usize) -> Result<u16, MedError> {
    if bytes.len() - *pos < 2 {
        return Err(MedError::BadCredential("truncated".to_string()));
    }
    let v = u16::from_be_bytes(bytes[*pos..*pos + 2].try_into().expect("2 bytes"));
    *pos += 2;
    Ok(v)
}

fn take_bytes<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], MedError> {
    if bytes.len() - *pos < 4 {
        return Err(MedError::BadCredential("truncated".to_string()));
    }
    let len = u32::from_be_bytes(bytes[*pos..*pos + 4].try_into().expect("4 bytes")) as usize;
    *pos += 4;
    if bytes.len() - *pos < len {
        return Err(MedError::BadCredential("truncated".to_string()));
    }
    let out = &bytes[*pos..*pos + len];
    *pos += len;
    Ok(out)
}

fn take_str(bytes: &[u8], pos: &mut usize) -> Result<String, MedError> {
    let len = take_u16(bytes, pos)? as usize;
    if bytes.len() - *pos < len {
        return Err(MedError::BadCredential("truncated".to_string()));
    }
    let s = String::from_utf8(bytes[*pos..*pos + len].to_vec())
        .map_err(|_| MedError::BadCredential("invalid UTF-8".to_string()))?;
    *pos += len;
    Ok(s)
}

/// The trusted certification authority of the preparatory phase.
pub struct CertificationAuthority {
    keypair: SchnorrKeyPair,
}

impl CertificationAuthority {
    /// Creates a CA with a fresh Schnorr key in `group`.
    pub fn new(group: SafePrimeGroup, rng: &mut dyn Rng) -> Self {
        CertificationAuthority {
            keypair: SchnorrKeyPair::generate(group, rng),
        }
    }

    /// The CA's verification key, known to all datasources.
    pub fn public_key(&self) -> &SchnorrPublicKey {
        self.keypair.public()
    }

    /// Issues a credential binding `properties` to the client's keys.
    pub fn issue(
        &self,
        properties: Vec<Property>,
        hybrid_key: HybridPublicKey,
        paillier_key: Option<PaillierPublicKey>,
        rng: &mut dyn Rng,
    ) -> Credential {
        let msg = Credential::message_bytes(&properties, &hybrid_key, paillier_key.as_ref());
        let signature = self.keypair.sign(&msg, rng);
        Credential {
            properties,
            hybrid_key,
            paillier_key,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmed_crypto::drbg::HmacDrbg;
    use secmed_crypto::group::GroupSize;
    use secmed_crypto::hybrid::HybridKeyPair;
    use secmed_crypto::paillier::Paillier;

    fn setup() -> (CertificationAuthority, HybridKeyPair, HmacDrbg) {
        let mut rng = HmacDrbg::from_label("credential-tests");
        let group = SafePrimeGroup::preset(GroupSize::S256);
        let ca = CertificationAuthority::new(group.clone(), &mut rng);
        let client = HybridKeyPair::generate(group, &mut rng);
        (ca, client, rng)
    }

    #[test]
    fn issued_credential_verifies() {
        let (ca, client, mut rng) = setup();
        let cred = ca.issue(
            vec![Property::new("role", "physician")],
            client.public(),
            None,
            &mut rng,
        );
        assert!(cred.verify(ca.public_key()).is_ok());
        assert!(cred.asserts(&Property::new("role", "physician")));
        assert!(!cred.asserts(&Property::new("role", "admin")));
    }

    #[test]
    fn credential_with_paillier_key_verifies() {
        let (ca, client, mut rng) = setup();
        let paillier = Paillier::test_keypair(256, "cred-paillier");
        let cred = ca.issue(
            vec![Property::new("role", "auditor")],
            client.public(),
            Some(paillier.public().clone()),
            &mut rng,
        );
        assert!(cred.verify(ca.public_key()).is_ok());
        assert!(cred.paillier_key().is_some());
    }

    #[test]
    fn wrong_ca_rejected() {
        let (ca, client, mut rng) = setup();
        let other_ca = CertificationAuthority::new(ca.public_key().group().clone(), &mut rng);
        let cred = ca.issue(
            vec![Property::new("a", "b")],
            client.public(),
            None,
            &mut rng,
        );
        assert!(cred.verify(other_ca.public_key()).is_err());
    }

    #[test]
    fn tampered_properties_rejected() {
        let (ca, client, mut rng) = setup();
        let mut cred = ca.issue(
            vec![Property::new("role", "nurse")],
            client.public(),
            None,
            &mut rng,
        );
        cred.properties[0].value = "physician".to_string();
        assert!(cred.verify(ca.public_key()).is_err());
    }

    #[test]
    fn wire_roundtrip_preserves_verification() {
        let (ca, client, mut rng) = setup();
        let paillier = Paillier::test_keypair(256, "cred-wire");
        let cred = ca.issue(
            vec![Property::new("role", "auditor"), Property::new("dept", "x")],
            client.public(),
            Some(paillier.public().clone()),
            &mut rng,
        );
        let group = ca.public_key().group().clone();
        let decoded = Credential::decode(&cred.encode(), &group).unwrap();
        assert_eq!(decoded.properties(), cred.properties());
        assert_eq!(decoded.hybrid_key(), cred.hybrid_key());
        assert_eq!(decoded.paillier_key(), cred.paillier_key());
        assert!(decoded.verify(ca.public_key()).is_ok());
    }

    #[test]
    fn wire_decode_rejects_garbage() {
        let (ca, client, mut rng) = setup();
        let cred = ca.issue(
            vec![Property::new("a", "b")],
            client.public(),
            None,
            &mut rng,
        );
        let group = ca.public_key().group().clone();
        let bytes = cred.encode();
        for cut in [0usize, 1, 5, bytes.len() - 1] {
            assert!(
                Credential::decode(&bytes[..cut], &group).is_err(),
                "cut={cut}"
            );
        }
        // A forged public-key element outside QR_p is rejected structurally.
        let mut tampered = bytes.clone();
        tampered.push(0);
        assert!(Credential::decode(&tampered, &group).is_err());
    }

    #[test]
    fn tampered_wire_properties_fail_signature() {
        let (ca, client, mut rng) = setup();
        let cred = ca.issue(
            vec![Property::new("role", "nurse")],
            client.public(),
            None,
            &mut rng,
        );
        let group = ca.public_key().group().clone();
        let mut bytes = cred.encode();
        // Flip a byte inside the first property's value ("nurse").
        let idx = bytes.windows(5).position(|w| w == b"nurse").unwrap();
        bytes[idx] ^= 0x20;
        let decoded = Credential::decode(&bytes, &group).unwrap();
        assert!(decoded.verify(ca.public_key()).is_err());
    }

    #[test]
    fn property_display() {
        assert_eq!(
            Property::new("role", "physician").to_string(),
            "role=physician"
        );
    }
}
