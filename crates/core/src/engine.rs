//! The execution engine: scenario construction and protocol execution.
//!
//! This module is the single entry point for running a mediation protocol:
//!
//! * [`ScenarioBuilder`] assembles a [`Scenario`] — certification
//!   authority, client with credentials, two allow-all datasources, and
//!   the query — from a generated [`Workload`],
//! * [`RunOptions`] selects the protocol (with its options), the
//!   execution policy (thread count for the deterministic fork-join
//!   pool), and what happens to the structured trace,
//! * [`Engine::run`] executes the request phase (Listing 1) followed by
//!   the selected delivery phase and returns the full [`RunReport`].
//!
//! Determinism invariant: for a fixed scenario seed, the returned
//! [`RunReport`] is byte-for-byte identical at any thread count.  Parallel
//! stages draw their randomness from per-item DRBG streams
//! ([`secmed_crypto::drbg::DrbgFamily`]) and collect results in input
//! order, so neither ciphertexts nor message ordering depend on
//! scheduling.

use secmed_crypto::metrics::Snapshot;
pub use secmed_pool::ExecPolicy;
use secmed_pool::Pool;

use crate::credential::{CertificationAuthority, Property};
use crate::party::{Client, DataSource, Mediator};
use crate::policy::AccessPolicy;
use crate::protocol::{
    commutative, das, pm, request_phase, CommutativeConfig, DasConfig, PmConfig, ProtocolKind,
    RunOutcome, RunReport, Scenario,
};
use crate::transport::{DeliveryPolicy, Fabric, FaultPlan, PartyId, Transport};
use crate::workload::Workload;
use crate::MedError;

use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::group::{GroupSize, SafePrimeGroup};

/// Builds a complete mediation [`Scenario`] around a generated workload.
///
/// Defaults: seed `"scenario"`, a 512-bit safe-prime group, 512-bit
/// Paillier modulus, one `role = analyst` credential, and the paper's
/// canonical query `R1 ⨝ R2`.
///
/// ```no_run
/// # use secmed_core::engine::{Engine, RunOptions, ScenarioBuilder};
/// # use secmed_core::workload::WorkloadSpec;
/// # use secmed_core::protocol::CommutativeConfig;
/// let w = WorkloadSpec::default().generate();
/// let mut sc = ScenarioBuilder::new(&w).seed("demo").paillier_bits(768).build();
/// let report = Engine::run(&mut sc, &RunOptions::commutative(CommutativeConfig::default()))?;
/// # Ok::<(), secmed_core::MedError>(())
/// ```
pub struct ScenarioBuilder {
    left: relalg::Relation,
    right: relalg::Relation,
    seed: String,
    group_size: GroupSize,
    paillier_bits: u64,
    credentials: Vec<Property>,
    query: Option<String>,
}

impl ScenarioBuilder {
    /// Starts a builder over the workload's two relations.
    pub fn new(workload: &Workload) -> Self {
        ScenarioBuilder {
            left: workload.left.clone(),
            right: workload.right.clone(),
            seed: "scenario".to_string(),
            group_size: GroupSize::S512,
            paillier_bits: 512,
            credentials: Vec::new(),
            query: None,
        }
    }

    /// Sets the deterministic seed label for all party DRBGs.
    pub fn seed(mut self, seed: &str) -> Self {
        self.seed = seed.to_string();
        self
    }

    /// Sets the safe-prime group size for the CA, hybrid, and SRA layers.
    pub fn group_size(mut self, size: GroupSize) -> Self {
        self.group_size = size;
        self
    }

    /// Sets the Paillier modulus size in bits (private-matching protocol).
    pub fn paillier_bits(mut self, bits: u64) -> Self {
        self.paillier_bits = bits;
        self
    }

    /// Adds a property the client holds a credential for.  Without any,
    /// the builder issues the canonical `role = analyst` credential.
    pub fn credential(mut self, property: Property) -> Self {
        self.credentials.push(property);
        self
    }

    /// Overrides the SQL query (default: `select * from r1 natural join
    /// r2`, the paper's canonical `R1 ⨝ R2`).
    pub fn query(mut self, query: &str) -> Self {
        self.query = Some(query.to_string());
        self
    }

    /// Assembles the scenario: CA, client with credentials, two allow-all
    /// sources named `r1`/`r2`, and a mediator registered over both.
    pub fn build(self) -> Scenario {
        let group = SafePrimeGroup::preset(self.group_size);
        let mut rng = HmacDrbg::from_label(&format!("{}/ca", self.seed));
        let ca = CertificationAuthority::new(group.clone(), &mut rng);
        let properties = if self.credentials.is_empty() {
            vec![Property::new("role", "analyst")]
        } else {
            self.credentials
        };
        let client = Client::setup(
            &ca,
            properties,
            group,
            self.paillier_bits,
            &format!("{}/client", self.seed),
        );
        let left = DataSource::new(
            "r1",
            self.left,
            AccessPolicy::allow_all(),
            ca.public_key().clone(),
        );
        let right = DataSource::new(
            "r2",
            self.right,
            AccessPolicy::allow_all(),
            ca.public_key().clone(),
        );
        let mediator = Mediator::new(&[&left, &right]);
        Scenario {
            client,
            mediator,
            left,
            right,
            query: self
                .query
                .unwrap_or_else(|| "select * from r1 natural join r2".to_string()),
        }
    }
}

/// What happens to the structured trace a run emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceSink {
    /// Spans stay in the global trace buffer for the caller to export
    /// (via `secmed_obs::trace::take_since` / `export_jsonl`).
    #[default]
    Keep,
    /// Spans emitted by this run are dropped from the buffer on return —
    /// for benchmark loops that would otherwise grow it unboundedly.
    Discard,
}

/// Options for one protocol execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Which delivery-phase protocol to run, with its options.
    pub protocol: ProtocolKind,
    /// Thread policy for the deterministic fork-join pool.
    pub exec: ExecPolicy,
    /// Trace handling.
    pub trace: TraceSink,
    /// Bounded-retry policy for every delivery in the run.
    pub delivery: DeliveryPolicy,
    /// Optional deterministic fault plan installed on the fabric.  With a
    /// plan present, an exhausted delivery becomes a typed
    /// [`RunOutcome::Aborted`] report instead of an `Err` — chaos runs
    /// always return a report.
    pub faults: Option<FaultPlan>,
}

impl RunOptions {
    /// Sequential execution of the given protocol, trace kept, default
    /// retry policy, no fault plan.
    pub fn new(protocol: ProtocolKind) -> Self {
        RunOptions {
            protocol,
            exec: ExecPolicy::sequential(),
            trace: TraceSink::Keep,
            delivery: DeliveryPolicy::default(),
            faults: None,
        }
    }

    /// Convenience: the DAS protocol (Listing 2).
    pub fn das(cfg: DasConfig) -> Self {
        Self::new(ProtocolKind::Das(cfg))
    }

    /// Convenience: the commutative-encryption protocol (Listing 3).
    pub fn commutative(cfg: CommutativeConfig) -> Self {
        Self::new(ProtocolKind::Commutative(cfg))
    }

    /// Convenience: the private-matching protocol (Listing 4).
    pub fn pm(cfg: PmConfig) -> Self {
        Self::new(ProtocolKind::Pm(cfg))
    }

    /// Sets the worker-thread count (1 = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.exec = ExecPolicy::threads(threads);
        self
    }

    /// Sets the trace sink.
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Sets the bounded-retry policy.
    pub fn delivery(mut self, policy: DeliveryPolicy) -> Self {
        self.delivery = policy;
        self
    }

    /// Installs a deterministic fault plan on the fabric.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// The protocol executor.
pub struct Engine;

impl Engine {
    /// Runs the request phase and the selected delivery phase, returning
    /// the full report.
    ///
    /// The run is traced: a root `run` span (tagged with the protocol key)
    /// encloses a `<key>.request` span for Listing 1 and the per-phase
    /// spans the delivery functions open (`<key>.encryption`,
    /// `<key>.transfer`, `<key>.join`/`<key>.intersection`, `<key>.post`).
    pub fn run(scenario: &mut Scenario, opts: &RunOptions) -> Result<RunReport, MedError> {
        Self::run_on(Transport::new(), scenario, opts)
    }

    /// [`Engine::run`] over an explicit [`Fabric`]: the in-process
    /// recorder, a loopback [`SocketFabric`](crate::SocketFabric) session,
    /// or any other implementation.  The fabric is consumed — its recorder
    /// (with the complete log) comes back inside the report.
    pub fn run_on<F: Fabric>(
        fabric: F,
        scenario: &mut Scenario,
        opts: &RunOptions,
    ) -> Result<RunReport, MedError> {
        let mark = secmed_obs::trace::checkpoint();
        let out = Self::run_traced(fabric, scenario, opts);
        if opts.trace == TraceSink::Discard {
            drop(secmed_obs::trace::take_since(mark));
        }
        out
    }

    fn run_traced<F: Fabric>(
        mut fabric: F,
        sc: &mut Scenario,
        opts: &RunOptions,
    ) -> Result<RunReport, MedError> {
        let kind = opts.protocol;
        let pool = Pool::new(opts.exec);
        secmed_obs::metrics::incr(
            secmed_obs::metrics::Class::Deterministic,
            &format!("engine.runs.{}", kind.key()),
            1,
        );
        // Timing class: the wall clock is read inside obs, behind its
        // `Clock` abstraction — this module never names `Instant`.
        let _run_timer = secmed_obs::metrics::start_timer("engine.run_ns");
        let mut root = secmed_obs::span("run");
        root.field("protocol", kind.key());
        let before = Snapshot::capture();
        fabric.set_policy(opts.delivery);
        if let Some(plan) = &opts.faults {
            fabric.install_faults(plan.clone());
        }
        let driven = Self::drive(sc, kind, &mut fabric, &pool);
        // A delay on the final message must still surface in the log.
        fabric.flush_delayed();
        // Tear the fabric down (a socket session says goodbye here) and
        // keep the recorder: the complete log of every attempted byte.
        let transport = fabric.into_recorder()?;
        let mut report = match driven {
            Ok(report) => report,
            Err(error) if opts.faults.is_some() => {
                // Under an installed fault plan an exhausted delivery is a
                // typed outcome, not a crash: the report carries an empty
                // result, the abort reason, and the full transport log (so
                // the accounting still covers every attempted byte).
                RunReport {
                    result: relalg::Relation::empty(relalg::Schema::new(&[])),
                    outcome: RunOutcome::Aborted { error, retries: 0 },
                    transport: Transport::new(), // replaced below
                    mediator_view: Default::default(),
                    client_view: Default::default(),
                    primitives: Vec::new(),
                    metrics: Vec::new(), // filled in below
                }
            }
            Err(error) => return Err(error),
        };
        // The Table 1 views are recomputed from the recorded frames the
        // receivers accepted — the drivers report only what needs a secret
        // key (the client's useful-payload count).  Failed and duplicate
        // copies stay in the byte accounting below.
        let accepted = crate::audit::effective_frames(transport.log());
        let (mut mediator_view, mut client_view) = crate::audit::derive_views(&accepted);
        client_view.useful_payloads = report.client_view.useful_payloads;
        report.transport = transport;
        mediator_view.bytes_observed = report.transport.bytes_received_by(&PartyId::Mediator);
        client_view.bytes_received = report.transport.bytes_received_by(&PartyId::Client);
        report.mediator_view = mediator_view;
        report.client_view = client_view;
        report.primitives = Snapshot::capture().since(&before);
        // Per-run deterministic metrics: the fabric totals from this run's
        // own transport log plus this run's census delta.  Both are pure
        // functions of the scenario seed (never of wall clocks, schedules,
        // or the process-global registry, which concurrent runs share), so
        // the determinism fingerprint covers them at every thread count.
        let mut metrics = report.transport.run_metrics();
        for &(op, n) in &report.primitives {
            metrics.push((secmed_crypto::metrics::registry_name(op), n));
        }
        metrics.push(("run.result_rows".to_string(), report.result.len() as u64));
        metrics.sort();
        report.metrics = metrics;
        // Finalize the outcome against the fabric's retry counter.
        let retries = report.transport.retries();
        report.outcome = match report.outcome {
            RunOutcome::Clean if retries > 0 => RunOutcome::RecoveredWithRetries { retries },
            RunOutcome::Clean => RunOutcome::Clean,
            RunOutcome::RecoveredWithRetries { .. } => RunOutcome::RecoveredWithRetries { retries },
            RunOutcome::Degraded { details, .. } => RunOutcome::Degraded { details, retries },
            RunOutcome::Aborted { error, .. } => RunOutcome::Aborted { error, retries },
        };
        root.field("messages", report.transport.message_count());
        root.field("bytes", report.transport.total_bytes());
        root.field("result_rows", report.result.len());
        root.field("outcome", report.outcome.key());
        root.field("retries", retries);
        Ok(report)
    }

    /// Listing 1 followed by the selected delivery phase.
    fn drive<F: Fabric>(
        sc: &mut Scenario,
        kind: ProtocolKind,
        transport: &mut F,
        pool: &Pool,
    ) -> Result<RunReport, MedError> {
        let prepared = {
            let _s = secmed_obs::span(&format!("{}.request", kind.key()));
            request_phase(sc, transport)?
        };
        match kind {
            ProtocolKind::Das(cfg) => das::deliver(sc, prepared, cfg, transport, pool),
            ProtocolKind::Commutative(cfg) => {
                commutative::deliver(sc, prepared, cfg, transport, pool)
            }
            ProtocolKind::Pm(cfg) => pm::deliver(sc, prepared, cfg, transport, pool),
        }
    }
}
