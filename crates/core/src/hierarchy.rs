//! Mediator hierarchies — the future-work item of the paper's Section 8:
//! "in a mediator hierarchy one mediator can act as a datasource for other
//! mediators.  Therefore, the case in which several join queries are
//! executed successively has to be considered."
//!
//! [`chained_join`] executes a two-stage join `(R1 ⨝ R2) ⨝ R3`: the first
//! mediation's global result is installed as the relation of a derived
//! datasource (the lower mediator acting as a source for the upper one),
//! and a second mediation joins it with the third source.  Every stage
//! runs a full credential-checked protocol and is separately reported.

use relalg::Relation;

use crate::credential::CertificationAuthority;
use crate::engine::{Engine, RunOptions};
use crate::party::{Client, DataSource, Mediator};
use crate::policy::AccessPolicy;
use crate::protocol::{RunReport, Scenario};
use crate::MedError;

/// Input for one level of the hierarchy.
pub struct SourceSpec {
    /// Relation name (must match the names used in the queries).
    pub name: String,
    /// The relation served.
    pub relation: Relation,
    /// The source's access policy.
    pub policy: AccessPolicy,
}

/// The outcome of a chained join.
pub struct HierarchyReport {
    /// The final global result.
    pub result: Relation,
    /// Per-stage protocol reports (lower mediation first).
    pub stages: Vec<RunReport>,
}

/// Executes `(first ⨝ second) ⨝ third` as two successive mediations with
/// the given run options (protocol, thread policy, trace sink), rebuilding
/// the client from `client_seed` at each stage (same CA, same credentials,
/// same keys).
pub fn chained_join(
    ca: &CertificationAuthority,
    client_template: impl Fn() -> Client,
    first: SourceSpec,
    second: SourceSpec,
    third: SourceSpec,
    opts: &RunOptions,
) -> Result<HierarchyReport, MedError> {
    // Stage 1: R1 ⨝ R2 through the lower mediator.
    let s1 = DataSource::new(
        &first.name,
        first.relation,
        first.policy,
        ca.public_key().clone(),
    );
    let s2 = DataSource::new(
        &second.name,
        second.relation,
        second.policy,
        ca.public_key().clone(),
    );
    let mediator = Mediator::new(&[&s1, &s2]);
    let query1 = format!("select * from {} natural join {}", first.name, second.name);
    let mut stage1 = Scenario {
        client: client_template(),
        mediator,
        left: s1,
        right: s2,
        query: query1,
    };
    let report1 = Engine::run(&mut stage1, opts)?;
    if !report1.outcome.delivered() {
        return Err(MedError::Protocol(format!(
            "lower mediation aborted; no relation to derive a source from ({})",
            report1.outcome
        )));
    }

    // The lower mediation's result becomes a datasource for the upper
    // mediation.  Rows were already filtered by the stage-1 policies, so
    // the derived source grants the same client full access.
    let derived_name = format!("{}_{}", first.name, second.name);
    let derived = DataSource::new(
        &derived_name,
        report1.result.clone(),
        AccessPolicy::allow_all(),
        ca.public_key().clone(),
    );

    // Stage 2: (R1 ⨝ R2) ⨝ R3 through the upper mediator.
    let s3 = DataSource::new(
        &third.name,
        third.relation,
        third.policy,
        ca.public_key().clone(),
    );
    let mediator2 = Mediator::new(&[&derived, &s3]);
    let query2 = format!("select * from {} natural join {}", derived_name, third.name);
    let mut stage2 = Scenario {
        client: client_template(),
        mediator: mediator2,
        left: derived,
        right: s3,
        query: query2,
    };
    let report2 = Engine::run(&mut stage2, opts)?;
    if !report2.outcome.delivered() {
        return Err(MedError::Protocol(format!(
            "upper mediation aborted; the chained join has no result ({})",
            report2.outcome
        )));
    }

    Ok(HierarchyReport {
        result: report2.result.clone(),
        stages: vec![report1, report2],
    })
}
