#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The Multimedia Mediator (MMM): credential-based secure mediation with
//! three ciphertext-processing JOIN protocols.
//!
//! This crate is the paper's primary contribution, assembled from the
//! workspace substrates:
//!
//! * [`credential`] — the certification authority and property-based
//!   credentials (Section 2, Figure 2),
//! * [`policy`] — credential-based access control with row-level filtering
//!   at the datasources,
//! * [`party`] — client, mediator, and datasource state,
//! * [`transport`] — an in-process recorded message fabric: every
//!   protocol message is logged with sender, receiver, label, and byte
//!   size, which is what the leakage audit and the interaction-pattern
//!   report (Table 1, §6) are computed from,
//! * [`protocol`] — the request phase (Listing 1) and the three delivery
//!   phases: DAS (Listing 2), commutative encryption (Listing 3), private
//!   matching (Listing 4), each with the optimizations from the paper's
//!   footnotes,
//! * [`engine`] — the execution engine: [`ScenarioBuilder`] assembles a
//!   scenario from a workload, [`RunOptions`] picks the protocol, thread
//!   policy, and trace sink, and [`Engine::run`] is the single entry
//!   point for executing a protocol (deterministically at any thread
//!   count),
//! * [`audit`] — empirical regeneration of Table 1: what the mediator and
//!   client actually observe,
//! * [`cost`] — the §6 computational analysis as closed-form operation
//!   counts, checked against the measured counters,
//! * [`observe`] — the bridge into the unified `secmed_obs` run report
//!   (phase timings + traffic + primitive census + leakage in one record),
//! * [`workload`] — synthetic relation generators standing in for the
//!   paper's (unavailable) enterprise datasets,
//! * [`hierarchy`] — mediator-as-datasource chaining (the future-work
//!   item of Section 8),
//! * [`plan`] — typed query plans (leakage budgets, per-node protocol
//!   choice) and [`Engine::run_plan`], which executes a multi-way join
//!   plan over the mediator hierarchy.

pub mod audit;
pub mod cost;
pub mod credential;
pub mod engine;
pub mod hierarchy;
pub mod observe;
pub mod party;
pub mod plan;
pub mod policy;
pub mod protocol;
pub mod transport;
pub mod workload;

pub use credential::{CertificationAuthority, Credential, Property};
pub use engine::{Engine, ExecPolicy, RunOptions, ScenarioBuilder, TraceSink};
pub use party::{Client, DataSource, Mediator};
pub use plan::{LeakageBudget, NodeInput, Plan, PlanNode, PlanReport, PlanRunOptions};
pub use policy::{AccessDecision, AccessPolicy, AccessRule};
pub use protocol::RunOutcome;
pub use protocol::{
    CommutativeConfig, CommutativeMode, DasConfig, DasSetting, PmConfig, PmEval, PmPayloadMode,
    ProtocolKind, RunReport, Scenario,
};
pub use transport::socket::{ReconnectPolicy, SocketFabric};
pub use transport::{
    DeliveryError, DeliveryFailure, DeliveryPolicy, Envelope, Fabric, FaultKind, FaultPlan,
    LinkMask, OnExhausted, Outage, PartyId, Transport,
};

/// Errors from the mediation layer.
#[derive(Debug)]
pub enum MedError {
    /// The client's credentials did not satisfy any access rule.
    AccessDenied(String),
    /// A credential signature failed verification.
    BadCredential(String),
    /// Query parsing/decomposition failed.
    Query(relalg::RelError),
    /// A cryptographic operation failed.
    Crypto(secmed_crypto::CryptoError),
    /// The DAS layer failed.
    Das(secmed_das::DasError),
    /// A wire frame failed to encode/decode canonically.
    Wire(transport::WireError),
    /// A message stayed undelivered after every allowed attempt.
    Delivery(transport::DeliveryFailure),
    /// Protocol-level invariant violation (malformed message flow).
    Protocol(String),
    /// The fabric's infrastructure failed (torn socket, rejected session)
    /// — distinct from a modeled [`FaultKind`] the plan injected.
    Fabric(String),
    /// The server refused admission (`ServerBusy`): a *retryable* typed
    /// condition — the caller may back off and dial again, unlike the
    /// terminal [`MedError::Fabric`] failures.
    Busy(String),
}

impl std::fmt::Display for MedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MedError::AccessDenied(who) => write!(f, "access denied: {who}"),
            MedError::BadCredential(m) => write!(f, "bad credential: {m}"),
            MedError::Query(e) => write!(f, "query error: {e}"),
            MedError::Crypto(e) => write!(f, "crypto error: {e}"),
            MedError::Das(e) => write!(f, "DAS error: {e}"),
            MedError::Wire(e) => write!(f, "wire error: {e}"),
            MedError::Delivery(e) => write!(f, "delivery failed: {e}"),
            MedError::Protocol(m) => write!(f, "protocol error: {m}"),
            MedError::Fabric(m) => write!(f, "fabric error: {m}"),
            MedError::Busy(m) => write!(f, "server busy: {m}"),
        }
    }
}

impl std::error::Error for MedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MedError::Query(e) => Some(e),
            MedError::Crypto(e) => Some(e),
            MedError::Das(e) => Some(e),
            MedError::Wire(e) => Some(e),
            MedError::Delivery(e) => Some(e),
            MedError::AccessDenied(_)
            | MedError::BadCredential(_)
            | MedError::Protocol(_)
            | MedError::Fabric(_)
            | MedError::Busy(_) => None,
        }
    }
}

impl From<relalg::RelError> for MedError {
    fn from(e: relalg::RelError) -> Self {
        MedError::Query(e)
    }
}

impl From<secmed_crypto::CryptoError> for MedError {
    fn from(e: secmed_crypto::CryptoError) -> Self {
        MedError::Crypto(e)
    }
}

impl From<secmed_das::DasError> for MedError {
    fn from(e: secmed_das::DasError) -> Self {
        MedError::Das(e)
    }
}

impl From<transport::WireError> for MedError {
    fn from(e: transport::WireError) -> Self {
        MedError::Wire(e)
    }
}

#[cfg(test)]
mod error_tests {
    use std::error::Error as _;

    use super::*;

    /// Collects the Display of every error in the `source()` chain,
    /// starting below `e` itself.
    fn chain(e: &dyn std::error::Error) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = e.source();
        while let Some(c) = cur {
            out.push(c.to_string());
            cur = c.source();
        }
        out
    }

    #[test]
    fn source_exposes_the_wrapped_cause() {
        let wire = MedError::Wire(transport::WireError::BadMagic);
        let got = chain(&wire);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], transport::WireError::BadMagic.to_string());

        let query = MedError::Query(relalg::RelError::UnknownAttribute("x".into()));
        assert_eq!(chain(&query).len(), 1);

        let das = MedError::Das(secmed_das::DasError::EmptyDomain);
        assert_eq!(chain(&das).len(), 1);
    }

    #[test]
    fn delivery_chain_reaches_the_wire_error() {
        // Delivery → DeliveryFailure → WireError: a two-link chain.
        let err = MedError::Delivery(transport::DeliveryFailure {
            from: PartyId::Client,
            to: PartyId::Mediator,
            label: "L1.1".into(),
            attempts: 3,
            last: transport::DeliveryError::Undecodable(transport::WireError::Truncated),
        });
        let got = chain(&err);
        assert_eq!(got.len(), 2, "failure then its wire cause: {got:?}");
        assert!(got[0].contains("undelivered after 3 attempt"));
        assert_eq!(got[1], transport::WireError::Truncated.to_string());
    }

    #[test]
    fn leaf_errors_have_no_source() {
        assert!(MedError::AccessDenied("who".into()).source().is_none());
        assert!(MedError::Protocol("oops".into()).source().is_none());
        assert!(MedError::BadCredential("sig".into()).source().is_none());
    }
}
