//! Bridge from protocol-level artifacts to the unified observability
//! report.
//!
//! [`unified_report`] joins the four measurement surfaces of one protocol
//! run — trace spans (phase wall-clock), the transport log (per-edge
//! messages and bytes), the primitive census, and the leakage audit — into
//! one [`secmed_obs::RunReport`].  The totals in the unified report are
//! *derived from the same recorders the tests assert against*, so report
//! numbers and test numbers can never drift apart.

use secmed_obs::report::{EdgeStat, OpStat, PlanNodeStat, RunReport as UnifiedReport};
use secmed_obs::trace::Record;

use crate::plan::{Plan, PlanReport};
use crate::protocol::{ProtocolKind, RunReport};
use crate::transport::PartyId;
use crate::workload::WorkloadSpec;

/// Builds the unified report for one finished run.
///
/// `records` are the trace records of the run (collect them with
/// `secmed_obs::trace::checkpoint()` before `Scenario::run` and
/// `take_since` after); phase rows keep only spans prefixed with the
/// protocol key, so records from other instrumented code are harmless.
pub fn unified_report(
    kind: ProtocolKind,
    report: &RunReport,
    records: &[Record],
    workload: Vec<(String, u64)>,
) -> UnifiedReport {
    let key = kind.key();
    let phases = UnifiedReport::phases_from_records(records, Some(&format!("{key}.")));

    // Per-edge traffic, in first-use order, straight from the transport log.
    let mut edges: Vec<EdgeStat> = Vec::new();
    for e in report.transport.log() {
        let from = e.from.to_string();
        let to = e.to.to_string();
        match edges.iter_mut().find(|x| x.from == from && x.to == to) {
            Some(x) => {
                x.messages += 1;
                x.bytes += e.bytes() as u64;
            }
            None => edges.push(EdgeStat {
                from,
                to,
                messages: 1,
                bytes: e.bytes() as u64,
            }),
        }
    }

    let ops: Vec<OpStat> = report
        .primitives
        .iter()
        .map(|(op, count)| OpStat {
            name: op.name().to_string(),
            count: *count,
        })
        .collect();

    // §6 interaction pattern: for every party that talked to the fabric,
    // the number of maximal send-runs ("the client has to interact twice
    // with the mediator").
    let mut partners: Vec<PartyId> = Vec::new();
    for e in report.transport.log() {
        for p in [&e.from, &e.to] {
            if *p != PartyId::Mediator && !partners.contains(p) {
                partners.push(p.clone());
            }
        }
    }
    let interactions: Vec<(String, u64)> = partners
        .iter()
        .map(|p| (p.to_string(), report.transport.interactions_of(p) as u64))
        .collect();

    let leakage = vec![
        format!("mediator: {}", report.mediator_view.describe()),
        format!("client: {}", report.client_view.describe()),
    ];

    UnifiedReport {
        protocol: key.to_string(),
        workload,
        phases,
        edges,
        ops,
        interactions,
        leakage,
        result_rows: report.result.len() as u64,
        outcome: report.outcome.key().to_string(),
        retries: report.outcome.retries(),
        metrics: report.metrics.clone(),
        plan: Vec::new(),
    }
}

/// Plan-section rows for a unified report: one [`PlanNodeStat`] per
/// executed node, carrying the chosen protocol and the
/// predicted-vs-observed primitive cross-check.
pub fn plan_stats(exec: &PlanReport) -> Vec<PlanNodeStat> {
    exec.nodes
        .iter()
        .map(|n| PlanNodeStat {
            label: n.label.clone(),
            protocol: n.protocol.key().to_string(),
            predicted_ops: n.predicted.total(),
            observed_ops: n.observed.total(),
            divergence_ppm: n.divergence.max_ppm,
            result_rows: n.report.result.len() as u64,
        })
        .collect()
}

/// Builds the unified report for one executed plan.
///
/// Traffic, primitive, interaction, and metric sections aggregate over
/// every node's run (summed per edge / primitive / partner / metric key,
/// in first-use order), the leakage section carries each node's audited
/// views prefixed with its label, and the `plan` section records the
/// per-node protocol choice and divergence cross-check.  Every number is
/// drawn from the nodes' own recorders, so the report is byte-identical
/// across reruns and thread counts.
pub fn unified_plan_report(plan: &Plan, exec: &PlanReport) -> UnifiedReport {
    let mut edges: Vec<EdgeStat> = Vec::new();
    let mut ops: Vec<OpStat> = Vec::new();
    let mut interactions: Vec<(String, u64)> = Vec::new();
    let mut leakage: Vec<String> = Vec::new();
    let mut metrics: Vec<(String, u64)> = Vec::new();
    let mut retries = 0u64;
    let mut outcome = "clean".to_string();
    for n in &exec.nodes {
        for e in n.report.transport.log() {
            let from = e.from.to_string();
            let to = e.to.to_string();
            match edges.iter_mut().find(|x| x.from == from && x.to == to) {
                Some(x) => {
                    x.messages += 1;
                    x.bytes += e.bytes() as u64;
                }
                None => edges.push(EdgeStat {
                    from,
                    to,
                    messages: 1,
                    bytes: e.bytes() as u64,
                }),
            }
        }
        for (op, count) in &n.report.primitives {
            let name = op.name();
            match ops.iter_mut().find(|o| o.name == name) {
                Some(o) => o.count += count,
                None => ops.push(OpStat {
                    name: name.to_string(),
                    count: *count,
                }),
            }
        }
        let mut partners: Vec<PartyId> = Vec::new();
        for e in n.report.transport.log() {
            for p in [&e.from, &e.to] {
                if *p != PartyId::Mediator && !partners.contains(p) {
                    partners.push(p.clone());
                }
            }
        }
        for p in partners {
            let key = p.to_string();
            let count = n.report.transport.interactions_of(&p) as u64;
            match interactions.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v += count,
                None => interactions.push((key, count)),
            }
        }
        leakage.push(format!(
            "{}: mediator: {}",
            n.label,
            n.report.mediator_view.describe()
        ));
        leakage.push(format!(
            "{}: client: {}",
            n.label,
            n.report.client_view.describe()
        ));
        for (k, v) in &n.report.metrics {
            match metrics.iter_mut().find(|(mk, _)| mk == k) {
                Some((_, mv)) => *mv += v,
                None => metrics.push((k.clone(), *v)),
            }
        }
        retries += n.report.outcome.retries();
        if outcome == "clean" && n.report.outcome.key() != "clean" {
            outcome = n.report.outcome.key().to_string();
        }
    }
    metrics.sort();
    UnifiedReport {
        protocol: "plan".to_string(),
        workload: vec![
            ("tables".to_string(), plan.tables.len() as u64),
            ("nodes".to_string(), plan.nodes.len() as u64),
        ],
        phases: Vec::new(),
        edges,
        ops,
        interactions,
        leakage,
        result_rows: exec.result.len() as u64,
        outcome,
        retries,
        metrics,
        plan: plan_stats(exec),
    }
}

/// The workload key/value pairs a report carries, derived from a spec.
pub fn workload_pairs(spec: &WorkloadSpec) -> Vec<(String, u64)> {
    vec![
        ("left_rows".to_string(), spec.left_rows as u64),
        ("right_rows".to_string(), spec.right_rows as u64),
        ("left_domain".to_string(), spec.left_domain as u64),
        ("right_domain".to_string(), spec.right_domain as u64),
        ("shared_values".to_string(), spec.shared_values as u64),
        ("payload_attrs".to_string(), spec.payload_attrs as u64),
    ]
}
