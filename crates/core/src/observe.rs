//! Bridge from protocol-level artifacts to the unified observability
//! report.
//!
//! [`unified_report`] joins the four measurement surfaces of one protocol
//! run — trace spans (phase wall-clock), the transport log (per-edge
//! messages and bytes), the primitive census, and the leakage audit — into
//! one [`secmed_obs::RunReport`].  The totals in the unified report are
//! *derived from the same recorders the tests assert against*, so report
//! numbers and test numbers can never drift apart.

use secmed_obs::report::{EdgeStat, OpStat, RunReport as UnifiedReport};
use secmed_obs::trace::Record;

use crate::protocol::{ProtocolKind, RunReport};
use crate::transport::PartyId;
use crate::workload::WorkloadSpec;

/// Builds the unified report for one finished run.
///
/// `records` are the trace records of the run (collect them with
/// `secmed_obs::trace::checkpoint()` before `Scenario::run` and
/// `take_since` after); phase rows keep only spans prefixed with the
/// protocol key, so records from other instrumented code are harmless.
pub fn unified_report(
    kind: ProtocolKind,
    report: &RunReport,
    records: &[Record],
    workload: Vec<(String, u64)>,
) -> UnifiedReport {
    let key = kind.key();
    let phases = UnifiedReport::phases_from_records(records, Some(&format!("{key}.")));

    // Per-edge traffic, in first-use order, straight from the transport log.
    let mut edges: Vec<EdgeStat> = Vec::new();
    for e in report.transport.log() {
        let from = e.from.to_string();
        let to = e.to.to_string();
        match edges.iter_mut().find(|x| x.from == from && x.to == to) {
            Some(x) => {
                x.messages += 1;
                x.bytes += e.bytes() as u64;
            }
            None => edges.push(EdgeStat {
                from,
                to,
                messages: 1,
                bytes: e.bytes() as u64,
            }),
        }
    }

    let ops: Vec<OpStat> = report
        .primitives
        .iter()
        .map(|(op, count)| OpStat {
            name: op.name().to_string(),
            count: *count,
        })
        .collect();

    // §6 interaction pattern: for every party that talked to the fabric,
    // the number of maximal send-runs ("the client has to interact twice
    // with the mediator").
    let mut partners: Vec<PartyId> = Vec::new();
    for e in report.transport.log() {
        for p in [&e.from, &e.to] {
            if *p != PartyId::Mediator && !partners.contains(p) {
                partners.push(p.clone());
            }
        }
    }
    let interactions: Vec<(String, u64)> = partners
        .iter()
        .map(|p| (p.to_string(), report.transport.interactions_of(p) as u64))
        .collect();

    let leakage = vec![
        format!("mediator: {}", report.mediator_view.describe()),
        format!("client: {}", report.client_view.describe()),
    ];

    UnifiedReport {
        protocol: key.to_string(),
        workload,
        phases,
        edges,
        ops,
        interactions,
        leakage,
        result_rows: report.result.len() as u64,
        outcome: report.outcome.key().to_string(),
        retries: report.outcome.retries(),
        metrics: report.metrics.clone(),
    }
}

/// The workload key/value pairs a report carries, derived from a spec.
pub fn workload_pairs(spec: &WorkloadSpec) -> Vec<(String, u64)> {
    vec![
        ("left_rows".to_string(), spec.left_rows as u64),
        ("right_rows".to_string(), spec.right_rows as u64),
        ("left_domain".to_string(), spec.left_domain as u64),
        ("right_domain".to_string(), spec.right_domain as u64),
        ("shared_values".to_string(), spec.shared_values as u64),
        ("payload_attrs".to_string(), spec.payload_attrs as u64),
    ]
}
