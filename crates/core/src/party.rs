//! The protocol participants: client, mediator, datasources.
//!
//! Each party owns its own key material and DRBG; the protocol drivers in
//! [`crate::protocol`] move data between parties only through the recorded
//! [`crate::transport::Transport`], so a party's knowledge is exactly its
//! initial state plus its received envelopes.

use std::collections::HashMap;

use mpint::rng::Rng;
use relalg::{Relation, Schema};
use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::hybrid::HybridKeyPair;
use secmed_crypto::paillier::PaillierKeyPair;
use secmed_crypto::schnorr::SchnorrPublicKey;
use secmed_crypto::SafePrimeGroup;

use crate::credential::{CertificationAuthority, Credential, Property};
use crate::policy::AccessPolicy;
use crate::MedError;

/// The querying client.
pub struct Client {
    hybrid: HybridKeyPair,
    paillier: PaillierKeyPair,
    credentials: Vec<Credential>,
    rng: HmacDrbg,
}

impl Client {
    /// The preparatory phase: generate key material and acquire credentials
    /// from the CA (paper Section 2).
    ///
    /// `paillier_bits` sizes the homomorphic modulus used by the PM
    /// protocol; 512 is comfortable for tests, 1024+ for realistic runs.
    pub fn setup(
        ca: &CertificationAuthority,
        properties: Vec<Property>,
        group: SafePrimeGroup,
        paillier_bits: u64,
        seed_label: &str,
    ) -> Self {
        let mut rng = HmacDrbg::from_label(seed_label);
        let hybrid = HybridKeyPair::generate(group, &mut rng);
        let paillier = PaillierKeyPair::generate(paillier_bits, &mut rng);
        let mut ca_rng = HmacDrbg::from_label(&format!("{seed_label}/ca"));
        let credential = ca.issue(
            properties,
            hybrid.public(),
            Some(paillier.public().clone()),
            &mut ca_rng,
        );
        Client {
            hybrid,
            paillier,
            credentials: vec![credential],
            rng,
        }
    }

    /// The client's credentials (sent with every query).
    pub fn credentials(&self) -> &[Credential] {
        &self.credentials
    }

    /// Adds an extra credential (e.g. a department property from a second
    /// CA interaction).
    pub fn add_credential(&mut self, c: Credential) {
        self.credentials.push(c);
    }

    /// The hybrid key pair (decryption happens client-side only).
    pub fn hybrid(&self) -> &HybridKeyPair {
        &self.hybrid
    }

    /// The Paillier key pair.
    pub fn paillier(&self) -> &PaillierKeyPair {
        &self.paillier
    }

    /// The client's DRBG.
    pub fn rng(&mut self) -> &mut HmacDrbg {
        &mut self.rng
    }
}

/// A datasource: a named relation plus its access policy.
pub struct DataSource {
    name: String,
    relation: Relation,
    policy: AccessPolicy,
    ca_key: SchnorrPublicKey,
    rng: HmacDrbg,
}

impl DataSource {
    /// Creates a datasource trusting `ca_key` for credential verification.
    pub fn new(
        name: impl Into<String>,
        relation: Relation,
        policy: AccessPolicy,
        ca_key: SchnorrPublicKey,
    ) -> Self {
        let name = name.into();
        let rng = HmacDrbg::from_label(&format!("source/{name}"));
        DataSource {
            name,
            relation,
            policy,
            ca_key,
            rng,
        }
    }

    /// The source's name (also the name of the relation it serves).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema of the served relation.
    pub fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    /// The properties this source's policy may ask for (public metadata the
    /// mediator uses to pick credential subsets).
    pub fn advertised_properties(&self) -> Vec<Property> {
        self.policy.advertised_properties()
    }

    /// Listing 1, step 4: verify the forwarded credentials, then evaluate
    /// the partial query (`select *`) through the access-control filter.
    pub fn answer_partial_query(
        &mut self,
        credentials: &[Credential],
    ) -> Result<Relation, MedError> {
        for c in credentials {
            c.verify(&self.ca_key)?;
        }
        self.policy.filter(&self.relation, credentials, &self.name)
    }

    /// The CA key this source trusts (public deployment metadata).
    pub fn ca_key(&self) -> &SchnorrPublicKey {
        &self.ca_key
    }

    /// The source's DRBG (protocol drivers draw per-protocol keys here).
    pub fn rng(&mut self) -> &mut HmacDrbg {
        &mut self.rng
    }

    /// Replaces the served relation (used by the hierarchy demo where a
    /// mediator's output becomes a source's input).
    pub fn replace_relation(&mut self, relation: Relation) {
        self.relation = relation;
    }
}

/// The (untrusted, semi-honest) mediator.
pub struct Mediator {
    /// The homogeneous global schema: relation name → (qualified) schema,
    /// built by the embedding step the paper cites ([2]).
    global_schema: HashMap<String, Schema>,
    /// The credential group of the deployment (from the sources' CA keys —
    /// public parameters), needed to decode credentials off the wire.
    credential_group: Option<SafePrimeGroup>,
    rng: HmacDrbg,
}

impl Mediator {
    /// Creates a mediator knowing the embedded schemas of its contracted
    /// datasources (schemas are public metadata; contents are not).
    pub fn new(sources: &[&DataSource]) -> Self {
        let global_schema = sources
            .iter()
            .map(|s| (s.name().to_string(), s.schema().clone()))
            .collect();
        let credential_group = sources.first().map(|s| s.ca_key().group().clone());
        Mediator {
            global_schema,
            credential_group,
            rng: HmacDrbg::from_label("mediator"),
        }
    }

    /// The group credentials are issued in (for decoding them off the
    /// wire).  Errors if the mediator has no contracted sources.
    pub fn credential_group(&self) -> Result<&SafePrimeGroup, MedError> {
        self.credential_group
            .as_ref()
            .ok_or_else(|| MedError::Protocol("mediator has no contracted sources".to_string()))
    }

    /// The schema registered for a relation.
    pub fn schema_of(&self, relation: &str) -> Result<&Schema, MedError> {
        self.global_schema
            .get(relation)
            .ok_or_else(|| MedError::Protocol(format!("unknown relation {relation}")))
    }

    /// Infers natural-join attributes between two registered relations
    /// (paper Section 2: "the mediator can identify the sets A1 and A2 of
    /// attributes that have to be considered in the JOIN operation").
    pub fn natural_join_attrs(&self, left: &str, right: &str) -> Result<Vec<String>, MedError> {
        let l = self.schema_of(left)?;
        let r = self.schema_of(right)?;
        let attrs = l.common_attributes(r);
        if attrs.is_empty() {
            return Err(MedError::Protocol(format!(
                "relations {left} and {right} share no attributes"
            )));
        }
        Ok(attrs)
    }

    /// The mediator's DRBG.
    pub fn rng(&mut self) -> &mut HmacDrbg {
        &mut self.rng
    }
}

/// Convenience: a fresh DRBG for auxiliary parties in tests/benches.
pub fn seeded_rng(label: &str) -> impl Rng {
    HmacDrbg::from_label(label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::{Predicate, Type, Value};
    use secmed_crypto::group::GroupSize;

    fn fixture() -> (CertificationAuthority, Client, DataSource) {
        let group = SafePrimeGroup::preset(GroupSize::S256);
        let mut rng = HmacDrbg::from_label("party-tests");
        let ca = CertificationAuthority::new(group.clone(), &mut rng);
        let client = Client::setup(
            &ca,
            vec![Property::new("role", "auditor")],
            group,
            256,
            "party-client",
        );
        let relation = Relation::build(
            Schema::new(&[("id", Type::Int), ("v", Type::Int)]),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        let policy = AccessPolicy::new(vec![crate::policy::AccessRule::filtered(
            vec![Property::new("role", "auditor")],
            Predicate::eq_lit("id", 1i64),
        )]);
        let source = DataSource::new("r", relation, policy, ca.public_key().clone());
        (ca, client, source)
    }

    #[test]
    fn client_setup_produces_credential_with_both_keys() {
        let (ca, client, _) = fixture();
        let cred = &client.credentials()[0];
        assert!(cred.verify(ca.public_key()).is_ok());
        assert!(cred.paillier_key().is_some());
        assert_eq!(cred.hybrid_key(), &client.hybrid().public());
    }

    #[test]
    fn source_filters_partial_result_by_policy() {
        let (_, client, mut source) = fixture();
        let partial = source.answer_partial_query(client.credentials()).unwrap();
        assert_eq!(partial.len(), 1);
        assert_eq!(partial.tuples()[0].at(0), &Value::Int(1));
    }

    #[test]
    fn source_rejects_unsigned_credentials() {
        let (_, client, _) = fixture();
        // A source trusting a different CA rejects the client's credential.
        let group = SafePrimeGroup::preset(GroupSize::S256);
        let mut rng = HmacDrbg::from_label("other-ca");
        let other_ca = CertificationAuthority::new(group, &mut rng);
        let mut source2 = DataSource::new(
            "r2",
            Relation::empty(Schema::new(&[("id", Type::Int)])),
            AccessPolicy::allow_all(),
            other_ca.public_key().clone(),
        );
        assert!(source2.answer_partial_query(client.credentials()).is_err());
    }

    #[test]
    fn mediator_infers_join_attributes() {
        let (_, _, source) = fixture();
        let other = DataSource::new(
            "s",
            Relation::empty(Schema::new(&[("id", Type::Int), ("w", Type::Str)])),
            AccessPolicy::allow_all(),
            source.ca_key.clone(),
        );
        let med = Mediator::new(&[&source, &other]);
        assert_eq!(med.natural_join_attrs("r", "s").unwrap(), vec!["id"]);
        assert!(med.schema_of("nope").is_err());
    }

    #[test]
    fn mediator_rejects_joinless_pairs() {
        let (_, _, source) = fixture();
        let other = DataSource::new(
            "s",
            Relation::empty(Schema::new(&[("x", Type::Int)])),
            AccessPolicy::allow_all(),
            source.ca_key.clone(),
        );
        let med = Mediator::new(&[&source, &other]);
        assert!(med.natural_join_attrs("r", "s").is_err());
    }
}
