//! Typed query plans and their execution over the mediator hierarchy.
//!
//! This module holds the *vocabulary* of the planning layer — the
//! [`LeakageBudget`] a client declares in the Table 1 view terms from
//! [`crate::audit`], the per-protocol [`exposure`] profiles scored against
//! it, and the typed [`Plan`] tree — plus [`Engine::run_plan`], which
//! executes a plan node by node: every join runs a full credential-checked
//! mediation with the node's chosen protocol, and each intermediate result
//! is installed as a derived datasource for its parent node (the Section 8
//! mediator hierarchy, generalized from [`crate::hierarchy::chained_join`]
//! to arbitrary left-deep trees with per-node protocol choice).
//!
//! The planning *algorithm* — join-order enumeration, statistics, cost
//! scoring — lives in the `secmed-plan` crate; this module only defines
//! what a plan *is* and how to run one, so `secmed-plan` can depend on
//! core without a cycle.

use relalg::sql::Residual;
use relalg::Relation;

use crate::cost::{divergence, predict, shape_of_join, Divergence, PredictedOps};
use crate::credential::CertificationAuthority;
use crate::engine::{Engine, ExecPolicy, RunOptions, TraceSink};
use crate::hierarchy::SourceSpec;
use crate::party::{Client, DataSource, Mediator};
use crate::policy::AccessPolicy;
use crate::protocol::{apply_residual, ProtocolKind, RunReport, Scenario};
use crate::transport::{DeliveryPolicy, FaultPlan};
use crate::MedError;

/// What each party may learn beyond the exact global result, in the
/// Table 1 view vocabulary ([`crate::audit::MediatorView`] /
/// [`crate::audit::ClientView`]).  The same struct expresses a client's
/// *budget* (what it permits) and a protocol's *exposure* (what it
/// reveals); a protocol is admissible when its exposure is a subset of
/// the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakageBudget {
    /// Mediator may learn the partial-result row counts (`|R_1|`,
    /// `|R_2|`) and the server-result size `|R_C|` (DAS).
    pub mediator_result_sizes: bool,
    /// Mediator may learn the active join-domain sizes
    /// (`|domactive(R_i.A_join)|` — commutative and PM).
    pub mediator_domain_sizes: bool,
    /// Mediator may learn the exact intersection size `|dom_1 ∩ dom_2|`
    /// (commutative only; a lower bound on the result size).
    pub mediator_intersection_size: bool,
    /// Mediator may hold the *plaintext* index tables (DAS mediator
    /// setting — the leakage that makes the client setting the default).
    pub plaintext_index_tables: bool,
    /// Client may receive a superset of the global result plus both index
    /// tables (DAS).
    pub client_superset: bool,
    /// Client may receive one ciphertext per active-domain value of either
    /// source, only the intersection of which decrypts usefully (PM).
    pub client_extra_ciphertexts: bool,
}

impl LeakageBudget {
    /// Everything permitted — cost alone decides.
    pub fn open() -> Self {
        LeakageBudget {
            mediator_result_sizes: true,
            mediator_domain_sizes: true,
            mediator_intersection_size: true,
            plaintext_index_tables: true,
            client_superset: true,
            client_extra_ciphertexts: true,
        }
    }

    /// Nothing permitted beyond the exact result — no protocol of the
    /// paper qualifies; planning under this budget reports why.
    pub fn exact_result_only() -> Self {
        LeakageBudget {
            mediator_result_sizes: false,
            mediator_domain_sizes: false,
            mediator_intersection_size: false,
            plaintext_index_tables: false,
            client_superset: false,
            client_extra_ciphertexts: false,
        }
    }

    /// True when `exposure` stays within this budget (pointwise
    /// implication: whatever the protocol reveals must be permitted).
    pub fn permits(&self, exposure: &LeakageBudget) -> bool {
        (!exposure.mediator_result_sizes || self.mediator_result_sizes)
            && (!exposure.mediator_domain_sizes || self.mediator_domain_sizes)
            && (!exposure.mediator_intersection_size || self.mediator_intersection_size)
            && (!exposure.plaintext_index_tables || self.plaintext_index_tables)
            && (!exposure.client_superset || self.client_superset)
            && (!exposure.client_extra_ciphertexts || self.client_extra_ciphertexts)
    }

    /// The Table 1 cells this profile asserts, for rationale strings.
    pub fn describe(&self) -> String {
        let mut on = Vec::new();
        if self.mediator_result_sizes {
            on.push("mediator:result-sizes");
        }
        if self.mediator_domain_sizes {
            on.push("mediator:domain-sizes");
        }
        if self.mediator_intersection_size {
            on.push("mediator:intersection-size");
        }
        if self.plaintext_index_tables {
            on.push("mediator:plaintext-index-tables");
        }
        if self.client_superset {
            on.push("client:superset");
        }
        if self.client_extra_ciphertexts {
            on.push("client:extra-ciphertexts");
        }
        if on.is_empty() {
            "exact result only".to_string()
        } else {
            on.join(", ")
        }
    }
}

/// The static leakage profile of one protocol configuration — Table 1
/// expressed as a [`LeakageBudget`]-shaped exposure set.
pub fn exposure(kind: &ProtocolKind) -> LeakageBudget {
    let mut e = LeakageBudget {
        mediator_result_sizes: false,
        mediator_domain_sizes: false,
        mediator_intersection_size: false,
        plaintext_index_tables: false,
        client_superset: false,
        client_extra_ciphertexts: false,
    };
    match kind {
        ProtocolKind::Das(cfg) => {
            e.mediator_result_sizes = true;
            e.client_superset = true;
            if matches!(cfg.setting, crate::protocol::DasSetting::MediatorSetting) {
                e.plaintext_index_tables = true;
            }
        }
        ProtocolKind::Commutative(_) => {
            e.mediator_domain_sizes = true;
            e.mediator_intersection_size = true;
        }
        ProtocolKind::Pm(_) => {
            e.mediator_domain_sizes = true;
            e.client_extra_ciphertexts = true;
        }
    }
    e
}

/// One input of a plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeInput {
    /// A base datasource, by relation name.
    Source(String),
    /// The result of an earlier plan node (arena index — always less than
    /// the consuming node's own index).
    Node(usize),
}

/// One mediated join in the plan tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// Left input (source or earlier node).
    pub left: NodeInput,
    /// Right input.
    pub right: NodeInput,
    /// Join attribute base names.
    pub attrs: Vec<String>,
    /// The delivery protocol chosen for this node.
    pub protocol: ProtocolKind,
    /// Planning-time operation estimate from the §6 closed forms over the
    /// per-source statistics (the *exact* per-node prediction is
    /// recomputed from the actual input relations at execution time).
    pub predicted: PredictedOps,
    /// Estimated result rows (drives parent-node estimates).
    pub estimated_rows: u64,
    /// Why this protocol won: admissibility under the budget plus the
    /// weighted-cost comparison.
    pub rationale: String,
}

/// A typed query plan: an arena of join nodes (root last, inputs always
/// earlier), per-source pushed-down filters, and the client residual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// The SQL text this plan was built from.
    pub query: String,
    /// Base relations in FROM order.
    pub tables: Vec<String>,
    /// Pushed-down per-source selections (applied before mediation).
    pub scan_preds: Vec<(String, relalg::Predicate)>,
    /// Join nodes in execution order; the last node is the root.
    pub nodes: Vec<PlanNode>,
    /// Client-side residual work after the root join.
    pub residual: Residual,
    /// The budget the plan was scored against.
    pub budget: LeakageBudget,
}

impl Plan {
    /// Index of the root node.
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Human-readable rendering: one line per node.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan for {:?} under budget [{}]\n",
            self.query,
            self.budget.describe()
        ));
        for (i, n) in self.nodes.iter().enumerate() {
            let name = |input: &NodeInput| match input {
                NodeInput::Source(s) => s.clone(),
                NodeInput::Node(j) => format!("#{j}"),
            };
            out.push_str(&format!(
                "  #{i}: {} ⨝[{}] {} via {} (est. {} ops, {} rows) — {}\n",
                name(&n.left),
                n.attrs.join(","),
                name(&n.right),
                n.protocol.key(),
                n.predicted.weighted_cost(),
                n.estimated_rows,
                n.rationale
            ));
        }
        out
    }
}

/// Options for executing a plan (everything [`RunOptions`] carries except
/// the protocol, which the plan chooses per node).
#[derive(Debug, Clone)]
pub struct PlanRunOptions {
    /// Thread policy for the deterministic fork-join pool.
    pub exec: ExecPolicy,
    /// Trace handling for every node run.
    pub trace: TraceSink,
    /// Bounded-retry policy.
    pub delivery: DeliveryPolicy,
    /// Optional fault plan, installed on every node's fabric.
    pub faults: Option<FaultPlan>,
}

impl Default for PlanRunOptions {
    fn default() -> Self {
        PlanRunOptions {
            exec: ExecPolicy::sequential(),
            trace: TraceSink::Keep,
            delivery: DeliveryPolicy::default(),
            faults: None,
        }
    }
}

impl PlanRunOptions {
    /// Sets the worker-thread count (1 = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.exec = ExecPolicy::threads(threads);
        self
    }

    /// Sets the trace sink.
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// The per-node [`RunOptions`] for a chosen protocol.
    fn node_options(&self, protocol: ProtocolKind) -> RunOptions {
        RunOptions {
            protocol,
            exec: self.exec,
            trace: self.trace,
            delivery: self.delivery,
            faults: self.faults.clone(),
        }
    }
}

/// Execution record of one plan node: the full protocol report plus the
/// predicted-vs-observed primitive cross-check.
#[derive(Debug)]
pub struct NodeReport {
    /// `left ⨝ right` with resolved input names.
    pub label: String,
    /// The protocol this node ran.
    pub protocol: ProtocolKind,
    /// Exact §6 prediction recomputed from the node's actual input
    /// relations (and, for DAS, the observed server-result size).
    pub predicted: PredictedOps,
    /// The measured primitive census of this node's run.
    pub observed: PredictedOps,
    /// Counter-by-counter comparison of the two.
    pub divergence: Divergence,
    /// The node's full protocol report.
    pub report: RunReport,
}

/// The outcome of executing a whole plan.
#[derive(Debug)]
pub struct PlanReport {
    /// The final result after the client residual.
    pub result: Relation,
    /// Per-node reports, in plan (execution) order.
    pub nodes: Vec<NodeReport>,
}

impl Engine {
    /// Executes a [`Plan`] over the mediator hierarchy: each node runs a
    /// full credential-checked mediation with its chosen protocol, and
    /// intermediate results become derived allow-all datasources for
    /// parent nodes (their rows were already filtered by the child
    /// stages' policies).  Pushed-down scan predicates are applied to the
    /// source relations before mediation; the plan's residual runs
    /// client-side at the end.
    ///
    /// The per-node `predicted` in the returned report is recomputed from
    /// the actual input relations, so for unfiltered (allow-all) policies
    /// it must match the observed census exactly — the
    /// [`Divergence`] cross-check enforces the §6 closed forms per node.
    pub fn run_plan(
        ca: &CertificationAuthority,
        client_template: impl Fn() -> Client,
        sources: Vec<SourceSpec>,
        plan: &Plan,
        opts: &PlanRunOptions,
    ) -> Result<PlanReport, MedError> {
        // Install pushed-down filters on the source relations.
        let mut pool: Vec<(String, Relation, AccessPolicy)> = Vec::new();
        for spec in sources {
            let relation = match plan
                .scan_preds
                .iter()
                .find(|(t, _)| *t == spec.name)
                .map(|(_, p)| p)
            {
                Some(pred) => spec.relation.select(pred)?,
                None => spec.relation,
            };
            pool.push((spec.name, relation, spec.policy));
        }

        let take_input = |pool: &mut Vec<(String, Relation, AccessPolicy)>,
                          results: &mut Vec<Option<(String, Relation)>>,
                          input: &NodeInput|
         -> Result<(String, Relation, AccessPolicy), MedError> {
            match input {
                NodeInput::Source(name) => {
                    let i = pool.iter().position(|(n, _, _)| n == name).ok_or_else(|| {
                        MedError::Protocol(format!(
                            "plan references source {name} not provided (or used twice)"
                        ))
                    })?;
                    let (n, r, p) = pool.remove(i);
                    Ok((n, r, p))
                }
                NodeInput::Node(j) => {
                    let (name, rel) =
                        results.get_mut(*j).and_then(Option::take).ok_or_else(|| {
                            MedError::Protocol(format!(
                                "plan node input #{j} missing or consumed twice"
                            ))
                        })?;
                    // A derived source serves rows the child stages already
                    // policy-filtered; it grants the same client full access.
                    Ok((name, rel, AccessPolicy::allow_all()))
                }
            }
        };

        let mut results: Vec<Option<(String, Relation)>> = Vec::new();
        let mut node_reports: Vec<NodeReport> = Vec::new();
        for node in &plan.nodes {
            let (lname, lrel, lpolicy) = take_input(&mut pool, &mut results, &node.left)?;
            let (rname, rrel, rpolicy) = take_input(&mut pool, &mut results, &node.right)?;
            let left = DataSource::new(&lname, lrel.clone(), lpolicy, ca.public_key().clone());
            let right = DataSource::new(&rname, rrel.clone(), rpolicy, ca.public_key().clone());
            let mediator = Mediator::new(&[&left, &right]);
            let conds: Vec<String> = node
                .attrs
                .iter()
                .map(|a| format!("{lname}.{a} = {rname}.{a}"))
                .collect();
            let query = format!(
                "select * from {lname}, {rname} where {}",
                conds.join(" and ")
            );
            let mut scenario = Scenario {
                client: client_template(),
                mediator,
                left,
                right,
                query,
            };
            let report = Engine::run(&mut scenario, &opts.node_options(node.protocol))?;
            if !report.outcome.delivered() {
                return Err(MedError::Protocol(format!(
                    "plan node {lname} ⨝ {rname} aborted; no relation to continue with ({})",
                    report.outcome
                )));
            }
            let server_result = report.mediator_view.server_result_size.unwrap_or(0);
            let predicted = predict(
                &node.protocol,
                &shape_of_join(&lrel, &rrel, &node.attrs, server_result)?,
            );
            let observed = crate::cost::observed(&report.primitives);
            let label = format!("{lname} ⨝ {rname}");
            results.push(Some((format!("{lname}_{rname}"), report.result.clone())));
            node_reports.push(NodeReport {
                label,
                protocol: node.protocol,
                divergence: divergence(&predicted, &observed),
                predicted,
                observed,
                report,
            });
        }

        let root = results
            .last_mut()
            .and_then(Option::take)
            .ok_or_else(|| MedError::Protocol("plan has no nodes".to_string()))?;
        let result = apply_residual(&root.1, &plan.residual)?;
        Ok(PlanReport {
            result,
            nodes: node_reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CommutativeConfig, DasConfig, DasSetting, PmConfig};

    #[test]
    fn exposure_profiles_follow_table1() {
        let das = exposure(&ProtocolKind::Das(DasConfig::default()));
        assert!(das.mediator_result_sizes && das.client_superset);
        assert!(!das.plaintext_index_tables, "client setting is the default");
        let das_med = exposure(&ProtocolKind::Das(DasConfig {
            setting: DasSetting::MediatorSetting,
            ..Default::default()
        }));
        assert!(das_med.plaintext_index_tables);
        let comm = exposure(&ProtocolKind::Commutative(CommutativeConfig::default()));
        assert!(comm.mediator_domain_sizes && comm.mediator_intersection_size);
        assert!(!comm.client_superset && !comm.client_extra_ciphertexts);
        let pm = exposure(&ProtocolKind::Pm(PmConfig::default()));
        assert!(pm.mediator_domain_sizes && pm.client_extra_ciphertexts);
        assert!(!pm.mediator_intersection_size);
    }

    #[test]
    fn budget_admissibility() {
        let open = LeakageBudget::open();
        let strict = LeakageBudget::exact_result_only();
        for kind in [
            ProtocolKind::Das(DasConfig::default()),
            ProtocolKind::Commutative(CommutativeConfig::default()),
            ProtocolKind::Pm(PmConfig::default()),
        ] {
            assert!(open.permits(&exposure(&kind)));
            assert!(!strict.permits(&exposure(&kind)));
        }
        // Refusing the intersection size rules out commutative but not PM.
        let no_intersection = LeakageBudget {
            mediator_intersection_size: false,
            ..LeakageBudget::open()
        };
        assert!(
            !no_intersection.permits(&exposure(&ProtocolKind::Commutative(
                CommutativeConfig::default()
            )))
        );
        assert!(no_intersection.permits(&exposure(&ProtocolKind::Pm(PmConfig::default()))));
    }
}
