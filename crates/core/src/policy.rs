//! Credential-based access control at the datasources.
//!
//! Paper Section 2: "Datasources base their access control decisions only
//! on the properties presented in the credentials.  If the presented
//! credentials suffice to grant data access, the datasources evaluate the
//! partial queries.  In case the credentials do not allow full data
//! access, the partial results might be filtered in order to return only
//! those records for which access permissions exist."

use relalg::{Predicate, Relation};

use crate::credential::{Credential, Property};
use crate::MedError;

/// One rule: clients presenting all `required` properties may read the
/// rows matching `row_filter` (use [`Predicate::True`] for full access).
#[derive(Debug, Clone)]
pub struct AccessRule {
    /// Properties that must all be asserted by the presented credentials.
    pub required: Vec<Property>,
    /// The rows this rule grants.
    pub row_filter: Predicate,
}

impl AccessRule {
    /// Grants all rows to holders of `required`.
    pub fn full_access(required: Vec<Property>) -> Self {
        AccessRule {
            required,
            row_filter: Predicate::True,
        }
    }

    /// Grants the rows matching `filter` to holders of `required`.
    pub fn filtered(required: Vec<Property>, filter: Predicate) -> Self {
        AccessRule {
            required,
            row_filter: filter,
        }
    }

    fn satisfied_by(&self, credentials: &[Credential]) -> bool {
        self.required
            .iter()
            .all(|p| credentials.iter().any(|c| c.asserts(p)))
    }
}

/// A datasource's policy: the union of its rules.
#[derive(Debug, Clone, Default)]
pub struct AccessPolicy {
    rules: Vec<AccessRule>,
}

/// Outcome of an access-control decision.
#[derive(Debug, Clone)]
pub enum AccessDecision {
    /// Some rule matched; the relation may be read through this filter
    /// (the union of all matching rules' row filters).
    Granted(Predicate),
    /// No rule matched.
    Denied,
}

impl AccessPolicy {
    /// A policy that grants everything to everyone (for tests and
    /// intra-enterprise deployments with a trusted perimeter).
    pub fn allow_all() -> Self {
        AccessPolicy {
            rules: vec![AccessRule::full_access(vec![])],
        }
    }

    /// A policy from explicit rules.
    pub fn new(rules: Vec<AccessRule>) -> Self {
        AccessPolicy { rules }
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: AccessRule) {
        self.rules.push(rule);
    }

    /// Every property any rule may require — advertised to the mediator so
    /// it can select the credential subsets `CR_i` (Listing 1, step 2).
    /// This is policy *metadata*, not data.
    pub fn advertised_properties(&self) -> Vec<Property> {
        let mut props: Vec<Property> = self
            .rules
            .iter()
            .flat_map(|r| r.required.iter().cloned())
            .collect();
        props.sort();
        props.dedup();
        props
    }

    /// Decides access for the presented credentials.
    pub fn decide(&self, credentials: &[Credential]) -> AccessDecision {
        let mut granted: Option<Predicate> = None;
        for rule in &self.rules {
            if rule.satisfied_by(credentials) {
                granted = Some(match granted.take() {
                    Some(acc) => acc.or(rule.row_filter.clone()),
                    None => rule.row_filter.clone(),
                });
            }
        }
        match granted {
            Some(p) => AccessDecision::Granted(p),
            None => AccessDecision::Denied,
        }
    }

    /// Applies the decision to a relation: the filtered partial result, or
    /// an access-denied error.
    pub fn filter(
        &self,
        relation: &Relation,
        credentials: &[Credential],
        source_name: &str,
    ) -> Result<Relation, MedError> {
        match self.decide(credentials) {
            AccessDecision::Granted(pred) => Ok(relation.select(&pred)?),
            AccessDecision::Denied => Err(MedError::AccessDenied(source_name.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::credential::CertificationAuthority;
    use relalg::{Schema, Type, Value};
    use secmed_crypto::drbg::HmacDrbg;
    use secmed_crypto::group::{GroupSize, SafePrimeGroup};
    use secmed_crypto::hybrid::HybridKeyPair;

    fn creds(props: &[(&str, &str)]) -> Vec<Credential> {
        let mut rng = HmacDrbg::from_label("policy-tests");
        let group = SafePrimeGroup::preset(GroupSize::S256);
        let ca = CertificationAuthority::new(group.clone(), &mut rng);
        let kp = HybridKeyPair::generate(group, &mut rng);
        props
            .iter()
            .map(|(n, v)| ca.issue(vec![Property::new(*n, *v)], kp.public(), None, &mut rng))
            .collect()
    }

    fn relation() -> Relation {
        Relation::build(
            Schema::new(&[("id", Type::Int), ("sensitive", Type::Bool)]),
            vec![
                vec![Value::Int(1), Value::Bool(false)],
                vec![Value::Int(2), Value::Bool(true)],
                vec![Value::Int(3), Value::Bool(false)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn allow_all_grants_everything() {
        let policy = AccessPolicy::allow_all();
        let out = policy.filter(&relation(), &[], "s1").unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn missing_properties_denied() {
        let policy = AccessPolicy::new(vec![AccessRule::full_access(vec![Property::new(
            "role",
            "physician",
        )])]);
        let err = policy.filter(&relation(), &creds(&[("role", "student")]), "s1");
        assert!(matches!(err, Err(MedError::AccessDenied(_))));
    }

    #[test]
    fn row_filters_apply() {
        let policy = AccessPolicy::new(vec![AccessRule::filtered(
            vec![Property::new("role", "auditor")],
            Predicate::eq_lit("sensitive", false),
        )]);
        let out = policy
            .filter(&relation(), &creds(&[("role", "auditor")]), "s1")
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn matching_rules_union_their_filters() {
        let policy = AccessPolicy::new(vec![
            AccessRule::filtered(
                vec![Property::new("role", "auditor")],
                Predicate::eq_lit("id", 1i64),
            ),
            AccessRule::filtered(
                vec![Property::new("dept", "claims")],
                Predicate::eq_lit("id", 2i64),
            ),
        ]);
        let cs = creds(&[("role", "auditor"), ("dept", "claims")]);
        let out = policy.filter(&relation(), &cs, "s1").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn rule_requiring_multiple_properties() {
        let rule = AccessRule::full_access(vec![
            Property::new("role", "auditor"),
            Property::new("dept", "claims"),
        ]);
        let policy = AccessPolicy::new(vec![rule]);
        // Properties spread across two credentials still satisfy the rule.
        let cs = creds(&[("role", "auditor"), ("dept", "claims")]);
        assert!(matches!(policy.decide(&cs), AccessDecision::Granted(_)));
        let cs_partial = creds(&[("role", "auditor")]);
        assert!(matches!(policy.decide(&cs_partial), AccessDecision::Denied));
    }
}
