//! The commutative-encryption delivery phase (paper Listing 3, after
//! Agrawal et al.).
//!
//! Each source hashes every active join value into the quadratic-residue
//! group (the ideal hash `h`), encrypts the hashes under its own secret
//! SRA exponent, and hybrid-encrypts the matching tuple sets for the
//! client.  The hash values make a round trip through the *opposite*
//! source, which applies its own exponent — commutativity makes the double
//! encryptions comparable — and the mediator matches equal double
//! encryptions to pair up `encrypt(Tup_1(a))` with `encrypt(Tup_2(a))`.
//!
//! [`CommutativeMode::IdReferences`] implements the paper's footnote 1:
//! the mediator keeps the tuple ciphertexts and circulates only
//! fixed-length IDs alongside the hash values.  In `EchoTuples` the tuple
//! ciphertexts really do ride every leg of the round trip, so the byte
//! difference between the modes is visible on the recorded frames.

use std::collections::BTreeMap;

use mpint::rng::Rng;
use mpint::Natural;
use relalg::{decode_tuple_set, encode_tuple_set, Tuple};
use secmed_crypto::drbg::DrbgFamily;
use secmed_crypto::hybrid::HybridCiphertext;
use secmed_crypto::{SraCipher, SraDomain};
use secmed_pool::Pool;

use crate::protocol::{
    apply_residual, assemble_from_tuple_sets, degrade_note, group_by_join_key, CommutativeConfig,
    CommutativeMode, Prepared, RunOutcome, RunReport, Scenario,
};
use crate::transport::{Fabric, Frame, PartyId, Transport};
use crate::MedError;
use secmed_wire::TupleRef;

/// One element of a source's message set `M_i`: the singly-encrypted hash
/// with its client-encrypted tuple set.
struct SourceMessage {
    enc_hash: Natural,
    tuple_ct: HybridCiphertext,
}

/// Runs the delivery phase of Listing 3.
pub fn deliver<F: Fabric>(
    sc: &mut Scenario,
    p: Prepared,
    cfg: CommutativeConfig,
    transport: &mut F,
    pool: &Pool,
) -> Result<RunReport, MedError> {
    // The client key each source encrypts tuple sets under comes from its
    // forwarded credentials; the SRA domain is the same public group.
    let left_pk = p.left_client_key().clone();
    let right_pk = p.right_client_key().clone();
    let domain = SraDomain::new(left_pk.group().clone());

    // Step 1-2 at each source: fresh SRA key; hash+encrypt each active
    // value; hybrid-encrypt each Tup_i(a).
    let (s1, s2, m1, m2) = {
        let mut s = secmed_obs::span("commutative.encryption");
        let s1 = SraCipher::generate(domain.clone(), sc.left.rng());
        let s2 = SraCipher::generate(domain.clone(), sc.right.rng());

        let groups1 = group_by_join_key(&p.left_partial, &p.join_attrs)?;
        let groups2 = group_by_join_key(&p.right_partial, &p.join_attrs)?;

        let m1 = build_messages(&s1, &groups1, &left_pk, sc.left.rng(), pool);
        let m2 = build_messages(&s2, &groups2, &right_pk, sc.right.rng(), pool);
        s.field("left_domain", m1.len());
        s.field("right_domain", m2.len());
        (s1, s2, m1, m2)
    };

    // Step 3: Si → mediator, each set as one frame.  The mediator's copies
    // are the decoded frames — they are what it later matches over.
    let transfer = secmed_obs::span("commutative.transfer");
    let to_set = |ms: &[SourceMessage]| Frame::CommutativeSet {
        items: ms
            .iter()
            .map(|m| (m.enc_hash.clone(), m.tuple_ct.clone()))
            .collect(),
    };
    let received = transport.deliver(
        PartyId::source(sc.left.name()),
        PartyId::Mediator,
        "L3.3 M1",
        &to_set(&m1),
    )?;
    let Frame::CommutativeSet { items: med_m1 } = received else {
        return Err(MedError::Protocol("expected a value-set frame".to_string()));
    };
    let received = transport.deliver(
        PartyId::source(sc.right.name()),
        PartyId::Mediator,
        "L3.3 M2",
        &to_set(&m2),
    )?;
    let Frame::CommutativeSet { items: med_m2 } = received else {
        return Err(MedError::Protocol("expected a value-set frame".to_string()));
    };

    // Step 4: the hash values cross to the opposite source.  In
    // `EchoTuples` the tuple ciphertexts ride along (exactly Listing 3);
    // in `IdReferences` (footnote 1) the mediator keeps them and sends
    // fixed-length IDs instead.
    let cross_ref = |idx: usize, ct: &HybridCiphertext| match cfg.mode {
        CommutativeMode::EchoTuples => TupleRef::Echo(ct.clone()),
        CommutativeMode::IdReferences => TupleRef::Id(idx as u64),
    };
    let cross_of = |items: &[(Natural, HybridCiphertext)]| Frame::CommutativeCross {
        items: items
            .iter()
            .enumerate()
            .map(|(i, (v, ct))| (v.clone(), cross_ref(i, ct)))
            .collect(),
    };
    // An exhausted L3.4 delivery degrades to an empty crossing set for
    // that source: its doubled set comes back empty, so every match
    // involving it is lost — a *partial* intersection, reported as
    // `Degraded`, never a silent wrong answer (matching only ever removes
    // pairs, and the client still verifies join values in step 8).
    let mut degraded: Vec<String> = Vec::new();
    let s1_in = match transport.deliver(
        PartyId::Mediator,
        PartyId::source(sc.left.name()),
        "L3.4 M2 → S1",
        &cross_of(&med_m2),
    ) {
        Ok(Frame::CommutativeCross { items }) => items,
        Ok(_) => return Err(MedError::Protocol("expected a crossing frame".to_string())),
        Err(MedError::Delivery(f)) if transport.degrade_on_exhausted() => {
            degraded.push(degrade_note(&f));
            Vec::new()
        }
        Err(e) => return Err(e),
    };
    let s2_in = match transport.deliver(
        PartyId::Mediator,
        PartyId::source(sc.right.name()),
        "L3.4 M1 → S2",
        &cross_of(&med_m1),
    ) {
        Ok(Frame::CommutativeCross { items }) => items,
        Ok(_) => return Err(MedError::Protocol("expected a crossing frame".to_string())),
        Err(MedError::Delivery(f)) if transport.degrade_on_exhausted() => {
            degraded.push(degrade_note(&f));
            Vec::new()
        }
        Err(e) => return Err(e),
    };
    drop(transfer);

    // Steps 5-6: each source applies its own exponent to the received
    // hashes and sends the doubled set back, echoing each tuple reference
    // unchanged.  SRA re-encryption is deterministic given the key, so the
    // double passes parallelize with no RNG plumbing at all.
    let (doubled_by_s1, doubled_by_s2) = {
        let _s = secmed_obs::span("commutative.encryption");
        let d1: Vec<Natural> = pool.par_map(&s1_in, |_, (v, _)| s1.encrypt(v));
        let d2: Vec<Natural> = pool.par_map(&s2_in, |_, (v, _)| s2.encrypt(v));
        let doubled =
            |ds: Vec<Natural>, items: Vec<(Natural, TupleRef)>| Frame::CommutativeDoubled {
                items: ds
                    .into_iter()
                    .zip(items)
                    .map(|(d, (_, tr))| (d, tr))
                    .collect(),
            };
        (doubled(d1, s1_in), doubled(d2, s2_in))
    };
    let transfer = secmed_obs::span("commutative.transfer");
    // L3.5/L3.6 degrade the same way: a doubled set that never arrives
    // contributes no matches.
    let doubled_m2 = match transport.deliver(
        PartyId::source(sc.left.name()),
        PartyId::Mediator,
        "L3.5 ⟨f_e1(f_e2(h(a))), …⟩",
        &doubled_by_s1,
    ) {
        Ok(Frame::CommutativeDoubled { items }) => items,
        Ok(_) => {
            return Err(MedError::Protocol(
                "expected a doubled-set frame".to_string(),
            ))
        }
        Err(MedError::Delivery(f)) if transport.degrade_on_exhausted() => {
            degraded.push(degrade_note(&f));
            Vec::new()
        }
        Err(e) => return Err(e),
    };
    let doubled_m1 = match transport.deliver(
        PartyId::source(sc.right.name()),
        PartyId::Mediator,
        "L3.6 ⟨f_e2(f_e1(h(a))), …⟩",
        &doubled_by_s2,
    ) {
        Ok(Frame::CommutativeDoubled { items }) => items,
        Ok(_) => {
            return Err(MedError::Protocol(
                "expected a doubled-set frame".to_string(),
            ))
        }
        Err(MedError::Delivery(f)) if transport.degrade_on_exhausted() => {
            degraded.push(degrade_note(&f));
            Vec::new()
        }
        Err(e) => return Err(e),
    };
    drop(transfer);

    // Step 7: the mediator matches identical first components and resolves
    // each tuple reference — echoed ciphertexts come out of the doubled
    // frames themselves, IDs out of the L3.3 sets the mediator kept.
    let mut intersection = secmed_obs::span("commutative.intersection");
    let resolve = |tr: &TupleRef,
                   kept: &[(Natural, HybridCiphertext)]|
     -> Result<HybridCiphertext, MedError> {
        match tr {
            TupleRef::Echo(ct) => Ok(ct.clone()),
            TupleRef::Id(i) => kept
                .get(*i as usize)
                .map(|(_, ct)| ct.clone())
                .ok_or_else(|| MedError::Protocol(format!("tuple reference {i} out of range"))),
        }
    };
    let mut by_double: BTreeMap<Vec<u8>, &TupleRef> = BTreeMap::new();
    for (d, tr) in &doubled_m1 {
        by_double.insert(d.to_bytes_be(), tr);
    }
    let mut result_pairs: Vec<(HybridCiphertext, HybridCiphertext)> = Vec::new();
    for (d, tr2) in &doubled_m2 {
        if let Some(tr1) = by_double.get(&d.to_bytes_be()) {
            result_pairs.push((resolve(tr1, &med_m1)?, resolve(tr2, &med_m2)?));
        }
    }
    intersection.field("matches", result_pairs.len());
    drop(intersection);

    let received = {
        let _s = secmed_obs::span("commutative.transfer");
        transport.deliver(
            PartyId::Mediator,
            PartyId::Client,
            "L3.7 ⟨encrypt(Tup1(a)), encrypt(Tup2(a))⟩ result messages",
            &Frame::ResultPairs {
                pairs: result_pairs,
            },
        )?
    };
    let Frame::ResultPairs { pairs } = received else {
        return Err(MedError::Protocol(
            "expected a result-pairs frame".to_string(),
        ));
    };

    // Step 8: the client decrypts and combines (cross product per pair).
    let mut post = secmed_obs::span("commutative.post");
    let mut tuple_set_pairs: Vec<(Vec<Tuple>, Vec<Tuple>)> = Vec::with_capacity(pairs.len());
    for (ct1, ct2) in &pairs {
        let ts1 = decode_tuple_set(&sc.client.hybrid().decrypt(ct1)?)?;
        let ts2 = decode_tuple_set(&sc.client.hybrid().decrypt(ct2)?)?;
        tuple_set_pairs.push((ts1, ts2));
    }
    let joined = assemble_from_tuple_sets(
        p.left_partial.schema(),
        p.right_partial.schema(),
        &p.join_attrs,
        &tuple_set_pairs,
    )?;
    let result = apply_residual(&joined, &p.residual)?;
    post.field("result_rows", result.len());
    drop(post);

    {
        use secmed_obs::metrics::{incr, Class};
        incr(Class::Deterministic, "driver.commutative.runs", 1);
        incr(
            Class::Deterministic,
            "driver.commutative.matched_pairs",
            pairs.len() as u64,
        );
        incr(
            Class::Deterministic,
            "driver.commutative.result_rows",
            result.len() as u64,
        );
    }

    Ok(RunReport {
        result,
        outcome: if degraded.is_empty() {
            RunOutcome::Clean
        } else {
            RunOutcome::Degraded {
                details: degraded,
                retries: 0, // filled in by the engine
            }
        },
        transport: Transport::new(),
        mediator_view: Default::default(),
        client_view: Default::default(),
        primitives: Vec::new(),
        metrics: Vec::new(), // filled in by the engine
    })
}

/// Listing 3 steps 1-2: `⟨f_ei(h(a)), encrypt(Tup_i(a))⟩` for every `a`,
/// in an order independent of the input order (the paper's "arbitrarily
/// ordered set" — we sort by the encrypted hash).
fn build_messages(
    cipher: &SraCipher,
    groups: &BTreeMap<Vec<u8>, Vec<Tuple>>,
    client_pk: &secmed_crypto::HybridPublicKey,
    rng: &mut dyn Rng,
    pool: &Pool,
) -> Vec<SourceMessage> {
    // One DRBG stream per active value, indexed by the value's position in
    // the canonical (BTreeMap) key order: ciphertexts are the same at any
    // thread count.
    let streams = DrbgFamily::derive(rng);
    let entries: Vec<(&Vec<u8>, &Vec<Tuple>)> = groups.iter().collect();
    let mut messages = pool.par_map(&entries, |i, (key_bytes, tuples)| {
        let mut rng = streams.stream(i as u64);
        let enc_hash = cipher.encrypt_value(key_bytes);
        let tuple_ct = client_pk.encrypt(&encode_tuple_set(tuples), &mut rng);
        SourceMessage { enc_hash, tuple_ct }
    });
    messages.sort_by(|a, b| a.enc_hash.cmp(&b.enc_hash));
    messages
}
