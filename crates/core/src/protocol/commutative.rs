//! The commutative-encryption delivery phase (paper Listing 3, after
//! Agrawal et al.).
//!
//! Each source hashes every active join value into the quadratic-residue
//! group (the ideal hash `h`), encrypts the hashes under its own secret
//! SRA exponent, and hybrid-encrypts the matching tuple sets for the
//! client.  The hash values make a round trip through the *opposite*
//! source, which applies its own exponent — commutativity makes the double
//! encryptions comparable — and the mediator matches equal double
//! encryptions to pair up `encrypt(Tup_1(a))` with `encrypt(Tup_2(a))`.
//!
//! [`CommutativeMode::IdReferences`] implements the paper's footnote 1:
//! the mediator keeps the tuple ciphertexts and circulates only
//! fixed-length IDs alongside the hash values.

use std::collections::BTreeMap;

use mpint::rng::Rng;
use mpint::Natural;
use relalg::{decode_tuple_set, encode_tuple_set, Tuple};
use secmed_crypto::drbg::DrbgFamily;
use secmed_crypto::hybrid::HybridCiphertext;
use secmed_crypto::{SraCipher, SraDomain};
use secmed_pool::Pool;

use crate::audit::{ClientView, MediatorView};
use crate::protocol::{
    apply_residual, assemble_from_tuple_sets, group_by_join_key, CommutativeConfig,
    CommutativeMode, Prepared, RunReport, Scenario,
};
use crate::transport::{PartyId, Transport};
use crate::MedError;

/// One element of a source's message set `M_i`: the singly-encrypted hash
/// with its client-encrypted tuple set.
struct SourceMessage {
    enc_hash: Natural,
    tuple_ct: HybridCiphertext,
}

/// Runs the delivery phase of Listing 3.
pub fn deliver(
    sc: &mut Scenario,
    p: Prepared,
    cfg: CommutativeConfig,
    transport: &mut Transport,
    pool: &Pool,
) -> Result<RunReport, MedError> {
    // The client key each source encrypts tuple sets under comes from its
    // forwarded credentials; the SRA domain is the same public group.
    let left_pk = p.left_client_key().clone();
    let right_pk = p.right_client_key().clone();
    let domain = SraDomain::new(left_pk.group().clone());
    let elem_bytes = domain.element_bytes();

    // Step 1-2 at each source: fresh SRA key; hash+encrypt each active
    // value; hybrid-encrypt each Tup_i(a).
    let (s1, s2, m1, m2) = {
        let mut s = secmed_obs::span("commutative.encryption");
        let s1 = SraCipher::generate(domain.clone(), sc.left.rng());
        let s2 = SraCipher::generate(domain.clone(), sc.right.rng());

        let groups1 = group_by_join_key(&p.left_partial, &p.join_attrs)?;
        let groups2 = group_by_join_key(&p.right_partial, &p.join_attrs)?;

        let m1 = build_messages(&s1, &groups1, &left_pk, sc.left.rng(), pool);
        let m2 = build_messages(&s2, &groups2, &right_pk, sc.right.rng(), pool);
        s.field("left_domain", m1.len());
        s.field("right_domain", m2.len());
        (s1, s2, m1, m2)
    };

    // Step 3: Si → mediator.
    let transfer = secmed_obs::span("commutative.transfer");
    let m1_bytes: usize = m1.iter().map(|m| elem_bytes + m.tuple_ct.byte_len()).sum();
    let m2_bytes: usize = m2.iter().map(|m| elem_bytes + m.tuple_ct.byte_len()).sum();
    transport.send(
        PartyId::source(sc.left.name()),
        PartyId::Mediator,
        "L3.3 M1",
        m1_bytes,
    );
    transport.send(
        PartyId::source(sc.right.name()),
        PartyId::Mediator,
        "L3.3 M2",
        m2_bytes,
    );

    // The mediator sees |M_i| = |domactive(R_i.A_join)| (Table 1).
    let mut mediator_view = MediatorView {
        left_domain_size: Some(m1.len()),
        right_domain_size: Some(m2.len()),
        ..Default::default()
    };

    // Steps 4-6: the hash values cross to the opposite source and come
    // back doubly encrypted.  In `EchoTuples` the tuple ciphertexts ride
    // along (exactly Listing 3); in `IdReferences` (footnote 1) the
    // mediator keeps them and circulates fixed-length IDs.
    let per_msg_extra = match cfg.mode {
        CommutativeMode::EchoTuples => None,
        CommutativeMode::IdReferences => Some(8usize),
    };

    let cross1: usize = m2
        .iter()
        .map(|m| elem_bytes + per_msg_extra.unwrap_or(m.tuple_ct.byte_len()))
        .sum();
    let cross2: usize = m1
        .iter()
        .map(|m| elem_bytes + per_msg_extra.unwrap_or(m.tuple_ct.byte_len()))
        .sum();
    transport.send(
        PartyId::Mediator,
        PartyId::source(sc.left.name()),
        "L3.4 M2 → S1",
        cross1,
    );
    transport.send(
        PartyId::Mediator,
        PartyId::source(sc.right.name()),
        "L3.4 M1 → S2",
        cross2,
    );

    drop(transfer);

    // Step 5: S1 double-encrypts M2's hashes; step 6: S2 double-encrypts M1's.
    let (doubled_m2, doubled_m1) = {
        let _s = secmed_obs::span("commutative.encryption");
        // SRA re-encryption is deterministic given the key, so the double
        // passes parallelize with no RNG plumbing at all.
        let doubled_m2: Vec<Natural> = pool.par_map(&m2, |_, m| s1.encrypt(&m.enc_hash));
        let doubled_m1: Vec<Natural> = pool.par_map(&m1, |_, m| s2.encrypt(&m.enc_hash));
        (doubled_m2, doubled_m1)
    };
    let transfer = secmed_obs::span("commutative.transfer");
    transport.send(
        PartyId::source(sc.left.name()),
        PartyId::Mediator,
        "L3.5 ⟨f_e1(f_e2(h(a))), …⟩",
        doubled_m2.len() * (elem_bytes + per_msg_extra.unwrap_or(0)),
    );
    transport.send(
        PartyId::source(sc.right.name()),
        PartyId::Mediator,
        "L3.6 ⟨f_e2(f_e1(h(a))), …⟩",
        doubled_m1.len() * (elem_bytes + per_msg_extra.unwrap_or(0)),
    );

    drop(transfer);

    // Step 7: the mediator matches identical first components.
    let mut intersection = secmed_obs::span("commutative.intersection");
    let mut by_double: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
    for (i, d) in doubled_m1.iter().enumerate() {
        by_double.insert(d.to_bytes_be(), i);
    }
    let mut result_pairs: Vec<(&HybridCiphertext, &HybridCiphertext)> = Vec::new();
    for (j, d) in doubled_m2.iter().enumerate() {
        if let Some(&i) = by_double.get(&d.to_bytes_be()) {
            result_pairs.push((&m1[i].tuple_ct, &m2[j].tuple_ct));
        }
    }
    mediator_view.intersection_size = Some(result_pairs.len());
    intersection.field("matches", result_pairs.len());
    drop(intersection);

    let result_bytes: usize = result_pairs
        .iter()
        .map(|(a, b)| a.byte_len() + b.byte_len())
        .sum();
    {
        let _s = secmed_obs::span("commutative.transfer");
        transport.send(
            PartyId::Mediator,
            PartyId::Client,
            "L3.7 ⟨encrypt(Tup1(a)), encrypt(Tup2(a))⟩ result messages",
            result_bytes,
        );
    }

    // Step 8: the client decrypts and combines (cross product per pair).
    let mut post = secmed_obs::span("commutative.post");
    let mut tuple_set_pairs: Vec<(Vec<Tuple>, Vec<Tuple>)> = Vec::with_capacity(result_pairs.len());
    for (ct1, ct2) in &result_pairs {
        let ts1 = decode_tuple_set(&sc.client.hybrid().decrypt(ct1)?)?;
        let ts2 = decode_tuple_set(&sc.client.hybrid().decrypt(ct2)?)?;
        tuple_set_pairs.push((ts1, ts2));
    }
    let joined = assemble_from_tuple_sets(
        p.left_partial.schema(),
        p.right_partial.schema(),
        &p.join_attrs,
        &tuple_set_pairs,
    )?;
    let result = apply_residual(&joined, &p.residual)?;
    post.field("result_rows", result.len());
    drop(post);

    // The client received only the exact global result — the defining
    // property of this protocol in Table 1.
    let client_view = ClientView::default();

    Ok(RunReport {
        result,
        transport: Transport::new(),
        mediator_view,
        client_view,
        primitives: Vec::new(),
    })
}

/// Listing 3 steps 1-2: `⟨f_ei(h(a)), encrypt(Tup_i(a))⟩` for every `a`,
/// in an order independent of the input order (the paper's "arbitrarily
/// ordered set" — we sort by the encrypted hash).
fn build_messages(
    cipher: &SraCipher,
    groups: &BTreeMap<Vec<u8>, Vec<Tuple>>,
    client_pk: &secmed_crypto::HybridPublicKey,
    rng: &mut dyn Rng,
    pool: &Pool,
) -> Vec<SourceMessage> {
    // One DRBG stream per active value, indexed by the value's position in
    // the canonical (BTreeMap) key order: ciphertexts are the same at any
    // thread count.
    let streams = DrbgFamily::derive(rng);
    let entries: Vec<(&Vec<u8>, &Vec<Tuple>)> = groups.iter().collect();
    let mut messages = pool.par_map(&entries, |i, (key_bytes, tuples)| {
        let mut rng = streams.stream(i as u64);
        let enc_hash = cipher.encrypt_value(key_bytes);
        let tuple_ct = client_pk.encrypt(&encode_tuple_set(tuples), &mut rng);
        SourceMessage { enc_hash, tuple_ct }
    });
    messages.sort_by(|a, b| a.enc_hash.cmp(&b.enc_hash));
    messages
}
