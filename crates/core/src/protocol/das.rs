//! The DAS delivery phase, client setting (paper Listing 2).
//!
//! 1. Each source partitions `domactive(A_join)` into an index table.
//! 2. Each source encrypts its partial result row-wise (hybrid encryption
//!    under the client's credential key) and pairs each `etuple` with its
//!    index value; the index table itself is encrypted for the client.
//! 3. Sources send `⟨R_i^S, encrypt(ITable_i)⟩` to the mediator.
//! 4. The mediator forwards the two encrypted index tables to the client.
//! 5. The client decrypts the tables and translates the query into the
//!    server query `q_S` and the client query `q_C`; `q_S` goes back to
//!    the mediator.
//! 6. The mediator evaluates `q_S` over the encrypted partial results —
//!    pure ciphertext processing — and returns `R_C`.
//! 7. The client decrypts `R_C` and applies `q_C` to obtain the global
//!    result.
//!
//! Every step travels as an encoded [`Frame`]; the mediator joins over the
//! relations it *decoded from the wire*, and the client likewise works only
//! on received frames.

use mpint::rng::Rng;
use relalg::{decode_tuple, encode_tuple, Relation, Tuple};
use secmed_crypto::drbg::DrbgFamily;
use secmed_das::{DasRow, EncryptedDasRelation, IndexTable, ServerQuery};
use secmed_pool::Pool;

use crate::party::DataSource;
use crate::protocol::{
    apply_residual, assemble_from_candidates, degrade_note, DasConfig, DasSetting, Prepared,
    RunOutcome, RunReport, Scenario,
};
use crate::transport::{Fabric, Frame, PartyId, Transport};
use crate::MedError;
use secmed_wire::DasTable;

/// Rebuilds an encrypted relation from rows decoded off the wire.
fn relation_from_rows(rows: Vec<DasRow>) -> EncryptedDasRelation {
    let mut rel = EncryptedDasRelation::new();
    for row in rows {
        rel.push(row);
    }
    rel
}

/// Runs the delivery phase of Listing 2.
pub fn deliver<F: Fabric>(
    sc: &mut Scenario,
    p: Prepared,
    cfg: DasConfig,
    transport: &mut F,
    pool: &Pool,
) -> Result<RunReport, MedError> {
    if p.join_attrs.len() != 1 {
        return Err(MedError::Protocol(
            "the DAS protocol indexes a single join attribute (paper Section 2 assumption); \
             use the commutative or PM protocol for composite keys"
                .to_string(),
        ));
    }
    let attr = p.join_attrs[0].clone();

    // Steps 1-3 at each source, encrypting under the public key carried by
    // the forwarded credentials.  In the mediator setting the index tables
    // are handed over in plaintext instead (the paper's warned-about
    // leakage; see `DasSetting`).
    let left_pk = p.left_client_key().clone();
    let right_pk = p.right_client_key().clone();
    let (r1s, table1, enc_table1, r2s, table2, enc_table2) = {
        let mut s = secmed_obs::span("das.encryption");
        let (r1s, table1, enc_table1) =
            source_prepare(&mut sc.left, &p.left_partial, &attr, cfg, &left_pk, pool)?;
        let (r2s, table2, enc_table2) =
            source_prepare(&mut sc.right, &p.right_partial, &attr, cfg, &right_pk, pool)?;
        s.field("left_rows", r1s.len());
        s.field("right_rows", r2s.len());
        (r1s, table1, enc_table1, r2s, table2, enc_table2)
    };

    // Step 3 on the wire: each source frames ⟨R_i^S, ITable_i⟩ and the
    // mediator decodes its own copies — the relations it will join over.
    let transfer = secmed_obs::span("das.transfer");
    let wire_table = |enc: &secmed_crypto::HybridCiphertext, plain: &IndexTable| match cfg.setting {
        DasSetting::ClientSetting => DasTable::Encrypted(enc.clone()),
        DasSetting::MediatorSetting => DasTable::Plain(plain.clone()),
    };
    let mut med_relations = Vec::with_capacity(2);
    let mut med_tables = Vec::with_capacity(2);
    for (source, rel, table, enc_table, label) in [
        (&sc.left, &r1s, &table1, &enc_table1, "L2.3 ⟨R1S, ITable1⟩"),
        (&sc.right, &r2s, &table2, &enc_table2, "L2.3 ⟨R2S, ITable2⟩"),
    ] {
        let frame = Frame::DasRelation {
            rows: rel.rows().to_vec(),
            table: wire_table(enc_table, table),
        };
        let received = transport.deliver(
            PartyId::source(source.name()),
            PartyId::Mediator,
            label,
            &frame,
        )?;
        let Frame::DasRelation { rows, table } = received else {
            return Err(MedError::Protocol(
                "expected a DAS relation frame".to_string(),
            ));
        };
        med_relations.push(relation_from_rows(rows));
        med_tables.push(table);
    }
    let med_r2s = med_relations.pop().unwrap_or_default();
    let med_r1s = med_relations.pop().unwrap_or_default();
    let (med_t2, med_t1) = (med_tables.pop(), med_tables.pop());

    let mut degraded: Vec<String> = Vec::new();
    let server_query = match cfg.setting {
        DasSetting::ClientSetting => {
            // Steps 4-5 as a unit: mediator → client (the encrypted index
            // tables, as decoded from the sources' frames), client
            // translation, client → mediator (the server query).
            let translate = || -> Result<ServerQuery, MedError> {
                let tables = match (med_t1, med_t2) {
                    (Some(DasTable::Encrypted(t1)), Some(DasTable::Encrypted(t2))) => vec![t1, t2],
                    _ => {
                        return Err(MedError::Protocol(
                            "client setting requires encrypted index tables".to_string(),
                        ))
                    }
                };
                let received = transport.deliver(
                    PartyId::Mediator,
                    PartyId::Client,
                    "L2.4 encrypt(ITable1), encrypt(ITable2)",
                    &Frame::DasIndexTables { tables },
                )?;
                let Frame::DasIndexTables { tables } = received else {
                    return Err(MedError::Protocol(
                        "expected an index-tables frame".to_string(),
                    ));
                };
                let [ref enc_t1, ref enc_t2] = tables[..] else {
                    return Err(MedError::Protocol(format!(
                        "expected two index tables, got {}",
                        tables.len()
                    )));
                };
                // Step 5: client decrypts the tables and builds the server
                // query.
                let t1 = IndexTable::decode(&sc.client.hybrid().decrypt(enc_t1)?)
                    .map_err(MedError::Das)?;
                let t2 = IndexTable::decode(&sc.client.hybrid().decrypt(enc_t2)?)
                    .map_err(MedError::Das)?;
                let q = ServerQuery::translate(&t1, &t2);
                let received = transport.deliver(
                    PartyId::Client,
                    PartyId::Mediator,
                    "L2.5 server query qS",
                    &Frame::DasServerQuery {
                        pairs: q.pairs().to_vec(),
                    },
                )?;
                let Frame::DasServerQuery { pairs } = received else {
                    return Err(MedError::Protocol(
                        "expected a server-query frame".to_string(),
                    ));
                };
                Ok(ServerQuery::from_pairs(pairs))
            };
            match translate() {
                Ok(q) => q,
                Err(MedError::Delivery(f)) if transport.degrade_on_exhausted() => {
                    // Sound degradation: without the client's translated
                    // query, the mediator joins every index pair — a
                    // superset of the true candidate set, so step 7's
                    // client query still filters it down to the correct
                    // result.  Costs ciphertext volume, never correctness.
                    degraded.push(degrade_note(&f));
                    let mut pairs = std::collections::BTreeSet::new();
                    for l in med_r1s.rows() {
                        for r in med_r2s.rows() {
                            pairs.insert((l.index, r.index));
                        }
                    }
                    ServerQuery::from_pairs(pairs.into_iter().collect())
                }
                Err(e) => return Err(e),
            }
        }
        DasSetting::MediatorSetting => {
            // The mediator translates directly from the plaintext tables —
            // one fewer client round trip, much more leakage.
            match (med_t1, med_t2) {
                (Some(DasTable::Plain(t1)), Some(DasTable::Plain(t2))) => {
                    ServerQuery::translate(&t1, &t2)
                }
                _ => {
                    return Err(MedError::Protocol(
                        "mediator setting requires plaintext index tables".to_string(),
                    ))
                }
            }
        }
    };
    drop(transfer);

    // Step 6: the mediator evaluates qS over the ciphertexts it received.
    let rc = {
        let mut s = secmed_obs::span("das.join");
        let rc = EncryptedDasRelation::server_join(&med_r1s, &med_r2s, &server_query, pool);
        s.field("candidate_pairs", rc.len());
        rc
    };
    let candidates_frame = {
        let _s = secmed_obs::span("das.transfer");
        transport.deliver(
            PartyId::Mediator,
            PartyId::Client,
            "L2.6 RC",
            &Frame::DasCandidates {
                pairs: rc.pairs().to_vec(),
            },
        )?
    };
    let Frame::DasCandidates { pairs } = candidates_frame else {
        return Err(MedError::Protocol(
            "expected a candidates frame".to_string(),
        ));
    };

    // Step 7: client decrypts RC and applies the client query.
    let mut post = secmed_obs::span("das.post");
    let mut candidates: Vec<(Tuple, Tuple)> = Vec::with_capacity(pairs.len());
    for (l, r) in &pairs {
        let lt = decode_tuple(&sc.client.hybrid().decrypt(&l.etuple)?)?;
        let rt = decode_tuple(&sc.client.hybrid().decrypt(&r.etuple)?)?;
        candidates.push((lt, rt));
    }
    let joined = assemble_from_candidates(
        p.left_partial.schema(),
        p.right_partial.schema(),
        &p.join_attrs,
        &candidates,
    )?;
    let result = apply_residual(&joined, &p.residual)?;
    post.field("result_rows", result.len());
    drop(post);

    {
        use secmed_obs::metrics::{incr, Class};
        incr(Class::Deterministic, "driver.das.runs", 1);
        incr(
            Class::Deterministic,
            "driver.das.candidate_pairs",
            pairs.len() as u64,
        );
        incr(
            Class::Deterministic,
            "driver.das.result_rows",
            result.len() as u64,
        );
    }

    Ok(RunReport {
        result,
        outcome: if degraded.is_empty() {
            RunOutcome::Clean
        } else {
            RunOutcome::Degraded {
                details: degraded,
                retries: 0, // filled in by the engine
            }
        },
        transport: Transport::new(), // replaced by the caller
        mediator_view: Default::default(),
        client_view: Default::default(),
        primitives: Vec::new(),
        metrics: Vec::new(), // filled in by the engine
    })
}

/// Listing 2, steps 1-2 at one source: partition, index, encrypt.
fn source_prepare(
    src: &mut DataSource,
    partial: &Relation,
    attr: &str,
    cfg: DasConfig,
    client_pk: &secmed_crypto::HybridPublicKey,
    pool: &Pool,
) -> Result<
    (
        EncryptedDasRelation,
        IndexTable,
        secmed_crypto::HybridCiphertext,
    ),
    MedError,
> {
    let salt = src.rng().next_u64();
    let domain = partial.active_domain(attr)?;
    let table = if domain.is_empty() {
        IndexTable::empty(salt)
    } else {
        IndexTable::build(&domain, cfg.scheme, salt)?
    };
    let attr_idx = partial.schema().index_of(attr)?;
    // Per-tuple hybrid encryption runs on the pool; each tuple draws from
    // its own DRBG stream so the ciphertexts are independent of both the
    // schedule and the thread count.
    let streams = DrbgFamily::derive(src.rng());
    let rows = pool.try_par_map(partial.tuples(), |i, t| {
        let mut rng = streams.stream(i as u64);
        let etuple = client_pk.encrypt(&encode_tuple(t), &mut rng);
        let index = table.index_of(t.at(attr_idx))?;
        Ok::<DasRow, MedError>(DasRow { etuple, index })
    })?;
    let mut encrypted = EncryptedDasRelation::new();
    for row in rows {
        encrypted.push(row);
    }
    let enc_table = client_pk.encrypt(&table.encode(), src.rng());
    Ok((encrypted, table, enc_table))
}
