//! The DAS delivery phase, client setting (paper Listing 2).
//!
//! 1. Each source partitions `domactive(A_join)` into an index table.
//! 2. Each source encrypts its partial result row-wise (hybrid encryption
//!    under the client's credential key) and pairs each `etuple` with its
//!    index value; the index table itself is encrypted for the client.
//! 3. Sources send `⟨R_i^S, encrypt(ITable_i)⟩` to the mediator.
//! 4. The mediator forwards the two encrypted index tables to the client.
//! 5. The client decrypts the tables and translates the query into the
//!    server query `q_S` and the client query `q_C`; `q_S` goes back to
//!    the mediator.
//! 6. The mediator evaluates `q_S` over the encrypted partial results —
//!    pure ciphertext processing — and returns `R_C`.
//! 7. The client decrypts `R_C` and applies `q_C` to obtain the global
//!    result.

use mpint::rng::Rng;
use relalg::{decode_tuple, encode_tuple, Relation, Tuple};
use secmed_crypto::drbg::DrbgFamily;
use secmed_das::{DasRow, EncryptedDasRelation, IndexTable, ServerQuery};
use secmed_pool::Pool;

use crate::audit::{ClientView, MediatorView};
use crate::party::DataSource;
use crate::protocol::{
    apply_residual, assemble_from_candidates, DasConfig, DasSetting, Prepared, RunReport, Scenario,
};
use crate::transport::{PartyId, Transport};
use crate::MedError;

/// Runs the delivery phase of Listing 2.
pub fn deliver(
    sc: &mut Scenario,
    p: Prepared,
    cfg: DasConfig,
    transport: &mut Transport,
    pool: &Pool,
) -> Result<RunReport, MedError> {
    if p.join_attrs.len() != 1 {
        return Err(MedError::Protocol(
            "the DAS protocol indexes a single join attribute (paper Section 2 assumption); \
             use the commutative or PM protocol for composite keys"
                .to_string(),
        ));
    }
    let attr = p.join_attrs[0].clone();

    // Steps 1-3 at each source, encrypting under the public key carried by
    // the forwarded credentials.  In the mediator setting the index tables
    // are handed over in plaintext instead (the paper's warned-about
    // leakage; see `DasSetting`).
    let left_pk = p.left_client_key().clone();
    let right_pk = p.right_client_key().clone();
    let (r1s, table1, enc_table1, r2s, table2, enc_table2) = {
        let mut s = secmed_obs::span("das.encryption");
        let (r1s, table1, enc_table1) =
            source_prepare(&mut sc.left, &p.left_partial, &attr, cfg, &left_pk, pool)?;
        let (r2s, table2, enc_table2) =
            source_prepare(&mut sc.right, &p.right_partial, &attr, cfg, &right_pk, pool)?;
        s.field("left_rows", r1s.len());
        s.field("right_rows", r2s.len());
        (r1s, table1, enc_table1, r2s, table2, enc_table2)
    };
    let table_bytes = |enc: &secmed_crypto::HybridCiphertext, plain: &IndexTable| match cfg.setting
    {
        DasSetting::ClientSetting => enc.byte_len(),
        DasSetting::MediatorSetting => plain.encode().len(),
    };
    let transfer = secmed_obs::span("das.transfer");
    transport.send(
        PartyId::source(sc.left.name()),
        PartyId::Mediator,
        "L2.3 ⟨R1S, ITable1⟩",
        r1s.byte_len() + table_bytes(&enc_table1, &table1),
    );
    transport.send(
        PartyId::source(sc.right.name()),
        PartyId::Mediator,
        "L2.3 ⟨R2S, ITable2⟩",
        r2s.byte_len() + table_bytes(&enc_table2, &table2),
    );

    // What the mediator sees at this point: row counts — plus, in the
    // mediator setting, the plaintext partition ranges.
    let mut mediator_view = MediatorView {
        left_result_rows: Some(r1s.len()),
        right_result_rows: Some(r2s.len()),
        plaintext_index_tables: matches!(cfg.setting, DasSetting::MediatorSetting),
        ..Default::default()
    };

    let server_query = match cfg.setting {
        DasSetting::ClientSetting => {
            // Step 4: mediator → client (the encrypted index tables).
            transport.send(
                PartyId::Mediator,
                PartyId::Client,
                "L2.4 encrypt(ITable1), encrypt(ITable2)",
                enc_table1.byte_len() + enc_table2.byte_len(),
            );
            // Step 5: client decrypts the tables and builds the server query.
            let t1 = IndexTable::decode(&sc.client.hybrid().decrypt(&enc_table1)?)
                .map_err(MedError::Das)?;
            let t2 = IndexTable::decode(&sc.client.hybrid().decrypt(&enc_table2)?)
                .map_err(MedError::Das)?;
            let q = ServerQuery::translate(&t1, &t2);
            transport.send(
                PartyId::Client,
                PartyId::Mediator,
                "L2.5 server query qS",
                q.byte_len(),
            );
            q
        }
        DasSetting::MediatorSetting => {
            // The mediator translates directly from the plaintext tables —
            // one fewer client round trip, much more leakage.
            ServerQuery::translate(&table1, &table2)
        }
    };
    drop(transfer);

    // Step 6: the mediator evaluates qS over ciphertexts.
    let rc = {
        let mut s = secmed_obs::span("das.join");
        let rc = EncryptedDasRelation::server_join(&r1s, &r2s, &server_query, pool);
        s.field("candidate_pairs", rc.len());
        rc
    };
    mediator_view.server_result_size = Some(rc.len());
    {
        let _s = secmed_obs::span("das.transfer");
        transport.send(PartyId::Mediator, PartyId::Client, "L2.6 RC", rc.byte_len());
    }

    // Step 7: client decrypts RC and applies the client query.
    let mut post = secmed_obs::span("das.post");
    let mut candidates: Vec<(Tuple, Tuple)> = Vec::with_capacity(rc.len());
    for (l, r) in rc.pairs() {
        let lt = decode_tuple(&sc.client.hybrid().decrypt(&l.etuple)?)?;
        let rt = decode_tuple(&sc.client.hybrid().decrypt(&r.etuple)?)?;
        candidates.push((lt, rt));
    }
    let joined = assemble_from_candidates(
        p.left_partial.schema(),
        p.right_partial.schema(),
        &p.join_attrs,
        &candidates,
    )?;
    let result = apply_residual(&joined, &p.residual)?;
    post.field("result_rows", result.len());
    drop(post);

    let client_view = ClientView {
        superset_pairs: Some(rc.len()),
        index_tables_seen: matches!(cfg.setting, DasSetting::ClientSetting),
        ..Default::default()
    };

    Ok(RunReport {
        result,
        transport: Transport::new(), // replaced by the caller
        mediator_view,
        client_view,
        primitives: Vec::new(),
    })
}

/// Listing 2, steps 1-2 at one source: partition, index, encrypt.
fn source_prepare(
    src: &mut DataSource,
    partial: &Relation,
    attr: &str,
    cfg: DasConfig,
    client_pk: &secmed_crypto::HybridPublicKey,
    pool: &Pool,
) -> Result<
    (
        EncryptedDasRelation,
        IndexTable,
        secmed_crypto::HybridCiphertext,
    ),
    MedError,
> {
    let salt = src.rng().next_u64();
    let domain = partial.active_domain(attr)?;
    let table = if domain.is_empty() {
        IndexTable::empty(salt)
    } else {
        IndexTable::build(&domain, cfg.scheme, salt)?
    };
    let attr_idx = partial.schema().index_of(attr)?;
    // Per-tuple hybrid encryption runs on the pool; each tuple draws from
    // its own DRBG stream so the ciphertexts are independent of both the
    // schedule and the thread count.
    let streams = DrbgFamily::derive(src.rng());
    let rows = pool.try_par_map(partial.tuples(), |i, t| {
        let mut rng = streams.stream(i as u64);
        let etuple = client_pk.encrypt(&encode_tuple(t), &mut rng);
        let index = table.index_of(t.at(attr_idx))?;
        Ok::<DasRow, MedError>(DasRow { etuple, index })
    })?;
    let mut encrypted = EncryptedDasRelation::new();
    for row in rows {
        encrypted.push(row);
    }
    let enc_table = client_pk.encrypt(&table.encode(), src.rng());
    Ok((encrypted, table, enc_table))
}
