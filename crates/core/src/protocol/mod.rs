//! The mediation protocols.
//!
//! [`crate::engine::Engine::run`] executes the shared request phase
//! (paper Listing 1) followed by the selected delivery phase:
//!
//! * [`das`] — Listing 2 (client setting),
//! * [`commutative`] — Listing 3 (with the footnote-1 ID-reference
//!   optimization as an option),
//! * [`pm`] — Listing 4 (with naive/Horner/bucketed evaluation and the
//!   footnote-2 session-key-table optimization as options).
//!
//! Every run returns a [`RunReport`] carrying the global result, the full
//! transport log, both parties' views (for the Table 1 audit), and the
//! delta of cryptographic-primitive counters (for the Table 2 census).

pub mod commutative;
pub mod das;
pub mod pm;

use std::collections::BTreeMap;

use relalg::sql::{decompose, parse, Residual};
use relalg::{Relation, Schema, Tuple, Value};
use secmed_crypto::metrics::Op;
use secmed_das::PartitionScheme;

use crate::audit::{ClientView, MediatorView};
use crate::party::{Client, DataSource, Mediator};
use crate::transport::{DeliveryFailure, Fabric, Frame, PartyId, Transport};
use crate::MedError;

/// Which delivery-phase protocol to run, with its options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Database-as-a-Service bucketization (Listing 2, client setting).
    Das(DasConfig),
    /// Commutative encryption (Listing 3).
    Commutative(CommutativeConfig),
    /// Private matching via homomorphic encryption (Listing 4).
    Pm(PmConfig),
}

impl ProtocolKind {
    /// The paper's name for this protocol (Table 1/2 row label).
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Das(_) => "Database-as-a-Service",
            ProtocolKind::Commutative(_) => "Commutative Encryption",
            ProtocolKind::Pm(_) => "Private Matching",
        }
    }

    /// Short machine-readable key used as the trace-span prefix.
    pub fn key(&self) -> &'static str {
        match self {
            ProtocolKind::Das(_) => "das",
            ProtocolKind::Commutative(_) => "commutative",
            ProtocolKind::Pm(_) => "pm",
        }
    }
}

/// Where the DAS query translator lives (paper Section 3.1: "it is
/// possible to place the DAS query translator in any layer of the
/// mediation system"; the paper details the client setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DasSetting {
    /// Listing 2: index tables reach only the client, which derives the
    /// server query.  Costs the client a second interaction.
    #[default]
    ClientSetting,
    /// The translator sits at the mediator: sources hand over their index
    /// tables in plaintext, the mediator translates and executes the
    /// server query itself.  One client interaction — but the mediator
    /// now sees the partition ranges and "would be able to approximate
    /// the join attribute value for each tuple" (the leakage the paper
    /// warns about; kept as an explicit insecure baseline).
    MediatorSetting,
}

/// DAS options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DasConfig {
    /// How each source partitions its active domain.
    pub scheme: PartitionScheme,
    /// Where the query translator runs.
    pub setting: DasSetting,
}

impl Default for DasConfig {
    fn default() -> Self {
        DasConfig {
            scheme: PartitionScheme::EquiDepth(8),
            setting: DasSetting::ClientSetting,
        }
    }
}

/// How the commutative protocol ships tuple ciphertexts (paper footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommutativeMode {
    /// Exactly Listing 3: the encrypted tuple sets are echoed through the
    /// opposite datasource.
    EchoTuples,
    /// Footnote 1: the mediator keeps the tuple ciphertexts and sends only
    /// fixed-length IDs with the hash values; better performance *and*
    /// the opposite source never holds the other's ciphertexts.
    #[default]
    IdReferences,
}

/// Commutative-protocol options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommutativeConfig {
    /// Tuple-shipping mode.
    pub mode: CommutativeMode,
}

/// How the PM protocol evaluates the encrypted polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PmEval {
    /// Power-sum evaluation.
    Naive,
    /// Horner's rule (Freedman's efficiency note).
    #[default]
    Horner,
    /// Freedman's hash-bucket allocation with this many buckets.
    Bucketed(usize),
}

/// How the PM protocol carries tuple payloads (paper footnote 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PmPayloadMode {
    /// Tuple sets ride inside the polynomial payload (`a || Tup(a)`).
    /// Fails with `MessageTooLarge` if a tuple set exceeds the Paillier
    /// plaintext space — exactly the limitation footnote 2 addresses.
    Inline,
    /// Footnote 2: a fresh session key per tuple set; the polynomial
    /// payload carries only `a || key || id` and the tuple sets travel in
    /// a separate ID-keyed table of symmetric ciphertexts.
    #[default]
    SessionKeyTable,
}

/// PM options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmConfig {
    /// Polynomial evaluation strategy.
    pub eval: PmEval,
    /// Payload transport mode.
    pub payload: PmPayloadMode,
}

/// How a protocol run ended, robustness-wise.
///
/// Under a fault plan a run may still complete perfectly
/// ([`RunOutcome::Clean`]), complete correctly only because the bounded
/// retry absorbed fabric faults ([`RunOutcome::RecoveredWithRetries`]),
/// complete with a documented partial substitute after a delivery was
/// exhausted ([`RunOutcome::Degraded`]), or stop at an unrecoverable step
/// ([`RunOutcome::Aborted`]).  The variant is part of the report — chaos
/// runs never panic and never silently return a wrong join; they return a
/// typed outcome instead.
#[derive(Debug)]
pub enum RunOutcome {
    /// Every delivery succeeded on its first attempt.
    Clean,
    /// The result is the correct join, but the fabric misbehaved and the
    /// retry policy absorbed it.
    RecoveredWithRetries {
        /// Retransmissions executed across the run.
        retries: u64,
    },
    /// A delivery was exhausted and the driver substituted a documented
    /// partial input instead of aborting (policy `OnExhausted::Degrade`).
    Degraded {
        /// Which deliveries degraded, in protocol order.
        details: Vec<String>,
        /// Retransmissions executed across the run.
        retries: u64,
    },
    /// The run stopped: a delivery was exhausted at a step with no sound
    /// degradation (or the policy demands aborting).
    Aborted {
        /// The terminal error.
        error: MedError,
        /// Retransmissions executed before the run stopped.
        retries: u64,
    },
}

impl RunOutcome {
    /// Whether the run completed without any fault interference.
    pub fn is_clean(&self) -> bool {
        matches!(self, RunOutcome::Clean)
    }

    /// Whether a result reached the client (clean, recovered, or
    /// degraded — everything but an abort).
    pub fn delivered(&self) -> bool {
        !matches!(self, RunOutcome::Aborted { .. })
    }

    /// Retransmissions executed during the run.
    pub fn retries(&self) -> u64 {
        match self {
            RunOutcome::Clean => 0,
            RunOutcome::RecoveredWithRetries { retries }
            | RunOutcome::Degraded { retries, .. }
            | RunOutcome::Aborted { retries, .. } => *retries,
        }
    }

    /// Short machine-readable key (trace field / report column).
    pub fn key(&self) -> &'static str {
        match self {
            RunOutcome::Clean => "clean",
            RunOutcome::RecoveredWithRetries { .. } => "recovered",
            RunOutcome::Degraded { .. } => "degraded",
            RunOutcome::Aborted { .. } => "aborted",
        }
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Clean => write!(f, "clean"),
            RunOutcome::RecoveredWithRetries { retries } => {
                write!(f, "recovered after {retries} retransmission(s)")
            }
            RunOutcome::Degraded { details, retries } => write!(
                f,
                "degraded ({}; {retries} retransmission(s))",
                details.join("; ")
            ),
            RunOutcome::Aborted { error, retries } => {
                write!(f, "aborted after {retries} retransmission(s): {error}")
            }
        }
    }
}

/// The standard note a driver records when it degrades past an exhausted
/// delivery (one entry in [`RunOutcome::Degraded`]'s details).
pub(crate) fn degrade_note(f: &DeliveryFailure) -> String {
    format!("{} undelivered after {} attempt(s)", f.label, f.attempts)
}

/// The complete output of one protocol run.
#[derive(Debug)]
pub struct RunReport {
    /// The global result delivered to the client.
    pub result: Relation,
    /// How the run ended (clean / recovered / degraded / aborted).
    pub outcome: RunOutcome,
    /// Every message that crossed the fabric.
    pub transport: Transport,
    /// What the mediator could derive.
    pub mediator_view: MediatorView,
    /// What the client received beyond the exact result.
    pub client_view: ClientView,
    /// Cryptographic primitives invoked during the run (Table 2 census).
    pub primitives: Vec<(Op, u64)>,
    /// Deterministic-class metrics for this run, sorted by name: pure
    /// functions of the scenario seed (frames, bytes, retries, fault and
    /// primitive tallies), computed from this run's own transport log and
    /// census delta — never from wall clocks — so the byte-identical
    /// determinism fingerprint covers them at every thread count.
    pub metrics: Vec<(String, u64)>,
}

/// A configured mediation scenario: one client, one mediator, two sources.
pub struct Scenario {
    /// The querying client.
    pub client: Client,
    /// The mediator.
    pub mediator: Mediator,
    /// The left datasource.
    pub left: DataSource,
    /// The right datasource.
    pub right: DataSource,
    /// The SQL query the client issues.
    pub query: String,
}

impl Scenario {
    /// The plaintext reference: what an honest party holding both filtered
    /// partial results would compute (used by tests to verify every
    /// protocol end-to-end).
    pub fn expected_result(&mut self) -> Result<Relation, MedError> {
        let mut transport = Transport::new();
        let p = request_phase(self, &mut transport)?;
        let joined = p.left_partial.join_on(&p.right_partial, &p.join_attrs)?;
        apply_residual(&joined, &p.residual)
    }
}

/// Everything the request phase (Listing 1) establishes.
pub struct Prepared {
    /// Join attribute base names (`A_join`, possibly several).
    pub join_attrs: Vec<String>,
    /// Residual client work from query decomposition.
    pub residual: Residual,
    /// The left source's filtered partial result (held at the source).
    pub left_partial: Relation,
    /// The right source's filtered partial result (held at the source).
    pub right_partial: Relation,
    /// The credential subset `CR_1` the mediator forwarded to the left
    /// source; its keys are what the source encrypts for.
    pub left_creds: Vec<crate::credential::Credential>,
    /// The credential subset `CR_2` for the right source.
    pub right_creds: Vec<crate::credential::Credential>,
}

impl Prepared {
    /// The client public key the left source encrypts its data under —
    /// taken from the forwarded credentials, as the paper prescribes
    /// ("The public keys in the credentials can be used by the
    /// datasources to send information ... securely via the mediator to
    /// the client").
    pub fn left_client_key(&self) -> &secmed_crypto::HybridPublicKey {
        self.left_creds[0].hybrid_key()
    }

    /// The client public key for the right source.
    pub fn right_client_key(&self) -> &secmed_crypto::HybridPublicKey {
        self.right_creds[0].hybrid_key()
    }
}

/// The mediator's credential-subset selection (Listing 1, step 2): forward
/// the credentials asserting at least one property the source's policy
/// advertises; always at least one credential travels, because it carries
/// the client's public keys.
fn credential_subset(
    all: &[crate::credential::Credential],
    advertised: &[crate::credential::Property],
) -> Vec<crate::credential::Credential> {
    let relevant: Vec<_> = all
        .iter()
        .filter(|c| advertised.iter().any(|p| c.asserts(p)))
        .cloned()
        .collect();
    if relevant.is_empty() {
        all.first().cloned().into_iter().collect()
    } else {
        relevant
    }
}

/// Listing 1: the client sends the query and credentials; the mediator
/// decomposes, localizes sources, forwards credential subsets; the sources
/// check credentials and evaluate the partial queries.
///
/// Every message is a real [`Frame`]: the mediator works on the *decoded*
/// query and credentials it received, and each source decodes (and then
/// verifies) the credential subset off the wire — byte sizes on the
/// transport are exact encoded lengths.
pub fn request_phase<F: Fabric>(
    sc: &mut Scenario,
    transport: &mut F,
) -> Result<Prepared, MedError> {
    // Step 1: client → mediator — the query text plus the client's
    // encoded credentials.
    let query_frame = Frame::Query {
        sql: sc.query.clone(),
        credentials: sc
            .client
            .credentials()
            .iter()
            .map(crate::credential::Credential::encode)
            .collect(),
    };
    let received = transport.deliver(
        PartyId::Client,
        PartyId::Mediator,
        "L1.1 query q + credentials CR",
        &query_frame,
    )?;
    let Frame::Query { sql, credentials } = received else {
        return Err(MedError::Protocol("expected a query frame".to_string()));
    };
    let group = sc.mediator.credential_group()?.clone();
    let client_creds: Vec<crate::credential::Credential> = credentials
        .iter()
        .map(|bytes| crate::credential::Credential::decode(bytes, &group))
        .collect::<Result<_, _>>()?;

    // Step 2: mediator decomposes the received query and resolves join
    // attributes.
    let tree = parse(&sql)?;
    let decomp = decompose(&tree)?;
    if decomp.join.left != sc.left.name() || decomp.join.right != sc.right.name() {
        return Err(MedError::Protocol(format!(
            "query touches {}/{} but scenario sources are {}/{}",
            decomp.join.left,
            decomp.join.right,
            sc.left.name(),
            sc.right.name()
        )));
    }
    let join_attrs = if decomp.join.attrs.is_empty() {
        sc.mediator
            .natural_join_attrs(&decomp.join.left, &decomp.join.right)?
    } else {
        decomp.join.attrs.clone()
    };

    // Step 3: mediator → sources (partial query + credential subset + A_i),
    // each as one frame; the sources decode their credential subsets off
    // the wire and verify them in step 4.
    let mut source_creds = Vec::with_capacity(2);
    for (source, partial_sql, label) in [
        (&sc.left, &decomp.q1, "L1.3 ⟨q1, CR1, A1⟩"),
        (&sc.right, &decomp.q2, "L1.3 ⟨q2, CR2, A2⟩"),
    ] {
        let subset = credential_subset(&client_creds, &source.advertised_properties());
        let frame = Frame::PartialQuery {
            sql: partial_sql.clone(),
            credentials: subset
                .iter()
                .map(crate::credential::Credential::encode)
                .collect(),
            join_attrs: join_attrs.clone(),
        };
        let received = transport.deliver(
            PartyId::Mediator,
            PartyId::source(source.name()),
            label,
            &frame,
        )?;
        let Frame::PartialQuery { credentials, .. } = received else {
            return Err(MedError::Protocol(
                "expected a partial-query frame".to_string(),
            ));
        };
        let source_group = source.ca_key().group().clone();
        let decoded: Vec<crate::credential::Credential> = credentials
            .iter()
            .map(|bytes| crate::credential::Credential::decode(bytes, &source_group))
            .collect::<Result<_, _>>()?;
        source_creds.push(decoded);
    }
    let right_creds = source_creds.pop().unwrap_or_default();
    let left_creds = source_creds.pop().unwrap_or_default();

    // Step 4: sources check credentials and evaluate the partial queries.
    let left_partial = sc.left.answer_partial_query(&left_creds)?;
    let right_partial = sc.right.answer_partial_query(&right_creds)?;

    Ok(Prepared {
        join_attrs,
        residual: decomp.residual,
        left_partial,
        right_partial,
        left_creds,
        right_creds,
    })
}

/// Applies the residual client query (post-join selection, projection,
/// and aggregation — all client-side work in the mediated setting).
pub fn apply_residual(joined: &Relation, residual: &Residual) -> Result<Relation, MedError> {
    let mut out = joined.clone();
    if let Some(pred) = &residual.pred {
        out = out.select(pred)?;
    }
    if let Some((group_cols, aggs)) = &residual.aggregate {
        let groups: Vec<&str> = group_cols.iter().map(String::as_str).collect();
        let agg_refs: Vec<(relalg::AggFn, &str)> =
            aggs.iter().map(|(f, c)| (*f, c.as_str())).collect();
        out = out.aggregate(&groups, &agg_refs)?;
    } else if let Some(cols) = &residual.cols {
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        out = out.project(&refs)?;
    }
    Ok(out)
}

/// Canonical byte encoding of a tuple's join-key (supports composite keys —
/// the multi-attribute extension of Section 8).
pub fn join_key_bytes(t: &Tuple, key_indices: &[usize]) -> Vec<u8> {
    let key: Vec<Value> = key_indices.iter().map(|&i| t.at(i).clone()).collect();
    relalg::encode_tuple(&Tuple::new(key))
}

/// Groups a relation by join key: key bytes → (`Tup_i(a)` tuples).
pub fn group_by_join_key(
    rel: &Relation,
    attrs: &[String],
) -> Result<BTreeMap<Vec<u8>, Vec<Tuple>>, MedError> {
    let indices: Vec<usize> = attrs
        .iter()
        .map(|a| rel.schema().index_of(a))
        .collect::<Result<_, _>>()?;
    let mut groups: BTreeMap<Vec<u8>, Vec<Tuple>> = BTreeMap::new();
    for t in rel.tuples() {
        groups
            .entry(join_key_bytes(t, &indices))
            .or_default()
            .push(t.clone());
    }
    Ok(groups)
}

/// Client-side join assembly from matched tuple-set pairs (commutative and
/// PM protocols): cross product within each pair, as in Listing 3 step 8.
///
/// The paper assumes a semi-honest mediator; since the decrypted tuples
/// carry their join values anyway, the client verifies the match for free
/// and rejects pairs a misbehaving mediator combined wrongly, instead of
/// silently producing a wrong join.
pub fn assemble_from_tuple_sets(
    left_schema: &Schema,
    right_schema: &Schema,
    attrs: &[String],
    pairs: &[(Vec<Tuple>, Vec<Tuple>)],
) -> Result<Relation, MedError> {
    let left_idx: Vec<usize> = attrs
        .iter()
        .map(|a| left_schema.index_of(a))
        .collect::<Result<_, _>>()?;
    let right_idx: Vec<usize> = attrs
        .iter()
        .map(|a| right_schema.index_of(a))
        .collect::<Result<_, _>>()?;
    let schema = left_schema.join_schema(right_schema, attrs);
    let mut out = Relation::empty(schema);
    for (ls, rs) in pairs {
        for l in ls {
            for r in rs {
                let matches = left_idx
                    .iter()
                    .zip(&right_idx)
                    .all(|(&li, &ri)| l.at(li) == r.at(ri));
                if !matches {
                    return Err(MedError::Protocol(
                        "result message pairs tuples with different join values — \
                         the mediator deviated from the protocol"
                            .to_string(),
                    ));
                }
                out.insert(l.concat_skipping(r, &right_idx))?;
            }
        }
    }
    Ok(out)
}

/// Client-side join assembly from candidate tuple *pairs* (DAS protocol):
/// apply the true join condition `Cond_C`, then combine.
pub fn assemble_from_candidates(
    left_schema: &Schema,
    right_schema: &Schema,
    attrs: &[String],
    candidates: &[(Tuple, Tuple)],
) -> Result<Relation, MedError> {
    let left_idx: Vec<usize> = attrs
        .iter()
        .map(|a| left_schema.index_of(a))
        .collect::<Result<_, _>>()?;
    let right_idx: Vec<usize> = attrs
        .iter()
        .map(|a| right_schema.index_of(a))
        .collect::<Result<_, _>>()?;
    let schema = left_schema.join_schema(right_schema, attrs);
    let mut out = Relation::empty(schema);
    for (l, r) in candidates {
        let matches = left_idx
            .iter()
            .zip(&right_idx)
            .all(|(&li, &ri)| l.at(li) == r.at(ri));
        if matches {
            out.insert(l.concat_skipping(r, &right_idx))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::{Type, Value};

    fn rel(rows: &[(i64, &str)]) -> Relation {
        let mut r = Relation::empty(Schema::new(&[("k", Type::Int), ("p", Type::Str)]));
        for &(k, p) in rows {
            r.insert(Tuple::new(vec![Value::Int(k), Value::from(p)]))
                .unwrap();
        }
        r
    }

    #[test]
    fn join_key_bytes_distinguishes_composite_keys() {
        let t1 = Tuple::new(vec![Value::Int(1), Value::Int(23)]);
        let t2 = Tuple::new(vec![Value::Int(12), Value::Int(3)]);
        // Naive concatenation of "1"+"23" and "12"+"3" would collide; the
        // length-prefixed codec must not.
        assert_ne!(join_key_bytes(&t1, &[0, 1]), join_key_bytes(&t2, &[0, 1]));
        assert_eq!(join_key_bytes(&t1, &[0]), join_key_bytes(&t1, &[0]));
    }

    #[test]
    fn group_by_join_key_partitions_rows() {
        let r = rel(&[(1, "a"), (2, "b"), (1, "c")]);
        let groups = group_by_join_key(&r, &["k".to_string()]).unwrap();
        assert_eq!(groups.len(), 2);
        let total: usize = groups.values().map(Vec::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn group_by_unknown_attribute_errors() {
        let r = rel(&[(1, "a")]);
        assert!(group_by_join_key(&r, &["ghost".to_string()]).is_err());
    }

    #[test]
    fn assemble_from_tuple_sets_cross_products_each_pair() {
        let left = rel(&[(1, "l1"), (1, "l2")]);
        let right_schema = Schema::new(&[("k", Type::Int), ("q", Type::Str)]);
        let r1 = Tuple::new(vec![Value::Int(1), Value::from("r1")]);
        let r2 = Tuple::new(vec![Value::Int(1), Value::from("r2")]);
        let pairs = vec![(left.tuples().to_vec(), vec![r1, r2])];
        let joined =
            assemble_from_tuple_sets(left.schema(), &right_schema, &["k".to_string()], &pairs)
                .unwrap();
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.schema().attr_names(), vec!["k", "p", "q"]);
    }

    #[test]
    fn assemble_from_candidates_filters_false_positives() {
        let left = rel(&[(1, "l")]);
        let right_schema = Schema::new(&[("k", Type::Int), ("q", Type::Str)]);
        let matching = Tuple::new(vec![Value::Int(1), Value::from("hit")]);
        let fake = Tuple::new(vec![Value::Int(9), Value::from("miss")]);
        let candidates = vec![
            (left.tuples()[0].clone(), matching),
            (left.tuples()[0].clone(), fake),
        ];
        let joined = assemble_from_candidates(
            left.schema(),
            &right_schema,
            &["k".to_string()],
            &candidates,
        )
        .unwrap();
        assert_eq!(
            joined.len(),
            1,
            "the DAS client query drops non-matching pairs"
        );
    }

    #[test]
    fn assemble_from_tuple_sets_detects_mediator_misbehaviour() {
        // A cheating mediator pairs Tup1(a) with Tup2(b), a != b: the
        // client must notice, not fabricate join rows.
        let left = rel(&[(1, "l")]);
        let right_schema = Schema::new(&[("k", Type::Int), ("q", Type::Str)]);
        let wrong = Tuple::new(vec![Value::Int(2), Value::from("r")]);
        let pairs = vec![(left.tuples().to_vec(), vec![wrong])];
        let err =
            assemble_from_tuple_sets(left.schema(), &right_schema, &["k".to_string()], &pairs);
        assert!(matches!(err, Err(MedError::Protocol(_))));
    }

    #[test]
    fn apply_residual_projects_and_filters() {
        use relalg::Predicate;
        let joined = rel(&[(1, "a"), (2, "b")]);
        let residual = Residual {
            pred: Some(Predicate::eq_lit("k", 2i64)),
            cols: Some(vec!["p".to_string()]),
            aggregate: None,
        };
        let out = apply_residual(&joined, &residual).unwrap();
        assert_eq!(out.schema().attr_names(), vec!["p"]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].at(0), &Value::from("b"));
    }

    #[test]
    fn protocol_names_match_paper_rows() {
        assert_eq!(
            ProtocolKind::Das(DasConfig::default()).name(),
            "Database-as-a-Service"
        );
        assert_eq!(
            ProtocolKind::Commutative(CommutativeConfig::default()).name(),
            "Commutative Encryption"
        );
        assert_eq!(
            ProtocolKind::Pm(PmConfig::default()).name(),
            "Private Matching"
        );
    }
}
