//! The private-matching delivery phase (paper Listing 4, after Freedman
//! et al.).
//!
//! Each source builds a polynomial whose roots are (encodings of) its
//! active join values and ships the Paillier-encrypted coefficients —
//! under the client's homomorphic credential key — through the mediator to
//! the *opposite* source.  That source evaluates
//! `E(r * P(a) + (a || payload))` for each of its own values: the client
//! can decrypt a useful payload exactly for values in the intersection,
//! and sees uniformly random garbage otherwise.
//!
//! Options:
//! * [`PmEval`] — naive power-sum, Horner, or Freedman's bucket allocation,
//! * [`PmPayloadMode`] — tuple sets inline in the polynomial payload
//!   (Listing 4 verbatim) or the footnote-2 session-key table.
//!
//! Polynomials and evaluations travel as encoded [`Frame`]s: the opposite
//! source rebuilds the encrypted polynomial from the coefficients it
//! decoded off the wire, and the client rebuilds the Paillier ciphertexts
//! from the delivered elements.

use std::collections::BTreeMap;

use mpint::rng::Rng;
use mpint::Natural;
use relalg::{decode_tuple_set, encode_tuple_set, Tuple};
use secmed_crypto::drbg::DrbgFamily;
use secmed_crypto::hybrid::{SessionCiphertext, SessionKey};
use secmed_crypto::paillier::{PaillierCiphertext, PaillierPublicKey};
use secmed_crypto::polynomial::{BucketedPoly, EncryptedBucketedPoly, EncryptedPoly, ZnPoly};
use secmed_crypto::sha256::sha256;
use secmed_crypto::CryptoError;
use secmed_pool::Pool;
use secmed_wire::{PmPayloadSet, PolyCoeffs};

use crate::audit::ClientView;
use crate::protocol::{
    apply_residual, assemble_from_tuple_sets, degrade_note, group_by_join_key, PmConfig, PmEval,
    PmPayloadMode, Prepared, RunOutcome, RunReport, Scenario,
};
use crate::transport::{Fabric, Frame, PartyId, Transport};
use crate::MedError;

/// Payload framing version tags.
const TAG_INLINE: u8 = 0x01;
const TAG_SESSION: u8 = 0x02;
/// Truncated join-value tag length (collision probability 2^-64 per pair
/// at 2^32 values — ample for a semi-honest matching protocol).
const VALUE_TAG_LEN: usize = 16;

/// The encrypted polynomial a source ships: flat or bucketed.
enum ShippedPoly {
    Flat(EncryptedPoly),
    Bucketed(EncryptedBucketedPoly),
}

impl ShippedPoly {
    /// The wire form: raw ciphertext elements, structure preserved.
    fn to_coeffs(&self) -> PolyCoeffs {
        let elements = |p: &EncryptedPoly| {
            p.ciphertexts()
                .iter()
                .map(|c| c.element().clone())
                .collect()
        };
        match self {
            ShippedPoly::Flat(p) => PolyCoeffs::Flat(elements(p)),
            ShippedPoly::Bucketed(bp) => {
                PolyCoeffs::Bucketed(bp.buckets().iter().map(elements).collect())
            }
        }
    }

    /// Rebuilds an evaluatable polynomial from decoded coefficients,
    /// validating every element against the public key.
    fn from_coeffs(coeffs: PolyCoeffs, pk: &PaillierPublicKey) -> Result<Self, MedError> {
        let rebuild = |elements: Vec<Natural>| -> Result<EncryptedPoly, CryptoError> {
            let cts = elements
                .into_iter()
                .map(|e| PaillierCiphertext::from_element(e, pk))
                .collect::<Result<Vec<_>, _>>()?;
            EncryptedPoly::from_ciphertexts(cts, pk)
        };
        match coeffs {
            PolyCoeffs::Flat(elements) => Ok(ShippedPoly::Flat(rebuild(elements)?)),
            PolyCoeffs::Bucketed(buckets) => {
                let polys = buckets
                    .into_iter()
                    .map(rebuild)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ShippedPoly::Bucketed(EncryptedBucketedPoly::from_buckets(
                    polys,
                )?))
            }
        }
    }
}

/// Packs one side's evaluations into its wire payload set.
fn payload_set(
    evals: &[PaillierCiphertext],
    table: &BTreeMap<u64, SessionCiphertext>,
) -> PmPayloadSet {
    PmPayloadSet {
        evals: evals.iter().map(|c| c.element().clone()).collect(),
        table: table.iter().map(|(id, ct)| (*id, ct.clone())).collect(),
    }
}

/// Client-side unpacking: rebuild the Paillier ciphertexts and the
/// session table from a decoded payload set.
fn unpack_payload_set(
    set: PmPayloadSet,
    pk: &PaillierPublicKey,
) -> Result<(Vec<PaillierCiphertext>, BTreeMap<u64, SessionCiphertext>), MedError> {
    let evals = set
        .evals
        .into_iter()
        .map(|e| PaillierCiphertext::from_element(e, pk))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((evals, set.table.into_iter().collect()))
}

/// Runs the delivery phase of Listing 4.
pub fn deliver<F: Fabric>(
    sc: &mut Scenario,
    p: Prepared,
    cfg: PmConfig,
    transport: &mut F,
    pool: &Pool,
) -> Result<RunReport, MedError> {
    // Step 1: the client's homomorphic public key is distributed with the
    // credentials — each source reads it from its forwarded subset.
    let paillier_pk = p
        .left_creds
        .iter()
        .chain(p.right_creds.iter())
        .find_map(|c| c.paillier_key())
        .ok_or_else(|| {
            MedError::Protocol("no credential carries a homomorphic public key".to_string())
        })?
        .clone();

    let groups1 = group_by_join_key(&p.left_partial, &p.join_attrs)?;
    let groups2 = group_by_join_key(&p.right_partial, &p.join_attrs)?;

    // Steps 2-3: each source builds and encrypts its polynomial.
    let (poly1, poly2) = {
        let mut s = secmed_obs::span("pm.encryption");
        let poly1 = build_poly(&groups1, &paillier_pk, cfg.eval, sc.left.rng(), pool);
        let poly2 = build_poly(&groups2, &paillier_pk, cfg.eval, sc.right.rng(), pool);
        s.field("left_degree", groups1.len());
        s.field("right_degree", groups2.len());
        (poly1, poly2)
    };

    // Steps 2-4 on the wire: coefficients to the mediator, then forwarded
    // to the opposite source, which rebuilds the polynomial it will
    // evaluate from the decoded frame.
    let transfer = secmed_obs::span("pm.transfer");
    let received = transport.deliver(
        PartyId::source(sc.left.name()),
        PartyId::Mediator,
        "L4.2 E(c_k) coefficients of P1",
        &Frame::PmPolynomial {
            poly: poly1.to_coeffs(),
        },
    )?;
    let Frame::PmPolynomial { poly: med_p1 } = received else {
        return Err(MedError::Protocol(
            "expected a polynomial frame".to_string(),
        ));
    };
    let received = transport.deliver(
        PartyId::source(sc.right.name()),
        PartyId::Mediator,
        "L4.3 E(d_l) coefficients of P2",
        &Frame::PmPolynomial {
            poly: poly2.to_coeffs(),
        },
    )?;
    let Frame::PmPolynomial { poly: med_p2 } = received else {
        return Err(MedError::Protocol(
            "expected a polynomial frame".to_string(),
        ));
    };

    // Step 4: the mediator forwards each polynomial to the opposite
    // source.  A source that never receives the opposite polynomial (an
    // exhausted L4.4 under the degrade policy — e.g. the source died right
    // after its own polynomial transfer) contributes no evaluations: the
    // client then sees only the partial delivery set, reported as
    // `Degraded`, never a silent wrong join.
    let mut degraded: Vec<String> = Vec::new();
    let p1_at_s2 = match transport.deliver(
        PartyId::Mediator,
        PartyId::source(sc.right.name()),
        "L4.4 E(P1) → S2",
        &Frame::PmPolynomial { poly: med_p1 },
    ) {
        Ok(Frame::PmPolynomial { poly }) => Some(ShippedPoly::from_coeffs(poly, &paillier_pk)?),
        Ok(_) => {
            return Err(MedError::Protocol(
                "expected a polynomial frame".to_string(),
            ))
        }
        Err(MedError::Delivery(f)) if transport.degrade_on_exhausted() => {
            degraded.push(degrade_note(&f));
            None
        }
        Err(e) => return Err(e),
    };
    let p2_at_s1 = match transport.deliver(
        PartyId::Mediator,
        PartyId::source(sc.left.name()),
        "L4.4 E(P2) → S1",
        &Frame::PmPolynomial { poly: med_p2 },
    ) {
        Ok(Frame::PmPolynomial { poly }) => Some(ShippedPoly::from_coeffs(poly, &paillier_pk)?),
        Ok(_) => {
            return Err(MedError::Protocol(
                "expected a polynomial frame".to_string(),
            ))
        }
        Err(MedError::Delivery(f)) if transport.degrade_on_exhausted() => {
            degraded.push(degrade_note(&f));
            None
        }
        Err(e) => return Err(e),
    };
    drop(transfer);

    // Steps 5-6: masked evaluations with payloads — the oblivious
    // matching work of this protocol — against the *received* polynomials.
    let mut intersection = secmed_obs::span("pm.intersection");
    let naive = matches!(cfg.eval, PmEval::Naive);
    let (evals1, table1) = match &p2_at_s1 {
        Some(poly) => evaluate_side(
            &groups1,
            poly,
            &paillier_pk,
            cfg.payload,
            naive,
            sc.left.rng(),
            pool,
        )?,
        None => (Vec::new(), BTreeMap::new()),
    };
    let (evals2, table2) = match &p1_at_s2 {
        Some(poly) => evaluate_side(
            &groups2,
            poly,
            &paillier_pk,
            cfg.payload,
            naive,
            sc.right.rng(),
            pool,
        )?,
        None => (Vec::new(), BTreeMap::new()),
    };
    intersection.field("evaluations", evals1.len() + evals2.len());
    drop(intersection);

    let transfer = secmed_obs::span("pm.transfer");
    // L4.5/L4.6 degrade like L4.4: an evaluation set that never reaches
    // the mediator leaves that side out of the delivery — a partial
    // delivery set, visibly typed.
    let empty_set = || PmPayloadSet {
        evals: Vec::new(),
        table: Vec::new(),
    };
    let med_e1 = match transport.deliver(
        PartyId::source(sc.left.name()),
        PartyId::Mediator,
        "L4.5 e_k values (+ session table)",
        &Frame::PmEvaluations {
            payload: payload_set(&evals1, &table1),
        },
    ) {
        Ok(Frame::PmEvaluations { payload }) => payload,
        Ok(_) => {
            return Err(MedError::Protocol(
                "expected an evaluations frame".to_string(),
            ))
        }
        Err(MedError::Delivery(f)) if transport.degrade_on_exhausted() => {
            degraded.push(degrade_note(&f));
            empty_set()
        }
        Err(e) => return Err(e),
    };
    let med_e2 = match transport.deliver(
        PartyId::source(sc.right.name()),
        PartyId::Mediator,
        "L4.6 e'_l values (+ session table)",
        &Frame::PmEvaluations {
            payload: payload_set(&evals2, &table2),
        },
    ) {
        Ok(Frame::PmEvaluations { payload }) => payload,
        Ok(_) => {
            return Err(MedError::Protocol(
                "expected an evaluations frame".to_string(),
            ))
        }
        Err(MedError::Delivery(f)) if transport.degrade_on_exhausted() => {
            degraded.push(degrade_note(&f));
            empty_set()
        }
        Err(e) => return Err(e),
    };

    // Step 7: mediator → client, all n + m encrypted values in one frame.
    let received = transport.deliver(
        PartyId::Mediator,
        PartyId::Client,
        "L4.7 n+m encrypted values (+ session tables)",
        &Frame::PmDelivery {
            left: med_e1,
            right: med_e2,
        },
    )?;
    let Frame::PmDelivery { left, right } = received else {
        return Err(MedError::Protocol("expected a delivery frame".to_string()));
    };
    drop(transfer);

    // Step 8: the client rebuilds the ciphertexts it was delivered, then
    // decrypts everything and matches value tags.
    let mut post = secmed_obs::span("pm.post");
    let client_pk = sc.client.paillier().public().clone();
    let (client_evals1, client_table1) = unpack_payload_set(left, &client_pk)?;
    let (client_evals2, client_table2) = unpack_payload_set(right, &client_pk)?;
    let parsed1 = parse_side(&client_evals1, sc)?;
    let parsed2 = parse_side(&client_evals2, sc)?;
    let useful = parsed1.len() + parsed2.len();

    let mut tuple_set_pairs: Vec<(Vec<Tuple>, Vec<Tuple>)> = Vec::new();
    for (tag, payload1) in &parsed1 {
        if let Some(payload2) = parsed2.get(tag) {
            let ts1 = open_payload(payload1, &client_table1)?;
            let ts2 = open_payload(payload2, &client_table2)?;
            tuple_set_pairs.push((ts1, ts2));
        }
    }
    let joined = assemble_from_tuple_sets(
        p.left_partial.schema(),
        p.right_partial.schema(),
        &p.join_attrs,
        &tuple_set_pairs,
    )?;
    let result = apply_residual(&joined, &p.residual)?;
    post.field("result_rows", result.len());
    drop(post);

    // Only the useful-payload count needs the client's secret key; every
    // other Table 1 observation is derived from the recorded frames by the
    // engine's audit pass.
    let client_view = ClientView {
        useful_payloads: Some(useful),
        ..Default::default()
    };

    {
        use secmed_obs::metrics::{incr, Class};
        incr(Class::Deterministic, "driver.pm.runs", 1);
        incr(
            Class::Deterministic,
            "driver.pm.useful_payloads",
            useful as u64,
        );
        incr(
            Class::Deterministic,
            "driver.pm.matched_pairs",
            tuple_set_pairs.len() as u64,
        );
        incr(
            Class::Deterministic,
            "driver.pm.result_rows",
            result.len() as u64,
        );
    }

    Ok(RunReport {
        result,
        outcome: if degraded.is_empty() {
            RunOutcome::Clean
        } else {
            RunOutcome::Degraded {
                details: degraded,
                retries: 0, // filled in by the engine
            }
        },
        transport: Transport::new(),
        mediator_view: Default::default(),
        client_view,
        primitives: Vec::new(),
        metrics: Vec::new(), // filled in by the engine
    })
}

/// Encodes a join key as a polynomial root in `Z_n`: SHA-256 of the key
/// bytes, reduced mod `n`.
fn encode_root(key_bytes: &[u8], pk: &PaillierPublicKey) -> Natural {
    Natural::from_bytes_be(&sha256(key_bytes)).rem(pk.n())
}

/// Truncated value tag carried inside payloads for client-side matching.
fn value_tag(key_bytes: &[u8]) -> [u8; VALUE_TAG_LEN] {
    let digest = sha256(key_bytes);
    let mut tag = [0u8; VALUE_TAG_LEN];
    tag.copy_from_slice(&digest[..VALUE_TAG_LEN]);
    tag
}

/// Listing 4 steps 2-3 at one source.
fn build_poly(
    groups: &BTreeMap<Vec<u8>, Vec<Tuple>>,
    pk: &PaillierPublicKey,
    eval: PmEval,
    rng: &mut dyn Rng,
    pool: &Pool,
) -> ShippedPoly {
    let roots: Vec<Natural> = groups.keys().map(|k| encode_root(k, pk)).collect();
    let streams = DrbgFamily::derive(rng);
    match eval {
        PmEval::Bucketed(buckets) => {
            let bp = BucketedPoly::from_roots(&roots, pk.n(), buckets.max(1));
            ShippedPoly::Bucketed(EncryptedBucketedPoly::encrypt_par(&bp, pk, pool, &streams))
        }
        PmEval::Naive | PmEval::Horner => {
            let zp = ZnPoly::from_roots(&roots, pk.n());
            ShippedPoly::Flat(EncryptedPoly::encrypt_par(&zp, pk, pool, &streams))
        }
    }
}

/// A parsed client-side payload.
enum Payload {
    Inline(Vec<Tuple>),
    Session { key: SessionKey, id: u64 },
}

/// Listing 4 steps 5-6 at one source: one masked evaluation per active
/// value, plus (in session mode) the ID-keyed table of symmetric
/// ciphertexts.
fn evaluate_side(
    groups: &BTreeMap<Vec<u8>, Vec<Tuple>>,
    opposite_poly: &ShippedPoly,
    pk: &PaillierPublicKey,
    mode: PmPayloadMode,
    naive: bool,
    rng: &mut dyn Rng,
    pool: &Pool,
) -> Result<(Vec<PaillierCiphertext>, BTreeMap<u64, SessionCiphertext>), MedError> {
    // One DRBG stream per active value (canonical BTreeMap key order), so
    // session keys, IDs, and masks are identical at any thread count.
    let streams = DrbgFamily::derive(rng);
    let entries: Vec<(&Vec<u8>, &Vec<Tuple>)> = groups.iter().collect();
    let items = pool.try_par_map(&entries, |i, (key_bytes, tuples)| {
        let mut rng = streams.stream(i as u64);
        let root = encode_root(key_bytes, pk);
        let tag = value_tag(key_bytes);
        let mut session: Option<(u64, SessionCiphertext)> = None;
        let payload_bytes = match mode {
            PmPayloadMode::Inline => {
                let ts = encode_tuple_set(tuples);
                let mut out = Vec::with_capacity(1 + VALUE_TAG_LEN + 4 + ts.len());
                out.push(TAG_INLINE);
                out.extend_from_slice(&tag);
                out.extend_from_slice(&(ts.len() as u32).to_be_bytes());
                out.extend_from_slice(&ts);
                out
            }
            PmPayloadMode::SessionKeyTable => {
                let key = SessionKey::generate(&mut rng);
                let mut id_bytes = [0u8; 8];
                rng.fill_bytes(&mut id_bytes);
                let id = u64::from_be_bytes(id_bytes);
                let ct = key.encrypt(&encode_tuple_set(tuples), &mut rng);
                session = Some((id, ct));
                let mut out = Vec::with_capacity(1 + VALUE_TAG_LEN + 32 + 8);
                out.push(TAG_SESSION);
                out.extend_from_slice(&tag);
                out.extend_from_slice(&key.0);
                out.extend_from_slice(&id.to_be_bytes());
                out
            }
        };
        if payload_bytes.len() > pk.plaintext_bytes() {
            return Err(MedError::Crypto(CryptoError::MessageTooLarge));
        }
        let payload = Natural::from_bytes_be(&payload_bytes);
        let masked = match opposite_poly {
            // The evaluation strategy only changes how E(P(a)) is computed;
            // `Naive` uses the power sum, everything else Horner's rule.
            ShippedPoly::Flat(p) => {
                let p_at_a = if naive {
                    p.eval_naive(&root)
                } else {
                    p.eval_horner(&root)
                };
                p.mask(&p_at_a, &payload, &mut rng)?
            }
            ShippedPoly::Bucketed(bp) => bp.eval_masked(&root, &payload, &mut rng)?,
        };
        Ok::<_, MedError>((masked, session))
    })?;
    let mut evals = Vec::with_capacity(items.len());
    let mut table = BTreeMap::new();
    for (masked, session) in items {
        evals.push(masked);
        if let Some((id, ct)) = session {
            table.insert(id, ct);
        }
    }
    // Order independence: sort by ciphertext value.
    evals.sort_by(|a, b| a.element().cmp(b.element()));
    Ok((evals, table))
}

/// Client step 8a: decrypt and parse one side's evaluations.  Returns
/// tag → payload for every value that decrypts to well-formed protocol
/// data (values outside the intersection decrypt to random garbage and are
/// dropped here).
fn parse_side(
    evals: &[PaillierCiphertext],
    sc: &mut Scenario,
) -> Result<BTreeMap<[u8; VALUE_TAG_LEN], Payload>, MedError> {
    let mut out = BTreeMap::new();
    for ct in evals {
        let m = sc.client.paillier().decrypt(ct);
        let bytes = m.to_bytes_be();
        if let Some(p) = parse_payload(&bytes) {
            // parse_payload verified the length; a short slice means
            // "not in the intersection", same as any other parse failure.
            let Ok(tag) = <[u8; VALUE_TAG_LEN]>::try_from(&bytes[1..1 + VALUE_TAG_LEN]) else {
                continue;
            };
            out.insert(tag, p);
        }
    }
    Ok(out)
}

/// Strict payload parsing — any structural mismatch means "not in the
/// intersection".
fn parse_payload(bytes: &[u8]) -> Option<Payload> {
    match *bytes.first()? {
        TAG_INLINE => {
            if bytes.len() < 1 + VALUE_TAG_LEN + 4 {
                return None;
            }
            let len_off = 1 + VALUE_TAG_LEN;
            let len = u32::from_be_bytes(bytes[len_off..len_off + 4].try_into().ok()?) as usize;
            let body = &bytes[len_off + 4..];
            if body.len() != len {
                return None;
            }
            let tuples = decode_tuple_set(body).ok()?;
            Some(Payload::Inline(tuples))
        }
        TAG_SESSION => {
            if bytes.len() != 1 + VALUE_TAG_LEN + 32 + 8 {
                return None;
            }
            let key_off = 1 + VALUE_TAG_LEN;
            let mut key = [0u8; 32];
            key.copy_from_slice(&bytes[key_off..key_off + 32]);
            let id = u64::from_be_bytes(bytes[key_off + 32..].try_into().ok()?);
            Some(Payload::Session {
                key: SessionKey(key),
                id,
            })
        }
        _ => None,
    }
}

/// Client step 8b: recover the tuple set behind a parsed payload.
fn open_payload(
    payload: &Payload,
    table: &BTreeMap<u64, SessionCiphertext>,
) -> Result<Vec<Tuple>, MedError> {
    match payload {
        Payload::Inline(tuples) => Ok(tuples.clone()),
        Payload::Session { key, id } => {
            let ct = table.get(id).ok_or_else(|| {
                MedError::Protocol(format!("session table has no entry for id {id}"))
            })?;
            Ok(decode_tuple_set(&key.decrypt(ct)?)?)
        }
    }
}
