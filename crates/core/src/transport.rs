//! The recorded message fabric.
//!
//! The paper's prototype was "a prototypical web based system"; networking
//! is irrelevant to its claims, so parties here exchange messages through
//! an in-process [`Transport`].  Every message is a real encoded
//! [`Frame`]: the sender serializes, the fabric records the bytes, and the
//! receiver decodes from the recorded bytes — there is no struct side
//! channel.  The recorder is the ground truth for:
//!
//! * the interaction-pattern analysis of Section 6 ("the client has to
//!   interact twice with the mediator", "the datasources have to interact
//!   twice"),
//! * communication-volume accounting in the benches (`Envelope::bytes()`
//!   is the encoded frame length, never an estimate),
//! * the leakage audit: a party's *view* is exactly the sequence of frames
//!   it received, and `audit::derive_views` recomputes Table 1 from the
//!   decoded log.

use std::fmt;

use crate::MedError;

pub use secmed_wire::{DasTable, Frame, PmPayloadSet, PolyCoeffs, TupleRef, WireError};

/// A protocol participant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartyId {
    /// The querying client.
    Client,
    /// The (untrusted) mediator.
    Mediator,
    /// A datasource by name.
    Source(String),
    /// The certification authority (preparatory phase only).
    Ca,
}

impl PartyId {
    /// Datasource convenience constructor.
    pub fn source(name: impl Into<String>) -> Self {
        PartyId::Source(name.into())
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartyId::Client => write!(f, "client"),
            PartyId::Mediator => write!(f, "mediator"),
            PartyId::Source(s) => write!(f, "source:{s}"),
            PartyId::Ca => write!(f, "ca"),
        }
    }
}

/// One recorded message: an encoded frame in flight.
#[derive(Clone)]
pub struct Envelope {
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Human-readable step label, e.g. `"L3.3 M_i"` for Listing 3 step 3.
    pub label: String,
    /// The encoded frame exactly as it crossed the fabric.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Payload size in bytes — derived from the real encoded frame.
    pub fn bytes(&self) -> usize {
        self.payload.len()
    }

    /// Decodes the payload back into its typed frame.
    pub fn frame(&self) -> Result<Frame, WireError> {
        Frame::decode(&self.payload)
    }
}

/// One line per envelope: `sender → receiver [size B] label`, the format
/// `Transport::render_flow` stacks into the Figure 1/2 message flow.
impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} → {:<12} [{:>8} B]  {}",
            self.from.to_string(),
            self.to.to_string(),
            self.bytes(),
            self.label
        )
    }
}

/// `Debug` covers the full payload (as lowercase hex), so a `{:?}` render
/// of a transport log fingerprints every byte that crossed the fabric —
/// the determinism suite relies on this.
impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut hex = String::with_capacity(self.payload.len() * 2);
        for b in &self.payload {
            hex.push_str(&format!("{b:02x}"));
        }
        f.debug_struct("Envelope")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("label", &self.label)
            .field("payload", &hex)
            .finish()
    }
}

/// The in-process message fabric with full recording.
#[derive(Debug, Default)]
pub struct Transport {
    log: Vec<Envelope>,
}

impl Transport {
    /// A fresh, empty fabric.
    pub fn new() -> Self {
        Transport::default()
    }

    /// Records an already-encoded frame.
    pub fn send(&mut self, from: PartyId, to: PartyId, label: impl Into<String>, payload: Vec<u8>) {
        self.log.push(Envelope {
            from,
            to,
            label: label.into(),
            payload,
        });
    }

    /// Sends a typed frame and hands the receiver its *decoded copy of the
    /// recorded bytes* — the only way protocol data crosses a party
    /// boundary.  Encoding happens on the sender's side, the fabric keeps
    /// the canonical bytes, and the receiver sees exactly what a network
    /// peer would see.
    pub fn deliver(
        &mut self,
        from: PartyId,
        to: PartyId,
        label: impl Into<String>,
        frame: &Frame,
    ) -> Result<Frame, MedError> {
        self.send(from, to, label, frame.encode());
        let recorded = self.log.last().map(|e| e.frame()).ok_or_else(|| {
            MedError::Protocol("transport recorded nothing for a delivered frame".to_string())
        })?;
        Ok(recorded?)
    }

    /// The full log, in order.
    pub fn log(&self) -> &[Envelope] {
        &self.log
    }

    /// Decodes every recorded envelope, in order.  This is the transcript
    /// the leakage audit runs over.
    pub fn decode_log(&self) -> Result<Vec<(PartyId, PartyId, Frame)>, WireError> {
        self.log
            .iter()
            .map(|e| Ok((e.from.clone(), e.to.clone(), e.frame()?)))
            .collect()
    }

    /// Number of messages.
    pub fn message_count(&self) -> usize {
        self.log.len()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> usize {
        self.log.iter().map(Envelope::bytes).sum()
    }

    /// Messages on one directed link.
    pub fn link(&self, from: &PartyId, to: &PartyId) -> Vec<&Envelope> {
        self.log
            .iter()
            .filter(|e| &e.from == from && &e.to == to)
            .collect()
    }

    /// Number of *interactions* of a party: maximal runs of consecutive
    /// envelopes it sends (a burst of messages in one protocol step counts
    /// as one interaction) — the unit of the paper's "interacts twice".
    pub fn interactions_of(&self, party: &PartyId) -> usize {
        let mut count = 0;
        let mut in_run = false;
        for e in &self.log {
            if &e.from == party {
                if !in_run {
                    count += 1;
                    in_run = true;
                }
            } else {
                in_run = false;
            }
        }
        count
    }

    /// Bytes received by a party (the size of its view).
    pub fn bytes_received_by(&self, party: &PartyId) -> usize {
        self.log
            .iter()
            .filter(|e| &e.to == party)
            .map(Envelope::bytes)
            .sum()
    }

    /// Renders the flow as an indented trace (used by the quickstart
    /// example to regenerate Figure 1/2's message flow): one
    /// [`Envelope`] `Display` line per message, sizes taken from the real
    /// encoded frames.
    pub fn render_flow(&self) -> String {
        let mut out = String::new();
        for e in &self.log {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmed_das::IndexValue;

    fn payload(n: usize) -> Vec<u8> {
        vec![0xAB; n]
    }

    fn t() -> Transport {
        let mut t = Transport::new();
        t.send(PartyId::Client, PartyId::Mediator, "query", payload(100));
        t.send(PartyId::Mediator, PartyId::source("s1"), "q1", payload(50));
        t.send(PartyId::Mediator, PartyId::source("s2"), "q2", payload(50));
        t.send(PartyId::source("s1"), PartyId::Mediator, "r1", payload(500));
        t.send(PartyId::source("s2"), PartyId::Mediator, "r2", payload(700));
        t.send(PartyId::Mediator, PartyId::Client, "result", payload(900));
        t
    }

    #[test]
    fn accounting() {
        let t = t();
        assert_eq!(t.message_count(), 6);
        assert_eq!(t.total_bytes(), 2300);
        assert_eq!(t.bytes_received_by(&PartyId::Mediator), 1300);
        assert_eq!(t.link(&PartyId::Mediator, &PartyId::Client).len(), 1);
    }

    #[test]
    fn interactions_group_bursts() {
        let t = t();
        // Mediator sends twice: the (q1,q2) burst and the final result.
        assert_eq!(t.interactions_of(&PartyId::Mediator), 2);
        assert_eq!(t.interactions_of(&PartyId::Client), 1);
        assert_eq!(t.interactions_of(&PartyId::source("s1")), 1);
    }

    #[test]
    fn render_contains_labels() {
        let flow = t().render_flow();
        assert!(flow.contains("query"));
        assert!(flow.contains("source:s1"));
    }

    #[test]
    fn render_flow_is_stacked_envelope_display() {
        let t = t();
        let lines: Vec<String> = t.log().iter().map(|e| e.to_string()).collect();
        assert_eq!(t.render_flow(), format!("{}\n", lines.join("\n")));
    }

    #[test]
    fn envelope_bytes_is_payload_length() {
        let e = Envelope {
            from: PartyId::Client,
            to: PartyId::Mediator,
            label: "x".into(),
            payload: vec![1, 2, 3],
        };
        assert_eq!(e.bytes(), 3);
        assert!(format!("{e:?}").contains("010203"), "hex payload in Debug");
    }

    #[test]
    fn deliver_round_trips_through_recorded_bytes() {
        let mut t = Transport::new();
        let frame = Frame::DasServerQuery {
            pairs: vec![(IndexValue(1), IndexValue(2))],
        };
        let received = t
            .deliver(PartyId::Client, PartyId::Mediator, "L2.5 q_S", &frame)
            .unwrap();
        assert_eq!(received, frame);
        assert_eq!(t.message_count(), 1);
        assert_eq!(t.total_bytes(), frame.encode().len());
        let decoded = t.decode_log().unwrap();
        assert_eq!(decoded[0].2, frame);
    }

    #[test]
    fn party_display() {
        assert_eq!(PartyId::Client.to_string(), "client");
        assert_eq!(PartyId::source("x").to_string(), "source:x");
    }
}
