//! The recorded message fabric.
//!
//! The paper's prototype was "a prototypical web based system"; networking
//! is irrelevant to its claims, so parties here exchange messages through
//! an in-process [`Transport`] that records every envelope.  The recorder
//! is the ground truth for:
//!
//! * the interaction-pattern analysis of Section 6 ("the client has to
//!   interact twice with the mediator", "the datasources have to interact
//!   twice"),
//! * communication-volume accounting in the benches,
//! * the leakage audit: a party's *view* is exactly the set of envelopes
//!   it received.

use std::fmt;

/// A protocol participant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartyId {
    /// The querying client.
    Client,
    /// The (untrusted) mediator.
    Mediator,
    /// A datasource by name.
    Source(String),
    /// The certification authority (preparatory phase only).
    Ca,
}

impl PartyId {
    /// Datasource convenience constructor.
    pub fn source(name: impl Into<String>) -> Self {
        PartyId::Source(name.into())
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartyId::Client => write!(f, "client"),
            PartyId::Mediator => write!(f, "mediator"),
            PartyId::Source(s) => write!(f, "source:{s}"),
            PartyId::Ca => write!(f, "ca"),
        }
    }
}

/// One recorded message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Human-readable step label, e.g. `"L3.3 M_i"` for Listing 3 step 3.
    pub label: String,
    /// Payload size in bytes (ciphertext sizes; plaintext never rides the
    /// fabric except from/to the client's own state).
    pub bytes: usize,
}

/// The in-process message fabric with full recording.
#[derive(Debug, Default)]
pub struct Transport {
    log: Vec<Envelope>,
}

impl Transport {
    /// A fresh, empty fabric.
    pub fn new() -> Self {
        Transport::default()
    }

    /// Records a message.
    pub fn send(&mut self, from: PartyId, to: PartyId, label: impl Into<String>, bytes: usize) {
        self.log.push(Envelope {
            from,
            to,
            label: label.into(),
            bytes,
        });
    }

    /// The full log, in order.
    pub fn log(&self) -> &[Envelope] {
        &self.log
    }

    /// Number of messages.
    pub fn message_count(&self) -> usize {
        self.log.len()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> usize {
        self.log.iter().map(|e| e.bytes).sum()
    }

    /// Messages on one directed link.
    pub fn link(&self, from: &PartyId, to: &PartyId) -> Vec<&Envelope> {
        self.log
            .iter()
            .filter(|e| &e.from == from && &e.to == to)
            .collect()
    }

    /// Number of *interactions* of a party: maximal runs of consecutive
    /// envelopes it sends (a burst of messages in one protocol step counts
    /// as one interaction) — the unit of the paper's "interacts twice".
    pub fn interactions_of(&self, party: &PartyId) -> usize {
        let mut count = 0;
        let mut in_run = false;
        for e in &self.log {
            if &e.from == party {
                if !in_run {
                    count += 1;
                    in_run = true;
                }
            } else {
                in_run = false;
            }
        }
        count
    }

    /// Bytes received by a party (the size of its view).
    pub fn bytes_received_by(&self, party: &PartyId) -> usize {
        self.log
            .iter()
            .filter(|e| &e.to == party)
            .map(|e| e.bytes)
            .sum()
    }

    /// Renders the flow as an indented trace (used by the quickstart
    /// example to regenerate Figure 1/2's message flow).
    pub fn render_flow(&self) -> String {
        let mut out = String::new();
        for e in &self.log {
            out.push_str(&format!(
                "{:>12} → {:<12} [{:>8} B]  {}\n",
                e.from.to_string(),
                e.to.to_string(),
                e.bytes,
                e.label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Transport {
        let mut t = Transport::new();
        t.send(PartyId::Client, PartyId::Mediator, "query", 100);
        t.send(PartyId::Mediator, PartyId::source("s1"), "q1", 50);
        t.send(PartyId::Mediator, PartyId::source("s2"), "q2", 50);
        t.send(PartyId::source("s1"), PartyId::Mediator, "r1", 500);
        t.send(PartyId::source("s2"), PartyId::Mediator, "r2", 700);
        t.send(PartyId::Mediator, PartyId::Client, "result", 900);
        t
    }

    #[test]
    fn accounting() {
        let t = t();
        assert_eq!(t.message_count(), 6);
        assert_eq!(t.total_bytes(), 2300);
        assert_eq!(t.bytes_received_by(&PartyId::Mediator), 1300);
        assert_eq!(t.link(&PartyId::Mediator, &PartyId::Client).len(), 1);
    }

    #[test]
    fn interactions_group_bursts() {
        let t = t();
        // Mediator sends twice: the (q1,q2) burst and the final result.
        assert_eq!(t.interactions_of(&PartyId::Mediator), 2);
        assert_eq!(t.interactions_of(&PartyId::Client), 1);
        assert_eq!(t.interactions_of(&PartyId::source("s1")), 1);
    }

    #[test]
    fn render_contains_labels() {
        let flow = t().render_flow();
        assert!(flow.contains("query"));
        assert!(flow.contains("source:s1"));
    }

    #[test]
    fn party_display() {
        assert_eq!(PartyId::Client.to_string(), "client");
        assert_eq!(PartyId::source("x").to_string(), "source:x");
    }
}
