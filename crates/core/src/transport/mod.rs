//! The recorded message fabric.
//!
//! Parties exchange messages through a [`Fabric`]: the sender serializes,
//! the fabric records the bytes, and the receiver decodes from the
//! recorded bytes — there is no struct side channel.  The concrete
//! [`Transport`] recorder is the in-process implementation; the
//! [`socket::SocketFabric`] carries the same bytes over loopback TCP to a
//! `secmed-server` process and records the echoed copies, so both fabrics
//! produce byte-identical logs for the same seeded scenario.  The
//! recorder is the ground truth for:
//!
//! * the interaction-pattern analysis of Section 6 ("the client has to
//!   interact twice with the mediator", "the datasources have to interact
//!   twice"),
//! * communication-volume accounting in the benches (`Envelope::bytes()`
//!   is the encoded frame length, never an estimate),
//! * the leakage audit: a party's *view* is exactly the sequence of frames
//!   it received, and `audit::derive_views` recomputes Table 1 from the
//!   decoded log.
//!
//! # Fault injection
//!
//! The fabric can misbehave on purpose.  A [`FaultPlan`] installed via
//! `RunOptions` makes [`Fabric::deliver`] deterministically drop,
//! corrupt (header bit-flip), truncate, duplicate, or delay-by-reordering
//! frames on selected links ([`LinkMask`]), and can take a party down for
//! a span of delivery steps ([`Outage`]).  Decisions derive from an
//! HMAC-DRBG keyed by the plan seed and a global step counter, so the
//! same plan produces a byte-identical log at any thread count — the
//! determinism invariant extends to faulty runs.
//!
//! Every attempt is recorded: a failed copy stays in the log tagged with
//! its [`FaultKind`] and attempt number, so retransmissions are part of
//! the mediator's observable view and the Table 1 accounting stays
//! empirical under faults.  The [`DeliveryPolicy`] bounds how often a
//! sender retries before `deliver` returns a typed [`DeliveryFailure`].

pub mod socket;

use std::fmt;
use std::fmt::Write as _;
use std::sync::OnceLock;

use secmed_crypto::drbg::HmacDrbg;
use secmed_obs::metrics::{Class, Counter, Hist, Histogram};
use secmed_obs::trace::FieldValue;

use crate::MedError;

pub use secmed_wire::{DasTable, Frame, PmPayloadSet, PolyCoeffs, TupleRef, WireError};

/// A protocol participant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartyId {
    /// The querying client.
    Client,
    /// The (untrusted) mediator.
    Mediator,
    /// A datasource by name.
    Source(String),
    /// The certification authority (preparatory phase only).
    Ca,
}

impl PartyId {
    /// Datasource convenience constructor.
    pub fn source(name: impl Into<String>) -> Self {
        PartyId::Source(name.into())
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartyId::Client => write!(f, "client"),
            PartyId::Mediator => write!(f, "mediator"),
            PartyId::Source(s) => write!(f, "source:{s}"),
            PartyId::Ca => write!(f, "ca"),
        }
    }
}

/// What the fabric did to one recorded copy of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The copy was lost in flight; the receiver saw nothing.
    Dropped,
    /// A header bit was flipped; the receiver's decode rejects the copy.
    Corrupted,
    /// The copy was cut short; the receiver's decode rejects it.
    Truncated,
    /// A redundant copy delivered alongside an accepted one.
    Duplicated,
    /// The copy arrived, but reordered after later traffic.
    Delayed,
    /// A party was down for this delivery step.
    Unavailable,
}

impl FaultKind {
    /// Lowercase tag used in flow rendering and trace events.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::Dropped => "dropped",
            FaultKind::Corrupted => "corrupted",
            FaultKind::Truncated => "truncated",
            FaultKind::Duplicated => "duplicated",
            FaultKind::Delayed => "delayed",
            FaultKind::Unavailable => "unavailable",
        }
    }
}

/// Process-global fabric instrumentation (deterministic class): every
/// recorded copy bumps these, across all [`Transport`] instances.  The
/// handles are interned once; the hot path pays one relaxed atomic add
/// per field.  Per-run accounting never reads these back — it comes from
/// each run's own log via [`Transport::run_metrics`], so concurrent runs
/// in one process cannot contaminate each other's reports.
struct FabricMetrics {
    frames: Counter,
    bytes: Counter,
    retries: Counter,
    frame_bytes: Histogram,
}

fn fabric_metrics() -> &'static FabricMetrics {
    static METRICS: OnceLock<FabricMetrics> = OnceLock::new();
    METRICS.get_or_init(|| FabricMetrics {
        frames: secmed_obs::metrics::counter(Class::Deterministic, "transport.frames"),
        bytes: secmed_obs::metrics::counter(Class::Deterministic, "transport.bytes"),
        retries: secmed_obs::metrics::counter(Class::Deterministic, "transport.retries"),
        frame_bytes: secmed_obs::metrics::histogram(Class::Deterministic, "transport.frame_bytes"),
    })
}

/// One recorded message: an encoded frame in flight.
#[derive(Clone)]
pub struct Envelope {
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Human-readable step label, e.g. `"L3.3 M_i"` for Listing 3 step 3.
    pub label: String,
    /// The encoded frame exactly as it crossed the fabric (for a corrupted
    /// or truncated copy: the damaged bytes the receiver actually saw).
    pub payload: Vec<u8>,
    /// Which delivery attempt produced this copy (1 = first try).
    pub attempt: u32,
    /// What the fabric did to this copy; `None` for an intact delivery.
    pub fault: Option<FaultKind>,
}

impl Envelope {
    /// Payload size in bytes — derived from the real encoded frame.
    pub fn bytes(&self) -> usize {
        self.payload.len()
    }

    /// Decodes the payload back into its typed frame.
    pub fn frame(&self) -> Result<Frame, WireError> {
        Frame::decode(&self.payload)
    }

    /// Whether the receiver accepted this copy as the logical message.  A
    /// delayed copy still arrives (just reordered); every other fault kind
    /// marks a copy the receiver never used — fabric overhead.
    pub fn accepted(&self) -> bool {
        matches!(self.fault, None | Some(FaultKind::Delayed))
    }
}

/// One line per envelope: `sender → receiver [size B] label`, the format
/// `Transport::render_flow` stacks into the Figure 1/2 message flow.
/// Retransmissions and faulted copies are tagged visibly, e.g.
/// `label (attempt 2)` or `label [dropped]`.
impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} → {:<12} [{:>8} B]  {}",
            self.from.to_string(),
            self.to.to_string(),
            self.bytes(),
            self.label
        )?;
        if self.attempt > 1 {
            write!(f, " (attempt {})", self.attempt)?;
        }
        if let Some(k) = self.fault {
            write!(f, " [{}]", k.tag())?;
        }
        Ok(())
    }
}

/// `Debug` covers the full payload (as lowercase hex) plus the attempt and
/// fault tags, so a `{:?}` render of a transport log fingerprints every
/// byte that crossed the fabric *and* every fabric misbehaviour — the
/// determinism suites (clean and chaos) rely on this.
impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut hex = String::with_capacity(self.payload.len() * 2);
        for b in &self.payload {
            let _ = write!(hex, "{b:02x}");
        }
        f.debug_struct("Envelope")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("label", &self.label)
            .field("payload", &hex)
            .field("attempt", &self.attempt)
            .field("fault", &self.fault)
            .finish()
    }
}

/// Selects the links a [`FaultPlan`]'s random faults apply to.  `None`
/// matches any party on that side; `LinkMask::default()` matches every
/// link.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkMask {
    /// Sender filter (`None` = any sender).
    pub from: Option<PartyId>,
    /// Receiver filter (`None` = any receiver).
    pub to: Option<PartyId>,
}

impl LinkMask {
    /// Whether a directed link matches this mask.
    pub fn matches(&self, from: &PartyId, to: &PartyId) -> bool {
        self.from.as_ref().is_none_or(|f| f == from) && self.to.as_ref().is_none_or(|t| t == to)
    }
}

/// Marks a party unavailable for a span of delivery steps.  The step
/// counter advances once per delivery *attempt*, so an outage of `steps`
/// consumes that many attempts fabric-wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outage {
    /// The party that is down.
    pub party: PartyId,
    /// First delivery step of the outage (0-based).
    pub from_step: u64,
    /// Number of consecutive steps the party stays down.
    pub steps: u64,
}

impl Outage {
    /// Whether the outage covers `step`.
    pub fn covers(&self, step: u64) -> bool {
        step >= self.from_step && step - self.from_step < self.steps
    }
}

/// A deterministic fault schedule for the fabric.
///
/// Rates are per-mille probabilities per delivery attempt, evaluated in
/// the fixed order drop → corrupt → truncate → duplicate → delay against
/// one seeded roll (so their sum should stay ≤ 1000; kinds past the cap
/// can never fire).  All randomness comes from an HMAC-DRBG keyed by
/// `seed` and the attempt's global step index — nothing depends on wall
/// clock, thread count, or scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed label for the per-step decision DRBG.
    pub seed: String,
    /// Per-mille chance a copy is dropped.
    pub drop_per_mille: u16,
    /// Per-mille chance a header bit is flipped.
    pub corrupt_per_mille: u16,
    /// Per-mille chance a copy is truncated.
    pub truncate_per_mille: u16,
    /// Per-mille chance a copy is duplicated.
    pub duplicate_per_mille: u16,
    /// Per-mille chance a copy is delayed past later traffic.
    pub delay_per_mille: u16,
    /// Links the random faults apply to (empty = all links).
    pub links: Vec<LinkMask>,
    /// Party outages, by delivery-step span.
    pub outages: Vec<Outage>,
}

impl FaultPlan {
    /// A plan that injects nothing — by contract, runs with a zero plan
    /// installed are byte-identical to runs with no plan at all.
    pub fn none(seed: impl Into<String>) -> Self {
        FaultPlan {
            seed: seed.into(),
            ..Default::default()
        }
    }

    /// Whether this plan can never inject a fault.
    pub fn is_zero(&self) -> bool {
        self.drop_per_mille == 0
            && self.corrupt_per_mille == 0
            && self.truncate_per_mille == 0
            && self.duplicate_per_mille == 0
            && self.delay_per_mille == 0
            && self.outages.is_empty()
    }

    fn party_down(&self, party: &PartyId, step: u64) -> bool {
        self.outages
            .iter()
            .any(|o| &o.party == party && o.covers(step))
    }

    fn link_selected(&self, from: &PartyId, to: &PartyId) -> bool {
        self.links.is_empty() || self.links.iter().any(|m| m.matches(from, to))
    }
}

/// What a driver does when a delivery exhausts its attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnExhausted {
    /// Propagate the [`DeliveryFailure`]; the engine reports `Aborted`.
    #[default]
    Abort,
    /// Drivers substitute a documented partial input (empty set, fallback
    /// query) and the run completes with a `Degraded` outcome.
    Degrade,
}

/// Bounded-retry policy for [`Fabric::deliver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryPolicy {
    /// Total attempts per logical message (≥ 1; the first send counts).
    pub max_attempts: u32,
    /// What drivers do once the attempts are spent.
    pub on_exhausted: OnExhausted,
}

impl Default for DeliveryPolicy {
    fn default() -> Self {
        DeliveryPolicy {
            max_attempts: 3,
            on_exhausted: OnExhausted::Abort,
        }
    }
}

/// Why a single delivery attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryError {
    /// The fabric lost the copy.
    Dropped,
    /// The sender was down for this step; nothing left its stack.
    SenderUnavailable,
    /// The receiver was down for this step.
    ReceiverUnavailable,
    /// The copy arrived damaged and the receiver's total decode rejected
    /// it.
    Undecodable(WireError),
}

impl fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryError::Dropped => write!(f, "dropped by the fabric"),
            DeliveryError::SenderUnavailable => write!(f, "sender unavailable"),
            DeliveryError::ReceiverUnavailable => write!(f, "receiver unavailable"),
            DeliveryError::Undecodable(e) => write!(f, "undecodable frame: {e}"),
        }
    }
}

/// A logical message that stayed undelivered after every allowed attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryFailure {
    /// Sender of the failed message.
    pub from: PartyId,
    /// Intended receiver.
    pub to: PartyId,
    /// Protocol step label of the message.
    pub label: String,
    /// Attempts made (= the policy's `max_attempts`).
    pub attempts: u32,
    /// The failure of the final attempt.
    pub last: DeliveryError,
}

impl fmt::Display for DeliveryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} → {} undelivered after {} attempt(s): {}",
            self.label, self.from, self.to, self.attempts, self.last
        )
    }
}

impl std::error::Error for DeliveryFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.last {
            DeliveryError::Undecodable(e) => Some(e),
            _ => None,
        }
    }
}

/// The per-attempt decision the injector reaches before any bytes move.
enum Verdict {
    Clean,
    Drop,
    Corrupt { byte: usize, bit: u8 },
    Truncate { keep: usize },
    Duplicate,
    Delay,
    SenderDown,
    ReceiverDown,
}

impl Verdict {
    /// The fault this verdict injects (`None` for a clean delivery).
    fn fault_kind(&self) -> Option<FaultKind> {
        match self {
            Verdict::Clean => None,
            Verdict::Drop => Some(FaultKind::Dropped),
            Verdict::Corrupt { .. } => Some(FaultKind::Corrupted),
            Verdict::Truncate { .. } => Some(FaultKind::Truncated),
            Verdict::Duplicate => Some(FaultKind::Duplicated),
            Verdict::Delay => Some(FaultKind::Delayed),
            Verdict::SenderDown => Some(FaultKind::Unavailable),
            Verdict::ReceiverDown => Some(FaultKind::Unavailable),
        }
    }

    /// The bytes that physically cross the fabric under this verdict:
    /// the clean copy, a damaged copy, or nothing at all (drops and
    /// outages never leave the sender's stack).
    fn transit(&self, encoded: &[u8]) -> Option<Vec<u8>> {
        match self {
            Verdict::Clean | Verdict::Duplicate | Verdict::Delay => Some(encoded.to_vec()),
            Verdict::Corrupt { byte, bit } => {
                let mut damaged = encoded.to_vec();
                if let Some(b) = damaged.get_mut(*byte) {
                    *b ^= 1 << bit;
                }
                Some(damaged)
            }
            Verdict::Truncate { keep } => Some(encoded.get(..*keep).unwrap_or(encoded).to_vec()),
            Verdict::Drop | Verdict::SenderDown | Verdict::ReceiverDown => None,
        }
    }
}

/// Header byte offsets a corruption may hit: magic (0-1), version (2), and
/// the four length bytes (12-15).  The kind byte (3) is deliberately
/// skipped — without a MAC on the body, only header damage is *guaranteed*
/// to be rejected by the total decoder, which keeps "corrupted ⇒ receiver
/// noticed" an invariant instead of a probability.  The session bytes
/// (4-11) are skipped for the same reason: the decoder ignores them, and a
/// flip there would otherwise fabricate a wrong-session frame the server
/// relay could mistake for a protocol violation.
const CORRUPT_TARGETS: [usize; 7] = [0, 1, 2, 12, 13, 14, 15];

/// A uniform draw in `[0, bound)` by rejection sampling (no modulo bias),
/// mirroring `secmed_testkit::Gen::u64_below`.
fn draw_below(rng: &mut HmacDrbg, bound: u64) -> u64 {
    let zone = u64::MAX - u64::MAX % bound;
    loop {
        let mut b = [0u8; 8];
        rng.fill(&mut b);
        let v = u64::from_be_bytes(b);
        if v < zone {
            return v % bound;
        }
    }
}

/// The in-process message fabric with full recording, bounded retry, and
/// deterministic fault injection.  Also the recording core of every other
/// [`Fabric`] implementation: the socket fabric wraps one of these and
/// funnels all accounting through it.
#[derive(Default)]
pub struct Transport {
    log: Vec<Envelope>,
    /// Delayed copies waiting to surface after the next recorded envelope.
    delayed: Vec<Envelope>,
    policy: DeliveryPolicy,
    plan: Option<FaultPlan>,
    /// Global delivery-attempt counter; the sole input (with the plan
    /// seed) to every fault decision.
    step: u64,
    retries: u64,
    /// Session id threaded into every frame header (0 = in-process run).
    session: u64,
}

/// `Debug` renders only the log and the retry counter: the log hex is the
/// determinism fingerprint, and the installed plan/policy are inputs, not
/// observations — a zero-fault plan must leave reports byte-identical to
/// no plan at all.
impl fmt::Debug for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transport")
            .field("log", &self.log)
            .field("retries", &self.retries)
            .finish()
    }
}

impl Transport {
    /// A fresh, empty fabric (default policy, no fault plan, session 0).
    pub fn new() -> Self {
        Transport::default()
    }

    /// A fresh fabric whose frames carry the given session id — what a
    /// loopback-equivalence check uses to make the in-process log
    /// byte-identical to a socket session's.
    pub fn with_session(session: u64) -> Self {
        Transport {
            session,
            ..Transport::default()
        }
    }

    /// The session id threaded into every frame this fabric encodes.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Sets the bounded-retry policy.
    pub fn set_policy(&mut self, policy: DeliveryPolicy) {
        self.policy = policy;
    }

    /// The active delivery policy.
    pub fn policy(&self) -> DeliveryPolicy {
        self.policy
    }

    /// Installs a fault plan; subsequent deliveries roll against it.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// Records an already-encoded frame as an intact first-attempt copy.
    pub fn send(&mut self, from: PartyId, to: PartyId, label: impl Into<String>, payload: Vec<u8>) {
        self.record(from, to, &label.into(), payload, 1, None);
    }

    /// Phase 1 of a delivery attempt: advance the step counter, roll the
    /// fault verdict, and emit its trace event.  The caller then carries
    /// the (possibly damaged) bytes and hands the result to
    /// [`Transport::conclude`].
    fn stage(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        label: &str,
        len: usize,
        attempt: u32,
    ) -> Verdict {
        let step = self.step;
        self.step += 1;
        let verdict = self.verdict(step, from, to, len);
        if let Some(kind) = verdict.fault_kind() {
            self.fault_event(kind, label, step, attempt);
        }
        verdict
    }

    /// Phase 2 of a delivery attempt: record what crossed the fabric and
    /// decode what (if anything) the receiver accepted.  `arrived` is the
    /// carried copy (`None` when nothing left the sender); `sent` is the
    /// sender's canonical encoding, logged for copies that never crossed.
    #[allow(clippy::too_many_arguments)]
    fn conclude(
        &mut self,
        from: &PartyId,
        to: &PartyId,
        label: &str,
        sent: &[u8],
        arrived: Option<Vec<u8>>,
        verdict: &Verdict,
        attempt: u32,
    ) -> Result<Frame, DeliveryError> {
        let arrived = arrived.unwrap_or_else(|| sent.to_vec());
        match verdict {
            Verdict::Clean => {
                self.record(
                    from.clone(),
                    to.clone(),
                    label,
                    arrived.clone(),
                    attempt,
                    None,
                );
                // The copy just recorded is what the fabric carried, so the
                // receiver's decode runs directly over those bytes.
                Frame::decode(&arrived).map_err(DeliveryError::Undecodable)
            }
            Verdict::Duplicate => {
                self.record(
                    from.clone(),
                    to.clone(),
                    label,
                    arrived.clone(),
                    attempt,
                    None,
                );
                self.record(
                    from.clone(),
                    to.clone(),
                    label,
                    arrived.clone(),
                    attempt,
                    Some(FaultKind::Duplicated),
                );
                Frame::decode(&arrived).map_err(DeliveryError::Undecodable)
            }
            Verdict::Delay => {
                // The copy arrives, but surfaces in the log only after the
                // next recorded envelope — a real reordering an observer
                // folding over the log will see.
                self.delayed.push(Envelope {
                    from: from.clone(),
                    to: to.clone(),
                    label: label.to_string(),
                    payload: arrived.clone(),
                    attempt,
                    fault: Some(FaultKind::Delayed),
                });
                Frame::decode(&arrived).map_err(DeliveryError::Undecodable)
            }
            Verdict::Drop => {
                self.record(
                    from.clone(),
                    to.clone(),
                    label,
                    sent.to_vec(),
                    attempt,
                    Some(FaultKind::Dropped),
                );
                Err(DeliveryError::Dropped)
            }
            Verdict::Corrupt { .. } | Verdict::Truncate { .. } => {
                let decode = Frame::decode(&arrived);
                let kind = if matches!(verdict, Verdict::Corrupt { .. }) {
                    FaultKind::Corrupted
                } else {
                    FaultKind::Truncated
                };
                self.record(
                    from.clone(),
                    to.clone(),
                    label,
                    arrived,
                    attempt,
                    Some(kind),
                );
                match decode {
                    // Unreachable for header damage (the targets guarantee
                    // rejection), but the model stays honest: a copy that
                    // decodes is a copy the receiver accepted.
                    Ok(f) => Ok(f),
                    Err(e) => Err(DeliveryError::Undecodable(e)),
                }
            }
            Verdict::SenderDown => {
                self.record(
                    from.clone(),
                    to.clone(),
                    label,
                    sent.to_vec(),
                    attempt,
                    Some(FaultKind::Unavailable),
                );
                Err(DeliveryError::SenderUnavailable)
            }
            Verdict::ReceiverDown => {
                self.record(
                    from.clone(),
                    to.clone(),
                    label,
                    sent.to_vec(),
                    attempt,
                    Some(FaultKind::Unavailable),
                );
                Err(DeliveryError::ReceiverUnavailable)
            }
        }
    }

    /// Rolls the fault verdict for one attempt.  Outages trump random
    /// faults; random faults respect the plan's link masks; all draws come
    /// from a DRBG keyed by `(plan.seed, step)` alone.
    fn verdict(&self, step: u64, from: &PartyId, to: &PartyId, len: usize) -> Verdict {
        let Some(plan) = &self.plan else {
            return Verdict::Clean;
        };
        if plan.is_zero() {
            return Verdict::Clean;
        }
        if plan.party_down(from, step) {
            return Verdict::SenderDown;
        }
        if plan.party_down(to, step) {
            return Verdict::ReceiverDown;
        }
        if !plan.link_selected(from, to) {
            return Verdict::Clean;
        }
        let mut rng = HmacDrbg::from_label(&format!("{}/step/{}", plan.seed, step));
        let roll = draw_below(&mut rng, 1000);
        let mut edge = u64::from(plan.drop_per_mille);
        if roll < edge {
            return Verdict::Drop;
        }
        edge += u64::from(plan.corrupt_per_mille);
        if roll < edge {
            // Frames are always ≥ the 16-byte header, but `len` is checked
            // anyway so an exotic payload degrades to a drop, not a panic.
            if len < 16 {
                return Verdict::Drop;
            }
            let byte = CORRUPT_TARGETS[draw_below(&mut rng, CORRUPT_TARGETS.len() as u64) as usize];
            let bit = draw_below(&mut rng, 8) as u8;
            return Verdict::Corrupt { byte, bit };
        }
        edge += u64::from(plan.truncate_per_mille);
        if roll < edge {
            if len == 0 {
                return Verdict::Drop;
            }
            let keep = draw_below(&mut rng, len as u64) as usize;
            return Verdict::Truncate { keep };
        }
        edge += u64::from(plan.duplicate_per_mille);
        if roll < edge {
            return Verdict::Duplicate;
        }
        edge += u64::from(plan.delay_per_mille);
        if roll < edge {
            return Verdict::Delay;
        }
        Verdict::Clean
    }

    fn fault_event(&self, kind: FaultKind, label: &str, step: u64, attempt: u32) {
        secmed_obs::metrics::incr(
            Class::Deterministic,
            &format!("transport.fault.{}", kind.tag()),
            1,
        );
        secmed_obs::trace::event_with(
            "transport.fault",
            [
                ("kind", FieldValue::from(kind.tag())),
                ("label", FieldValue::from(label)),
                ("step", FieldValue::from(step)),
                ("attempt", FieldValue::from(attempt as u64)),
            ],
        );
    }

    /// Appends one copy to the log, then surfaces any delayed copies —
    /// which is exactly what makes a delay a *reordering*.
    fn record(
        &mut self,
        from: PartyId,
        to: PartyId,
        label: &str,
        payload: Vec<u8>,
        attempt: u32,
        fault: Option<FaultKind>,
    ) {
        let m = fabric_metrics();
        m.frames.incr();
        m.bytes.add(payload.len() as u64);
        m.frame_bytes.observe(payload.len() as u64);
        secmed_obs::metrics::incr(
            Class::Deterministic,
            &format!("transport.link.{from}->{to}.bytes"),
            payload.len() as u64,
        );
        self.log.push(Envelope {
            from,
            to,
            label: label.to_string(),
            payload,
            attempt,
            fault,
        });
        if !self.delayed.is_empty() {
            self.log.append(&mut self.delayed);
        }
    }

    /// Surfaces delayed copies still in flight (the engine calls this when
    /// a run ends, so a delay on the final message is not silently lost).
    pub fn flush_delayed(&mut self) {
        if !self.delayed.is_empty() {
            self.log.append(&mut self.delayed);
        }
    }

    /// The full log, in order.
    pub fn log(&self) -> &[Envelope] {
        &self.log
    }

    /// Decodes every recorded envelope, in order.  This is the transcript
    /// the leakage audit runs over for clean logs; a damaged copy surfaces
    /// the receiver-side [`WireError`].  Fault-tolerant consumers use
    /// `audit::effective_frames` instead.
    pub fn decode_log(&self) -> Result<Vec<(PartyId, PartyId, Frame)>, WireError> {
        self.log
            .iter()
            .map(|e| Ok((e.from.clone(), e.to.clone(), e.frame()?)))
            .collect()
    }

    /// Number of messages (every recorded copy, retransmissions included).
    pub fn message_count(&self) -> usize {
        self.log.len()
    }

    /// Total bytes moved (every recorded copy, retransmissions included).
    pub fn total_bytes(&self) -> usize {
        self.log.iter().map(Envelope::bytes).sum()
    }

    /// Retransmissions executed: attempts beyond the first, across all
    /// deliveries.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Fabric overhead: `(messages, bytes)` of recorded copies the
    /// receiver never accepted (failed attempts and duplicate copies) —
    /// what retrying cost on the wire.
    pub fn overhead(&self) -> (usize, usize) {
        self.log
            .iter()
            .filter(|e| !e.accepted())
            .fold((0, 0), |(m, b), e| (m + 1, b + e.bytes()))
    }

    /// This fabric's deterministic-class metrics, computed from its own
    /// log alone (never from the process-global registry, which other
    /// concurrent runs also feed), sorted by name:
    /// frame/byte/retry/overhead totals, per-fault-kind counts, bytes
    /// received per party, and the frame-size distribution summary.
    /// Every value is a pure function of the scenario seed, so the result
    /// is safe inside the byte-identical `RunReport` fingerprint.
    pub fn run_metrics(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        out.push(("transport.frames".to_string(), self.log.len() as u64));
        out.push(("transport.bytes".to_string(), self.total_bytes() as u64));
        out.push(("transport.retries".to_string(), self.retries));
        let (om, ob) = self.overhead();
        out.push(("transport.overhead_frames".to_string(), om as u64));
        out.push(("transport.overhead_bytes".to_string(), ob as u64));
        let mut faults: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        let mut per_receiver: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        let mut sizes = Hist::new();
        for e in &self.log {
            if let Some(kind) = e.fault {
                *faults.entry(kind.tag()).or_insert(0) += 1;
            }
            *per_receiver.entry(e.to.to_string()).or_insert(0) += e.bytes() as u64;
            sizes.observe(e.bytes() as u64);
        }
        for (tag, n) in faults {
            out.push((format!("transport.fault.{tag}"), n));
        }
        for (party, bytes) in per_receiver {
            out.push((format!("transport.to.{party}.bytes"), bytes));
        }
        if !sizes.is_empty() {
            out.push(("transport.frame_bytes.p50".to_string(), sizes.p50()));
            out.push(("transport.frame_bytes.p90".to_string(), sizes.p90()));
            out.push(("transport.frame_bytes.p99".to_string(), sizes.p99()));
            out.push(("transport.frame_bytes.max".to_string(), sizes.max()));
        }
        out.sort();
        out
    }

    /// Messages on one directed link.
    pub fn link(&self, from: &PartyId, to: &PartyId) -> Vec<&Envelope> {
        self.log
            .iter()
            .filter(|e| &e.from == from && &e.to == to)
            .collect()
    }

    /// Number of *interactions* of a party: maximal runs of consecutive
    /// envelopes it sends (a burst of messages in one protocol step counts
    /// as one interaction) — the unit of the paper's "interacts twice".
    pub fn interactions_of(&self, party: &PartyId) -> usize {
        let mut count = 0;
        let mut in_run = false;
        for e in &self.log {
            if &e.from == party {
                if !in_run {
                    count += 1;
                    in_run = true;
                }
            } else {
                in_run = false;
            }
        }
        count
    }

    /// Bytes received by a party (the size of its view, damaged and
    /// duplicate copies included — they crossed the fabric towards it).
    pub fn bytes_received_by(&self, party: &PartyId) -> usize {
        self.log
            .iter()
            .filter(|e| &e.to == party)
            .map(Envelope::bytes)
            .sum()
    }

    /// Renders the flow as an indented trace (used by the quickstart
    /// example to regenerate Figure 1/2's message flow): one
    /// [`Envelope`] `Display` line per message, sizes taken from the real
    /// encoded frames, retried copies tagged `(attempt N)`.
    pub fn render_flow(&self) -> String {
        // Display adds a handful of punctuation to the two party names and
        // the label; 64 covers the fixed-width columns comfortably.
        let estimate: usize = self
            .log
            .iter()
            .map(|e| 64 + e.label.len() + e.from.to_string().len() + e.to.to_string().len())
            .sum();
        let mut out = String::with_capacity(estimate);
        for e in &self.log {
            let _ = writeln!(out, "{e}");
        }
        out
    }
}

/// A message fabric: something that can move encoded frames between
/// parties while funneling every copy through a recording [`Transport`].
///
/// The engine, the three protocol drivers, the leakage audit, and the
/// chaos suite are all generic over this trait.  Implementations differ
/// only in [`Fabric::carry`] — how bytes physically move:
///
/// * [`Transport`] is the in-process fabric (carry is the identity);
/// * [`socket::SocketFabric`] writes each copy to a loopback TCP
///   connection and records the `secmed-server` echo.
///
/// Fault injection, retry, byte accounting, and log recording live in the
/// shared recorder, so the same seeded scenario produces a byte-identical
/// log over every fabric — the property the loopback equivalence suite
/// asserts.
pub trait Fabric {
    /// The recording core (log, policy, fault plan, session id).
    fn recorder(&self) -> &Transport;

    /// Mutable access to the recording core.
    fn recorder_mut(&mut self) -> &mut Transport;

    /// Physically moves one (possibly fault-damaged) copy from sender to
    /// receiver and returns the bytes the receiver holds.  For a faithful
    /// fabric the result equals the input; an infrastructure failure (a
    /// torn socket, a server-side session violation) is a [`MedError`],
    /// not a modeled [`FaultKind`].
    fn carry(&mut self, from: &PartyId, to: &PartyId, bytes: &[u8]) -> Result<Vec<u8>, MedError>;

    /// Tears the fabric down (socket: `Goodbye` + disconnect) and returns
    /// the recorder with the complete log.
    fn into_recorder(self) -> Result<Transport, MedError>
    where
        Self: Sized;

    /// Sends a typed frame and hands the receiver its *decoded copy of
    /// the carried bytes* — the only way protocol data crosses a party
    /// boundary.  Encoding happens on the sender's side, the recorder
    /// keeps the canonical bytes, and the receiver sees exactly what a
    /// network peer would see.
    ///
    /// Under an installed [`FaultPlan`] each attempt may be dropped,
    /// damaged, duplicated, or delayed; the sender retries up to the
    /// policy's `max_attempts`, every attempt is recorded, and exhaustion
    /// returns [`MedError::Delivery`].
    fn deliver(
        &mut self,
        from: PartyId,
        to: PartyId,
        label: impl Into<String>,
        frame: &Frame,
    ) -> Result<Frame, MedError>
    where
        Self: Sized,
    {
        deliver_over(self, from, to, &label.into(), frame)
    }

    /// Sets the bounded-retry policy on the recorder.
    fn set_policy(&mut self, policy: DeliveryPolicy) {
        self.recorder_mut().set_policy(policy);
    }

    /// The active delivery policy.
    fn policy(&self) -> DeliveryPolicy {
        self.recorder().policy()
    }

    /// Whether drivers should degrade (rather than abort) on an exhausted
    /// delivery — the only fault-layer question a protocol driver asks.
    fn degrade_on_exhausted(&self) -> bool {
        self.recorder().policy().on_exhausted == OnExhausted::Degrade
    }

    /// Installs a fault plan; subsequent deliveries roll against it.
    fn install_faults(&mut self, plan: FaultPlan) {
        self.recorder_mut().install_faults(plan);
    }

    /// Surfaces delayed copies still in flight (the engine calls this
    /// when a run ends, so a delay on the final message is not silently
    /// lost).
    fn flush_delayed(&mut self) {
        self.recorder_mut().flush_delayed();
    }
}

/// The in-process fabric: bytes "cross" by staying exactly where they
/// are.
impl Fabric for Transport {
    fn recorder(&self) -> &Transport {
        self
    }

    fn recorder_mut(&mut self) -> &mut Transport {
        self
    }

    fn carry(&mut self, _from: &PartyId, _to: &PartyId, bytes: &[u8]) -> Result<Vec<u8>, MedError> {
        Ok(bytes.to_vec())
    }

    fn into_recorder(self) -> Result<Transport, MedError> {
        Ok(self)
    }
}

/// The shared delivery loop behind [`Fabric::deliver`]: encode once, then
/// per attempt roll the verdict on the recorder, carry the surviving copy
/// over the fabric, and record/decode the result.  Lives as a free
/// function so the borrow of the recorder never overlaps the borrow of
/// the fabric's carry path.
fn deliver_over<F: Fabric>(
    fabric: &mut F,
    from: PartyId,
    to: PartyId,
    label: &str,
    frame: &Frame,
) -> Result<Frame, MedError> {
    let encoded = frame.encode_with_session(fabric.recorder().session());
    let max = fabric.recorder().policy().max_attempts.max(1);
    let mut last = DeliveryError::Dropped;
    for attempt in 1..=max {
        if attempt > 1 {
            fabric.recorder_mut().retries += 1;
            fabric_metrics().retries.incr();
        }
        let verdict = fabric
            .recorder_mut()
            .stage(&from, &to, label, encoded.len(), attempt);
        let arrived = match verdict.transit(&encoded) {
            Some(bytes) => Some(fabric.carry(&from, &to, &bytes)?),
            None => None,
        };
        match fabric
            .recorder_mut()
            .conclude(&from, &to, label, &encoded, arrived, &verdict, attempt)
        {
            Ok(frame) => return Ok(frame),
            Err(e) => last = e,
        }
    }
    secmed_obs::trace::event_with(
        "transport.exhausted",
        [
            ("label", FieldValue::from(label)),
            ("attempts", FieldValue::from(max as u64)),
            ("last", FieldValue::from(last.to_string())),
        ],
    );
    Err(MedError::Delivery(DeliveryFailure {
        from,
        to,
        label: label.to_string(),
        attempts: max,
        last,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmed_das::IndexValue;

    fn payload(n: usize) -> Vec<u8> {
        vec![0xAB; n]
    }

    fn t() -> Transport {
        let mut t = Transport::new();
        t.send(PartyId::Client, PartyId::Mediator, "query", payload(100));
        t.send(PartyId::Mediator, PartyId::source("s1"), "q1", payload(50));
        t.send(PartyId::Mediator, PartyId::source("s2"), "q2", payload(50));
        t.send(PartyId::source("s1"), PartyId::Mediator, "r1", payload(500));
        t.send(PartyId::source("s2"), PartyId::Mediator, "r2", payload(700));
        t.send(PartyId::Mediator, PartyId::Client, "result", payload(900));
        t
    }

    /// A plan whose single fault kind fires on every attempt.
    fn always(kind: FaultKind) -> FaultPlan {
        let mut p = FaultPlan::none("always");
        match kind {
            FaultKind::Dropped => p.drop_per_mille = 1000,
            FaultKind::Corrupted => p.corrupt_per_mille = 1000,
            FaultKind::Truncated => p.truncate_per_mille = 1000,
            FaultKind::Duplicated => p.duplicate_per_mille = 1000,
            FaultKind::Delayed => p.delay_per_mille = 1000,
            FaultKind::Unavailable => unreachable!("use outages"),
        }
        p
    }

    fn query_frame() -> Frame {
        Frame::DasServerQuery {
            pairs: vec![(IndexValue(1), IndexValue(2))],
        }
    }

    #[test]
    fn accounting() {
        let t = t();
        assert_eq!(t.message_count(), 6);
        assert_eq!(t.total_bytes(), 2300);
        assert_eq!(t.bytes_received_by(&PartyId::Mediator), 1300);
        assert_eq!(t.link(&PartyId::Mediator, &PartyId::Client).len(), 1);
    }

    #[test]
    fn interactions_group_bursts() {
        let t = t();
        // Mediator sends twice: the (q1,q2) burst and the final result.
        assert_eq!(t.interactions_of(&PartyId::Mediator), 2);
        assert_eq!(t.interactions_of(&PartyId::Client), 1);
        assert_eq!(t.interactions_of(&PartyId::source("s1")), 1);
    }

    #[test]
    fn interactions_of_empty_log_is_zero() {
        let t = Transport::new();
        assert_eq!(t.interactions_of(&PartyId::Client), 0);
        assert_eq!(t.interactions_of(&PartyId::Mediator), 0);
    }

    #[test]
    fn interactions_of_single_party_log_is_one_run() {
        let mut t = Transport::new();
        for i in 0..4 {
            t.send(
                PartyId::Client,
                PartyId::Mediator,
                format!("m{i}"),
                payload(8),
            );
        }
        // Four consecutive sends by one party are a single interaction;
        // parties that never sent have none.
        assert_eq!(t.interactions_of(&PartyId::Client), 1);
        assert_eq!(t.interactions_of(&PartyId::Mediator), 0);
    }

    #[test]
    fn interactions_of_counts_interleaved_bursts() {
        let mut t = Transport::new();
        let a = PartyId::source("a");
        let b = PartyId::source("b");
        // A A | B | A — two bursts for A, one for B.
        t.send(a.clone(), PartyId::Mediator, "a1", payload(8));
        t.send(a.clone(), PartyId::Mediator, "a2", payload(8));
        t.send(b.clone(), PartyId::Mediator, "b1", payload(8));
        t.send(a.clone(), PartyId::Mediator, "a3", payload(8));
        assert_eq!(t.interactions_of(&a), 2);
        assert_eq!(t.interactions_of(&b), 1);
    }

    #[test]
    fn render_contains_labels() {
        let flow = t().render_flow();
        assert!(flow.contains("query"));
        assert!(flow.contains("source:s1"));
    }

    #[test]
    fn render_flow_is_stacked_envelope_display() {
        let t = t();
        let lines: Vec<String> = t.log().iter().map(|e| e.to_string()).collect();
        assert_eq!(t.render_flow(), format!("{}\n", lines.join("\n")));
    }

    #[test]
    fn envelope_bytes_is_payload_length() {
        let e = Envelope {
            from: PartyId::Client,
            to: PartyId::Mediator,
            label: "x".into(),
            payload: vec![1, 2, 3],
            attempt: 1,
            fault: None,
        };
        assert_eq!(e.bytes(), 3);
        assert!(format!("{e:?}").contains("010203"), "hex payload in Debug");
    }

    #[test]
    fn deliver_round_trips_through_recorded_bytes() {
        let mut t = Transport::new();
        let frame = query_frame();
        let received = t
            .deliver(PartyId::Client, PartyId::Mediator, "L2.5 q_S", &frame)
            .unwrap();
        assert_eq!(received, frame);
        assert_eq!(t.message_count(), 1);
        assert_eq!(t.total_bytes(), frame.encode().len());
        let decoded = t.decode_log().unwrap();
        assert_eq!(decoded[0].2, frame);
    }

    #[test]
    fn decode_log_surfaces_wire_error_for_corrupted_envelope() {
        let mut t = Transport::new();
        t.deliver(PartyId::Client, PartyId::Mediator, "ok", &query_frame())
            .unwrap();
        // Hand-corrupt the recorded copy's magic byte.
        t.log[0].payload[0] ^= 0xFF;
        assert!(t.decode_log().is_err());
        assert!(t.log[0].frame().is_err());
    }

    #[test]
    fn dropped_frames_are_recorded_and_retried() {
        let mut t = Transport::new();
        let mut plan = always(FaultKind::Dropped);
        plan.drop_per_mille = 400; // fails sometimes, succeeds within retries
        plan.seed = "retry".into();
        t.install_faults(plan);
        t.set_policy(DeliveryPolicy {
            max_attempts: 10,
            on_exhausted: OnExhausted::Abort,
        });
        let frame = query_frame();
        for i in 0..20 {
            t.deliver(PartyId::Client, PartyId::Mediator, format!("m{i}"), &frame)
                .unwrap();
        }
        let dropped = t.log().iter().filter(|e| !e.accepted()).count();
        assert!(dropped > 0, "a 40% drop rate over 20 messages must fire");
        assert_eq!(t.retries() as usize, dropped, "every drop forced a retry");
        let (om, ob) = t.overhead();
        assert_eq!(om, dropped);
        assert_eq!(ob, dropped * frame.encode().len());
        // Accepted copies still decode; accounting covers all copies.
        assert_eq!(t.message_count(), 20 + dropped);
    }

    #[test]
    fn exhausted_delivery_returns_typed_failure() {
        let mut t = Transport::new();
        t.install_faults(always(FaultKind::Dropped));
        t.set_policy(DeliveryPolicy {
            max_attempts: 3,
            on_exhausted: OnExhausted::Abort,
        });
        let err = t
            .deliver(PartyId::Client, PartyId::Mediator, "doomed", &query_frame())
            .unwrap_err();
        let MedError::Delivery(f) = err else {
            panic!("expected a delivery failure, got {err:?}");
        };
        assert_eq!(f.attempts, 3);
        assert_eq!(f.last, DeliveryError::Dropped);
        assert_eq!(f.label, "doomed");
        assert_eq!(t.message_count(), 3, "every failed attempt is recorded");
        assert!(t.log().iter().all(|e| e.fault == Some(FaultKind::Dropped)));
        assert_eq!(t.log()[2].attempt, 3);
    }

    #[test]
    fn corrupted_copies_never_decode() {
        let mut t = Transport::new();
        t.install_faults(always(FaultKind::Corrupted));
        t.set_policy(DeliveryPolicy {
            max_attempts: 2,
            on_exhausted: OnExhausted::Abort,
        });
        let err = t
            .deliver(PartyId::Client, PartyId::Mediator, "bits", &query_frame())
            .unwrap_err();
        let MedError::Delivery(f) = err else {
            panic!("expected a delivery failure");
        };
        assert!(matches!(f.last, DeliveryError::Undecodable(_)));
        for e in t.log() {
            assert_eq!(e.fault, Some(FaultKind::Corrupted));
            assert!(e.frame().is_err(), "header damage must be rejected");
        }
    }

    #[test]
    fn truncated_copies_are_shorter_and_rejected() {
        let mut t = Transport::new();
        t.install_faults(always(FaultKind::Truncated));
        t.set_policy(DeliveryPolicy {
            max_attempts: 1,
            on_exhausted: OnExhausted::Abort,
        });
        let frame = query_frame();
        let full = frame.encode().len();
        assert!(t
            .deliver(PartyId::Client, PartyId::Mediator, "cut", &frame)
            .is_err());
        assert_eq!(t.message_count(), 1);
        assert!(t.log()[0].bytes() < full);
        assert!(t.log()[0].frame().is_err());
    }

    #[test]
    fn duplicated_copies_double_the_wire_not_the_message() {
        let mut t = Transport::new();
        t.install_faults(always(FaultKind::Duplicated));
        let frame = query_frame();
        let got = t
            .deliver(PartyId::Client, PartyId::Mediator, "dup", &frame)
            .unwrap();
        assert_eq!(got, frame, "the receiver still gets one logical message");
        assert_eq!(t.message_count(), 2);
        assert!(t.log()[0].accepted());
        assert_eq!(t.log()[1].fault, Some(FaultKind::Duplicated));
        assert_eq!(t.overhead(), (1, frame.encode().len()));
        assert_eq!(t.retries(), 0);
    }

    #[test]
    fn delayed_copies_reorder_behind_later_traffic() {
        let mut t = Transport::new();
        let mut plan = always(FaultKind::Delayed);
        plan.seed = "delay-first".into();
        t.install_faults(plan);
        let frame = query_frame();
        let got = t
            .deliver(PartyId::Client, PartyId::Mediator, "first", &frame)
            .unwrap();
        assert_eq!(got, frame, "a delayed frame still arrives");
        assert_eq!(t.message_count(), 0, "in flight until later traffic");
        // Disable faults and send a second message: the delayed copy
        // surfaces *after* it.
        t.plan = None;
        t.deliver(PartyId::Client, PartyId::Mediator, "second", &frame)
            .unwrap();
        assert_eq!(t.message_count(), 2);
        assert_eq!(t.log()[0].label, "second");
        assert_eq!(t.log()[1].label, "first");
        assert_eq!(t.log()[1].fault, Some(FaultKind::Delayed));
        assert!(t.log()[1].accepted(), "delayed copies were received");
    }

    #[test]
    fn flush_delayed_surfaces_trailing_copies() {
        let mut t = Transport::new();
        t.install_faults(always(FaultKind::Delayed));
        t.deliver(PartyId::Client, PartyId::Mediator, "tail", &query_frame())
            .unwrap();
        assert_eq!(t.message_count(), 0);
        t.flush_delayed();
        assert_eq!(t.message_count(), 1);
        assert_eq!(t.log()[0].label, "tail");
    }

    #[test]
    fn outage_fails_both_directions_and_expires() {
        let mut t = Transport::new();
        let mut plan = FaultPlan::none("outage");
        plan.outages.push(Outage {
            party: PartyId::source("s1"),
            from_step: 0,
            steps: 2,
        });
        t.install_faults(plan);
        t.set_policy(DeliveryPolicy {
            max_attempts: 1,
            on_exhausted: OnExhausted::Abort,
        });
        let frame = query_frame();
        // Step 0: s1 as sender is down.
        let err = t
            .deliver(PartyId::source("s1"), PartyId::Mediator, "up", &frame)
            .unwrap_err();
        let MedError::Delivery(f) = err else {
            panic!("expected failure")
        };
        assert_eq!(f.last, DeliveryError::SenderUnavailable);
        // Step 1: s1 as receiver is down.
        let err = t
            .deliver(PartyId::Mediator, PartyId::source("s1"), "down", &frame)
            .unwrap_err();
        let MedError::Delivery(f) = err else {
            panic!("expected failure")
        };
        assert_eq!(f.last, DeliveryError::ReceiverUnavailable);
        // Step 2: the outage is over.
        assert!(t
            .deliver(PartyId::Mediator, PartyId::source("s1"), "ok", &frame)
            .is_ok());
        assert!(t.log()[..2]
            .iter()
            .all(|e| e.fault == Some(FaultKind::Unavailable)));
    }

    #[test]
    fn link_masks_confine_faults() {
        let mut t = Transport::new();
        let mut plan = always(FaultKind::Dropped);
        plan.links.push(LinkMask {
            from: Some(PartyId::Client),
            to: None,
        });
        t.install_faults(plan);
        t.set_policy(DeliveryPolicy {
            max_attempts: 1,
            on_exhausted: OnExhausted::Abort,
        });
        let frame = query_frame();
        assert!(t
            .deliver(PartyId::Client, PartyId::Mediator, "masked", &frame)
            .is_err());
        assert!(t
            .deliver(PartyId::Mediator, PartyId::Client, "other way", &frame)
            .is_ok());
    }

    #[test]
    fn same_seed_same_faults_regardless_of_history_shape() {
        let run = || {
            let mut t = Transport::new();
            let mut plan = FaultPlan::none("fingerprint");
            plan.drop_per_mille = 300;
            plan.duplicate_per_mille = 200;
            plan.delay_per_mille = 150;
            t.install_faults(plan);
            let frame = query_frame();
            for i in 0..12 {
                let _ = t.deliver(PartyId::Client, PartyId::Mediator, format!("m{i}"), &frame);
            }
            t.flush_delayed();
            format!("{:?}", t.log())
        };
        assert_eq!(
            run(),
            run(),
            "the fault schedule is a pure function of the seed"
        );
    }

    #[test]
    fn zero_plan_is_indistinguishable_from_no_plan() {
        let run = |plan: Option<FaultPlan>| {
            let mut t = Transport::new();
            if let Some(p) = plan {
                t.install_faults(p);
            }
            let frame = query_frame();
            for i in 0..5 {
                t.deliver(PartyId::Client, PartyId::Mediator, format!("m{i}"), &frame)
                    .unwrap();
            }
            format!("{t:?}")
        };
        assert_eq!(run(None), run(Some(FaultPlan::none("zero"))));
    }

    #[test]
    fn render_flow_tags_retried_and_faulted_envelopes() {
        let mut t = Transport::new();
        let mut plan = FaultPlan::none("flow");
        plan.drop_per_mille = 500;
        t.install_faults(plan);
        t.set_policy(DeliveryPolicy {
            max_attempts: 8,
            on_exhausted: OnExhausted::Abort,
        });
        let frame = query_frame();
        for i in 0..10 {
            t.deliver(PartyId::Client, PartyId::Mediator, format!("m{i}"), &frame)
                .unwrap();
        }
        assert!(t.retries() > 0, "a 50% drop rate over 10 messages retries");
        let flow = t.render_flow();
        assert!(
            flow.contains("(attempt 2)"),
            "retried envelopes are tagged visibly:\n{flow}"
        );
        assert!(flow.contains("[dropped]"), "faulted copies are tagged");
        // Clean copies carry no tag.
        let clean_line = t
            .log()
            .iter()
            .find(|e| e.attempt == 1 && e.fault.is_none())
            .unwrap()
            .to_string();
        assert!(!clean_line.contains("attempt"));
        assert!(!clean_line.contains("[dropped]"));
    }

    #[test]
    fn delivery_failure_display_names_the_step() {
        let f = DeliveryFailure {
            from: PartyId::Client,
            to: PartyId::Mediator,
            label: "L1.1 query".into(),
            attempts: 3,
            last: DeliveryError::Dropped,
        };
        let s = f.to_string();
        assert!(s.contains("L1.1 query"));
        assert!(s.contains("3 attempt"));
        assert!(s.contains("dropped"));
    }

    #[test]
    fn party_display() {
        assert_eq!(PartyId::Client.to_string(), "client");
        assert_eq!(PartyId::source("x").to_string(), "source:x");
    }
}
