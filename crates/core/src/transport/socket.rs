//! The loopback-socket fabric: the same recorded delivery semantics as
//! the in-process [`Transport`], with every copy physically crossing a
//! `std::net::TcpStream` to a `secmed-server` process.
//!
//! The server is a *relay*: it validates the session header of each
//! message and echoes the bytes back verbatim.  The echoed copy is what
//! gets recorded and decoded, so if the server is faithful the log is
//! byte-for-byte identical to an in-process run with the same session id
//! — the equivalence the loopback suite asserts.  Fault injection happens
//! on the client side *before* the bytes hit the socket (the fabric
//! models an unreliable network between honest endpoints), so damaged
//! copies really do cross the wire and come back damaged.
//!
//! A connection opens with a `Hello`/`HelloAck` handshake (version
//! negotiation + per-connection delivery policy) and closes with
//! `Goodbye`.  Handshake frames are fabric metadata, not protocol
//! traffic: they are never recorded in the transport log, so the Table 1
//! views derived from the log are unchanged by the transport swap.

use std::net::{SocketAddr, TcpStream};

use secmed_wire::{stream, Frame, SessionStatus, WIRE_VERSION};

use super::{DeliveryPolicy, Fabric, OnExhausted, PartyId, Transport};
use crate::MedError;

fn io_err(what: &str, e: std::io::Error) -> MedError {
    MedError::Fabric(format!("{what}: {e}"))
}

/// A [`Fabric`] carried over one TCP connection to a `secmed-server`.
pub struct SocketFabric {
    recorder: Transport,
    socket: TcpStream,
    session: u64,
}

impl SocketFabric {
    /// Connects, performs the `Hello`/`HelloAck` handshake for `session`,
    /// and returns a fabric whose recorder threads that session id onto
    /// every frame.  The requested [`DeliveryPolicy`] is announced to the
    /// server and installed on the recorder.
    pub fn connect(
        addr: SocketAddr,
        session: u64,
        policy: DeliveryPolicy,
    ) -> Result<Self, MedError> {
        let mut socket = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        socket
            .set_nodelay(true)
            .map_err(|e| io_err("set_nodelay", e))?;
        let hello = Frame::Hello {
            client_version: WIRE_VERSION,
            max_attempts: policy.max_attempts,
            degrade_on_exhausted: policy.on_exhausted == OnExhausted::Degrade,
        };
        stream::write_blob(&mut socket, &hello.encode_with_session(session))
            .map_err(|e| io_err("send hello", e))?;
        let ack = stream::read_blob(&mut socket)
            .map_err(|e| io_err("read hello ack", e))?
            .ok_or_else(|| MedError::Fabric("server closed during handshake".into()))?;
        match Frame::decode_expecting_session(&ack, session).map_err(MedError::Wire)? {
            Frame::HelloAck {
                status: SessionStatus::Accepted,
            } => {}
            Frame::HelloAck { status } => {
                return Err(MedError::Fabric(format!(
                    "server rejected session {session}: {status:?}"
                )));
            }
            other => {
                return Err(MedError::Fabric(format!(
                    "expected HelloAck, got {}",
                    other.name()
                )));
            }
        }
        let mut recorder = Transport::with_session(session);
        recorder.set_policy(policy);
        Ok(SocketFabric {
            recorder,
            socket,
            session,
        })
    }

    /// The negotiated session id.
    pub fn session(&self) -> u64 {
        self.session
    }
}

impl Fabric for SocketFabric {
    fn recorder(&self) -> &Transport {
        &self.recorder
    }

    fn recorder_mut(&mut self) -> &mut Transport {
        &mut self.recorder
    }

    fn carry(&mut self, _from: &PartyId, _to: &PartyId, bytes: &[u8]) -> Result<Vec<u8>, MedError> {
        stream::write_blob(&mut self.socket, bytes).map_err(|e| io_err("send", e))?;
        stream::read_blob(&mut self.socket)
            .map_err(|e| io_err("read echo", e))?
            .ok_or_else(|| MedError::Fabric("server closed mid-session".into()))
    }

    fn into_recorder(mut self) -> Result<Transport, MedError> {
        stream::write_blob(
            &mut self.socket,
            &Frame::Goodbye.encode_with_session(self.session),
        )
        .map_err(|e| io_err("send goodbye", e))?;
        Ok(self.recorder)
    }
}
