//! The loopback-socket fabric: the same recorded delivery semantics as
//! the in-process [`Transport`], with every copy physically crossing a
//! `std::net::TcpStream` to a `secmed-server` process.
//!
//! The server is a *relay*: it validates the session header of each
//! message and echoes the bytes back verbatim.  The echoed copy is what
//! gets recorded and decoded, so if the server is faithful the log is
//! byte-for-byte identical to an in-process run with the same session id
//! — the equivalence the loopback suite asserts.  Fault injection happens
//! on the client side *before* the bytes hit the socket (the fabric
//! models an unreliable network between honest endpoints), so damaged
//! copies really do cross the wire and come back damaged.
//!
//! A connection opens with a `Hello`/`HelloAck` handshake (version
//! negotiation + per-connection delivery policy) and closes with
//! `Goodbye`.  Handshake frames are fabric metadata, not protocol
//! traffic: they are never recorded in the transport log, so the Table 1
//! views derived from the log are unchanged by the transport swap.
//!
//! # Reconnect-and-resume
//!
//! With a [`ReconnectPolicy`], a connection that dies mid-session is not
//! fatal: the fabric redials with capped exponential backoff (jitter
//! drawn from a seed-keyed DRBG, so the schedule is deterministic and
//! thread-count-independent), opens with `Resume { next_seq }`, and the
//! server replays any echo the client missed.  Both ends count relayed
//! blobs, so sequence numbers never appear inside protocol frames — the
//! recorded log of a resumed run is byte-identical to an uninterrupted
//! one, which is exactly the equivalence the resilience suite asserts.
//! A `ServerBusy` NACK at connect time surfaces as the retryable
//! [`MedError::Busy`]; with a reconnect policy the fabric backs off and
//! redials on its own.

use std::collections::VecDeque;
use std::net::{Shutdown, SocketAddr, TcpStream};

use secmed_crypto::drbg::HmacDrbg;
use secmed_obs::metrics::{self, Class};
use secmed_wire::{stream, Frame, ResumeStatus, SessionStatus, WIRE_VERSION};

use super::{DeliveryPolicy, Fabric, OnExhausted, PartyId, Transport};
use crate::MedError;

/// Registry counter: redials attempted (resume and busy-retry).
const M_RECONNECTS: &str = "transport.resume.reconnects";
/// Registry counter: resumes the server accepted.
const M_RESUMED: &str = "transport.resume.resumed";
/// Registry counter: echoes recovered from the server's replay window.
const M_REPLAYED: &str = "transport.resume.replayed";
/// Registry counter: `ServerBusy` NACKs retried at connect time.
const M_BUSY_RETRIES: &str = "transport.resume.busy_retries";

fn io_err(what: &str, e: std::io::Error) -> MedError {
    MedError::Fabric(format!("{what}: {e}"))
}

/// Client-side reconnect discipline: how many redials a session may
/// spend, and how the backoff between them grows.
///
/// The backoff for attempt `k` is `min(base << k, cap)`, jittered into
/// `[delay/2, delay]` by a DRBG keyed on `(seed, session, k)` — a pure
/// function of the policy, never of thread timing, so chaos runs stay
/// byte-identical at every thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Redial budget per session; 0 disables reconnection entirely
    /// (any connection death is a terminal fabric error, as before).
    pub max_reconnects: u32,
    /// First backoff delay in nanoseconds.
    pub base_backoff_ns: u64,
    /// Ceiling on the exponential backoff.
    pub backoff_cap_ns: u64,
    /// Keys the jitter DRBG (together with the session id).
    pub seed: u64,
}

impl ReconnectPolicy {
    /// No reconnection: every connection death is terminal.
    pub fn none() -> Self {
        ReconnectPolicy {
            max_reconnects: 0,
            base_backoff_ns: 0,
            backoff_cap_ns: 1,
            seed: 0,
        }
    }

    /// A sane interactive default: a handful of redials, sub-second cap.
    pub fn standard(seed: u64) -> Self {
        ReconnectPolicy {
            max_reconnects: 8,
            base_backoff_ns: 200_000,
            backoff_cap_ns: 50_000_000,
            seed,
        }
    }

    /// Whether reconnection is enabled at all.
    pub fn enabled(&self) -> bool {
        self.max_reconnects > 0
    }

    /// The jittered backoff before redial attempt `attempt` (1-based).
    fn backoff_ns(&self, session: u64, attempt: u32) -> u64 {
        if self.base_backoff_ns == 0 {
            return 0;
        }
        let exp = attempt.saturating_sub(1).min(20);
        let delay = self
            .base_backoff_ns
            .saturating_mul(1u64 << exp)
            .min(self.backoff_cap_ns.max(1));
        let floor = delay / 2;
        let span = delay - floor + 1;
        let label = format!("reconnect/{}/{}/{}", self.seed, session, attempt);
        let mut drbg = HmacDrbg::from_label(&label);
        let mut bytes = [0u8; 8];
        drbg.fill(&mut bytes);
        floor + u64::from_be_bytes(bytes) % span
    }
}

/// A [`Fabric`] carried over TCP connections to a `secmed-server`,
/// surviving connection deaths via the resume protocol when a
/// [`ReconnectPolicy`] allows it.
pub struct SocketFabric {
    recorder: Transport,
    socket: TcpStream,
    session: u64,
    addr: SocketAddr,
    reconnect: ReconnectPolicy,
    /// Request frames whose echo this side has fully received.
    next_seq: u64,
    /// Redials spent so far (shared budget for resume and busy-retry).
    reconnects_used: u32,
    /// Echoes replayed by the server after a resume, not yet consumed.
    replayed: VecDeque<Vec<u8>>,
}

impl SocketFabric {
    /// Connects without reconnection (see [`SocketFabric::connect_with`]).
    pub fn connect(
        addr: SocketAddr,
        session: u64,
        policy: DeliveryPolicy,
    ) -> Result<Self, MedError> {
        Self::connect_with(addr, session, policy, ReconnectPolicy::none())
    }

    /// Connects, performs the `Hello`/`HelloAck` handshake for `session`,
    /// and returns a fabric whose recorder threads that session id onto
    /// every frame.  The requested [`DeliveryPolicy`] is announced to the
    /// server and installed on the recorder.  A `ServerBusy` NACK is
    /// retried with backoff out of the reconnect budget; with the budget
    /// exhausted (or `reconnect` disabled) it surfaces as the retryable
    /// [`MedError::Busy`].
    pub fn connect_with(
        addr: SocketAddr,
        session: u64,
        policy: DeliveryPolicy,
        reconnect: ReconnectPolicy,
    ) -> Result<Self, MedError> {
        let mut reconnects_used = 0u32;
        let socket = loop {
            match Self::dial(addr, session, policy) {
                Ok(socket) => break socket,
                Err(MedError::Busy(m)) => {
                    if reconnects_used >= reconnect.max_reconnects {
                        return Err(MedError::Busy(m));
                    }
                    reconnects_used += 1;
                    metrics::incr(Class::Deterministic, M_BUSY_RETRIES, 1);
                    metrics::incr(Class::Deterministic, M_RECONNECTS, 1);
                    metrics::sleep_ns(reconnect.backoff_ns(session, reconnects_used));
                }
                Err(e) => return Err(e),
            }
        };
        let mut recorder = Transport::with_session(session);
        recorder.set_policy(policy);
        Ok(SocketFabric {
            recorder,
            socket,
            session,
            addr,
            reconnect,
            next_seq: 0,
            reconnects_used,
            replayed: VecDeque::new(),
        })
    }

    /// One dial + `Hello`/`HelloAck` exchange.
    fn dial(addr: SocketAddr, session: u64, policy: DeliveryPolicy) -> Result<TcpStream, MedError> {
        let mut socket = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        socket
            .set_nodelay(true)
            .map_err(|e| io_err("set_nodelay", e))?;
        let hello = Frame::Hello {
            client_version: WIRE_VERSION,
            max_attempts: policy.max_attempts,
            degrade_on_exhausted: policy.on_exhausted == OnExhausted::Degrade,
        };
        stream::write_blob(&mut socket, &hello.encode_with_session(session))
            .map_err(|e| io_err("send hello", e))?;
        let ack = stream::read_blob(&mut socket)
            .map_err(|e| io_err("read hello ack", e))?
            .ok_or_else(|| MedError::Fabric("server closed during handshake".into()))?;
        match Frame::decode_expecting_session(&ack, session).map_err(MedError::Wire)? {
            Frame::HelloAck {
                status: SessionStatus::Accepted,
            } => Ok(socket),
            Frame::HelloAck {
                status: SessionStatus::ServerBusy,
            } => Err(MedError::Busy(format!(
                "server refused session {session}: at admission limit or draining"
            ))),
            Frame::HelloAck { status } => Err(MedError::Fabric(format!(
                "server rejected session {session}: {status:?}"
            ))),
            other => Err(MedError::Fabric(format!(
                "expected HelloAck, got {}",
                other.name()
            ))),
        }
    }

    /// The negotiated session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Redials spent so far out of the reconnect budget.
    pub fn reconnects_used(&self) -> u32 {
        self.reconnects_used
    }

    /// One write + echo-read round trip on the current connection.
    fn try_carry(&mut self, bytes: &[u8]) -> Result<Vec<u8>, MedError> {
        stream::write_blob(&mut self.socket, bytes).map_err(|e| io_err("send", e))?;
        stream::read_blob(&mut self.socket)
            .map_err(|e| io_err("read echo", e))?
            .ok_or_else(|| MedError::Fabric("server closed mid-session".into()))
    }

    /// Redials and resumes the session after connection death `cause`.
    ///
    /// On success the socket is replaced and any echoes this side missed
    /// sit in `self.replayed`; the caller decides whether the pending
    /// request must be re-sent (replay gap 0) or was already relayed
    /// (its echo is the next replayed blob).  Refusals that cannot heal
    /// (`UnknownSession` after a server restart, `ReplayGone`) and an
    /// exhausted redial budget are terminal typed errors.
    fn resume(&mut self, cause: MedError) -> Result<(), MedError> {
        if !self.reconnect.enabled() {
            return Err(cause);
        }
        while self.reconnects_used < self.reconnect.max_reconnects {
            self.reconnects_used += 1;
            metrics::incr(Class::Deterministic, M_RECONNECTS, 1);
            metrics::sleep_ns(
                self.reconnect
                    .backoff_ns(self.session, self.reconnects_used),
            );
            let mut socket = match TcpStream::connect(self.addr) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let _ = socket.set_nodelay(true);
            let resume = Frame::Resume {
                next_seq: self.next_seq,
            };
            if stream::write_blob(&mut socket, &resume.encode_with_session(self.session)).is_err() {
                continue;
            }
            let ack = match stream::read_blob(&mut socket) {
                Ok(Some(bytes)) => bytes,
                Ok(None) | Err(_) => continue,
            };
            let frame = match Frame::decode_expecting_session(&ack, self.session) {
                Ok(f) => f,
                Err(_) => continue,
            };
            let (status, server_next_seq) = match frame {
                Frame::ResumeAck {
                    status,
                    server_next_seq,
                } => (status, server_next_seq),
                other => {
                    return Err(MedError::Fabric(format!(
                        "expected ResumeAck, got {}",
                        other.name()
                    )));
                }
            };
            match status {
                ResumeStatus::Resumed => {
                    if server_next_seq < self.next_seq {
                        return Err(MedError::Fabric(format!(
                            "resume desync: server at seq {server_next_seq}, client at {}",
                            self.next_seq
                        )));
                    }
                    // The missing echoes arrive immediately after the ack.
                    let gap = server_next_seq - self.next_seq;
                    let mut recovered = VecDeque::new();
                    let mut died = false;
                    for _ in 0..gap {
                        match stream::read_blob(&mut socket) {
                            Ok(Some(blob)) => recovered.push_back(blob),
                            Ok(None) | Err(_) => {
                                died = true;
                                break;
                            }
                        }
                    }
                    if died {
                        // The replay connection died too; the server
                        // re-parks and the next attempt starts clean.
                        continue;
                    }
                    metrics::incr(Class::Deterministic, M_RESUMED, 1);
                    metrics::incr(Class::Deterministic, M_REPLAYED, gap);
                    self.socket = socket;
                    self.replayed = recovered;
                    return Ok(());
                }
                // The server may not have noticed the old connection die
                // yet; transient, worth another redial.
                ResumeStatus::SessionLive => continue,
                ResumeStatus::UnknownSession => {
                    return Err(MedError::Fabric(format!(
                        "resume refused for session {}: unknown session \
                         (server restarted or session expired); original failure: {cause}",
                        self.session
                    )));
                }
                ResumeStatus::ReplayGone => {
                    return Err(MedError::Fabric(format!(
                        "resume refused for session {}: replay window exceeded; \
                         original failure: {cause}",
                        self.session
                    )));
                }
            }
        }
        Err(MedError::Fabric(format!(
            "reconnect budget exhausted after {} redials; original failure: {cause}",
            self.reconnect.max_reconnects
        )))
    }
}

impl Fabric for SocketFabric {
    fn recorder(&self) -> &Transport {
        &self.recorder
    }

    fn recorder_mut(&mut self) -> &mut Transport {
        &mut self.recorder
    }

    fn carry(&mut self, _from: &PartyId, _to: &PartyId, bytes: &[u8]) -> Result<Vec<u8>, MedError> {
        loop {
            // An echo recovered by a resume replay satisfies the pending
            // request: the server already relayed it.
            if let Some(echo) = self.replayed.pop_front() {
                self.next_seq += 1;
                return Ok(echo);
            }
            match self.try_carry(bytes) {
                Ok(echo) => {
                    self.next_seq += 1;
                    return Ok(echo);
                }
                // Connection death: resume, then either consume the
                // replayed echo (the request had been relayed) or loop
                // around and re-send it (it never arrived).
                Err(e) => self.resume(e)?,
            }
        }
    }

    fn into_recorder(mut self) -> Result<Transport, MedError> {
        let goodbye = Frame::Goodbye.encode_with_session(self.session);
        if let Err(e) = stream::write_blob(&mut self.socket, &goodbye) {
            // One resume cycle so the ledger still records a clean close.
            self.resume(io_err("send goodbye", e))?;
            stream::write_blob(&mut self.socket, &goodbye)
                .map_err(|e| io_err("send goodbye", e))?;
        }
        // Half-close the write side so the goodbye travels with FIN, then
        // drain until the server's EOF: closing with unread data in the
        // receive buffer can reset the connection and destroy the goodbye
        // before the server reads it, mis-recording a clean client as
        // aborted.
        let _ = self.socket.shutdown(Shutdown::Write);
        while let Ok(Some(_)) = stream::read_blob(&mut self.socket) {}
        Ok(self.recorder)
    }
}
