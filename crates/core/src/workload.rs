//! Synthetic relational workloads.
//!
//! The paper evaluates no concrete dataset, so the benches and examples
//! generate controlled workloads: two relations with tunable sizes, join
//! attribute domains, overlap, and skew.  The generator reports the exact
//! expected join size so protocol output can be verified.

use mpint::rng::Rng;
use relalg::{Relation, Schema, Type, Value};
use secmed_crypto::drbg::HmacDrbg;

/// Parameters of a two-relation join workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Rows in the left relation.
    pub left_rows: usize,
    /// Rows in the right relation.
    pub right_rows: usize,
    /// Distinct join values available to the left relation.
    pub left_domain: usize,
    /// Distinct join values available to the right relation.
    pub right_domain: usize,
    /// How many join values the two domains share.
    pub shared_values: usize,
    /// Zipf-like skew exponent; `0.0` = uniform.
    pub skew: f64,
    /// Width of the non-join payload (extra attributes per relation).
    pub payload_attrs: usize,
    /// Seed label for reproducibility.
    pub seed: String,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            left_rows: 50,
            right_rows: 50,
            left_domain: 30,
            right_domain: 30,
            shared_values: 10,
            skew: 0.0,
            payload_attrs: 2,
            seed: "workload".to_string(),
        }
    }
}

/// A generated workload: the two relations plus ground truth.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The left relation (named `r1`, join attribute `k`).
    pub left: Relation,
    /// The right relation (named `r2`, join attribute `k`).
    pub right: Relation,
    /// The exact natural-join size.
    pub expected_join_size: usize,
}

impl WorkloadSpec {
    /// Generates the workload.
    ///
    /// Join values are integers: `0..shared` are common to both domains;
    /// the remainders are disjoint per side.
    ///
    /// # Panics
    ///
    /// Panics if `shared_values` exceeds either domain size, or a domain
    /// is zero while rows are requested.
    pub fn generate(&self) -> Workload {
        assert!(self.shared_values <= self.left_domain.min(self.right_domain));
        assert!(self.left_domain > 0 && self.right_domain > 0);
        let mut rng = HmacDrbg::from_label(&self.seed);

        // Value pools: shared ids first, then side-private ids.
        let left_pool: Vec<i64> = (0..self.left_domain as i64).collect();
        let right_pool: Vec<i64> = (0..self.shared_values as i64)
            .chain((0..(self.right_domain - self.shared_values) as i64).map(|i| 1_000_000 + i))
            .collect();

        let left = self.build_relation("r1", &left_pool, self.left_rows, &mut rng);
        let right = self.build_relation("r2", &right_pool, self.right_rows, &mut rng);

        // Ground truth join size: per shared value, (#left rows) * (#right rows).
        let expected_join_size = (0..self.shared_values as i64)
            .map(|v| {
                let l = left
                    .tuples()
                    .iter()
                    .filter(|t| t.at(0) == &Value::Int(v))
                    .count();
                let r = right
                    .tuples()
                    .iter()
                    .filter(|t| t.at(0) == &Value::Int(v))
                    .count();
                l * r
            })
            .sum();

        Workload {
            left,
            right,
            expected_join_size,
        }
    }

    fn build_relation(
        &self,
        name: &str,
        pool: &[i64],
        rows: usize,
        rng: &mut HmacDrbg,
    ) -> Relation {
        let mut attrs = vec![("k", Type::Int)];
        let payload_names: Vec<String> = (0..self.payload_attrs)
            .map(|i| format!("{name}_p{i}"))
            .collect();
        for n in &payload_names {
            attrs.push((n.as_str(), Type::Str));
        }
        let schema = Schema::new(&attrs);
        let mut rel = Relation::empty(schema);
        for row in 0..rows {
            let v = pool[self.pick(pool.len(), rng)];
            let mut values = vec![Value::Int(v)];
            for (i, _) in payload_names.iter().enumerate() {
                values.push(Value::Str(format!("{name}:{row}:{i}")));
            }
            rel.insert(relalg::Tuple::new(values))
                .expect("generated row conforms");
        }
        rel
    }

    /// Index selection with optional Zipf-like skew.
    fn pick(&self, n: usize, rng: &mut HmacDrbg) -> usize {
        if self.skew <= 0.0 {
            return (rng.next_u64() % n as u64) as usize;
        }
        // Inverse-CDF sampling of a truncated power law by rejection.
        loop {
            let idx = (rng.next_u64() % n as u64) as usize;
            let weight = 1.0 / ((idx + 1) as f64).powf(self.skew);
            let coin = (rng.next_u64() as f64) / (u64::MAX as f64);
            if coin < weight {
                return idx;
            }
        }
    }
}

/// Quick helper for tests: a small workload with a known overlap.
pub fn small_workload(seed: &str) -> Workload {
    WorkloadSpec {
        left_rows: 20,
        right_rows: 25,
        left_domain: 12,
        right_domain: 15,
        shared_values: 6,
        seed: seed.to_string(),
        ..Default::default()
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let a = small_workload("s");
        let b = small_workload("s");
        assert_eq!(a.left, b.left);
        assert_eq!(a.right, b.right);
        let c = small_workload("t");
        assert_ne!(a.left, c.left);
    }

    #[test]
    fn expected_join_size_matches_actual_join() {
        for seed in ["a", "b", "c"] {
            let w = small_workload(seed);
            let joined = w.left.natural_join(&w.right).unwrap();
            assert_eq!(joined.len(), w.expected_join_size, "seed={seed}");
        }
    }

    #[test]
    fn respects_row_counts_and_schema() {
        let w = WorkloadSpec {
            left_rows: 7,
            right_rows: 3,
            ..Default::default()
        }
        .generate();
        assert_eq!(w.left.len(), 7);
        assert_eq!(w.right.len(), 3);
        assert_eq!(w.left.schema().attr_names()[0], "k");
        assert_eq!(w.left.schema().arity(), 3);
    }

    #[test]
    fn disjoint_domains_give_empty_join() {
        let w = WorkloadSpec {
            shared_values: 0,
            seed: "d".to_string(),
            ..Default::default()
        }
        .generate();
        assert_eq!(w.expected_join_size, 0);
        assert_eq!(w.left.natural_join(&w.right).unwrap().len(), 0);
    }

    #[test]
    fn skewed_workload_still_verifies() {
        let w = WorkloadSpec {
            skew: 1.2,
            seed: "skew".to_string(),
            ..Default::default()
        }
        .generate();
        let joined = w.left.natural_join(&w.right).unwrap();
        assert_eq!(joined.len(), w.expected_join_size);
    }

    #[test]
    #[should_panic]
    fn oversized_overlap_panics() {
        WorkloadSpec {
            shared_values: 100,
            left_domain: 5,
            ..Default::default()
        }
        .generate();
    }
}
