//! Seeded chaos sweep over the in-process fabric.
//!
//! The harness itself — seeds, plans, invariants, fingerprints — lives in
//! `secmed_testkit::chaos` so the same sweep runs over any `Fabric`.
//! This suite instantiates it with the plain in-process recorder
//! ([`Transport::new`]), which preserves the original behavior byte for
//! byte; the loopback-socket instantiation lives in `secmed-server`'s
//! test suite.

use secmed_core::Transport;
use secmed_testkit::chaos;

#[test]
fn chaos_das() {
    chaos::sweep_on(chaos::DAS, |_| Transport::new());
}

#[test]
fn chaos_commutative() {
    chaos::sweep_on(chaos::COMMUTATIVE, |_| Transport::new());
}

#[test]
fn chaos_pm() {
    chaos::sweep_on(chaos::PM, |_| Transport::new());
}

#[test]
fn zero_fault_plan_is_indistinguishable_from_no_plan() {
    chaos::zero_fault_invariance_on(|_| Transport::new());
}
