//! Seeded chaos suite: the fault fabric's hard invariants, swept over
//! many deterministic fault plans.
//!
//! Every case installs a [`FaultPlan`] generated from a testkit seed and
//! asserts four properties the robustness layer promises:
//!
//! 1. **No panics, typed outcomes only.** Under an installed plan a run
//!    always returns a [`RunReport`]; an exhausted delivery surfaces as
//!    [`RunOutcome::Aborted`], never as a crash or an `Err`.
//! 2. **Correct or honestly non-clean.** When the outcome says `Clean` or
//!    `RecoveredWithRetries`, the result relation is byte-identical to a
//!    fault-free run.  An `Aborted` run carries an empty result.
//! 3. **Schedule independence.** The same fault seed produces a
//!    byte-identical transport log — ordering, labels, attempt tags,
//!    fault tags, every payload byte — at 1, 2, and 8 worker threads.
//! 4. **Accounting reconciles.** The per-party byte views derived by the
//!    audit layer agree with the raw log: the per-receiver sums partition
//!    `total_bytes()`, retransmitted and damaged copies included.
//!
//! Fingerprints deliberately exclude `RunReport::primitives`: the
//! primitive census is a process-global counter bank, so concurrent test
//! threads pollute each other's deltas.  Everything else — result,
//! outcome, transport log, leakage views — is compared byte for byte.

use secmed_core::workload::{Workload, WorkloadSpec};
use secmed_core::{
    CommutativeConfig, DasConfig, DeliveryPolicy, Engine, FaultPlan, OnExhausted, Outage, PartyId,
    PmConfig, ProtocolKind, RunOptions, RunOutcome, RunReport, ScenarioBuilder, TraceSink,
};
use secmed_testkit::Gen;

/// Fault seeds swept per protocol (the issue's floor is 64).
const SEEDS: u64 = 64;

/// Thread counts every seed must agree across.
const THREADS: [usize; 3] = [1, 2, 8];

const DAS: ProtocolKind = ProtocolKind::Das(DasConfig {
    scheme: secmed_das::PartitionScheme::EquiDepth(2),
    setting: secmed_core::DasSetting::ClientSetting,
});
const COMMUTATIVE: ProtocolKind = ProtocolKind::Commutative(CommutativeConfig {
    mode: secmed_core::CommutativeMode::IdReferences,
});
const PM: ProtocolKind = ProtocolKind::Pm(PmConfig {
    eval: secmed_core::PmEval::Horner,
    payload: secmed_core::PmPayloadMode::SessionKeyTable,
});

/// A deliberately tiny workload: the sweep's cost is dominated by
/// public-key work per row, so chaos coverage buys breadth with a small
/// join, not a large one.
fn workload() -> Workload {
    WorkloadSpec {
        left_rows: 6,
        right_rows: 6,
        left_domain: 3,
        right_domain: 3,
        shared_values: 2,
        payload_attrs: 1,
        seed: "chaos".to_string(),
        ..Default::default()
    }
    .generate()
}

/// The fault plan and retry policy for one chaos case, drawn entirely
/// from the testkit DRBG so every case reproduces from its seed alone.
fn plan_for(seed: u64) -> (FaultPlan, DeliveryPolicy) {
    let mut g = Gen::for_case("chaos-plan", seed);
    let mut plan = FaultPlan::none(format!("chaos/{seed}"));
    plan.drop_per_mille = g.per_mille(120);
    plan.corrupt_per_mille = g.per_mille(120);
    plan.truncate_per_mille = g.per_mille(100);
    plan.duplicate_per_mille = g.per_mille(100);
    plan.delay_per_mille = g.per_mille(100);
    // One case in four also takes a party down for a span of steps.
    if g.u64_below(4) == 0 {
        let party = g
            .choose(&[
                PartyId::Mediator,
                PartyId::Client,
                PartyId::source("r1"),
                PartyId::source("r2"),
            ])
            .clone();
        plan.outages.push(Outage {
            party,
            from_step: g.u64_below(12),
            steps: 1 + g.u64_below(3),
        });
    }
    let policy = DeliveryPolicy {
        max_attempts: 2 + (seed % 3) as u32,
        on_exhausted: if seed.is_multiple_of(2) {
            OnExhausted::Abort
        } else {
            OnExhausted::Degrade
        },
    };
    (plan, policy)
}

/// One chaos run.  Under an installed plan `Engine::run` must never
/// return `Err` — that is property 1.
fn run_chaos(kind: ProtocolKind, seed: u64, threads: usize) -> RunReport {
    let w = workload();
    let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
    let (plan, policy) = plan_for(seed);
    let opts = RunOptions::new(kind)
        .threads(threads)
        .trace(TraceSink::Discard)
        .delivery(policy)
        .faults(plan);
    Engine::run(&mut sc, &opts)
        .unwrap_or_else(|e| panic!("{} seed {seed}: chaos run returned Err: {e}", kind.name()))
}

/// Everything a run reports except the process-global primitive census
/// (see the module docs for why it is excluded).
fn fingerprint(r: &RunReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        r.result, r.outcome, r.transport, r.mediator_view, r.client_view
    )
}

/// The fault-free result relation, the yardstick for property 2.
fn expected_result(kind: ProtocolKind) -> String {
    let w = workload();
    let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
    let opts = RunOptions::new(kind).trace(TraceSink::Discard);
    let report = Engine::run(&mut sc, &opts).expect("fault-free run succeeds");
    assert!(report.outcome.is_clean(), "fault-free run must be Clean");
    format!("{:?}", report.result)
}

/// Properties 2 and 4 over one report (already known not to have
/// panicked, property 1).
fn check_report(kind: ProtocolKind, seed: u64, report: &RunReport, expected: &str) {
    let name = kind.name();
    match &report.outcome {
        RunOutcome::Clean | RunOutcome::RecoveredWithRetries { .. } => {
            assert_eq!(
                format!("{:?}", report.result),
                expected,
                "{name} seed {seed}: outcome {} but the result diverged",
                report.outcome
            );
        }
        RunOutcome::Degraded { details, .. } => {
            assert!(
                !details.is_empty(),
                "{name} seed {seed}: Degraded without details"
            );
        }
        RunOutcome::Aborted { .. } => {
            assert_eq!(
                report.result.len(),
                0,
                "{name} seed {seed}: Aborted run must not carry rows"
            );
        }
    }
    // Retries reported on the outcome come from the fabric's counter.
    assert_eq!(
        report.outcome.retries(),
        report.transport.retries(),
        "{name} seed {seed}: outcome retries diverged from the fabric"
    );
    // Property 4: the receiver partition of the log covers every byte —
    // failed attempts, duplicates, and delayed copies included.
    let parties = [
        PartyId::Client,
        PartyId::Mediator,
        PartyId::source("r1"),
        PartyId::source("r2"),
        PartyId::Ca,
    ];
    let per_receiver: usize = parties
        .iter()
        .map(|p| report.transport.bytes_received_by(p))
        .sum();
    assert_eq!(
        per_receiver,
        report.transport.total_bytes(),
        "{name} seed {seed}: per-receiver bytes do not partition the log"
    );
    assert_eq!(
        report.mediator_view.bytes_observed,
        report.transport.bytes_received_by(&PartyId::Mediator),
        "{name} seed {seed}: mediator view out of sync with the log"
    );
    assert_eq!(
        report.client_view.bytes_received,
        report.transport.bytes_received_by(&PartyId::Client),
        "{name} seed {seed}: client view out of sync with the log"
    );
    // Overhead never exceeds the log it is carved from.
    let (extra_msgs, extra_bytes) = report.transport.overhead();
    assert!(extra_msgs <= report.transport.message_count());
    assert!(extra_bytes <= report.transport.total_bytes());
}

/// Sweeps all seeds for one protocol: each seed runs at every thread
/// count, properties 2 and 4 are checked on the sequential report, and
/// property 3 compares the full fingerprints across thread counts.
fn sweep(kind: ProtocolKind) {
    let expected = expected_result(kind);
    let mut outcomes = [0usize; 4];
    for seed in 0..SEEDS {
        let base = run_chaos(kind, seed, THREADS[0]);
        check_report(kind, seed, &base, &expected);
        let base_print = fingerprint(&base);
        for &threads in &THREADS[1..] {
            let other = fingerprint(&run_chaos(kind, seed, threads));
            assert_eq!(
                base_print,
                other,
                "{} seed {seed}: report diverged between 1 and {threads} threads",
                kind.name()
            );
        }
        match base.outcome {
            RunOutcome::Clean => outcomes[0] += 1,
            RunOutcome::RecoveredWithRetries { .. } => outcomes[1] += 1,
            RunOutcome::Degraded { .. } => outcomes[2] += 1,
            RunOutcome::Aborted { .. } => outcomes[3] += 1,
        }
    }
    // The sweep must actually exercise the fault machinery: across 64
    // seeded plans at these rates, both recovery and non-clean endings
    // occur.  (Counts are deterministic — seeded plans, seeded runs.)
    assert!(
        outcomes[1] + outcomes[2] + outcomes[3] > 0,
        "{}: no seed produced a non-clean outcome — rates too low to test anything: {outcomes:?}",
        kind.name()
    );
    assert!(
        outcomes[0] + outcomes[1] > 0,
        "{}: no seed delivered a clean-or-recovered run: {outcomes:?}",
        kind.name()
    );
}

#[test]
fn chaos_das() {
    sweep(DAS);
}

#[test]
fn chaos_commutative() {
    sweep(COMMUTATIVE);
}

#[test]
fn chaos_pm() {
    sweep(PM);
}

/// The acceptance boundary for the whole layer: installing a fault plan
/// with every rate at zero changes nothing — report fingerprints (result,
/// outcome, transport log, views) are byte-identical to a run with no
/// plan installed at all.
#[test]
fn zero_fault_plan_is_indistinguishable_from_no_plan() {
    for kind in [DAS, COMMUTATIVE, PM] {
        let w = workload();
        let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
        let opts = RunOptions::new(kind).trace(TraceSink::Discard);
        let bare = Engine::run(&mut sc, &opts).expect("fault-free run succeeds");

        let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
        let opts = RunOptions::new(kind)
            .trace(TraceSink::Discard)
            .faults(FaultPlan::none("zero"));
        let zeroed = Engine::run(&mut sc, &opts).expect("zero-fault run succeeds");

        assert_eq!(
            fingerprint(&bare),
            fingerprint(&zeroed),
            "{}: a zero-rate plan must be observationally absent",
            kind.name()
        );
    }
}
