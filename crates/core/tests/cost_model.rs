//! The analytic cost model (paper §6 as closed forms) must match the
//! measured operation counters exactly.

use secmed_core::cost::{observed, predict, shape_of};
use secmed_core::workload::small_workload;
use secmed_core::{
    CommutativeConfig, CommutativeMode, DasConfig, DasSetting, Engine, PmConfig, PmEval,
    PmPayloadMode, ProtocolKind, RunOptions, ScenarioBuilder,
};

fn check(kind: ProtocolKind, seed: &str) {
    let w = small_workload(seed);
    let mut sc = ScenarioBuilder::new(&w)
        .seed(seed)
        .paillier_bits(768)
        .build();
    let report = Engine::run(&mut sc, &RunOptions::new(kind)).unwrap();
    let shape = shape_of(
        &w.left,
        &w.right,
        "k",
        report.mediator_view.server_result_size.unwrap_or(0),
    )
    .unwrap();
    let predicted = predict(&kind, &shape);
    let measured = observed(&report.primitives);
    assert_eq!(measured, predicted, "{kind:?} on seed {seed}");
}

// One test function: the primitive counters are process-global, so the
// model checks must not run concurrently with other protocol executions.
#[test]
fn cost_model_is_exact_for_every_protocol() {
    for (mode, seed) in [
        (CommutativeMode::EchoTuples, "cost-echo"),
        (CommutativeMode::IdReferences, "cost-ids"),
    ] {
        check(ProtocolKind::Commutative(CommutativeConfig { mode }), seed);
    }
    check(ProtocolKind::Das(DasConfig::default()), "cost-das");
    check(
        ProtocolKind::Das(DasConfig {
            setting: DasSetting::MediatorSetting,
            ..Default::default()
        }),
        "cost-das-med",
    );
    for (eval, seed) in [(PmEval::Horner, "cost-pm-h"), (PmEval::Naive, "cost-pm-n")] {
        check(
            ProtocolKind::Pm(PmConfig {
                eval,
                payload: PmPayloadMode::SessionKeyTable,
            }),
            seed,
        );
    }
}
