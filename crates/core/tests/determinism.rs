//! The engine's determinism hard invariant: for a fixed scenario seed the
//! full [`secmed_core::RunReport`] — result relation, transport log,
//! leakage views, and primitive census — is byte-for-byte identical at any
//! thread count.
//!
//! Parallel stages draw randomness from per-item DRBG streams and collect
//! results in input order, so neither ciphertext bytes nor message
//! ordering may depend on how work was scheduled.

use secmed_core::workload::WorkloadSpec;
use secmed_core::{
    CommutativeConfig, DasConfig, Engine, PmConfig, ProtocolKind, RunOptions, ScenarioBuilder,
    TraceSink,
};

/// A canonical byte rendering of everything a run reports.  `Debug` covers
/// every field of every component, so two equal fingerprints mean equal
/// results, equal transport logs (ordering, labels, byte counts), equal
/// mediator/client views, and equal primitive counters.
fn fingerprint(report: &secmed_core::RunReport) -> String {
    format!("{report:?}")
}

fn run_at(kind: ProtocolKind, threads: usize) -> String {
    let w = WorkloadSpec {
        seed: "determinism".to_string(),
        ..Default::default()
    }
    .generate();
    let mut sc = ScenarioBuilder::new(&w)
        .seed("determinism")
        .paillier_bits(768)
        .build();
    let opts = RunOptions::new(kind)
        .threads(threads)
        .trace(TraceSink::Discard);
    let report = Engine::run(&mut sc, &opts).expect("protocol run succeeds");
    fingerprint(&report)
}

#[test]
fn run_reports_are_identical_at_any_thread_count() {
    for kind in [
        ProtocolKind::Das(DasConfig::default()),
        ProtocolKind::Commutative(CommutativeConfig::default()),
        ProtocolKind::Pm(PmConfig::default()),
    ] {
        let sequential = run_at(kind, 1);
        for threads in [2, 8] {
            let parallel = run_at(kind, threads);
            assert_eq!(
                sequential,
                parallel,
                "{} report diverged between 1 and {threads} threads",
                kind.name()
            );
        }
    }
}
