//! The engine's determinism hard invariant: for a fixed scenario seed the
//! full [`secmed_core::RunReport`] — result relation, transport log,
//! leakage views, and primitive census — is byte-for-byte identical at any
//! thread count.
//!
//! Parallel stages draw randomness from per-item DRBG streams and collect
//! results in input order, so neither ciphertext bytes nor message
//! ordering may depend on how work was scheduled.

use secmed_core::workload::WorkloadSpec;
use secmed_core::{
    CommutativeConfig, DasConfig, Engine, PmConfig, ProtocolKind, RunOptions, RunReport,
    ScenarioBuilder, TraceSink,
};

/// A canonical byte rendering of everything a run reports.  `Debug` covers
/// every field of every component — `Envelope`'s `Debug` prints the full
/// payload as hex — so two equal fingerprints mean equal results, equal
/// transport logs (ordering, labels, every payload byte), equal
/// mediator/client views, and equal primitive counters.
fn fingerprint(report: &RunReport) -> String {
    format!("{report:?}")
}

fn run_at(kind: ProtocolKind, threads: usize) -> RunReport {
    let w = WorkloadSpec {
        seed: "determinism".to_string(),
        ..Default::default()
    }
    .generate();
    let mut sc = ScenarioBuilder::new(&w)
        .seed("determinism")
        .paillier_bits(768)
        .build();
    let opts = RunOptions::new(kind)
        .threads(threads)
        .trace(TraceSink::Discard);
    Engine::run(&mut sc, &opts).expect("protocol run succeeds")
}

const KINDS: [ProtocolKind; 3] = [
    ProtocolKind::Das(DasConfig {
        scheme: secmed_das::PartitionScheme::EquiDepth(4),
        setting: secmed_core::DasSetting::ClientSetting,
    }),
    ProtocolKind::Commutative(CommutativeConfig {
        mode: secmed_core::CommutativeMode::IdReferences,
    }),
    ProtocolKind::Pm(PmConfig {
        eval: secmed_core::PmEval::Horner,
        payload: secmed_core::PmPayloadMode::SessionKeyTable,
    }),
];

#[test]
fn run_reports_are_identical_at_any_thread_count() {
    for kind in KINDS {
        let sequential = fingerprint(&run_at(kind, 1));
        for threads in [2, 8] {
            let parallel = fingerprint(&run_at(kind, threads));
            assert_eq!(
                sequential,
                parallel,
                "{} report diverged between 1 and {threads} threads",
                kind.name()
            );
        }
    }
}

/// The stronger frame-level statement: the recorded fabric — sender,
/// receiver, label, and every encoded payload byte of every envelope —
/// is identical at 1, 2, and 8 worker threads.  This is what makes the
/// byte accounting and the decoded-log leakage audit schedule-independent.
#[test]
fn envelope_payloads_are_byte_identical_at_any_thread_count() {
    for kind in KINDS {
        let sequential = run_at(kind, 1);
        for threads in [2, 8] {
            let parallel = run_at(kind, threads);
            let seq_log = sequential.transport.log();
            let par_log = parallel.transport.log();
            assert_eq!(
                seq_log.len(),
                par_log.len(),
                "{}: message count diverged at {threads} threads",
                kind.name()
            );
            for (i, (a, b)) in seq_log.iter().zip(par_log).enumerate() {
                assert_eq!(a.from, b.from, "{}: envelope {i} sender", kind.name());
                assert_eq!(a.to, b.to, "{}: envelope {i} receiver", kind.name());
                assert_eq!(a.label, b.label, "{}: envelope {i} label", kind.name());
                assert_eq!(
                    a.payload,
                    b.payload,
                    "{}: envelope {i} ({}) payload bytes diverged between 1 and \
                     {threads} threads",
                    kind.name(),
                    a.label
                );
            }
        }
    }
}
