//! The unified observability report must agree *exactly* with the raw
//! recorders it is derived from: transport counters, the primitive census,
//! and — transitively — the §6 closed-form cost model.  If the report
//! aggregation ever drops or double-counts an edge, op, or phase, these
//! checks fail.

use secmed_core::cost::{divergence, observed, predict, shape_of};
use secmed_core::observe::{unified_report, workload_pairs};
use secmed_core::workload::WorkloadSpec;
use secmed_core::{Engine, ProtocolKind, RunOptions, ScenarioBuilder};
use secmed_obs::trace;

fn spec(seed: &str) -> WorkloadSpec {
    WorkloadSpec {
        left_rows: 20,
        right_rows: 20,
        left_domain: 10,
        right_domain: 10,
        shared_values: 5,
        payload_attrs: 2,
        seed: seed.to_string(),
        ..Default::default()
    }
}

fn check(kind: ProtocolKind, seed: &str) {
    let s = spec(seed);
    let w = s.generate();
    let mut sc = ScenarioBuilder::new(&w)
        .seed(seed)
        .paillier_bits(512)
        .build();
    let mark = trace::checkpoint();
    let report = Engine::run(&mut sc, &RunOptions::new(kind)).unwrap();
    let records = trace::take_since(mark);
    let unified = unified_report(kind, &report, &records, workload_pairs(&s));
    let key = kind.key();

    // Report totals equal the transport counters, edge by edge.
    assert_eq!(
        unified.total_messages(),
        report.transport.message_count() as u64,
        "{key}: message total drifted from the transport log"
    );
    assert_eq!(
        unified.total_bytes(),
        report.transport.total_bytes() as u64,
        "{key}: byte total drifted from the transport log"
    );

    // Report ops equal the primitive census, and the census equals the
    // closed-form prediction — so the report inherits the model guarantee.
    let census_total: u64 = report.primitives.iter().map(|(_, c)| c).sum();
    assert_eq!(unified.total_ops(), census_total, "{key}: op total drifted");
    let shape = shape_of(
        &w.left,
        &w.right,
        "k",
        report.mediator_view.server_result_size.unwrap_or(0),
    )
    .unwrap();
    let gap = divergence(&predict(&kind, &shape), &observed(&report.primitives));
    assert!(
        gap.within_tolerance(),
        "{key}: census disagrees with the §6 cost model by {} ppm on {:?}",
        gap.max_ppm,
        gap.mismatched
    );

    // Every protocol run produces the canonical phase rows.
    let phase_names: Vec<&str> = unified.phases.iter().map(|p| p.name.as_str()).collect();
    for expected in [
        format!("{key}.request"),
        format!("{key}.encryption"),
        format!("{key}.transfer"),
        format!("{key}.post"),
    ] {
        assert!(
            phase_names.contains(&expected.as_str()),
            "{key}: missing phase {expected} in {phase_names:?}"
        );
    }

    // The result row count in the report is the actual join size.
    assert_eq!(unified.result_rows, w.expected_join_size as u64);

    // Deterministic run metrics reconcile with the recorders they mirror:
    // fabric totals, per-receiver bytes, the Table 2 census, and the
    // result cardinality — and the unified report carries them verbatim.
    let metric = |name: &str| {
        report
            .metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    };
    assert_eq!(
        metric("transport.frames"),
        Some(report.transport.message_count() as u64),
        "{key}: frame metric drifted from the transport log"
    );
    assert_eq!(
        metric("transport.bytes"),
        Some(report.transport.total_bytes() as u64),
        "{key}: byte metric drifted from the transport log"
    );
    assert_eq!(metric("transport.retries"), Some(0), "{key}: fault-free");
    for party in ["client", "mediator", "source:r1", "source:r2"] {
        let expected = report
            .transport
            .log()
            .iter()
            .filter(|e| e.to.to_string() == party)
            .map(|e| e.bytes() as u64)
            .sum::<u64>();
        if expected > 0 {
            assert_eq!(
                metric(&format!("transport.to.{party}.bytes")),
                Some(expected),
                "{key}: per-receiver bytes drifted for {party}"
            );
        }
    }
    for (op, count) in &report.primitives {
        assert_eq!(
            metric(&secmed_crypto::metrics::registry_name(*op)),
            Some(*count),
            "{key}: census metric drifted for {}",
            op.name()
        );
    }
    assert_eq!(metric("run.result_rows"), Some(w.expected_join_size as u64));
    let mut sorted = report.metrics.clone();
    sorted.sort();
    assert_eq!(report.metrics, sorted, "{key}: metrics must be sorted");
    assert_eq!(
        unified.metrics, report.metrics,
        "{key}: unified report must carry the run metrics verbatim"
    );

    // The span-profile aggregation reproduces the per-phase totals that
    // were computed straight from the raw records.
    let prof = secmed_obs::profile::aggregate(&records);
    for phase in &unified.phases {
        assert_eq!(
            prof.total_of(&phase.name),
            phase.wall_ns,
            "{key}: profile total for {} disagrees with the trace",
            phase.name
        );
    }

    // §6 interaction pattern: DAS needs two client interactions with the
    // mediator; the encryption-key protocols need two per source.
    let of = |party: &str| {
        unified
            .interactions
            .iter()
            .find(|(p, _)| p == party)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    match kind {
        ProtocolKind::Das(_) => {
            assert_eq!(of("client"), 2, "das: client must interact twice");
            assert_eq!(of("source:r1"), 1);
            assert_eq!(of("source:r2"), 1);
        }
        ProtocolKind::Commutative(_) | ProtocolKind::Pm(_) => {
            assert_eq!(of("client"), 1);
            assert_eq!(of("source:r1"), 2, "{key}: sources must interact twice");
            assert_eq!(of("source:r2"), 2, "{key}: sources must interact twice");
        }
    }
}

// One test function: the primitive counters and the trace buffer are
// process-global, so runs must not interleave with each other.
#[test]
fn unified_report_matches_recorders_for_every_protocol() {
    check(ProtocolKind::Das(Default::default()), "obs-das");
    check(ProtocolKind::Commutative(Default::default()), "obs-comm");
    check(ProtocolKind::Pm(Default::default()), "obs-pm");
}
