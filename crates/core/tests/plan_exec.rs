//! Planner → engine integration: a three-way SQL join is planned onto the
//! delivery protocols and executed over the mediator hierarchy.
//!
//! Covers the planner-layer invariants end to end: byte-identical plans
//! and plan reports across thread counts, the leakage-budget flip (a
//! tighter budget changes some node's protocol and the plan still runs),
//! every candidate protocol assignment agreeing with the plaintext
//! reference evaluation, and the per-node §6 predicted-vs-observed
//! divergence staying within tolerance.

use std::collections::HashMap;

use relalg::Relation;
use secmed_core::hierarchy::SourceSpec;
use secmed_core::observe::unified_plan_report;
use secmed_core::plan::{LeakageBudget, Plan, PlanReport, PlanRunOptions};
use secmed_core::{
    AccessPolicy, CertificationAuthority, Client, CommutativeConfig, DasConfig, Engine, PmConfig,
    Property, ProtocolKind,
};
use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::group::{GroupSize, SafePrimeGroup};
use secmed_plan::{stats_of, Planner};
use secmed_testkit::federation::{self, Federation, FederationSpec};
use secmed_testkit::Gen;

fn federation_3way() -> Federation {
    federation::chain(
        &mut Gen::for_case("plan-exec", 0),
        &FederationSpec {
            tables: 3,
            rows: 20,
            key_domain: 8,
            payload_domain: 50,
        },
    )
}

fn ca_for(label: &str) -> CertificationAuthority {
    let group = SafePrimeGroup::preset(GroupSize::S512);
    let mut rng = HmacDrbg::from_label(label);
    CertificationAuthority::new(group, &mut rng)
}

fn client_for(ca: &CertificationAuthority) -> Client {
    Client::setup(
        ca,
        vec![Property::new("role", "analyst")],
        SafePrimeGroup::preset(GroupSize::S512),
        512,
        "plan-exec/client",
    )
}

fn sources_of(fed: &Federation) -> Vec<SourceSpec> {
    fed.catalog
        .iter()
        .map(|(name, rel)| SourceSpec {
            name: name.clone(),
            relation: rel.clone(),
            policy: AccessPolicy::allow_all(),
        })
        .collect()
}

/// Plaintext reference: evaluate the query directly over the catalog.
fn reference(fed: &Federation) -> Relation {
    let catalog: HashMap<String, Relation> = fed
        .catalog
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    relalg::sql::parse(&fed.query())
        .unwrap()
        .eval(&catalog)
        .unwrap()
}

/// Compares two relations up to row and column order.
fn assert_same_rows(got: &Relation, want: &Relation, context: &str) {
    let mut names: Vec<&str> = want.schema().attr_names();
    names.sort_unstable();
    let g = got.project(&names).unwrap().sorted();
    let w = want.project(&names).unwrap().sorted();
    assert_eq!(g.tuples(), w.tuples(), "{context}: result drifted");
}

fn run(fed: &Federation, plan: &Plan, opts: &PlanRunOptions) -> PlanReport {
    let ca = ca_for("plan-exec/ca");
    Engine::run_plan(&ca, || client_for(&ca), sources_of(fed), plan, opts).unwrap()
}

#[test]
fn three_way_plan_and_report_are_identical_across_thread_counts() {
    let fed = federation_3way();
    let stats = stats_of(&fed.catalog);
    let planner = Planner::new();
    let plan = planner
        .plan(&fed.query(), &fed.schemas(), &stats, LeakageBudget::open())
        .unwrap();
    let again = planner
        .plan(&fed.query(), &fed.schemas(), &stats, LeakageBudget::open())
        .unwrap();
    assert_eq!(
        format!("{plan:?}"),
        format!("{again:?}"),
        "planning must be a pure function of its inputs"
    );

    let want = reference(&fed);
    let mut fingerprints: Vec<String> = Vec::new();
    for threads in [1usize, 2, 8] {
        let exec = run(&fed, &plan, &PlanRunOptions::default().threads(threads));
        assert_same_rows(&exec.result, &want, &format!("{threads} threads"));
        for n in &exec.nodes {
            assert!(
                n.divergence.within_tolerance(),
                "{threads} threads, {}: {} ppm on {:?}",
                n.label,
                n.divergence.max_ppm,
                n.divergence.mismatched
            );
        }
        // The whole unified report — traffic, census, leakage, and the
        // plan section — must not depend on the thread count.
        fingerprints.push(unified_plan_report(&plan, &exec).to_json().render());
    }
    assert_eq!(fingerprints[0], fingerprints[1], "1 vs 2 threads");
    assert_eq!(fingerprints[0], fingerprints[2], "1 vs 8 threads");
    assert!(fingerprints[0].contains(r#""protocol":"plan""#));
    assert!(fingerprints[0].contains(r#""divergence_ppm":0"#));
}

#[test]
fn tightening_the_budget_flips_a_node_and_still_executes() {
    let fed = federation_3way();
    let stats = stats_of(&fed.catalog);
    let planner = Planner::new();
    let open = planner
        .plan(&fed.query(), &fed.schemas(), &stats, LeakageBudget::open())
        .unwrap();

    // Forbid exactly the distinguishing leakage of the protocol the open
    // plan chose for its first node; that node must flip.
    let first = open.nodes[0].protocol;
    let tight = match first {
        ProtocolKind::Das(_) => LeakageBudget {
            client_superset: false,
            ..LeakageBudget::open()
        },
        ProtocolKind::Commutative(_) => LeakageBudget {
            mediator_intersection_size: false,
            ..LeakageBudget::open()
        },
        ProtocolKind::Pm(_) => LeakageBudget {
            client_extra_ciphertexts: false,
            ..LeakageBudget::open()
        },
    };
    let flipped = planner
        .plan(&fed.query(), &fed.schemas(), &stats, tight)
        .unwrap();
    assert_ne!(
        flipped.nodes[0].protocol.key(),
        first.key(),
        "budget did not flip the node: {}",
        flipped.nodes[0].rationale
    );
    assert!(
        flipped.nodes.iter().all(|n| n.protocol.key() != first.key()
            || tight.permits(&secmed_core::plan::exposure(&n.protocol))),
        "a chosen protocol exceeds the budget"
    );

    // Both plans execute and agree with the plaintext reference.
    let want = reference(&fed);
    let opts = PlanRunOptions::default();
    assert_same_rows(&run(&fed, &open, &opts).result, &want, "open budget");
    assert_same_rows(&run(&fed, &flipped, &opts).result, &want, "tight budget");
}

#[test]
fn every_protocol_assignment_executes_and_matches_the_reference() {
    let fed = federation_3way();
    let stats = stats_of(&fed.catalog);
    let want = reference(&fed);
    for kind in [
        ProtocolKind::Das(DasConfig::default()),
        ProtocolKind::Commutative(CommutativeConfig::default()),
        ProtocolKind::Pm(PmConfig::default()),
    ] {
        // A single-candidate planner pins every node to one protocol.
        let planner = Planner::with_candidates(vec![kind]);
        let plan = planner
            .plan(&fed.query(), &fed.schemas(), &stats, LeakageBudget::open())
            .unwrap();
        assert!(plan.nodes.iter().all(|n| n.protocol.key() == kind.key()));
        let exec = run(&fed, &plan, &PlanRunOptions::default());
        assert_same_rows(&exec.result, &want, kind.key());
        for n in &exec.nodes {
            assert!(
                n.divergence.within_tolerance(),
                "{} {}: {} ppm on {:?}",
                kind.key(),
                n.label,
                n.divergence.max_ppm,
                n.divergence.mismatched
            );
        }
        let unified = unified_plan_report(&plan, &exec);
        assert_eq!(unified.plan.len(), plan.nodes.len());
        assert_eq!(unified.result_rows, want.len() as u64);
        assert!(unified.plan.iter().all(|n| n.protocol == kind.key()));
    }
}
