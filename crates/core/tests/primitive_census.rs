//! Table 2 census in its own test binary: the primitive counters are
//! process-global, so this must not share a process with other protocol
//! runs.

use secmed_core::workload::small_workload;
use secmed_core::{CommutativeConfig, DasConfig, Engine, PmConfig, RunOptions, ScenarioBuilder};

#[test]
fn primitive_census_matches_table_2() {
    use secmed_crypto::metrics::Op;
    let w = small_workload("census");

    let has = |prims: &[(Op, u64)], op: Op| prims.iter().any(|(o, c)| *o == op && *c > 0);

    // DAS: hash function (for index values) + hybrid encryption; no
    // commutative or homomorphic operations.
    let mut sc = ScenarioBuilder::new(&w)
        .seed("census")
        .paillier_bits(768)
        .build();
    let das = Engine::run(&mut sc, &RunOptions::das(DasConfig::default())).unwrap();
    assert!(has(&das.primitives, Op::HashMessage));
    assert!(has(&das.primitives, Op::HybridEncrypt));
    assert!(!has(&das.primitives, Op::CommutativeEncrypt));
    assert!(!has(&das.primitives, Op::PaillierEncrypt));

    // Commutative: hash-to-group + commutative encryption; no Paillier.
    let mut sc = ScenarioBuilder::new(&w)
        .seed("census")
        .paillier_bits(768)
        .build();
    let comm = Engine::run(
        &mut sc,
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .unwrap();
    assert!(has(&comm.primitives, Op::HashToGroup));
    assert!(has(&comm.primitives, Op::CommutativeEncrypt));
    assert!(!has(&comm.primitives, Op::PaillierEncrypt));

    // PM: homomorphic encryption + random masks; no commutative encryption.
    let mut sc = ScenarioBuilder::new(&w)
        .seed("census")
        .paillier_bits(768)
        .build();
    let pm = Engine::run(&mut sc, &RunOptions::pm(PmConfig::default())).unwrap();
    assert!(has(&pm.primitives, Op::PaillierEncrypt));
    assert!(has(&pm.primitives, Op::PaillierScale));
    assert!(has(&pm.primitives, Op::RandomMask));
    assert!(!has(&pm.primitives, Op::CommutativeEncrypt));
}
