//! End-to-end protocol tests: every delivery phase, in every mode, must
//! produce exactly the plaintext reference join — and leak exactly what
//! Table 1 says it leaks.

use secmed_core::workload::{small_workload, WorkloadSpec};
use secmed_core::{
    CommutativeConfig, CommutativeMode, DasConfig, Engine, PmConfig, PmEval, PmPayloadMode,
    ProtocolKind, RunOptions, Scenario, ScenarioBuilder,
};
use secmed_das::PartitionScheme;

fn all_protocol_configs() -> Vec<(&'static str, ProtocolKind)> {
    vec![
        (
            "das-equidepth",
            ProtocolKind::Das(DasConfig {
                scheme: PartitionScheme::EquiDepth(4),
                ..Default::default()
            }),
        ),
        (
            "das-equiwidth",
            ProtocolKind::Das(DasConfig {
                scheme: PartitionScheme::EquiWidth(4),
                ..Default::default()
            }),
        ),
        (
            "das-pervalue",
            ProtocolKind::Das(DasConfig {
                scheme: PartitionScheme::PerValue,
                ..Default::default()
            }),
        ),
        (
            "comm-echo",
            ProtocolKind::Commutative(CommutativeConfig {
                mode: CommutativeMode::EchoTuples,
            }),
        ),
        (
            "comm-ids",
            ProtocolKind::Commutative(CommutativeConfig {
                mode: CommutativeMode::IdReferences,
            }),
        ),
        (
            "pm-horner-session",
            ProtocolKind::Pm(PmConfig {
                eval: PmEval::Horner,
                payload: PmPayloadMode::SessionKeyTable,
            }),
        ),
        (
            "pm-naive-session",
            ProtocolKind::Pm(PmConfig {
                eval: PmEval::Naive,
                payload: PmPayloadMode::SessionKeyTable,
            }),
        ),
        (
            "pm-bucketed-session",
            ProtocolKind::Pm(PmConfig {
                eval: PmEval::Bucketed(4),
                payload: PmPayloadMode::SessionKeyTable,
            }),
        ),
        (
            "pm-horner-inline",
            ProtocolKind::Pm(PmConfig {
                eval: PmEval::Horner,
                payload: PmPayloadMode::Inline,
            }),
        ),
    ]
}

/// The inline-payload PM mode carries whole tuple sets inside the Paillier
/// plaintext, so its workloads must keep `Tup_i(a)` small (that limitation
/// is the point of footnote 2 — see `pm_inline_mode_rejects_oversized_tuple_sets`).
fn workload_for(name: &str, seed: &str) -> secmed_core::workload::Workload {
    if name.contains("inline") {
        // Deterministically one tuple per join value per side, so every
        // Tup_i(a) fits inline in a 768-bit Paillier plaintext.
        use relalg::{Relation, Schema, Tuple, Type, Value};
        let schema = |n: &str| Schema::new(&[("k", Type::Int), (n, Type::Str)]);
        let mut left = Relation::empty(schema("lp"));
        let mut right = Relation::empty(schema("rp"));
        for i in 0..10i64 {
            left.insert(Tuple::new(vec![
                Value::Int(i),
                Value::from(format!("l{i}")),
            ]))
            .unwrap();
        }
        for i in 5..15i64 {
            right
                .insert(Tuple::new(vec![
                    Value::Int(i),
                    Value::from(format!("r{i}")),
                ]))
                .unwrap();
        }
        let _ = seed;
        secmed_core::workload::Workload {
            left,
            right,
            expected_join_size: 5,
        }
    } else {
        small_workload(seed)
    }
}

#[test]
fn every_protocol_reproduces_the_plaintext_join() {
    for (name, kind) in all_protocol_configs() {
        let w = workload_for(name, "e2e");
        let mut sc = ScenarioBuilder::new(&w)
            .seed("e2e")
            .paillier_bits(768)
            .build();
        let expected = sc.expected_result().unwrap().sorted();
        let report =
            Engine::run(&mut sc, &RunOptions::new(kind)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            report.result.len(),
            w.expected_join_size,
            "{name}: wrong join size"
        );
        assert_eq!(report.result.sorted(), expected, "{name}: wrong result");
    }
}

#[test]
fn empty_join_works_in_every_protocol() {
    let w = WorkloadSpec {
        left_rows: 8,
        right_rows: 8,
        left_domain: 8,
        right_domain: 8,
        shared_values: 0,
        payload_attrs: 1,
        seed: "empty".to_string(),
        ..Default::default()
    }
    .generate();
    for (name, kind) in all_protocol_configs() {
        let mut sc = ScenarioBuilder::new(&w)
            .seed("empty")
            .paillier_bits(768)
            .build();
        let report =
            Engine::run(&mut sc, &RunOptions::new(kind)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.result.len(), 0, "{name}: expected empty join");
    }
}

#[test]
fn skewed_workload_joins_correctly() {
    let w = WorkloadSpec {
        left_rows: 30,
        right_rows: 30,
        left_domain: 10,
        right_domain: 10,
        shared_values: 5,
        skew: 1.5,
        seed: "skewed".to_string(),
        ..Default::default()
    }
    .generate();
    for (name, kind) in [
        ("das", ProtocolKind::Das(DasConfig::default())),
        (
            "comm",
            ProtocolKind::Commutative(CommutativeConfig::default()),
        ),
        ("pm", ProtocolKind::Pm(PmConfig::default())),
    ] {
        let mut sc = ScenarioBuilder::new(&w)
            .seed("skewed")
            .paillier_bits(768)
            .build();
        let report =
            Engine::run(&mut sc, &RunOptions::new(kind)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.result.len(), w.expected_join_size, "{name}");
    }
}

#[test]
fn das_mediator_learns_sizes_and_superset_bound() {
    let w = small_workload("das-audit");
    let mut sc = ScenarioBuilder::new(&w)
        .seed("das-audit")
        .paillier_bits(768)
        .build();
    let report = Engine::run(&mut sc, &RunOptions::das(DasConfig::default())).unwrap();
    let mv = &report.mediator_view;
    // Table 1, DAS row: mediator learns |R_i| and |R_C|.
    assert_eq!(mv.left_result_rows, Some(w.left.len()));
    assert_eq!(mv.right_result_rows, Some(w.right.len()));
    let rc = mv.server_result_size.expect("mediator sees |RC|");
    assert!(
        rc >= w.expected_join_size,
        "RC is an upper bound on the join"
    );
    // ...and nothing about active domains.
    assert_eq!(mv.left_domain_size, None);
    assert_eq!(mv.intersection_size, None);
    // Client: superset + index tables.
    assert_eq!(report.client_view.superset_pairs, Some(rc));
    assert!(report.client_view.index_tables_seen);
}

#[test]
fn das_mediator_setting_trades_leakage_for_rounds() {
    use secmed_core::{DasSetting, PartyId};
    let w = small_workload("das-setting");

    // Client setting: two client interactions, encrypted tables, mediator
    // never sees partition contents.
    let mut sc = ScenarioBuilder::new(&w)
        .seed("das-setting")
        .paillier_bits(768)
        .build();
    let client_run = Engine::run(&mut sc, &RunOptions::das(DasConfig::default())).unwrap();
    assert_eq!(client_run.transport.interactions_of(&PartyId::Client), 2);
    assert!(!client_run.mediator_view.plaintext_index_tables);
    assert!(client_run.client_view.index_tables_seen);

    // Mediator setting: a single client interaction — but the mediator now
    // holds the plaintext index tables (the leakage the paper warns about).
    let mut sc = ScenarioBuilder::new(&w)
        .seed("das-setting")
        .paillier_bits(768)
        .build();
    let med_run = Engine::run(
        &mut sc,
        &RunOptions::das(DasConfig {
            setting: DasSetting::MediatorSetting,
            ..Default::default()
        }),
    )
    .unwrap();
    assert_eq!(med_run.transport.interactions_of(&PartyId::Client), 1);
    assert!(med_run.mediator_view.plaintext_index_tables);
    assert!(!med_run.client_view.index_tables_seen);

    // Both settings produce the same result.
    assert_eq!(client_run.result.sorted(), med_run.result.sorted());
    assert_eq!(med_run.result.len(), w.expected_join_size);
}

#[test]
fn das_pervalue_superset_is_exact() {
    let w = small_workload("das-exact");
    let mut sc = ScenarioBuilder::new(&w)
        .seed("das-exact")
        .paillier_bits(768)
        .build();
    let report = Engine::run(
        &mut sc,
        &RunOptions::das(DasConfig {
            scheme: PartitionScheme::PerValue,
            ..Default::default()
        }),
    )
    .unwrap();
    // With singleton partitions the server query is exact: |RC| = join size.
    assert_eq!(
        report.mediator_view.server_result_size,
        Some(w.expected_join_size)
    );
}

#[test]
fn das_coarser_partitions_give_larger_supersets() {
    let w = WorkloadSpec {
        left_rows: 40,
        right_rows: 40,
        left_domain: 32,
        right_domain: 32,
        shared_values: 8,
        seed: "das-sweep".to_string(),
        ..Default::default()
    }
    .generate();
    let mut sizes = Vec::new();
    for k in [1usize, 4, 16] {
        let mut sc = ScenarioBuilder::new(&w)
            .seed("das-sweep")
            .paillier_bits(768)
            .build();
        let report = Engine::run(
            &mut sc,
            &RunOptions::das(DasConfig {
                scheme: PartitionScheme::EquiDepth(k),
                ..Default::default()
            }),
        )
        .unwrap();
        sizes.push(report.mediator_view.server_result_size.unwrap());
    }
    // Fewer partitions (coarser buckets) ⇒ superset at least as large.
    assert!(sizes[0] >= sizes[1] && sizes[1] >= sizes[2], "{sizes:?}");
    assert!(*sizes.last().unwrap() >= w.expected_join_size);
}

#[test]
fn commutative_mediator_learns_domains_and_intersection() {
    let w = small_workload("comm-audit");
    let mut sc = ScenarioBuilder::new(&w)
        .seed("comm-audit")
        .paillier_bits(768)
        .build();
    let report = Engine::run(
        &mut sc,
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .unwrap();
    let mv = &report.mediator_view;
    let dom1 = w.left.active_domain("k").unwrap().len();
    let dom2 = w.right.active_domain("k").unwrap().len();
    let true_intersection = w
        .left
        .active_domain("k")
        .unwrap()
        .intersection(&w.right.active_domain("k").unwrap())
        .count();
    // Table 1, commutative row.
    assert_eq!(mv.left_domain_size, Some(dom1));
    assert_eq!(mv.right_domain_size, Some(dom2));
    assert_eq!(mv.intersection_size, Some(true_intersection));
    assert_eq!(mv.left_result_rows, None);
    // Client: only the exact global result.
    assert_eq!(report.client_view.superset_pairs, None);
    assert_eq!(report.client_view.ciphertexts_received, None);
    assert!(!report.client_view.index_tables_seen);
}

#[test]
fn pm_mediator_learns_domain_sizes_only() {
    let w = small_workload("pm-audit");
    let mut sc = ScenarioBuilder::new(&w)
        .seed("pm-audit")
        .paillier_bits(768)
        .build();
    let report = Engine::run(&mut sc, &RunOptions::pm(PmConfig::default())).unwrap();
    let mv = &report.mediator_view;
    let dom1 = w.left.active_domain("k").unwrap().len();
    let dom2 = w.right.active_domain("k").unwrap().len();
    // Table 1, PM row: |domactive| via polynomial degree; no intersection.
    assert_eq!(mv.left_domain_size, Some(dom1));
    assert_eq!(mv.right_domain_size, Some(dom2));
    assert_eq!(mv.intersection_size, None);
    // Client: n + m ciphertexts, useful payloads = 2 × |intersection|.
    let true_intersection = w
        .left
        .active_domain("k")
        .unwrap()
        .intersection(&w.right.active_domain("k").unwrap())
        .count();
    assert_eq!(report.client_view.ciphertexts_received, Some(dom1 + dom2));
    assert_eq!(
        report.client_view.useful_payloads,
        Some(2 * true_intersection)
    );
}

#[test]
fn interaction_patterns_match_section_6() {
    use secmed_core::PartyId;
    let w = small_workload("interactions");

    // DAS: "the client has to interact twice with the mediator"; "for the
    // datasources ... they only have to send data once".
    let mut sc = ScenarioBuilder::new(&w)
        .seed("interactions")
        .paillier_bits(768)
        .build();
    let das = Engine::run(&mut sc, &RunOptions::das(DasConfig::default())).unwrap();
    assert_eq!(das.transport.interactions_of(&PartyId::Client), 2);
    assert_eq!(das.transport.interactions_of(&PartyId::source("r1")), 1);
    assert_eq!(das.transport.interactions_of(&PartyId::source("r2")), 1);

    // Commutative: sources interact twice; client only sends the query.
    let mut sc = ScenarioBuilder::new(&w)
        .seed("interactions")
        .paillier_bits(768)
        .build();
    let comm = Engine::run(
        &mut sc,
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .unwrap();
    assert_eq!(comm.transport.interactions_of(&PartyId::Client), 1);
    assert_eq!(comm.transport.interactions_of(&PartyId::source("r1")), 2);
    assert_eq!(comm.transport.interactions_of(&PartyId::source("r2")), 2);

    // PM: sources interact twice; client only sends the query.
    let mut sc = ScenarioBuilder::new(&w)
        .seed("interactions")
        .paillier_bits(768)
        .build();
    let pm = Engine::run(&mut sc, &RunOptions::pm(PmConfig::default())).unwrap();
    assert_eq!(pm.transport.interactions_of(&PartyId::Client), 1);
    assert_eq!(pm.transport.interactions_of(&PartyId::source("r1")), 2);
    assert_eq!(pm.transport.interactions_of(&PartyId::source("r2")), 2);
}

#[test]
fn pm_inline_mode_rejects_oversized_tuple_sets() {
    // Many tuples share one join value → the inline payload exceeds the
    // Paillier plaintext space → exactly the failure footnote 2 addresses.
    let w = WorkloadSpec {
        left_rows: 60,
        right_rows: 60,
        left_domain: 2,
        right_domain: 2,
        shared_values: 2,
        payload_attrs: 4,
        seed: "pm-overflow".to_string(),
        ..Default::default()
    }
    .generate();
    let mut sc = ScenarioBuilder::new(&w)
        .seed("pm-overflow")
        .paillier_bits(512)
        .build();
    let err = Engine::run(
        &mut sc,
        &RunOptions::pm(PmConfig {
            eval: PmEval::Horner,
            payload: PmPayloadMode::Inline,
        }),
    );
    assert!(
        err.is_err(),
        "inline payload should overflow a 512-bit modulus"
    );

    // The session-key-table mode handles the same workload fine.
    let mut sc = ScenarioBuilder::new(&w)
        .seed("pm-overflow")
        .paillier_bits(512)
        .build();
    let report = Engine::run(
        &mut sc,
        &RunOptions::pm(PmConfig {
            eval: PmEval::Horner,
            payload: PmPayloadMode::SessionKeyTable,
        }),
    )
    .unwrap();
    assert_eq!(report.result.len(), w.expected_join_size);
}

#[test]
fn commutative_id_mode_moves_fewer_bytes_through_sources() {
    use secmed_core::PartyId;
    let w = WorkloadSpec {
        left_rows: 40,
        right_rows: 40,
        left_domain: 20,
        right_domain: 20,
        shared_values: 10,
        payload_attrs: 4,
        seed: "comm-bytes".to_string(),
        ..Default::default()
    }
    .generate();

    let bytes_to_sources = |mode: CommutativeMode| {
        let mut sc = ScenarioBuilder::new(&w)
            .seed("comm-bytes")
            .paillier_bits(768)
            .build();
        let r = Engine::run(
            &mut sc,
            &RunOptions::commutative(CommutativeConfig { mode }),
        )
        .unwrap();
        r.transport.bytes_received_by(&PartyId::source("r1"))
            + r.transport.bytes_received_by(&PartyId::source("r2"))
    };

    let echo = bytes_to_sources(CommutativeMode::EchoTuples);
    let ids = bytes_to_sources(CommutativeMode::IdReferences);
    assert!(
        ids < echo,
        "footnote-1 optimization should shrink source traffic: {ids} vs {echo}"
    );
}

#[test]
fn transport_bytes_are_exact_frame_lengths_in_every_protocol() {
    for (name, kind) in all_protocol_configs() {
        // `workload_for` keeps the inline-payload PM configs on tuple sets
        // that fit a 768-bit Paillier plaintext (footnote 2's restriction).
        let w = workload_for(name, "exact-bytes");
        let mut sc = ScenarioBuilder::new(&w)
            .seed("exact-bytes")
            .paillier_bits(768)
            .build();
        let report =
            Engine::run(&mut sc, &RunOptions::new(kind)).unwrap_or_else(|e| panic!("{name}: {e}"));
        // total_bytes() must be the sum of the real encoded frame lengths —
        // decode every envelope and re-encode to prove it.
        let reencoded: usize = report
            .transport
            .log()
            .iter()
            .map(|e| {
                e.frame()
                    .unwrap_or_else(|err| panic!("{name}: undecodable envelope: {err}"))
                    .encode()
                    .len()
            })
            .sum();
        assert_eq!(report.transport.total_bytes(), reencoded, "{name}");
    }
}

#[test]
fn residual_query_work_is_applied_by_client() {
    let w = small_workload("residual");
    let mut sc = ScenarioBuilder::new(&w)
        .seed("residual")
        .paillier_bits(768)
        .build();
    sc.query = "select k from r1, r2 where r1.k = r2.k".to_string();
    let report = Engine::run(
        &mut sc,
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .unwrap();
    assert_eq!(report.result.schema().attr_names(), vec!["k"]);
    assert_eq!(report.result.len(), w.expected_join_size);
}

#[test]
fn group_by_aggregation_runs_over_the_encrypted_join() {
    use relalg::{Relation, Schema, Tuple, Type, Value};
    let mut left = Relation::empty(Schema::new(&[("k", Type::Int), ("region", Type::Str)]));
    let mut right = Relation::empty(Schema::new(&[("k", Type::Int), ("amount", Type::Int)]));
    for (k, region) in [(1i64, "north"), (2, "north"), (3, "south")] {
        left.insert(Tuple::new(vec![Value::Int(k), Value::from(region)]))
            .unwrap();
    }
    for (k, amount) in [(1i64, 10), (1, 30), (2, 5), (3, 100), (9, 999)] {
        right
            .insert(Tuple::new(vec![Value::Int(k), Value::Int(amount)]))
            .unwrap();
    }
    let w = secmed_core::workload::Workload {
        left,
        right,
        expected_join_size: 4,
    };
    let mut sc = ScenarioBuilder::new(&w)
        .seed("agg")
        .paillier_bits(768)
        .build();
    sc.query =
        "select region, sum(amount) from r1, r2 where r1.k = r2.k group by region".to_string();
    let report = Engine::run(
        &mut sc,
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .unwrap();
    assert_eq!(
        report.result.schema().attr_names(),
        vec!["region", "sum_amount"]
    );
    let get = |region: &str| {
        report
            .result
            .tuples()
            .iter()
            .find(|t| t.at(0) == &Value::from(region))
            .map(|t| t.at(1).clone())
    };
    assert_eq!(get("north"), Some(Value::Int(45)));
    assert_eq!(get("south"), Some(Value::Int(100)));
    // The aggregation happened at the client; the sources only ever
    // produced encrypted tuple sets (k=9 never joined, never decrypted).
}

#[test]
fn string_join_keys_work_in_every_protocol() {
    use relalg::{Relation, Schema, Tuple, Type, Value};
    let schema = |n: &str| Schema::new(&[("name", Type::Str), (n, Type::Int)]);
    let mut left = Relation::empty(schema("a"));
    let mut right = Relation::empty(schema("b"));
    for (i, n) in ["ada", "grace", "alan", "edsger"].iter().enumerate() {
        left.insert(Tuple::new(vec![Value::from(*n), Value::Int(i as i64)]))
            .unwrap();
    }
    for (i, n) in ["grace", "edsger", "barbara"].iter().enumerate() {
        right
            .insert(Tuple::new(vec![
                Value::from(*n),
                Value::Int(100 + i as i64),
            ]))
            .unwrap();
    }
    let w = secmed_core::workload::Workload {
        left,
        right,
        expected_join_size: 2,
    };
    for (name, kind) in [
        // Equi-depth partitioning handles Str domains; equi-width cannot.
        (
            "das",
            ProtocolKind::Das(DasConfig {
                scheme: PartitionScheme::EquiDepth(2),
                ..Default::default()
            }),
        ),
        (
            "comm",
            ProtocolKind::Commutative(CommutativeConfig::default()),
        ),
        ("pm", ProtocolKind::Pm(PmConfig::default())),
    ] {
        let mut sc = ScenarioBuilder::new(&w)
            .seed("strings")
            .paillier_bits(768)
            .build();
        sc.query = "select * from r1 natural join r2".to_string();
        let report =
            Engine::run(&mut sc, &RunOptions::new(kind)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.result.len(), 2, "{name}");
    }

    // Equi-width on a string domain fails loudly, not silently.
    let mut sc = ScenarioBuilder::new(&w)
        .seed("strings")
        .paillier_bits(768)
        .build();
    assert!(Engine::run(
        &mut sc,
        &RunOptions::das(DasConfig {
            scheme: PartitionScheme::EquiWidth(2),
            ..Default::default()
        })
    )
    .is_err());
}

#[test]
fn das_rejects_composite_join_keys() {
    // Build two relations sharing two attributes; NATURAL JOIN infers both.
    use relalg::{Relation, Schema, Type, Value};
    use secmed_core::{
        AccessPolicy, CertificationAuthority, Client, DataSource, Mediator, Property,
    };
    use secmed_crypto::drbg::HmacDrbg;
    use secmed_crypto::group::{GroupSize, SafePrimeGroup};

    let group = SafePrimeGroup::preset(GroupSize::S512);
    let mut rng = HmacDrbg::from_label("composite/ca");
    let ca = CertificationAuthority::new(group.clone(), &mut rng);
    let client = Client::setup(
        &ca,
        vec![Property::new("role", "x")],
        group,
        512,
        "composite/client",
    );

    let r1 = Relation::build(
        Schema::new(&[("a", Type::Int), ("b", Type::Int), ("x", Type::Str)]),
        vec![vec![Value::Int(1), Value::Int(2), Value::from("l")]],
    )
    .unwrap();
    let r2 = Relation::build(
        Schema::new(&[("a", Type::Int), ("b", Type::Int), ("y", Type::Str)]),
        vec![vec![Value::Int(1), Value::Int(2), Value::from("r")]],
    )
    .unwrap();
    let left = DataSource::new("r1", r1, AccessPolicy::allow_all(), ca.public_key().clone());
    let right = DataSource::new("r2", r2, AccessPolicy::allow_all(), ca.public_key().clone());
    let mediator = Mediator::new(&[&left, &right]);
    let mut sc = Scenario {
        client,
        mediator,
        left,
        right,
        query: "select * from r1 natural join r2".to_string(),
    };

    // DAS refuses composite keys...
    assert!(Engine::run(&mut sc, &RunOptions::das(DasConfig::default())).is_err());
    // ...while the commutative protocol handles them (future-work feature).
    let report = Engine::run(
        &mut sc,
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .unwrap();
    assert_eq!(report.result.len(), 1);
    // And PM as well.
    let report = Engine::run(&mut sc, &RunOptions::pm(PmConfig::default())).unwrap();
    assert_eq!(report.result.len(), 1);
}
