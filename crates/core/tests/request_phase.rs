//! Tests for the request phase (paper Listing 1), in particular the
//! mediator's credential-subset selection of step 2.

use relalg::{Relation, Schema, Type, Value};
use secmed_core::protocol::request_phase;
use secmed_core::{
    AccessPolicy, AccessRule, CertificationAuthority, Client, DataSource, Mediator, Property,
    Scenario, Transport,
};
use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::group::{GroupSize, SafePrimeGroup};

fn relation(name_attr: &str) -> Relation {
    Relation::build(
        Schema::new(&[("k", Type::Int), (name_attr, Type::Str)]),
        vec![vec![Value::Int(1), Value::from("x")]],
    )
    .unwrap()
}

fn scenario_with_two_credentials() -> Scenario {
    let group = SafePrimeGroup::preset(GroupSize::S256);
    let mut rng = HmacDrbg::from_label("reqphase/ca");
    let ca = CertificationAuthority::new(group.clone(), &mut rng);
    let mut client = Client::setup(
        &ca,
        vec![Property::new("role", "auditor")],
        group.clone(),
        256,
        "reqphase/client",
    );
    // A second credential asserting an unrelated property.
    let dept_cred = ca.issue(
        vec![Property::new("dept", "claims")],
        client.hybrid().public(),
        None,
        &mut rng,
    );
    client.add_credential(dept_cred);

    let left_policy = AccessPolicy::new(vec![AccessRule::full_access(vec![Property::new(
        "role", "auditor",
    )])]);
    let right_policy = AccessPolicy::new(vec![AccessRule::full_access(vec![Property::new(
        "dept", "claims",
    )])]);
    let left = DataSource::new("r1", relation("a"), left_policy, ca.public_key().clone());
    let right = DataSource::new("r2", relation("b"), right_policy, ca.public_key().clone());
    let mediator = Mediator::new(&[&left, &right]);
    Scenario {
        client,
        mediator,
        left,
        right,
        query: "select * from r1 natural join r2".to_string(),
    }
}

#[test]
fn mediator_forwards_only_relevant_credentials() {
    let mut sc = scenario_with_two_credentials();
    let mut transport = Transport::new();
    let prepared = request_phase(&mut sc, &mut transport).unwrap();
    // Each source received exactly the credential its policy asks for.
    assert_eq!(prepared.left_creds.len(), 1);
    assert!(prepared.left_creds[0].asserts(&Property::new("role", "auditor")));
    assert_eq!(prepared.right_creds.len(), 1);
    assert!(prepared.right_creds[0].asserts(&Property::new("dept", "claims")));
}

#[test]
fn sources_with_open_policies_still_get_a_key_carrier() {
    let mut sc = scenario_with_two_credentials();
    // Replace policies with allow-all: no advertised properties, but a
    // credential must still travel because it carries the client's keys.
    let group = SafePrimeGroup::preset(GroupSize::S256);
    let mut rng = HmacDrbg::from_label("reqphase/ca2");
    let ca = CertificationAuthority::new(group.clone(), &mut rng);
    let client = Client::setup(&ca, vec![], group, 256, "reqphase/client2");
    sc.client = client;
    sc.left = DataSource::new(
        "r1",
        relation("a"),
        AccessPolicy::allow_all(),
        ca.public_key().clone(),
    );
    sc.right = DataSource::new(
        "r2",
        relation("b"),
        AccessPolicy::allow_all(),
        ca.public_key().clone(),
    );
    let mut transport = Transport::new();
    let prepared = request_phase(&mut sc, &mut transport).unwrap();
    assert_eq!(prepared.left_creds.len(), 1);
    assert_eq!(prepared.left_client_key(), &sc.client.hybrid().public());
}

#[test]
fn request_phase_records_four_messages() {
    let mut sc = scenario_with_two_credentials();
    let mut transport = Transport::new();
    request_phase(&mut sc, &mut transport).unwrap();
    // L1.1 client→mediator, two L1.3 mediator→source messages.
    assert_eq!(transport.message_count(), 3);
}

#[test]
fn credential_bytes_on_the_wire_are_exact() {
    let mut sc = scenario_with_two_credentials();
    let mut transport = Transport::new();
    request_phase(&mut sc, &mut transport).unwrap();
    // Every recorded byte is a real encoded frame: decoding each recorded
    // payload and re-encoding the frame reproduces the byte count exactly.
    // (The pre-wire implementation estimated credential sizes with a
    // `+ 64` fudge; this asserts no estimate survives anywhere.)
    let reencoded: usize = transport
        .log()
        .iter()
        .map(|e| e.frame().expect("recorded payload decodes").encode().len())
        .sum();
    assert_eq!(transport.total_bytes(), reencoded);
    assert!(transport.total_bytes() > 0);
}

#[test]
fn query_against_unknown_sources_is_rejected() {
    let mut sc = scenario_with_two_credentials();
    sc.query = "select * from ghost natural join r2".to_string();
    let mut transport = Transport::new();
    assert!(request_phase(&mut sc, &mut transport).is_err());
}
