//! ChaCha20 stream cipher (RFC 8439), used as the symmetric half of the
//! paper's hybrid `encrypt(...)` and for per-tuple-set session keys in the
//! PM protocol's footnote-2 optimization.

use crate::metrics::{count, Op};

/// ChaCha20 keystream generator / cipher for one (key, nonce) pair.
///
/// Encryption and decryption are the same XOR operation:
///
/// ```
/// use secmed_crypto::chacha20::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let ct = ChaCha20::new(&key, &nonce).apply(b"attack at dawn");
/// let pt = ChaCha20::new(&key, &nonce).apply(&ct);
/// assert_eq!(pt, b"attack at dawn");
/// ```
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574]; // "expand 32-byte k"

impl ChaCha20 {
    /// New cipher with block counter starting at 1 (RFC 8439 convention for
    /// AEAD payloads; counter 0 is reserved for one-time keys there).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        Self::with_counter(key, nonce, 1)
    }

    /// New cipher with an explicit initial block counter.
    pub fn with_counter(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut n = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            n[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter,
        }
    }

    /// XORs the keystream into `data`, returning the result.
    pub fn apply(mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        for chunk in out.chunks_mut(64) {
            let ks = self.block();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        out
    }

    /// Produces the next 64-byte keystream block and advances the counter.
    pub fn block(&mut self) -> [u8; 64] {
        count(Op::ChaCha20Block);
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter;
        state[13..16].copy_from_slice(&self.nonce);
        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        out
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc8439_quarter_round_vector() {
        // RFC 8439 section 2.1.1.
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 section 2.3.2: key 00..1f, nonce 00:00:00:09:00:00:00:4a:00:00:00:00, counter 1.
        let key: [u8; 32] = std::array::from_fn(|i| i as u8);
        let nonce = [0u8, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = ChaCha20::with_counter(&key, &nonce, 1).block();
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 section 2.4.2.
        let key: [u8; 32] = std::array::from_fn(|i| i as u8);
        let nonce = [0u8, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = ChaCha20::new(&key, &nonce).apply(plaintext);
        assert_eq!(
            to_hex(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = ChaCha20::new(&key, &nonce).apply(&msg);
            let pt = ChaCha20::new(&key, &nonce).apply(&ct);
            assert_eq!(pt, msg, "len={len}");
            if len > 0 {
                assert_ne!(ct, msg, "ciphertext differs from plaintext, len={len}");
            }
        }
    }

    #[test]
    fn different_nonces_give_different_keystreams() {
        let key = [9u8; 32];
        let b1 = ChaCha20::new(&key, &[0u8; 12]).block();
        let b2 = ChaCha20::new(&key, &[1u8; 12]).block();
        assert_ne!(b1, b2);
    }

    #[test]
    fn counter_advances() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut c = ChaCha20::new(&key, &nonce);
        assert_ne!(c.block(), c.block());
    }
}
