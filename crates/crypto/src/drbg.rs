//! HMAC-DRBG (NIST SP 800-90A) over HMAC-SHA-256.
//!
//! Every party in a protocol run owns one DRBG.  Seeding from a string
//! label makes entire protocol executions reproducible, which the tests and
//! the leakage-audit harness rely on; for non-test use the DRBG can be
//! seeded from OS entropy via [`HmacDrbg::from_os_entropy`].

use mpint::rng::Rng;

use crate::hmac::hmac_sha256;

/// A deterministic random bit generator implementing [`mpint::rng::Rng`].
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
    /// Requests served since instantiation (diagnostic only; the generator
    /// does not enforce a reseed interval).
    requests: u64,
}

impl HmacDrbg {
    /// Instantiates from seed material (entropy || nonce || personalization).
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0u8; 32],
            value: [1u8; 32],
            requests: 0,
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Instantiates from a human-readable label — for tests and
    /// reproducible protocol runs.
    pub fn from_label(label: &str) -> Self {
        Self::new(label.as_bytes())
    }

    /// Instantiates from operating-system entropy (`/dev/urandom`).
    pub fn from_os_entropy() -> Self {
        let mut seed = [0u8; 48];
        mpint::rng::OsRng.fill_bytes(&mut seed);
        Self::new(&seed)
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
    }

    /// Number of `fill` requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut msg = Vec::with_capacity(32 + 1 + provided.map_or(0, <[u8]>::len));
        msg.extend_from_slice(&self.value);
        msg.push(0x00);
        if let Some(p) = provided {
            msg.extend_from_slice(p);
        }
        self.key = hmac_sha256(&self.key, &msg);
        self.value = hmac_sha256(&self.key, &self.value);
        if let Some(p) = provided {
            let mut msg = Vec::with_capacity(32 + 1 + p.len());
            msg.extend_from_slice(&self.value);
            msg.push(0x01);
            msg.extend_from_slice(p);
            self.key = hmac_sha256(&self.key, &msg);
            self.value = hmac_sha256(&self.key, &self.value);
        }
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        self.requests += 1;
        let mut written = 0;
        while written < out.len() {
            self.value = hmac_sha256(&self.key, &self.value);
            let take = (out.len() - written).min(32);
            out[written..written + take].copy_from_slice(&self.value[..take]);
            written += take;
        }
        self.update(None);
    }
}

impl Rng for HmacDrbg {
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        self.fill(dst);
    }
}

/// A family of independent DRBG streams derived from one base seed.
///
/// Parallel protocol stages must never share a mutable RNG: the draw order
/// would depend on thread scheduling and break run-report determinism.
/// Instead a stage derives a `DrbgFamily` from the owning party's DRBG —
/// consuming exactly one 32-byte draw, regardless of how many streams are
/// later opened — and gives item `i` its own [`DrbgFamily::stream`]`(i)`.
/// Stream `i` is a fresh [`HmacDrbg`] seeded with `base || i`, so its
/// output depends only on the base seed and the item index, never on which
/// worker thread processes the item or in what order.
pub struct DrbgFamily {
    base: [u8; 32],
}

impl DrbgFamily {
    /// Derives a family from the parent generator (one 32-byte draw).
    pub fn derive(parent: &mut dyn Rng) -> Self {
        let mut base = [0u8; 32];
        parent.fill_bytes(&mut base);
        DrbgFamily { base }
    }

    /// The independent stream for item `index`.
    pub fn stream(&self, index: u64) -> HmacDrbg {
        let mut seed = [0u8; 40];
        seed[..32].copy_from_slice(&self.base);
        seed[32..].copy_from_slice(&index.to_be_bytes());
        HmacDrbg::new(&seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::from_label("seed");
        let mut b = HmacDrbg::from_label("seed");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::from_label("seed-a");
        let mut b = HmacDrbg::from_label("seed-b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::from_label("seed");
        let mut b = HmacDrbg::from_label("seed");
        b.reseed(b"extra entropy");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_handles_odd_lengths() {
        let mut d = HmacDrbg::from_label("x");
        let mut buf = [0u8; 77];
        d.fill(&mut buf);
        // Not all zeros.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut d = HmacDrbg::from_label("x");
        let a = d.next_u64();
        let b = d.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn request_counter_increments() {
        let mut d = HmacDrbg::from_label("x");
        assert_eq!(d.requests(), 0);
        let _ = d.next_u32();
        let _ = d.next_u64();
        assert_eq!(d.requests(), 2);
    }

    #[test]
    fn usable_with_mpint_sampling() {
        use mpint::random::random_below;
        let mut d = HmacDrbg::from_label("mpint");
        let bound = mpint::Natural::from(1_000_000u64);
        let v = random_below(&mut d, &bound);
        assert!(v < bound);
    }

    #[test]
    fn family_streams_are_deterministic_and_independent() {
        let fam = |label: &str| {
            let mut parent = HmacDrbg::from_label(label);
            DrbgFamily::derive(&mut parent)
        };
        // Same parent seed → same streams, index by index.
        assert_eq!(
            fam("fam").stream(0).next_u64(),
            fam("fam").stream(0).next_u64()
        );
        assert_eq!(
            fam("fam").stream(7).next_u64(),
            fam("fam").stream(7).next_u64()
        );
        // Distinct indices and distinct parents diverge.
        let f = fam("fam");
        assert_ne!(f.stream(0).next_u64(), f.stream(1).next_u64());
        assert_ne!(
            fam("fam").stream(0).next_u64(),
            fam("other").stream(0).next_u64()
        );
    }

    #[test]
    fn family_derivation_consumes_one_parent_draw() {
        let mut a = HmacDrbg::from_label("parent");
        let mut b = HmacDrbg::from_label("parent");
        let _fam = DrbgFamily::derive(&mut a);
        let mut skip = [0u8; 32];
        b.fill(&mut skip);
        // Parent state after derivation equals one 32-byte draw — opening
        // any number of streams costs nothing further.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn os_entropy_instances_differ() {
        let mut a = HmacDrbg::from_os_entropy();
        let mut b = HmacDrbg::from_os_entropy();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
