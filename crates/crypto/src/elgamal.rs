//! ElGamal key encapsulation over a safe-prime group.
//!
//! The hybrid `encrypt(...)` of the paper needs an asymmetric way to move a
//! fresh symmetric session key to the client.  We use "hashed ElGamal" as a
//! KEM: the encapsulator picks `r`, sends `g^r`, and both sides derive the
//! session key as `KDF(pk^r) = KDF(g^(x*r))`.

use mpint::rng::Rng;
use mpint::Natural;

use crate::group::SafePrimeGroup;
use crate::hmac::kdf;
use crate::metrics::{count, Op};

/// An ElGamal public key `pk = g^x` in a shared group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElGamalPublicKey {
    pub(crate) group: SafePrimeGroup,
    pub(crate) y: Natural,
}

/// The matching secret exponent.
#[derive(Clone)]
pub struct ElGamalKeyPair {
    public: ElGamalPublicKey,
    x: Natural,
}

/// The public part of an encapsulation: `g^r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encapsulation {
    pub(crate) c: Natural,
}

impl ElGamalKeyPair {
    /// Generates a key pair in `group`.
    pub fn generate(group: SafePrimeGroup, rng: &mut dyn Rng) -> Self {
        let x = group.random_exponent(rng);
        let y = group.pow_g(&x);
        ElGamalKeyPair {
            public: ElGamalPublicKey { group, y },
            x,
        }
    }

    /// The public half.
    pub fn public(&self) -> &ElGamalPublicKey {
        &self.public
    }

    /// Recovers the shared secret bytes from an encapsulation.
    pub fn decapsulate(&self, encap: &Encapsulation, key_len: usize) -> Vec<u8> {
        count(Op::KemDecapsulate);
        let shared = self.public.group.pow(&encap.c, &self.x);
        derive_key(&shared, &encap.c, key_len)
    }
}

impl ElGamalPublicKey {
    /// Rebuilds a public key from its group and element, validating
    /// subgroup membership.
    pub fn from_parts(group: SafePrimeGroup, y: Natural) -> Result<Self, crate::CryptoError> {
        if !group.is_subgroup_element(&y) {
            return Err(crate::CryptoError::Malformed("public key outside QR_p"));
        }
        Ok(ElGamalPublicKey { group, y })
    }

    /// The group this key lives in.
    pub fn group(&self) -> &SafePrimeGroup {
        &self.group
    }

    /// The public element `g^x`.
    pub fn element(&self) -> &Natural {
        &self.y
    }

    /// Encapsulates a fresh shared secret; returns the public encapsulation
    /// and `key_len` derived key bytes.
    pub fn encapsulate(&self, key_len: usize, rng: &mut dyn Rng) -> (Encapsulation, Vec<u8>) {
        count(Op::KemEncapsulate);
        let r = self.group.random_exponent(rng);
        let c = self.group.pow_g(&r);
        let shared = self.group.pow(&self.y, &r);
        let key = derive_key(&shared, &c, key_len);
        (Encapsulation { c }, key)
    }
}

impl Encapsulation {
    /// Serialized size in bytes (one group element).
    pub fn byte_len(&self) -> usize {
        self.c.to_bytes_be().len()
    }

    /// The raw group element (for transport encoding).
    pub fn element(&self) -> &Natural {
        &self.c
    }

    /// Rebuilds from a transported group element.
    pub fn from_element(c: Natural) -> Self {
        Encapsulation { c }
    }
}

fn derive_key(shared: &Natural, c: &Natural, key_len: usize) -> Vec<u8> {
    kdf(
        b"secmed-elgamal-kem",
        &shared.to_bytes_be(),
        &c.to_bytes_be(),
        key_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use crate::group::GroupSize;

    fn setup() -> (ElGamalKeyPair, HmacDrbg) {
        let mut rng = HmacDrbg::from_label("elgamal-tests");
        let group = SafePrimeGroup::preset(GroupSize::S256);
        let kp = ElGamalKeyPair::generate(group, &mut rng);
        (kp, rng)
    }

    #[test]
    fn encapsulate_decapsulate_agree() {
        let (kp, mut rng) = setup();
        let (encap, key) = kp.public().encapsulate(32, &mut rng);
        let recovered = kp.decapsulate(&encap, 32);
        assert_eq!(key, recovered);
        assert_eq!(key.len(), 32);
    }

    #[test]
    fn fresh_encapsulations_differ() {
        let (kp, mut rng) = setup();
        let (e1, k1) = kp.public().encapsulate(32, &mut rng);
        let (e2, k2) = kp.public().encapsulate(32, &mut rng);
        assert_ne!(e1, e2);
        assert_ne!(k1, k2);
    }

    #[test]
    fn wrong_key_derives_different_secret() {
        let (kp, mut rng) = setup();
        let other = ElGamalKeyPair::generate(kp.public().group().clone(), &mut rng);
        let (encap, key) = kp.public().encapsulate(32, &mut rng);
        let wrong = other.decapsulate(&encap, 32);
        assert_ne!(key, wrong);
    }

    #[test]
    fn encapsulation_is_subgroup_element() {
        let (kp, mut rng) = setup();
        let (encap, _) = kp.public().encapsulate(32, &mut rng);
        assert!(kp.public().group().is_subgroup_element(encap.element()));
    }

    #[test]
    fn transport_roundtrip() {
        let (kp, mut rng) = setup();
        let (encap, key) = kp.public().encapsulate(16, &mut rng);
        let rebuilt = Encapsulation::from_element(encap.element().clone());
        assert_eq!(kp.decapsulate(&rebuilt, 16), key);
    }
}
