//! Exponential (additively homomorphic) ElGamal.
//!
//! Section 5 of the paper notes that besides Paillier, "the elliptic curve
//! variant of ElGamal" satisfies the homomorphic demands of private
//! matching.  This module implements the multiplicative-group analogue
//! over our safe-prime groups: messages are encrypted *in the exponent*,
//!
//! ```text
//! E(m) = (g^r, g^m * y^r)
//! ```
//!
//! so ciphertext multiplication adds plaintexts and exponentiation scales
//! them — exactly the two properties the PM protocol needs.  The price is
//! decryption: recovering `m` from `g^m` is a discrete logarithm, feasible
//! only for *small* message spaces (solved here with baby-step/giant-step).
//! That restriction is why the shipped PM protocol uses Paillier — whole
//! tuple payloads do not fit a BSGS-sized message space — but the scheme
//! is complete and benchmarked as the paper's alternative instantiation.

use std::collections::HashMap;

use mpint::rng::Rng;
use mpint::Natural;

use crate::group::SafePrimeGroup;
use crate::metrics::{count, Op};
use crate::CryptoError;

/// An exponential-ElGamal public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpElGamalPublicKey {
    group: SafePrimeGroup,
    y: Natural,
}

/// The matching key pair.
#[derive(Clone)]
pub struct ExpElGamalKeyPair {
    public: ExpElGamalPublicKey,
    x: Natural,
}

/// A ciphertext `(c1, c2) = (g^r, g^m * y^r)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpElGamalCiphertext {
    c1: Natural,
    c2: Natural,
}

impl ExpElGamalKeyPair {
    /// Generates a key pair in `group`.
    pub fn generate(group: SafePrimeGroup, rng: &mut dyn Rng) -> Self {
        let x = group.random_exponent(rng);
        let y = group.pow_g(&x);
        ExpElGamalKeyPair {
            public: ExpElGamalPublicKey { group, y },
            x,
        }
    }

    /// The public key.
    pub fn public(&self) -> &ExpElGamalPublicKey {
        &self.public
    }

    /// Recovers `g^m` (always possible); the caller may already know how
    /// to interpret it — e.g. "is it `g^0 = 1`?" costs no discrete log.
    pub fn decrypt_element(&self, ct: &ExpElGamalCiphertext) -> Natural {
        count(Op::PaillierDecrypt); // homomorphic-decryption op class
        let g = &self.public.group;
        // c1 lies in the prime-order-q subgroup, so (c1^x)^{-1} = c1^{q-x}:
        // the inverse is one more exponentiation, with no fallible modinv.
        // The `rem` keeps the subtraction total even for out-of-range keys.
        let s_inv = g.pow(&ct.c1, &(g.q() - &self.x.rem(g.q())));
        ct.c2.modmul(&s_inv, g.p())
    }

    /// Full decryption via baby-step/giant-step over `[0, bound)`.
    ///
    /// Costs `O(sqrt(bound))` group operations and memory; returns
    /// [`CryptoError::Malformed`] if the plaintext is outside the bound.
    pub fn decrypt(&self, ct: &ExpElGamalCiphertext, bound: u64) -> Result<u64, CryptoError> {
        let gm = self.decrypt_element(ct);
        discrete_log(&self.public.group, &gm, bound)
            .ok_or(CryptoError::Malformed("plaintext outside the BSGS bound"))
    }

    /// Cheap membership test: does this ciphertext encrypt zero?
    ///
    /// Useful for private matching where only "P(a) = 0?" matters.
    pub fn decrypts_to_zero(&self, ct: &ExpElGamalCiphertext) -> bool {
        self.decrypt_element(ct).is_one()
    }
}

impl ExpElGamalPublicKey {
    /// The group.
    pub fn group(&self) -> &SafePrimeGroup {
        &self.group
    }

    /// Encrypts `m` (in the exponent).  The message space is `Z_q`, but
    /// only small values decrypt feasibly.
    pub fn encrypt(&self, m: &Natural, rng: &mut dyn Rng) -> ExpElGamalCiphertext {
        count(Op::PaillierEncrypt); // homomorphic-encryption op class
        let g = &self.group;
        let r = g.random_exponent(rng);
        let c1 = g.pow_g(&r);
        let gm = g.pow_g(&m.rem(g.q()));
        let c2 = gm.modmul(&g.pow(&self.y, &r), g.p());
        ExpElGamalCiphertext { c1, c2 }
    }

    /// Homomorphic addition: componentwise multiplication.
    pub fn add(&self, a: &ExpElGamalCiphertext, b: &ExpElGamalCiphertext) -> ExpElGamalCiphertext {
        count(Op::PaillierAdd);
        let p = self.group.p();
        ExpElGamalCiphertext {
            c1: a.c1.modmul(&b.c1, p),
            c2: a.c2.modmul(&b.c2, p),
        }
    }

    /// Homomorphic scalar multiplication: componentwise exponentiation.
    pub fn scale(&self, a: &ExpElGamalCiphertext, gamma: &Natural) -> ExpElGamalCiphertext {
        count(Op::PaillierScale);
        ExpElGamalCiphertext {
            c1: self.group.pow(&a.c1, gamma),
            c2: self.group.pow(&a.c2, gamma),
        }
    }
}

impl ExpElGamalCiphertext {
    /// The two transported group elements.
    pub fn elements(&self) -> (&Natural, &Natural) {
        (&self.c1, &self.c2)
    }

    /// Serialized size in bytes (two group elements).
    pub fn byte_len(&self) -> usize {
        self.c1.to_bytes_be().len() + self.c2.to_bytes_be().len()
    }
}

/// Baby-step/giant-step: finds `m < bound` with `g^m = target`, if any.
pub fn discrete_log(group: &SafePrimeGroup, target: &Natural, bound: u64) -> Option<u64> {
    count(Op::DiscreteLog);
    if target.is_one() {
        return Some(0);
    }
    let m = (bound as f64).sqrt().ceil() as u64 + 1;
    // Baby steps: g^j for j in 0..m.
    let mut table: HashMap<Vec<u8>, u64> = HashMap::with_capacity(m as usize);
    let mut cur = Natural::one();
    for j in 0..m {
        table.insert(cur.to_bytes_be(), j);
        cur = cur.modmul(group.g(), group.p());
    }
    // Giant steps: target * (g^-m)^i, with g^-m computed as g^(q-m)
    // (g generates the order-q subgroup, so no fallible modinv is needed).
    let g_m_inv = group.pow_g(&(group.q() - &Natural::from(m).rem(group.q())));
    let mut gamma = target.clone();
    for i in 0..=m {
        if let Some(&j) = table.get(&gamma.to_bytes_be()) {
            let candidate = i * m + j;
            if candidate < bound {
                return Some(candidate);
            }
            return None;
        }
        gamma = gamma.modmul(&g_m_inv, group.p());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use crate::group::GroupSize;

    fn setup() -> (ExpElGamalKeyPair, HmacDrbg) {
        let mut rng = HmacDrbg::from_label("exp-elgamal-tests");
        let kp = ExpElGamalKeyPair::generate(SafePrimeGroup::preset(GroupSize::S256), &mut rng);
        (kp, rng)
    }

    #[test]
    fn roundtrip_small_messages() {
        let (kp, mut rng) = setup();
        for m in [0u64, 1, 42, 999, 65535] {
            let ct = kp.public().encrypt(&Natural::from(m), &mut rng);
            assert_eq!(kp.decrypt(&ct, 100_000).unwrap(), m, "m={m}");
        }
    }

    #[test]
    fn additive_homomorphism() {
        let (kp, mut rng) = setup();
        let a = kp.public().encrypt(&Natural::from(1200u64), &mut rng);
        let b = kp.public().encrypt(&Natural::from(34u64), &mut rng);
        let sum = kp.public().add(&a, &b);
        assert_eq!(kp.decrypt(&sum, 10_000).unwrap(), 1234);
    }

    #[test]
    fn scalar_homomorphism() {
        let (kp, mut rng) = setup();
        let a = kp.public().encrypt(&Natural::from(11u64), &mut rng);
        let scaled = kp.public().scale(&a, &Natural::from(9u64));
        assert_eq!(kp.decrypt(&scaled, 1_000).unwrap(), 99);
    }

    #[test]
    fn zero_test_is_cheap_and_correct() {
        let (kp, mut rng) = setup();
        let zero = kp.public().encrypt(&Natural::zero(), &mut rng);
        let one = kp.public().encrypt(&Natural::one(), &mut rng);
        assert!(kp.decrypts_to_zero(&zero));
        assert!(!kp.decrypts_to_zero(&one));
        // Sum of m and -m (as q - m) is zero in the exponent.
        let q = kp.public().group().q().clone();
        let m = kp.public().encrypt(&Natural::from(77u64), &mut rng);
        let neg_m = kp.public().encrypt(&(q - Natural::from(77u64)), &mut rng);
        assert!(kp.decrypts_to_zero(&kp.public().add(&m, &neg_m)));
    }

    #[test]
    fn out_of_bound_plaintext_is_detected() {
        let (kp, mut rng) = setup();
        let ct = kp.public().encrypt(&Natural::from(5000u64), &mut rng);
        assert!(kp.decrypt(&ct, 100).is_err());
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (kp, mut rng) = setup();
        let a = kp.public().encrypt(&Natural::from(5u64), &mut rng);
        let b = kp.public().encrypt(&Natural::from(5u64), &mut rng);
        assert_ne!(a, b);
        assert_eq!(kp.decrypt(&a, 100).unwrap(), kp.decrypt(&b, 100).unwrap());
    }

    #[test]
    fn discrete_log_edge_cases() {
        let g = SafePrimeGroup::preset(GroupSize::S256);
        assert_eq!(discrete_log(&g, &Natural::one(), 10), Some(0));
        assert_eq!(
            discrete_log(&g, &g.pow_g(&Natural::from(9u64)), 10),
            Some(9)
        );
        assert_eq!(discrete_log(&g, &g.pow_g(&Natural::from(10u64)), 10), None);
    }

    #[test]
    fn masked_polynomial_zero_test_matches_pm_semantics() {
        // The PM core property, instantiated with exponential ElGamal: for
        // P with root a, E(r * P(a)) decrypts to zero; elsewhere it does
        // not (whp).  This is the "is it in the intersection?" bit without
        // any payload — the variant usable when only membership matters.
        use crate::polynomial::ZnPoly;
        let (kp, mut rng) = setup();
        let q = kp.public().group().q().clone();
        let poly = ZnPoly::from_roots(&[Natural::from(3u64), Natural::from(7u64)], &q);
        for (x, expect_zero) in [(3u64, true), (7, true), (8, false)] {
            let p_at_x = poly.eval(&Natural::from(x));
            let ct = kp.public().encrypt(&p_at_x, &mut rng);
            let r = kp.public().group().random_exponent(&mut rng);
            let masked = kp.public().scale(&ct, &r);
            assert_eq!(kp.decrypts_to_zero(&masked), expect_zero, "x={x}");
        }
    }
}
