//! HMAC-SHA-256 (RFC 2104) and an HKDF-style key-derivation function
//! (RFC 5869), used for MACs and for deriving session keys from KEM shared
//! secrets.

use crate::metrics::{count, Op};
use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    count(Op::Hmac);
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let digest = crate::sha256::sha256(key);
        key_block[..32].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time comparison of two MACs.
pub fn mac_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derives `len` bytes (`len <= 255 * 32`) from a PRK.
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = t.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        t = hmac_sha256(prk, &msg).to_vec();
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&t[..take]);
        counter += 1;
    }
    out
}

/// One-call KDF: extract-then-expand.
pub fn kdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        // Keys longer than the block size go through SHA-256; this matches
        // RFC 4231 test case 6 (131-byte key).
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn mac_eq_detects_differences() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(mac_eq(&a, &b));
        b[31] ^= 1;
        assert!(!mac_eq(&a, &b));
    }

    #[test]
    fn hkdf_lengths_and_determinism() {
        let out1 = kdf(b"salt", b"secret", b"ctx", 44);
        let out2 = kdf(b"salt", b"secret", b"ctx", 44);
        assert_eq!(out1, out2);
        assert_eq!(out1.len(), 44);
        let out3 = kdf(b"salt", b"secret", b"other", 44);
        assert_ne!(out1, out3);
    }

    #[test]
    fn hkdf_expand_prefix_property() {
        // A shorter expansion is a prefix of a longer one (same PRK/info).
        let prk = hkdf_extract(b"s", b"ikm");
        let short = hkdf_expand(&prk, b"i", 16);
        let long = hkdf_expand(&prk, b"i", 64);
        assert_eq!(&long[..16], &short[..]);
    }
}
