//! The paper's hybrid `encrypt(...)` / `decrypt(...)`.
//!
//! Section 2: *"the information is encrypted with a newly generated
//! symmetric session key and the session key is encrypted with the public
//! keys of the client."*  Concretely: an ElGamal KEM produces a fresh
//! 32-byte ChaCha20 key plus a 32-byte MAC key; the payload is encrypted
//! with ChaCha20 and authenticated with HMAC-SHA-256 (encrypt-then-MAC).
//!
//! The module also exposes the symmetric half on its own
//! ([`SessionKey`]) for the PM protocol's footnote-2 optimization, where
//! tuple sets are encrypted under per-set session keys and only the session
//! keys ride inside the homomorphic polynomial payload.

use mpint::rng::Rng;
use mpint::Natural;

use crate::chacha20::ChaCha20;
use crate::elgamal::{ElGamalKeyPair, ElGamalPublicKey, Encapsulation};
use crate::group::SafePrimeGroup;
use crate::hmac::{hmac_sha256, mac_eq};
use crate::metrics::{count, Op};
use crate::CryptoError;

/// A client hybrid key pair (the key pair referenced by credentials).
#[derive(Clone)]
pub struct HybridKeyPair {
    kem: ElGamalKeyPair,
}

/// The public half, distributed inside credentials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridPublicKey {
    kem: ElGamalPublicKey,
}

/// A hybrid ciphertext: KEM encapsulation + nonce + body + MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridCiphertext {
    encap: Encapsulation,
    nonce: [u8; 12],
    body: Vec<u8>,
    mac: [u8; 32],
}

/// A bare 32-byte symmetric session key (used stand-alone by the PM
/// protocol's session-key-table mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKey(pub [u8; 32]);

impl HybridKeyPair {
    /// Generates a fresh key pair in `group`.
    pub fn generate(group: SafePrimeGroup, rng: &mut dyn Rng) -> Self {
        HybridKeyPair {
            kem: ElGamalKeyPair::generate(group, rng),
        }
    }

    /// The public key.
    pub fn public(&self) -> HybridPublicKey {
        HybridPublicKey {
            kem: self.kem.public().clone(),
        }
    }

    /// The paper's `decrypt(...)`: recovers the plaintext, verifying the MAC.
    pub fn decrypt(&self, ct: &HybridCiphertext) -> Result<Vec<u8>, CryptoError> {
        count(Op::HybridDecrypt);
        let keys = self.kem.decapsulate(&ct.encap, 64);
        let (enc_key, mac_key) = split_keys(&keys);
        let expected = body_mac(&mac_key, &ct.nonce, &ct.body);
        if !mac_eq(&expected, &ct.mac) {
            return Err(CryptoError::MacMismatch);
        }
        Ok(ChaCha20::new(&enc_key, &ct.nonce).apply(&ct.body))
    }
}

impl HybridPublicKey {
    /// Rebuilds a public key from its group and element (wire decoding),
    /// validating subgroup membership.
    pub fn from_parts(group: SafePrimeGroup, element: Natural) -> Result<Self, CryptoError> {
        Ok(HybridPublicKey {
            kem: ElGamalPublicKey::from_parts(group, element)?,
        })
    }

    /// The group the KEM operates in.
    pub fn group(&self) -> &SafePrimeGroup {
        self.kem.group()
    }

    /// The public KEM element (used for key fingerprints in credentials).
    pub fn element(&self) -> &Natural {
        self.kem.element()
    }

    /// The paper's `encrypt(...)`: fresh session key via KEM, ChaCha20
    /// payload encryption, HMAC over nonce and body.
    pub fn encrypt(&self, plaintext: &[u8], rng: &mut dyn Rng) -> HybridCiphertext {
        count(Op::HybridEncrypt);
        let (encap, keys) = self.kem.encapsulate(64, rng);
        let (enc_key, mac_key) = split_keys(&keys);
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let body = ChaCha20::new(&enc_key, &nonce).apply(plaintext);
        let mac = body_mac(&mac_key, &nonce, &body);
        HybridCiphertext {
            encap,
            nonce,
            body,
            mac,
        }
    }
}

impl HybridCiphertext {
    /// Total transported size in bytes (used by the transport recorder).
    pub fn byte_len(&self) -> usize {
        self.encap.byte_len() + 12 + self.body.len() + 32
    }

    /// Length of the encrypted body alone.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Wire encoding: `u32 |encap| ‖ encap ‖ nonce ‖ u32 |body| ‖ body ‖ mac`.
    pub fn encode(&self) -> Vec<u8> {
        let encap = self.encap.element().to_bytes_be();
        let mut out = Vec::with_capacity(4 + encap.len() + 12 + 4 + self.body.len() + 32);
        out.extend_from_slice(&(encap.len() as u32).to_be_bytes());
        out.extend_from_slice(&encap);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.body.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.body);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Decodes a wire-format ciphertext.
    pub fn decode(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let encap_bytes = r.take_len_prefixed()?;
        let nonce: [u8; 12] = r
            .take(12)?
            .try_into()
            .map_err(|_| CryptoError::Malformed("nonce length"))?;
        let body = r.take_len_prefixed()?.to_vec();
        let mac: [u8; 32] = r
            .take(32)?
            .try_into()
            .map_err(|_| CryptoError::Malformed("mac length"))?;
        r.finish()?;
        Ok(HybridCiphertext {
            encap: Encapsulation::from_element(mpint::Natural::from_bytes_be(encap_bytes)),
            nonce,
            body,
            mac,
        })
    }
}

/// Minimal bounds-checked byte reader for the wire codecs.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CryptoError> {
        if self.bytes.len() - self.pos < n {
            return Err(CryptoError::Malformed("truncated wire data"));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_len_prefixed(&mut self) -> Result<&'a [u8], CryptoError> {
        let b = self.take(4)?;
        let len = u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize;
        self.take(len)
    }

    fn finish(&self) -> Result<(), CryptoError> {
        if self.pos != self.bytes.len() {
            return Err(CryptoError::Malformed("trailing wire bytes"));
        }
        Ok(())
    }
}

impl SessionKey {
    /// Draws a fresh random session key.
    pub fn generate(rng: &mut dyn Rng) -> Self {
        let mut k = [0u8; 32];
        rng.fill_bytes(&mut k);
        SessionKey(k)
    }

    /// Symmetric encryption under this session key (ChaCha20 + HMAC).
    pub fn encrypt(&self, plaintext: &[u8], rng: &mut dyn Rng) -> SessionCiphertext {
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let (enc_key, mac_key) = self.derive();
        let body = ChaCha20::new(&enc_key, &nonce).apply(plaintext);
        let mac = body_mac(&mac_key, &nonce, &body);
        SessionCiphertext { nonce, body, mac }
    }

    /// Symmetric decryption, verifying the MAC.
    pub fn decrypt(&self, ct: &SessionCiphertext) -> Result<Vec<u8>, CryptoError> {
        let (enc_key, mac_key) = self.derive();
        let expected = body_mac(&mac_key, &ct.nonce, &ct.body);
        if !mac_eq(&expected, &ct.mac) {
            return Err(CryptoError::MacMismatch);
        }
        Ok(ChaCha20::new(&enc_key, &ct.nonce).apply(&ct.body))
    }

    fn derive(&self) -> ([u8; 32], [u8; 32]) {
        let keys = crate::hmac::kdf(b"secmed-session", &self.0, b"", 64);
        split_keys(&keys)
    }
}

/// Ciphertext under a bare [`SessionKey`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionCiphertext {
    nonce: [u8; 12],
    body: Vec<u8>,
    mac: [u8; 32],
}

impl SessionCiphertext {
    /// Transported size in bytes.
    pub fn byte_len(&self) -> usize {
        12 + self.body.len() + 32
    }

    /// Wire encoding: `nonce ‖ u32 |body| ‖ body ‖ mac`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + 4 + self.body.len() + 32);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.body.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.body);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Decodes a wire-format session ciphertext.
    pub fn decode(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let nonce: [u8; 12] = r
            .take(12)?
            .try_into()
            .map_err(|_| CryptoError::Malformed("nonce length"))?;
        let body = r.take_len_prefixed()?.to_vec();
        let mac: [u8; 32] = r
            .take(32)?
            .try_into()
            .map_err(|_| CryptoError::Malformed("mac length"))?;
        r.finish()?;
        Ok(SessionCiphertext { nonce, body, mac })
    }
}

fn split_keys(keys: &[u8]) -> ([u8; 32], [u8; 32]) {
    let mut enc_key = [0u8; 32];
    let mut mac_key = [0u8; 32];
    enc_key.copy_from_slice(&keys[..32]);
    mac_key.copy_from_slice(&keys[32..64]);
    (enc_key, mac_key)
}

fn body_mac(mac_key: &[u8; 32], nonce: &[u8; 12], body: &[u8]) -> [u8; 32] {
    let mut msg = Vec::with_capacity(12 + body.len());
    msg.extend_from_slice(nonce);
    msg.extend_from_slice(body);
    hmac_sha256(mac_key, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use crate::group::GroupSize;

    fn setup() -> (HybridKeyPair, HmacDrbg) {
        let mut rng = HmacDrbg::from_label("hybrid-tests");
        let group = SafePrimeGroup::preset(GroupSize::S256);
        (HybridKeyPair::generate(group, &mut rng), rng)
    }

    #[test]
    fn roundtrip() {
        let (kp, mut rng) = setup();
        let ct = kp.public().encrypt(b"partial result tuple", &mut rng);
        assert_eq!(kp.decrypt(&ct).unwrap(), b"partial result tuple");
    }

    #[test]
    fn empty_plaintext() {
        let (kp, mut rng) = setup();
        let ct = kp.public().encrypt(b"", &mut rng);
        assert_eq!(kp.decrypt(&ct).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn tampered_body_fails_mac() {
        let (kp, mut rng) = setup();
        let mut ct = kp.public().encrypt(b"secret", &mut rng);
        ct.body[0] ^= 1;
        assert_eq!(kp.decrypt(&ct), Err(CryptoError::MacMismatch));
    }

    #[test]
    fn tampered_nonce_fails_mac() {
        let (kp, mut rng) = setup();
        let mut ct = kp.public().encrypt(b"secret", &mut rng);
        ct.nonce[5] ^= 0xff;
        assert_eq!(kp.decrypt(&ct), Err(CryptoError::MacMismatch));
    }

    #[test]
    fn wrong_recipient_fails() {
        let (kp, mut rng) = setup();
        let other = HybridKeyPair::generate(kp.public().group().clone(), &mut rng);
        let ct = kp.public().encrypt(b"secret", &mut rng);
        assert!(other.decrypt(&ct).is_err());
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (kp, mut rng) = setup();
        let c1 = kp.public().encrypt(b"same message", &mut rng);
        let c2 = kp.public().encrypt(b"same message", &mut rng);
        assert_ne!(c1, c2);
    }

    #[test]
    fn session_key_roundtrip() {
        let mut rng = HmacDrbg::from_label("session");
        let key = SessionKey::generate(&mut rng);
        let ct = key.encrypt(b"tuple set payload", &mut rng);
        assert_eq!(key.decrypt(&ct).unwrap(), b"tuple set payload");
    }

    #[test]
    fn session_key_tamper_detected() {
        let mut rng = HmacDrbg::from_label("session");
        let key = SessionKey::generate(&mut rng);
        let mut ct = key.encrypt(b"payload", &mut rng);
        ct.body[2] ^= 4;
        assert_eq!(key.decrypt(&ct), Err(CryptoError::MacMismatch));
    }

    #[test]
    fn session_key_wrong_key_detected() {
        let mut rng = HmacDrbg::from_label("session");
        let key = SessionKey::generate(&mut rng);
        let other = SessionKey::generate(&mut rng);
        let ct = key.encrypt(b"payload", &mut rng);
        assert_eq!(other.decrypt(&ct), Err(CryptoError::MacMismatch));
    }

    #[test]
    fn wire_roundtrip_hybrid() {
        let (kp, mut rng) = setup();
        let ct = kp.public().encrypt(b"over the wire", &mut rng);
        let decoded = HybridCiphertext::decode(&ct.encode()).unwrap();
        assert_eq!(decoded, ct);
        assert_eq!(kp.decrypt(&decoded).unwrap(), b"over the wire");
    }

    #[test]
    fn wire_rejects_truncation_and_trailing_bytes() {
        let (kp, mut rng) = setup();
        let bytes = kp.public().encrypt(b"x", &mut rng).encode();
        for cut in [0usize, 3, 10, bytes.len() - 1] {
            assert!(
                HybridCiphertext::decode(&bytes[..cut]).is_err(),
                "cut={cut}"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(HybridCiphertext::decode(&extended).is_err());
    }

    #[test]
    fn wire_roundtrip_session() {
        let mut rng = HmacDrbg::from_label("session-wire");
        let key = SessionKey::generate(&mut rng);
        let ct = key.encrypt(b"tuple set", &mut rng);
        let decoded = SessionCiphertext::decode(&ct.encode()).unwrap();
        assert_eq!(key.decrypt(&decoded).unwrap(), b"tuple set");
        assert!(SessionCiphertext::decode(&ct.encode()[..10]).is_err());
    }

    #[test]
    fn byte_len_accounts_for_all_parts() {
        let (kp, mut rng) = setup();
        let ct = kp.public().encrypt(&[0u8; 100], &mut rng);
        assert!(ct.byte_len() >= 100 + 12 + 32);
        assert_eq!(ct.body_len(), 100);
    }
}
