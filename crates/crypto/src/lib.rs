#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! From-scratch cryptographic primitives for secure mediation.
//!
//! Everything the three JOIN protocols of the paper need, implemented on top
//! of the [`mpint`] big-integer substrate:
//!
//! * [`sha256`] / [`hmac`] — hashing, MACs, and a KDF,
//! * [`chacha20`] — the symmetric stream cipher used for session-key
//!   encryption of tuple payloads,
//! * [`drbg`] — a deterministic HMAC-DRBG usable anywhere a
//!   [`mpint::rng::Rng`] is expected (reproducible protocol runs),
//! * [`group`] — safe-prime groups (with precomputed parameters) whose
//!   quadratic-residue subgroup has prime order,
//! * [`elgamal`] + [`hybrid`] — the paper's `encrypt(...)`/`decrypt(...)`:
//!   an ElGamal KEM carrying a fresh ChaCha20 session key, encrypt-then-MAC,
//! * [`sra`] — commutative encryption (Pohlig–Hellman/SRA exponentiation)
//!   for the Agrawal-style protocol of Section 4,
//! * [`paillier`] — the additively homomorphic cryptosystem for the
//!   Freedman-style private-matching protocol of Section 5,
//! * [`exp_elgamal`] — exponential ElGamal, the paper's *alternative*
//!   additively homomorphic instantiation (Section 5 cites the elliptic
//!   curve ElGamal variant), with baby-step/giant-step decryption,
//! * [`polynomial`] — plaintext and *encrypted* polynomial evaluation,
//!   including Horner's rule and Freedman's bucket-allocation optimization,
//! * [`schnorr`] — signatures for the certification authority,
//! * [`metrics`] — global operation counters used to regenerate the
//!   paper's Table 2 (which primitives each protocol applies).
//!
//! # Security caveat
//!
//! These implementations are written for protocol research: they are
//! reviewable and correct against published test vectors, but they are not
//! hardened (no constant-time guarantees, no side-channel protections).
//! The threat model, exactly as in the paper, is semi-honest parties.

pub mod chacha20;
pub mod drbg;
pub mod elgamal;
pub mod exp_elgamal;
pub mod group;
pub mod hmac;
pub mod hybrid;
pub mod metrics;
pub mod paillier;
pub mod polynomial;
pub mod schnorr;
pub mod sha256;
pub mod sra;

pub use drbg::HmacDrbg;
pub use group::SafePrimeGroup;
pub use hybrid::{HybridCiphertext, HybridKeyPair, HybridPublicKey};
pub use paillier::{Paillier, PaillierCiphertext, PaillierKeyPair, PaillierPublicKey};
pub use schnorr::{SchnorrKeyPair, SchnorrPublicKey, SchnorrSignature};
pub use sra::{SraCipher, SraDomain};

/// Errors surfaced by the cryptographic layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A MAC check failed: the ciphertext was corrupted or the wrong key
    /// was used.
    MacMismatch,
    /// A ciphertext was structurally malformed (wrong length, value out of
    /// range for the group/modulus).
    Malformed(&'static str),
    /// A plaintext does not fit the scheme's message space.
    MessageTooLarge,
    /// Key material was rejected (e.g. an SRA exponent not coprime to the
    /// group order).
    InvalidKey(&'static str),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::MacMismatch => write!(f, "MAC verification failed"),
            CryptoError::Malformed(what) => write!(f, "malformed ciphertext: {what}"),
            CryptoError::MessageTooLarge => write!(f, "plaintext exceeds the message space"),
            CryptoError::InvalidKey(what) => write!(f, "invalid key: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}
