//! Global cryptographic-operation counters.
//!
//! The paper's Table 2 lists which cryptographic primitives each protocol
//! applies.  Rather than asserting that table by hand, the bench harness
//! resets these counters, runs a protocol, and reports the primitives that
//! were *actually* invoked.  Counters are process-global atomics, so they
//! also work across the in-process parties of a protocol run.
//!
//! Every increment is mirrored into the `secmed_obs::metrics` registry as
//! a deterministic-class counter named `crypto.<op-name>`, so the unified
//! metrics exports carry the primitive census without a second
//! instrumentation pass — and `table2_primitives` cross-checks that the
//! two views never drift.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A countable cryptographic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Op {
    /// SHA-256 compression-function invocations.
    Sha256Block,
    /// Full hash computations (one message digested).
    HashMessage,
    /// HMAC computations.
    Hmac,
    /// ChaCha20 64-byte keystream blocks.
    ChaCha20Block,
    /// Symmetric (hybrid) encryptions of a payload.
    HybridEncrypt,
    /// Symmetric (hybrid) decryptions of a payload.
    HybridDecrypt,
    /// ElGamal KEM encapsulations.
    KemEncapsulate,
    /// ElGamal KEM decapsulations.
    KemDecapsulate,
    /// Commutative (SRA) encryptions `x -> x^e mod p`.
    CommutativeEncrypt,
    /// Hash-into-quadratic-residues evaluations (random-oracle hash).
    HashToGroup,
    /// Paillier encryptions.
    PaillierEncrypt,
    /// Paillier decryptions.
    PaillierDecrypt,
    /// Homomorphic additions of two Paillier ciphertexts.
    PaillierAdd,
    /// Homomorphic scalar multiplications of a Paillier ciphertext.
    PaillierScale,
    /// Schnorr signature issuances.
    SchnorrSign,
    /// Schnorr signature verifications.
    SchnorrVerify,
    /// Fresh random masks drawn for polynomial evaluation.
    RandomMask,
    /// Commutative (SRA) decryptions `y -> y^d mod p`.
    CommutativeDecrypt,
    /// Baby-step/giant-step discrete-log recoveries (exponential ElGamal
    /// decode).
    DiscreteLog,
}

const OP_COUNT: usize = 19;

static COUNTERS: [AtomicU64; OP_COUNT] = [const { AtomicU64::new(0) }; OP_COUNT];

const ALL_OPS: [Op; OP_COUNT] = [
    Op::Sha256Block,
    Op::HashMessage,
    Op::Hmac,
    Op::ChaCha20Block,
    Op::HybridEncrypt,
    Op::HybridDecrypt,
    Op::KemEncapsulate,
    Op::KemDecapsulate,
    Op::CommutativeEncrypt,
    Op::HashToGroup,
    Op::PaillierEncrypt,
    Op::PaillierDecrypt,
    Op::PaillierAdd,
    Op::PaillierScale,
    Op::SchnorrSign,
    Op::SchnorrVerify,
    Op::RandomMask,
    Op::CommutativeDecrypt,
    Op::DiscreteLog,
];

impl Op {
    /// Human-readable name, used by the Table 2 report binary.
    pub fn name(self) -> &'static str {
        match self {
            Op::Sha256Block => "sha256-block",
            Op::HashMessage => "hash-message",
            Op::Hmac => "hmac",
            Op::ChaCha20Block => "chacha20-block",
            Op::HybridEncrypt => "hybrid-encrypt",
            Op::HybridDecrypt => "hybrid-decrypt",
            Op::KemEncapsulate => "kem-encapsulate",
            Op::KemDecapsulate => "kem-decapsulate",
            Op::CommutativeEncrypt => "commutative-encrypt",
            Op::HashToGroup => "hash-to-group",
            Op::PaillierEncrypt => "paillier-encrypt",
            Op::PaillierDecrypt => "paillier-decrypt",
            Op::PaillierAdd => "paillier-add",
            Op::PaillierScale => "paillier-scale",
            Op::SchnorrSign => "schnorr-sign",
            Op::SchnorrVerify => "schnorr-verify",
            Op::RandomMask => "random-mask",
            Op::CommutativeDecrypt => "commutative-decrypt",
            Op::DiscreteLog => "discrete-log",
        }
    }
}

/// The registry name the census mirror publishes `op` under.
pub fn registry_name(op: Op) -> String {
    format!("crypto.{}", op.name())
}

/// Handles into the obs registry, one per op, interned on first use so
/// the hot path is a single extra relaxed atomic add.
fn obs_mirror() -> &'static [secmed_obs::metrics::Counter; OP_COUNT] {
    static MIRROR: OnceLock<[secmed_obs::metrics::Counter; OP_COUNT]> = OnceLock::new();
    MIRROR.get_or_init(|| {
        std::array::from_fn(|i| {
            secmed_obs::metrics::counter(
                secmed_obs::metrics::Class::Deterministic,
                &registry_name(ALL_OPS[i]),
            )
        })
    })
}

/// Increments the counter for `op` (and its registry mirror).
#[inline]
pub fn count(op: Op) {
    COUNTERS[op as usize].fetch_add(1, Ordering::Relaxed);
    obs_mirror()[op as usize].incr();
}

/// Current value of the counter for `op`.
pub fn get(op: Op) -> u64 {
    COUNTERS[op as usize].load(Ordering::Relaxed)
}

/// Resets every counter to zero.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    counts: [u64; OP_COUNT],
}

impl Snapshot {
    /// Captures the current counter values.
    pub fn capture() -> Self {
        let mut counts = [0u64; OP_COUNT];
        for (slot, c) in counts.iter_mut().zip(COUNTERS.iter()) {
            *slot = c.load(Ordering::Relaxed);
        }
        Snapshot { counts }
    }

    /// Per-op difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &Snapshot) -> Vec<(Op, u64)> {
        ALL_OPS
            .iter()
            .enumerate()
            .filter_map(|(i, &op)| {
                let d = self.counts[i].saturating_sub(earlier.counts[i]);
                (d > 0).then_some((op, d))
            })
            .collect()
    }

    /// Count recorded for one op.
    pub fn get(&self, op: Op) -> u64 {
        self.counts[op as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: counters are process-global, so these tests use `since` deltas
    // rather than absolute values to stay robust under parallel testing.

    #[test]
    fn count_and_diff() {
        let before = Snapshot::capture();
        count(Op::PaillierEncrypt);
        count(Op::PaillierEncrypt);
        count(Op::Hmac);
        let after = Snapshot::capture();
        let delta = after.since(&before);
        assert!(
            delta.contains(&(Op::PaillierEncrypt, 2))
                || after.get(Op::PaillierEncrypt) >= before.get(Op::PaillierEncrypt) + 2
        );
        assert!(after.get(Op::Hmac) > before.get(Op::Hmac));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ALL_OPS.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OP_COUNT);
    }

    #[test]
    fn snapshot_since_is_empty_without_activity() {
        let s = Snapshot::capture();
        assert!(s.since(&s).is_empty());
    }

    #[test]
    fn census_mirrors_into_obs_registry() {
        // Parallel tests also count ops, so compare the two views' deltas
        // of the same op as lower bounds anchored on this test's adds.
        let census_before = Snapshot::capture();
        let obs_before = secmed_obs::metrics::snapshot();
        count(Op::SchnorrSign);
        count(Op::SchnorrSign);
        count(Op::SchnorrSign);
        let census_delta = Snapshot::capture().since(&census_before);
        let obs_delta = secmed_obs::metrics::snapshot().since(&obs_before);
        let census_signs = census_delta
            .iter()
            .find(|(op, _)| *op == Op::SchnorrSign)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        let obs_signs = obs_delta.counter(&registry_name(Op::SchnorrSign));
        assert!(census_signs >= 3);
        assert!(obs_signs >= 3, "mirror must follow the census");
    }
}
