//! The Paillier cryptosystem (EUROCRYPT '99) — the additively homomorphic
//! encryption `E` of the paper's Section 5 (private matching).
//!
//! Properties used by the protocols:
//!
//! * `E(a) * E(b) = E(a + b)` — [`PaillierPublicKey::add`],
//! * `E(a)^γ = E(γ * a)` — [`PaillierPublicKey::scale`],
//!
//! which together allow evaluating an *encrypted* polynomial at a plaintext
//! point (see [`crate::polynomial`]).
//!
//! Implementation notes: `g = n + 1`, so `E(m) = (1 + m*n) * r^n mod n^2`
//! needs one modular exponentiation; decryption uses the CRT-free textbook
//! form `m = L(c^λ mod n^2) * μ mod n` with `μ = λ^{-1} mod n`.  The public
//! key caches a Montgomery context for `n^2`, where virtually all protocol
//! time is spent.

use mpint::numtheory::{gcd, lcm, modinv};
use mpint::prime::gen_prime;
use mpint::random::random_below;
use mpint::rng::Rng;
use mpint::{Montgomery, Natural};

use crate::metrics::{count, Op};
use crate::CryptoError;

/// A Paillier public key: modulus `n` (with cached `n^2` arithmetic).
///
/// ```
/// use mpint::Natural;
/// use secmed_crypto::drbg::HmacDrbg;
/// use secmed_crypto::paillier::PaillierKeyPair;
///
/// let mut rng = HmacDrbg::from_label("doc");
/// let kp = PaillierKeyPair::generate(256, &mut rng);
/// let a = kp.public().encrypt(&Natural::from(20u64), &mut rng).unwrap();
/// let b = kp.public().encrypt(&Natural::from(22u64), &mut rng).unwrap();
/// let sum = kp.public().add(&a, &b);
/// assert_eq!(kp.decrypt(&sum), Natural::from(42u64));
/// ```
#[derive(Clone)]
pub struct PaillierPublicKey {
    n: Natural,
    n2: Natural,
    mont_n2: Montgomery,
}

/// A Paillier key pair.
#[derive(Clone)]
pub struct PaillierKeyPair {
    public: PaillierPublicKey,
    /// λ = lcm(p-1, q-1).
    lambda: Natural,
    /// μ = λ^{-1} mod n.
    mu: Natural,
    /// CRT acceleration state (see [`PaillierKeyPair::decrypt_crt`]).
    crt: CrtContext,
}

/// Precomputed state for CRT decryption: working mod `p^2` and `q^2`
/// separately roughly quarters the exponentiation cost (half-size moduli,
/// half-size exponents), then Garner recombination lifts back to `Z_n`.
#[derive(Clone)]
struct CrtContext {
    p: Natural,
    q: Natural,
    mont_p2: Montgomery,
    mont_q2: Montgomery,
    /// `L_p((1+n)^(p-1) mod p^2)^{-1} mod p`.
    hp: Natural,
    /// `L_q((1+n)^(q-1) mod q^2)^{-1} mod q`.
    hq: Natural,
    /// `q^{-1} mod p` for Garner recombination.
    q_inv_p: Natural,
}

impl CrtContext {
    fn new(p: &Natural, q: &Natural, n: &Natural) -> Option<Self> {
        let one = Natural::one();
        let p2 = p * p;
        let q2 = q * q;
        let mont_p2 = Montgomery::new(p2.clone());
        let mont_q2 = Montgomery::new(q2.clone());
        let gp = (Natural::one() + n).rem(&p2);
        let gq = (Natural::one() + n).rem(&q2);
        let lp = |x: &Natural, m: &Natural| (x - &one).div_rem(m).0;
        let hp = modinv(&lp(&mont_p2.modpow(&gp, &(p - &one)), p), p).ok()?;
        let hq = modinv(&lp(&mont_q2.modpow(&gq, &(q - &one)), q), q).ok()?;
        let q_inv_p = modinv(q, p).ok()?;
        Some(CrtContext {
            p: p.clone(),
            q: q.clone(),
            mont_p2,
            mont_q2,
            hp,
            hq,
            q_inv_p,
        })
    }

    /// Decrypts `c` via the two half-size exponentiations.
    fn decrypt(&self, c: &Natural) -> Natural {
        let one = Natural::one();
        let lp = |x: &Natural, m: &Natural| (x - &one).div_rem(m).0;
        let mp = lp(&self.mont_p2.modpow(c, &(&self.p - &one)), &self.p).modmul(&self.hp, &self.p);
        let mq = lp(&self.mont_q2.modpow(c, &(&self.q - &one)), &self.q).modmul(&self.hq, &self.q);
        // Garner: m = mq + q * ((mp - mq) * q^{-1} mod p).
        let diff = mp.modsub(&mq.rem(&self.p), &self.p);
        let t = diff.modmul(&self.q_inv_p, &self.p);
        mq + &(&t * &self.q)
    }
}

/// A Paillier ciphertext: an element of `Z_{n^2}^*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierCiphertext(pub(crate) Natural);

/// Namespace struct for free-standing helpers.
pub struct Paillier;

impl std::fmt::Debug for PaillierPublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PaillierPublicKey(n: {} bits)", self.n.bit_len())
    }
}

impl PartialEq for PaillierPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
    }
}

impl Eq for PaillierPublicKey {}

impl PaillierKeyPair {
    /// Generates a key pair with an `n_bits`-bit modulus.
    pub fn generate(n_bits: u64, rng: &mut dyn Rng) -> Self {
        assert!(n_bits >= 16, "modulus too small to be meaningful");
        loop {
            let p = gen_prime(n_bits / 2, rng);
            let q = gen_prime(n_bits.div_ceil(2), rng);
            // lint:allow(secret-flow) -- keygen rejection sampling: a
            // p = q collision is discarded, so the branch reveals nothing
            // about the factors actually kept.
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bit_len() != n_bits {
                continue;
            }
            let one = Natural::one();
            let lambda = lcm(&(&p - &one), &(&q - &one));
            // gcd(n, λ) = 1 holds for distinct primes of similar size, but
            // verify anyway: μ must exist.
            let Ok(mu) = modinv(&lambda, &n) else {
                continue;
            };
            let Some(crt) = CrtContext::new(&p, &q, &n) else {
                continue;
            };
            let public = PaillierPublicKey::from_modulus(n);
            return PaillierKeyPair {
                public,
                lambda,
                mu,
                crt,
            };
        }
    }

    /// The public key.
    pub fn public(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Decrypts `c` to its plaintext in `[0, n)` via CRT (the default —
    /// roughly 4× faster than the textbook path; `benches/primitives.rs`
    /// has the ablation).
    pub fn decrypt(&self, c: &PaillierCiphertext) -> Natural {
        count(Op::PaillierDecrypt);
        self.crt.decrypt(&c.0)
    }

    /// Textbook decryption `L(c^λ mod n^2) * μ mod n`, kept for the
    /// CRT-vs-plain ablation bench and as a cross-check in tests.
    pub fn decrypt_plain(&self, c: &PaillierCiphertext) -> Natural {
        count(Op::PaillierDecrypt);
        let pk = &self.public;
        let u = pk.mont_n2.modpow(&c.0, &self.lambda);
        let l = pk.l_function(&u);
        l.modmul(&self.mu, &pk.n)
    }
}

impl PaillierPublicKey {
    /// Builds the public key from the modulus, caching `n^2` state.
    pub fn from_modulus(n: Natural) -> Self {
        let n2 = &n * &n;
        let mont_n2 = Montgomery::new(n2.clone());
        PaillierPublicKey { n, n2, mont_n2 }
    }

    /// The modulus `n` (the plaintext space is `Z_n`).
    pub fn n(&self) -> &Natural {
        &self.n
    }

    /// `n^2` (the ciphertext space is `Z_{n^2}^*`).
    pub fn n2(&self) -> &Natural {
        &self.n2
    }

    /// Plaintext capacity in whole bytes (for payload packing).
    pub fn plaintext_bytes(&self) -> usize {
        ((self.n.bit_len() - 1) / 8) as usize
    }

    /// Encrypts `m` (must be `< n`).
    pub fn encrypt(
        &self,
        m: &Natural,
        rng: &mut dyn Rng,
    ) -> Result<PaillierCiphertext, CryptoError> {
        if m >= &self.n {
            return Err(CryptoError::MessageTooLarge);
        }
        count(Op::PaillierEncrypt);
        let r = self.random_unit(rng);
        // c = (1 + m*n) * r^n mod n^2
        let gm = (Natural::one() + m * &self.n).rem(&self.n2);
        let rn = self.mont_n2.modpow(&r, &self.n);
        Ok(PaillierCiphertext(gm.modmul(&rn, &self.n2)))
    }

    /// Encrypts `m mod n` — infallible, for callers whose plaintexts are
    /// already residues (e.g. polynomial coefficients in `Z_n`).
    pub fn encrypt_reduced(&self, m: &Natural, rng: &mut dyn Rng) -> PaillierCiphertext {
        count(Op::PaillierEncrypt);
        let r = self.random_unit(rng);
        let gm = (Natural::one() + &(&m.rem(&self.n) * &self.n)).rem(&self.n2);
        let rn = self.mont_n2.modpow(&r, &self.n);
        PaillierCiphertext(gm.modmul(&rn, &self.n2))
    }

    /// Encrypts bytes by interpreting them as a big-endian integer.
    pub fn encrypt_bytes(
        &self,
        data: &[u8],
        rng: &mut dyn Rng,
    ) -> Result<PaillierCiphertext, CryptoError> {
        self.encrypt(&Natural::from_bytes_be(data), rng)
    }

    /// Homomorphic addition: `E(a) ⊕ E(b) = E(a + b mod n)`.
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        count(Op::PaillierAdd);
        PaillierCiphertext(a.0.modmul(&b.0, &self.n2))
    }

    /// Homomorphic plaintext addition: `E(a) ⊕ m = E(a + m mod n)`.
    pub fn add_plain(&self, a: &PaillierCiphertext, m: &Natural) -> PaillierCiphertext {
        count(Op::PaillierAdd);
        let gm = (Natural::one() + &(&m.rem(&self.n) * &self.n)).rem(&self.n2);
        PaillierCiphertext(a.0.modmul(&gm, &self.n2))
    }

    /// Homomorphic scalar multiplication: `E(a)^γ = E(γ * a mod n)`.
    pub fn scale(&self, a: &PaillierCiphertext, gamma: &Natural) -> PaillierCiphertext {
        count(Op::PaillierScale);
        PaillierCiphertext(self.mont_n2.modpow(&a.0, gamma))
    }

    /// Fresh encryption of zero multiplied in — makes a ciphertext
    /// unlinkable to its origin.
    pub fn rerandomize(&self, a: &PaillierCiphertext, rng: &mut dyn Rng) -> PaillierCiphertext {
        count(Op::PaillierEncrypt); // a rerandomization is a fresh encryption of zero
        let r = self.random_unit(rng);
        let rn = self.mont_n2.modpow(&r, &self.n);
        PaillierCiphertext(a.0.modmul(&rn, &self.n2))
    }

    /// The cached Montgomery context for `n^2` (used by the polynomial
    /// evaluator's tight loops).
    pub fn mont_n2(&self) -> &Montgomery {
        &self.mont_n2
    }

    /// `L(u) = (u - 1) / n`.
    fn l_function(&self, u: &Natural) -> Natural {
        (u - &Natural::one()).div_rem(&self.n).0
    }

    fn random_unit(&self, rng: &mut dyn Rng) -> Natural {
        loop {
            let r = random_below(rng, &self.n);
            if !r.is_zero() && gcd(&r, &self.n).is_one() {
                return r;
            }
        }
    }
}

impl PaillierCiphertext {
    /// The raw group element (for transport encoding).
    pub fn element(&self) -> &Natural {
        &self.0
    }

    /// The trivial (unrandomized) encryption of zero, `c = 1`.
    ///
    /// Valid under every key; useful as an additive identity.
    pub fn trivial_zero() -> Self {
        PaillierCiphertext(Natural::one())
    }

    /// Rebuilds from a transported element, validating the range.
    pub fn from_element(c: Natural, pk: &PaillierPublicKey) -> Result<Self, CryptoError> {
        if &c >= pk.n2() || c.is_zero() {
            return Err(CryptoError::Malformed("ciphertext outside Z_{n^2}^*"));
        }
        Ok(PaillierCiphertext(c))
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.0.to_bytes_be().len()
    }
}

impl Paillier {
    /// Test/bench helper: a deterministic key pair of the given size.
    pub fn test_keypair(n_bits: u64, label: &str) -> PaillierKeyPair {
        let mut rng = crate::drbg::HmacDrbg::from_label(label);
        PaillierKeyPair::generate(n_bits, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    fn setup() -> (PaillierKeyPair, HmacDrbg) {
        let kp = Paillier::test_keypair(256, "paillier-tests");
        (kp, HmacDrbg::from_label("paillier-rng"))
    }

    fn n(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (kp, mut rng) = setup();
        for m in [0u64, 1, 42, 0xffff_ffff] {
            let c = kp.public().encrypt(&n(m), &mut rng).unwrap();
            assert_eq!(kp.decrypt(&c), n(m), "m={m}");
        }
    }

    #[test]
    fn message_too_large_rejected() {
        let (kp, mut rng) = setup();
        let too_big = kp.public().n().clone();
        assert_eq!(
            kp.public().encrypt(&too_big, &mut rng),
            Err(CryptoError::MessageTooLarge)
        );
    }

    #[test]
    fn homomorphic_addition() {
        let (kp, mut rng) = setup();
        let ca = kp.public().encrypt(&n(1000), &mut rng).unwrap();
        let cb = kp.public().encrypt(&n(234), &mut rng).unwrap();
        let sum = kp.public().add(&ca, &cb);
        assert_eq!(kp.decrypt(&sum), n(1234));
    }

    #[test]
    fn homomorphic_plaintext_addition() {
        let (kp, mut rng) = setup();
        let ca = kp.public().encrypt(&n(1000), &mut rng).unwrap();
        let sum = kp.public().add_plain(&ca, &n(234));
        assert_eq!(kp.decrypt(&sum), n(1234));
    }

    #[test]
    fn homomorphic_scaling() {
        let (kp, mut rng) = setup();
        let ca = kp.public().encrypt(&n(111), &mut rng).unwrap();
        let scaled = kp.public().scale(&ca, &n(9));
        assert_eq!(kp.decrypt(&scaled), n(999));
    }

    #[test]
    fn addition_wraps_mod_n() {
        let (kp, mut rng) = setup();
        let big = kp.public().n() - &Natural::one();
        let ca = kp.public().encrypt(&big, &mut rng).unwrap();
        let sum = kp.public().add_plain(&ca, &n(2));
        assert_eq!(kp.decrypt(&sum), Natural::one());
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (kp, mut rng) = setup();
        let c1 = kp.public().encrypt(&n(5), &mut rng).unwrap();
        let c2 = kp.public().encrypt(&n(5), &mut rng).unwrap();
        assert_ne!(c1, c2);
        assert_eq!(kp.decrypt(&c1), kp.decrypt(&c2));
    }

    #[test]
    fn rerandomize_preserves_plaintext() {
        let (kp, mut rng) = setup();
        let c = kp.public().encrypt(&n(77), &mut rng).unwrap();
        let r = kp.public().rerandomize(&c, &mut rng);
        assert_ne!(c, r);
        assert_eq!(kp.decrypt(&r), n(77));
    }

    #[test]
    fn bytes_roundtrip() {
        let (kp, mut rng) = setup();
        let payload = b"ak||payload";
        let c = kp.public().encrypt_bytes(payload, &mut rng).unwrap();
        let m = kp.decrypt(&c);
        assert_eq!(m.to_bytes_be(), payload);
    }

    #[test]
    fn malformed_ciphertext_rejected() {
        let (kp, _) = setup();
        let too_big = kp.public().n2().clone();
        assert!(PaillierCiphertext::from_element(too_big, kp.public()).is_err());
        assert!(PaillierCiphertext::from_element(Natural::zero(), kp.public()).is_err());
    }

    #[test]
    fn plaintext_bytes_fit() {
        let (kp, mut rng) = setup();
        let len = kp.public().plaintext_bytes();
        let payload = vec![0xffu8; len];
        let c = kp.public().encrypt_bytes(&payload, &mut rng).unwrap();
        assert_eq!(kp.decrypt(&c).to_bytes_be(), payload);
    }

    #[test]
    fn crt_and_plain_decryption_agree() {
        let (kp, mut rng) = setup();
        for m in [0u64, 1, 42, u64::MAX] {
            let c = kp.public().encrypt(&n(m), &mut rng).unwrap();
            assert_eq!(kp.decrypt(&c), kp.decrypt_plain(&c), "m={m}");
        }
        // Also on homomorphically derived ciphertexts.
        let a = kp.public().encrypt(&n(1000), &mut rng).unwrap();
        let derived = kp.public().scale(&kp.public().add(&a, &a), &n(7));
        assert_eq!(kp.decrypt(&derived), kp.decrypt_plain(&derived));
        assert_eq!(kp.decrypt(&derived), n(14000));
    }

    #[test]
    fn distinct_keypairs_incompatible() {
        let (kp1, mut rng) = setup();
        let kp2 = Paillier::test_keypair(256, "other");
        let c = kp1.public().encrypt(&n(5), &mut rng).unwrap();
        // Decrypting under the wrong key gives garbage (overwhelmingly).
        assert_ne!(
            kp2.decrypt(&PaillierCiphertext(c.0.rem(kp2.public().n2()))),
            n(5)
        );
    }
}
