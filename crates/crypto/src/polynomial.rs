//! Polynomials over `Z_n` and their homomorphically encrypted evaluation.
//!
//! The private-matching protocol (paper Section 5, after Freedman et al.)
//! has a datasource build `P(x) = (a_1 - x)(a_2 - x)...(a_n - x)` whose
//! roots are its active-domain values, encrypt the coefficients under the
//! client's Paillier key, and ship them to the *other* datasource, which
//! evaluates `E(r * P(a') + payload)` for each of its own values `a'`.
//!
//! Three evaluation strategies are provided (the S5a ablation in
//! DESIGN.md):
//!
//! * [`EncryptedPoly::eval_naive`] — the power-sum `Σ E(c_k)^(a^k)`,
//! * [`EncryptedPoly::eval_horner`] — Horner's rule, one scale + one add
//!   per coefficient (the efficiency trick Freedman et al. describe),
//! * [`BucketedPoly`] — Freedman's hash-bucket allocation: split the roots
//!   into `B` buckets so each evaluation only touches a degree-`~n/B`
//!   polynomial, padding every bucket to equal degree so loads leak nothing.

use mpint::random::random_below;
use mpint::rng::Rng;
use mpint::Natural;
use secmed_pool::Pool;

use crate::drbg::DrbgFamily;
use crate::metrics::{count, Op};
use crate::paillier::{PaillierCiphertext, PaillierPublicKey};
use crate::sha256::sha256;
use crate::CryptoError;

/// A polynomial over `Z_n`, stored as coefficients `c_0..c_d`
/// (so `P(x) = Σ c_k x^k`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZnPoly {
    coeffs: Vec<Natural>,
    n: Natural,
}

impl ZnPoly {
    /// `P(x) = Π (a_i - x)` with all arithmetic mod `n`.
    ///
    /// The empty product is the constant polynomial `1`.
    pub fn from_roots(roots: &[Natural], n: &Natural) -> Self {
        let mut coeffs = vec![Natural::one().rem(n)];
        for root in roots {
            let a = root.rem(n);
            // Multiply the accumulated polynomial by (a - x):
            // new[k] = a * c[k] - c[k-1]  (mod n).
            let mut next = Vec::with_capacity(coeffs.len() + 1);
            for k in 0..=coeffs.len() {
                let term_a = if k < coeffs.len() {
                    coeffs[k].modmul(&a, n)
                } else {
                    Natural::zero()
                };
                let term_prev = if k > 0 {
                    coeffs[k - 1].clone()
                } else {
                    Natural::zero()
                };
                next.push(term_a.modsub(&term_prev.rem(n), n));
            }
            coeffs = next;
        }
        ZnPoly {
            coeffs,
            n: n.clone(),
        }
    }

    /// Degree (number of roots for a product-of-roots polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The coefficients `c_0..c_d`.
    pub fn coeffs(&self) -> &[Natural] {
        &self.coeffs
    }

    /// The modulus.
    pub fn modulus(&self) -> &Natural {
        &self.n
    }

    /// Plaintext Horner evaluation `P(x) mod n`.
    pub fn eval(&self, x: &Natural) -> Natural {
        let x = x.rem(&self.n);
        let mut acc = Natural::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc.modmul(&x, &self.n).modadd(c, &self.n);
        }
        acc
    }
}

/// A polynomial whose coefficients are Paillier-encrypted.
#[derive(Debug, Clone)]
pub struct EncryptedPoly {
    coeffs: Vec<PaillierCiphertext>,
    pk: PaillierPublicKey,
}

impl EncryptedPoly {
    /// Encrypts every coefficient of `poly` under `pk`.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial's modulus is not the key's `n` — coefficient
    /// arithmetic and ciphertext arithmetic must agree.
    pub fn encrypt(poly: &ZnPoly, pk: &PaillierPublicKey, rng: &mut dyn Rng) -> Self {
        assert_eq!(
            poly.modulus(),
            pk.n(),
            "polynomial modulus must match the Paillier key"
        );
        let coeffs = poly
            .coeffs
            .iter()
            .map(|c| pk.encrypt_reduced(c, rng))
            .collect();
        EncryptedPoly {
            coeffs,
            pk: pk.clone(),
        }
    }

    /// Parallel coefficient encryption: coefficient `k` is encrypted on
    /// whichever worker gets it, with randomness from `streams.stream(k)`
    /// — so the ciphertexts are identical at any thread count.
    pub fn encrypt_par(
        poly: &ZnPoly,
        pk: &PaillierPublicKey,
        pool: &Pool,
        streams: &DrbgFamily,
    ) -> Self {
        assert_eq!(
            poly.modulus(),
            pk.n(),
            "polynomial modulus must match the Paillier key"
        );
        let coeffs = pool.par_map(&poly.coeffs, |k, c| {
            let mut rng = streams.stream(k as u64);
            pk.encrypt_reduced(c, &mut rng)
        });
        EncryptedPoly {
            coeffs,
            pk: pk.clone(),
        }
    }

    /// Number of transported ciphertexts (leaks the degree — exactly the
    /// Table 1 observation that the mediator learns `|domactive|`).
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True for the empty polynomial (never produced by `encrypt`).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The coefficient ciphertexts (for transport).
    pub fn ciphertexts(&self) -> &[PaillierCiphertext] {
        &self.coeffs
    }

    /// Rebuilds from transported ciphertexts.
    pub fn from_ciphertexts(
        coeffs: Vec<PaillierCiphertext>,
        pk: &PaillierPublicKey,
    ) -> Result<Self, CryptoError> {
        if coeffs.is_empty() {
            return Err(CryptoError::Malformed("empty encrypted polynomial"));
        }
        Ok(EncryptedPoly {
            coeffs,
            pk: pk.clone(),
        })
    }

    /// `E(P(a))` by the naive power sum: computes `a^k mod n` for every
    /// `k` and scales each encrypted coefficient.
    pub fn eval_naive(&self, a: &Natural) -> PaillierCiphertext {
        let n = self.pk.n();
        let a = a.rem(n);
        let mut acc = self.coeffs[0].clone();
        let mut power = a.clone();
        for c in &self.coeffs[1..] {
            acc = self.pk.add(&acc, &self.pk.scale(c, &power));
            power = power.modmul(&a, n);
        }
        acc
    }

    /// `E(P(a))` by Horner's rule: `acc = acc^a ⊕ E(c_k)` from the top
    /// coefficient down — one scale and one add per coefficient, with the
    /// exponent always the (small-ish) point `a` rather than `a^k`.
    pub fn eval_horner(&self, a: &Natural) -> PaillierCiphertext {
        let n = self.pk.n();
        let a = a.rem(n);
        let mut iter = self.coeffs.iter().rev();
        // The empty polynomial (never produced by `encrypt`) evaluates to
        // the trivial encryption of zero, `E(0) = 1`.
        let Some(first) = iter.next() else {
            return PaillierCiphertext::trivial_zero();
        };
        let mut acc = first.clone();
        for c in iter {
            acc = self.pk.add(&self.pk.scale(&acc, &a), c);
        }
        acc
    }

    /// The sender step of private matching: `E(r * P(a) + payload)` for a
    /// fresh random `r` — decrypts to `payload` iff `a` is a root of `P`,
    /// and to a uniformly random-looking value otherwise.
    pub fn eval_masked(
        &self,
        a: &Natural,
        payload: &Natural,
        rng: &mut dyn Rng,
    ) -> Result<PaillierCiphertext, CryptoError> {
        let p_at_a = self.eval_horner(a);
        self.mask(&p_at_a, payload, rng)
    }

    /// Masks an already-computed `E(P(a))` with a fresh random factor and
    /// adds the payload: `E(r * P(a) + payload)`.  Exposed so callers can
    /// choose the evaluation strategy (naive vs Horner) independently.
    pub fn mask(
        &self,
        p_at_a: &PaillierCiphertext,
        payload: &Natural,
        rng: &mut dyn Rng,
    ) -> Result<PaillierCiphertext, CryptoError> {
        if payload >= self.pk.n() {
            return Err(CryptoError::MessageTooLarge);
        }
        count(Op::RandomMask);
        let r = nonzero_below(self.pk.n(), rng);
        let masked = self.pk.scale(p_at_a, &r);
        Ok(self.pk.add_plain(&masked, payload))
    }
}

/// Freedman's bucket-allocation optimization: roots are hashed into `B`
/// buckets, one (padded) polynomial per bucket; evaluation touches only the
/// bucket the point hashes to.
#[derive(Debug, Clone)]
pub struct BucketedPoly {
    buckets: Vec<ZnPoly>,
    n: Natural,
}

/// The encrypted counterpart of [`BucketedPoly`].
#[derive(Debug, Clone)]
pub struct EncryptedBucketedPoly {
    buckets: Vec<EncryptedPoly>,
}

/// Which bucket a value falls into: `SHA-256(value) mod num_buckets`.
pub fn bucket_of(value: &Natural, num_buckets: usize) -> usize {
    let digest = sha256(&value.to_bytes_be());
    let mut x = 0u64;
    for &b in &digest[..8] {
        x = (x << 8) | b as u64;
    }
    (x % num_buckets as u64) as usize
}

impl BucketedPoly {
    /// Distributes `roots` over `num_buckets` buckets and pads every bucket
    /// to the maximum load with the dummy root `n - 1` (an encoding no real
    /// join value uses — see the payload codec in `secmed-core`), so bucket
    /// degrees do not leak the distribution of values.
    pub fn from_roots(roots: &[Natural], n: &Natural, num_buckets: usize) -> Self {
        assert!(num_buckets > 0, "need at least one bucket");
        let mut groups: Vec<Vec<Natural>> = vec![Vec::new(); num_buckets];
        for r in roots {
            groups[bucket_of(r, num_buckets)].push(r.clone());
        }
        let max_load = groups.iter().map(Vec::len).max().unwrap_or(0).max(1);
        let dummy = n - &Natural::one();
        for g in &mut groups {
            while g.len() < max_load {
                g.push(dummy.clone());
            }
        }
        let buckets = groups.iter().map(|g| ZnPoly::from_roots(g, n)).collect();
        BucketedPoly {
            buckets,
            n: n.clone(),
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The per-bucket (padded) degree.
    pub fn bucket_degree(&self) -> usize {
        self.buckets[0].degree()
    }

    /// The per-bucket polynomials.
    pub fn buckets(&self) -> &[ZnPoly] {
        &self.buckets
    }

    /// Plaintext evaluation — `P_b(x)` where `b` is the bucket of `x`.
    pub fn eval(&self, x: &Natural) -> Natural {
        self.buckets[bucket_of(x, self.buckets.len())].eval(x)
    }

    /// The modulus.
    pub fn modulus(&self) -> &Natural {
        &self.n
    }
}

impl EncryptedBucketedPoly {
    /// Encrypts every bucket polynomial.
    pub fn encrypt(poly: &BucketedPoly, pk: &PaillierPublicKey, rng: &mut dyn Rng) -> Self {
        let buckets = poly
            .buckets
            .iter()
            .map(|b| EncryptedPoly::encrypt(b, pk, rng))
            .collect();
        EncryptedBucketedPoly { buckets }
    }

    /// Parallel bucket encryption: every bucket is padded to the same
    /// degree, so coefficient `k` of bucket `b` maps to the schedule-free
    /// stream index `b * (degree + 1) + k`.
    pub fn encrypt_par(
        poly: &BucketedPoly,
        pk: &PaillierPublicKey,
        pool: &Pool,
        streams: &DrbgFamily,
    ) -> Self {
        let per_bucket = poly.bucket_degree() + 1;
        let indexed: Vec<(usize, &ZnPoly)> = poly.buckets.iter().enumerate().collect();
        let buckets = pool.par_map(&indexed, |_, (b, zp)| {
            let coeffs = zp
                .coeffs
                .iter()
                .enumerate()
                .map(|(k, c)| {
                    let mut rng = streams.stream((b * per_bucket + k) as u64);
                    pk.encrypt_reduced(c, &mut rng)
                })
                .collect();
            EncryptedPoly {
                coeffs,
                pk: pk.clone(),
            }
        });
        EncryptedBucketedPoly { buckets }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total transported ciphertexts.
    pub fn total_len(&self) -> usize {
        self.buckets.iter().map(EncryptedPoly::len).sum()
    }

    /// The per-bucket encrypted polynomials (for transport).
    pub fn buckets(&self) -> &[EncryptedPoly] {
        &self.buckets
    }

    /// Rebuilds from transported per-bucket polynomials.  Every bucket must
    /// be non-empty and all buckets must share one degree — the padding
    /// invariant [`BucketedPoly::from_roots`] establishes.
    pub fn from_buckets(buckets: Vec<EncryptedPoly>) -> Result<Self, CryptoError> {
        let Some(first) = buckets.first() else {
            return Err(CryptoError::Malformed("empty bucketed polynomial"));
        };
        let per_bucket = first.len();
        if buckets
            .iter()
            .any(|b| b.len() != per_bucket || b.is_empty())
        {
            return Err(CryptoError::Malformed("uneven polynomial buckets"));
        }
        Ok(EncryptedBucketedPoly { buckets })
    }

    /// Masked evaluation against the bucket of `a` (see
    /// [`EncryptedPoly::eval_masked`]).
    pub fn eval_masked(
        &self,
        a: &Natural,
        payload: &Natural,
        rng: &mut dyn Rng,
    ) -> Result<PaillierCiphertext, CryptoError> {
        self.buckets[bucket_of(a, self.buckets.len())].eval_masked(a, payload, rng)
    }
}

fn nonzero_below(bound: &Natural, rng: &mut dyn Rng) -> Natural {
    loop {
        let r = random_below(rng, bound);
        if !r.is_zero() {
            return r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use crate::paillier::{Paillier, PaillierKeyPair};

    fn n(v: u64) -> Natural {
        Natural::from(v)
    }

    fn setup() -> (PaillierKeyPair, HmacDrbg) {
        (
            Paillier::test_keypair(256, "poly-tests"),
            HmacDrbg::from_label("poly-rng"),
        )
    }

    #[test]
    fn from_roots_small_example() {
        // (2 - x)(3 - x) = 6 - 5x + x^2 over Z_97.
        let m = n(97);
        let p = ZnPoly::from_roots(&[n(2), n(3)], &m);
        assert_eq!(p.coeffs(), &[n(6), n(92), n(1)]); // -5 mod 97 = 92
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn roots_evaluate_to_zero_non_roots_do_not() {
        let m = n(1_000_003);
        let roots = vec![n(10), n(20), n(30), n(40)];
        let p = ZnPoly::from_roots(&roots, &m);
        for r in &roots {
            assert!(p.eval(r).is_zero());
        }
        assert!(!p.eval(&n(11)).is_zero());
        assert!(!p.eval(&n(0)).is_zero());
    }

    #[test]
    fn empty_product_is_one() {
        let p = ZnPoly::from_roots(&[], &n(97));
        assert_eq!(p.eval(&n(5)), n(1));
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn duplicate_roots_still_vanish() {
        let m = n(97);
        let p = ZnPoly::from_roots(&[n(7), n(7)], &m);
        assert!(p.eval(&n(7)).is_zero());
    }

    #[test]
    fn encrypted_eval_matches_plaintext_naive_and_horner() {
        let (kp, mut rng) = setup();
        let nmod = kp.public().n().clone();
        let roots = vec![n(100), n(200), n(300)];
        let poly = ZnPoly::from_roots(&roots, &nmod);
        let enc = EncryptedPoly::encrypt(&poly, kp.public(), &mut rng);
        for x in [n(100), n(150), n(300), n(7)] {
            let expected = poly.eval(&x);
            assert_eq!(kp.decrypt(&enc.eval_naive(&x)), expected, "naive at {x}");
            assert_eq!(kp.decrypt(&enc.eval_horner(&x)), expected, "horner at {x}");
        }
    }

    #[test]
    fn masked_eval_reveals_payload_only_at_roots() {
        let (kp, mut rng) = setup();
        let nmod = kp.public().n().clone();
        let roots = vec![n(11), n(22)];
        let poly = ZnPoly::from_roots(&roots, &nmod);
        let enc = EncryptedPoly::encrypt(&poly, kp.public(), &mut rng);
        let payload = n(0xdead_beef);

        // At a root: payload comes back exactly.
        let at_root = enc.eval_masked(&n(11), &payload, &mut rng).unwrap();
        assert_eq!(kp.decrypt(&at_root), payload);

        // Off a root: result is a random-looking value != payload (whp).
        let off_root = enc.eval_masked(&n(12), &payload, &mut rng).unwrap();
        assert_ne!(kp.decrypt(&off_root), payload);
    }

    #[test]
    fn masked_eval_rejects_oversized_payload() {
        let (kp, mut rng) = setup();
        let nmod = kp.public().n().clone();
        let poly = ZnPoly::from_roots(&[n(1)], &nmod);
        let enc = EncryptedPoly::encrypt(&poly, kp.public(), &mut rng);
        let huge = kp.public().n().clone();
        assert_eq!(
            enc.eval_masked(&n(1), &huge, &mut rng),
            Err(CryptoError::MessageTooLarge)
        );
    }

    #[test]
    fn bucketed_buckets_are_padded_to_equal_degree() {
        let m = n(1_000_003);
        let roots: Vec<Natural> = (0..50).map(|i| n(i * 13 + 1)).collect();
        let bp = BucketedPoly::from_roots(&roots, &m, 8);
        assert_eq!(bp.num_buckets(), 8);
        let d = bp.bucket_degree();
        assert!(bp.buckets().iter().all(|b| b.degree() == d));
        assert!(
            d < roots.len(),
            "bucketing reduced the per-evaluation degree"
        );
    }

    #[test]
    fn bucketed_eval_vanishes_exactly_at_roots() {
        let m = n(1_000_003);
        let roots: Vec<Natural> = (0..30).map(|i| n(i * 7 + 3)).collect();
        let bp = BucketedPoly::from_roots(&roots, &m, 4);
        for r in &roots {
            assert!(bp.eval(r).is_zero(), "root {r}");
        }
        assert!(!bp.eval(&n(5)).is_zero());
    }

    #[test]
    fn encrypted_bucketed_matches_plaintext() {
        let (kp, mut rng) = setup();
        let nmod = kp.public().n().clone();
        let roots = vec![n(5), n(6), n(7), n(8), n(9)];
        let bp = BucketedPoly::from_roots(&roots, &nmod, 3);
        let enc = EncryptedBucketedPoly::encrypt(&bp, kp.public(), &mut rng);
        let payload = n(424242);
        let hit = enc.eval_masked(&n(7), &payload, &mut rng).unwrap();
        assert_eq!(kp.decrypt(&hit), payload);
        let miss = enc.eval_masked(&n(1000), &payload, &mut rng).unwrap();
        assert_ne!(kp.decrypt(&miss), payload);
    }

    #[test]
    fn bucket_of_is_stable_and_in_range() {
        for v in 0..100u64 {
            let b = bucket_of(&n(v), 7);
            assert!(b < 7);
            assert_eq!(b, bucket_of(&n(v), 7));
        }
    }

    #[test]
    fn parallel_encryption_is_identical_at_any_thread_count() {
        use crate::drbg::DrbgFamily;
        use secmed_pool::Pool;
        let (kp, _) = setup();
        let nmod = kp.public().n().clone();
        let roots: Vec<Natural> = (0..12).map(|i| n(i * 31 + 5)).collect();
        let poly = ZnPoly::from_roots(&roots, &nmod);
        let bp = BucketedPoly::from_roots(&roots, &nmod, 4);
        let flat_at = |threads: usize| {
            let mut parent = HmacDrbg::from_label("par-enc");
            let fam = DrbgFamily::derive(&mut parent);
            let enc =
                EncryptedPoly::encrypt_par(&poly, kp.public(), &Pool::with_threads(threads), &fam);
            enc.ciphertexts().to_vec()
        };
        let bucketed_at = |threads: usize| {
            let mut parent = HmacDrbg::from_label("par-enc");
            let fam = DrbgFamily::derive(&mut parent);
            let enc = EncryptedBucketedPoly::encrypt_par(
                &bp,
                kp.public(),
                &Pool::with_threads(threads),
                &fam,
            );
            enc.buckets
                .iter()
                .flat_map(|b| b.ciphertexts().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(flat_at(1), flat_at(2));
        assert_eq!(flat_at(1), flat_at(8));
        assert_eq!(bucketed_at(1), bucketed_at(2));
        assert_eq!(bucketed_at(1), bucketed_at(8));
        // And the parallel ciphertexts still decrypt to the coefficients.
        let enc = EncryptedPoly::from_ciphertexts(flat_at(4), kp.public()).unwrap();
        for r in &roots {
            assert!(kp.decrypt(&enc.eval_horner(r)).is_zero());
        }
    }

    #[test]
    fn transport_roundtrip() {
        let (kp, mut rng) = setup();
        let nmod = kp.public().n().clone();
        let poly = ZnPoly::from_roots(&[n(3), n(4)], &nmod);
        let enc = EncryptedPoly::encrypt(&poly, kp.public(), &mut rng);
        let rebuilt =
            EncryptedPoly::from_ciphertexts(enc.ciphertexts().to_vec(), kp.public()).unwrap();
        assert_eq!(kp.decrypt(&rebuilt.eval_horner(&n(3))), Natural::zero());
        assert!(EncryptedPoly::from_ciphertexts(vec![], kp.public()).is_err());
    }
}
