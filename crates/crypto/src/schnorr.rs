//! Schnorr signatures over a safe-prime group.
//!
//! Used by the certification authority to sign credentials (paper Section 2:
//! credentials are "issued by a trusted certification authority").  The
//! scheme is standard Schnorr with the challenge derived by SHA-256
//! (Fiat–Shamir).

use mpint::rng::Rng;
use mpint::Natural;

use crate::group::SafePrimeGroup;
use crate::metrics::{count, Op};
use crate::sha256::Sha256;

/// A Schnorr verification key `y = g^x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchnorrPublicKey {
    group: SafePrimeGroup,
    y: Natural,
}

/// A Schnorr signing key pair.
#[derive(Clone)]
pub struct SchnorrKeyPair {
    public: SchnorrPublicKey,
    x: Natural,
}

/// A signature `(c, s)` with `c = H(g^k || y || m)` and `s = k - c*x mod q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchnorrSignature {
    c: Natural,
    s: Natural,
}

impl SchnorrKeyPair {
    /// Generates a signing key pair in `group`.
    pub fn generate(group: SafePrimeGroup, rng: &mut dyn Rng) -> Self {
        let x = group.random_exponent(rng);
        let y = group.pow_g(&x);
        SchnorrKeyPair {
            public: SchnorrPublicKey { group, y },
            x,
        }
    }

    /// The verification key.
    pub fn public(&self) -> &SchnorrPublicKey {
        &self.public
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8], rng: &mut dyn Rng) -> SchnorrSignature {
        count(Op::SchnorrSign);
        let group = &self.public.group;
        let q = group.q();
        let k = group.random_exponent(rng);
        let r = group.pow_g(&k);
        let c = challenge(group, &r, &self.public.y, message);
        // s = k - c*x mod q
        let cx = c.modmul(&self.x.rem(q), q);
        let s = k.rem(q).modsub(&cx, q);
        SchnorrSignature { c, s }
    }
}

impl SchnorrPublicKey {
    /// The group of this key.
    pub fn group(&self) -> &SafePrimeGroup {
        &self.group
    }

    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &SchnorrSignature) -> bool {
        count(Op::SchnorrVerify);
        let group = &self.group;
        // r' = g^s * y^c; valid iff H(r' || y || m) == c.
        let gs = group.pow_g(&sig.s);
        let yc = group.pow(&self.y, &sig.c);
        let r = gs.modmul(&yc, group.p());
        challenge(group, &r, &self.y, message) == sig.c
    }
}

impl SchnorrSignature {
    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.c.to_bytes_be().len() + self.s.to_bytes_be().len()
    }

    /// Wire encoding: `u32 |c| ‖ c ‖ u32 |s| ‖ s`.
    pub fn encode(&self) -> Vec<u8> {
        let c = self.c.to_bytes_be();
        let s = self.s.to_bytes_be();
        let mut out = Vec::with_capacity(8 + c.len() + s.len());
        out.extend_from_slice(&(c.len() as u32).to_be_bytes());
        out.extend_from_slice(&c);
        out.extend_from_slice(&(s.len() as u32).to_be_bytes());
        out.extend_from_slice(&s);
        out
    }

    /// Decodes a wire-format signature.
    pub fn decode(bytes: &[u8]) -> Result<Self, crate::CryptoError> {
        fn take(bytes: &[u8], pos: &mut usize) -> Result<Natural, crate::CryptoError> {
            let err = crate::CryptoError::Malformed("truncated signature");
            if bytes.len() - *pos < 4 {
                return Err(err);
            }
            let len = u32::from_be_bytes([
                bytes[*pos],
                bytes[*pos + 1],
                bytes[*pos + 2],
                bytes[*pos + 3],
            ]) as usize;
            *pos += 4;
            if bytes.len() - *pos < len {
                return Err(err);
            }
            let v = Natural::from_bytes_be(&bytes[*pos..*pos + len]);
            *pos += len;
            Ok(v)
        }
        let mut pos = 0;
        let c = take(bytes, &mut pos)?;
        let s = take(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(crate::CryptoError::Malformed("trailing signature bytes"));
        }
        Ok(SchnorrSignature { c, s })
    }
}

/// Fiat–Shamir challenge reduced mod q.
fn challenge(group: &SafePrimeGroup, r: &Natural, y: &Natural, message: &[u8]) -> Natural {
    let mut h = Sha256::new();
    h.update(b"secmed-schnorr");
    h.update(&r.to_bytes_be());
    h.update(&y.to_bytes_be());
    h.update(message);
    Natural::from_bytes_be(&h.finalize()).rem(group.q())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use crate::group::GroupSize;

    fn setup() -> (SchnorrKeyPair, HmacDrbg) {
        let mut rng = HmacDrbg::from_label("schnorr-tests");
        let group = SafePrimeGroup::preset(GroupSize::S256);
        (SchnorrKeyPair::generate(group, &mut rng), rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (kp, mut rng) = setup();
        let sig = kp.sign(b"credential: role=physician", &mut rng);
        assert!(kp.public().verify(b"credential: role=physician", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let (kp, mut rng) = setup();
        let sig = kp.sign(b"message", &mut rng);
        assert!(!kp.public().verify(b"other message", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (kp, mut rng) = setup();
        let other = SchnorrKeyPair::generate(kp.public().group().clone(), &mut rng);
        let sig = kp.sign(b"message", &mut rng);
        assert!(!other.public().verify(b"message", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (kp, mut rng) = setup();
        let mut sig = kp.sign(b"message", &mut rng);
        sig.s = sig.s.modadd(&Natural::one(), kp.public().group().q());
        assert!(!kp.public().verify(b"message", &sig));
    }

    #[test]
    fn signatures_are_randomized() {
        let (kp, mut rng) = setup();
        let s1 = kp.sign(b"m", &mut rng);
        let s2 = kp.sign(b"m", &mut rng);
        assert_ne!(s1, s2);
        assert!(kp.public().verify(b"m", &s1));
        assert!(kp.public().verify(b"m", &s2));
    }

    #[test]
    fn wire_roundtrip() {
        let (kp, mut rng) = setup();
        let sig = kp.sign(b"msg", &mut rng);
        let decoded = SchnorrSignature::decode(&sig.encode()).unwrap();
        assert_eq!(decoded, sig);
        assert!(kp.public().verify(b"msg", &decoded));
        assert!(SchnorrSignature::decode(&sig.encode()[..5]).is_err());
    }

    #[test]
    fn empty_message_signs() {
        let (kp, mut rng) = setup();
        let sig = kp.sign(b"", &mut rng);
        assert!(kp.public().verify(b"", &sig));
    }
}
