//! SRA / Pohlig–Hellman commutative encryption over the quadratic residues
//! of a safe prime.
//!
//! This is the commutative encryption function of the paper's Section 4
//! (following Agrawal et al.): `f_e(x) = x^e mod p` on the subgroup
//! `QR_p` of prime order `q`, with `gcd(e, q) = 1`.  Exponentiation maps
//! commute — `f_e1(f_e2(x)) = f_e2(f_e1(x)) = x^(e1*e2)` — which is exactly
//! the property the mediator exploits to match join values without seeing
//! them.  The required properties:
//!
//! 1. **Commutativity** — shown above.
//! 2. **Bijectivity** — `e` invertible mod the group order `q`.
//! 3. **Invertibility** — decryption exponent `d = e^{-1} mod q`.
//! 4. **Secrecy** — DDH in `QR_p`; inputs are first hashed into the group
//!    by [`SafePrimeGroup::hash_to_group`] (the paper's ideal hash `h`).

use mpint::numtheory::{gcd, modinv};
use mpint::random::random_below;
use mpint::rng::Rng;
use mpint::Natural;

use crate::group::SafePrimeGroup;
use crate::metrics::{count, Op};
use crate::CryptoError;

/// The shared domain of a commutative-encryption deployment: the group plus
/// the ideal hash.  Both datasources must agree on this (paper: "We assume
/// that both datasources use the same ideal hash function h").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SraDomain {
    group: SafePrimeGroup,
}

/// One party's commutative cipher: a secret exponent `e` and its inverse.
///
/// ```
/// use secmed_crypto::drbg::HmacDrbg;
/// use secmed_crypto::group::{GroupSize, SafePrimeGroup};
/// use secmed_crypto::{SraCipher, SraDomain};
///
/// let mut rng = HmacDrbg::from_label("doc");
/// let domain = SraDomain::new(SafePrimeGroup::preset(GroupSize::S256));
/// let s1 = SraCipher::generate(domain.clone(), &mut rng);
/// let s2 = SraCipher::generate(domain.clone(), &mut rng);
/// let h = domain.hash(b"join-value");
/// // f_e1 ∘ f_e2 = f_e2 ∘ f_e1 — the property the mediator matches on.
/// assert_eq!(s1.encrypt(&s2.encrypt(&h)), s2.encrypt(&s1.encrypt(&h)));
/// ```
#[derive(Clone)]
pub struct SraCipher {
    domain: SraDomain,
    e: Natural,
    d: Natural,
}

impl SraDomain {
    /// Wraps a safe-prime group as an SRA domain.
    pub fn new(group: SafePrimeGroup) -> Self {
        SraDomain { group }
    }

    /// The underlying group.
    pub fn group(&self) -> &SafePrimeGroup {
        &self.group
    }

    /// The paper's ideal hash `h`: byte string → quadratic residue.
    pub fn hash(&self, data: &[u8]) -> Natural {
        self.group.hash_to_group(data)
    }

    /// Serialized size of one group element in bytes.
    pub fn element_bytes(&self) -> usize {
        (self.group.bits() as usize).div_ceil(8)
    }
}

impl SraCipher {
    /// Draws a fresh secret key `e` with `gcd(e, q) = 1`.
    pub fn generate(domain: SraDomain, rng: &mut dyn Rng) -> Self {
        let q = domain.group.q();
        loop {
            let e = random_below(rng, q);
            // lint:allow(secret-flow) -- keygen rejection sampling: the
            // candidate is discarded (never used) when the branch rejects it.
            if e.is_zero() || e.is_one() {
                continue;
            }
            // lint:allow(secret-flow) -- same rejection-sampling loop;
            // a rejected candidate leaks nothing about the key actually kept.
            if !gcd(&e, q).is_one() {
                continue;
            }
            let Ok(d) = modinv(&e, q) else { continue };
            return SraCipher { domain, e, d };
        }
    }

    /// Builds a cipher from an explicit exponent (used by tests and by
    /// deterministic re-runs).
    pub fn from_exponent(domain: SraDomain, e: Natural) -> Result<Self, CryptoError> {
        let q = domain.group.q();
        let d = modinv(&e, q)
            .map_err(|_| CryptoError::InvalidKey("exponent not coprime to group order"))?;
        Ok(SraCipher { domain, e, d })
    }

    /// The shared domain.
    pub fn domain(&self) -> &SraDomain {
        &self.domain
    }

    /// `f_e(x) = x^e mod p`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `x` is a subgroup element; commutativity only
    /// holds inside `QR_p`.
    pub fn encrypt(&self, x: &Natural) -> Natural {
        count(Op::CommutativeEncrypt);
        debug_assert!(
            self.domain.group.is_subgroup_element(x),
            "SRA input outside QR_p"
        );
        self.domain.group.pow(x, &self.e)
    }

    /// `f_e^{-1}(y) = y^d mod p`.
    pub fn decrypt(&self, y: &Natural) -> Natural {
        count(Op::CommutativeDecrypt);
        self.domain.group.pow(y, &self.d)
    }

    /// Convenience: hash a byte string into the group, then encrypt —
    /// the `f_ei(h(a))` step of the protocol.
    pub fn encrypt_value(&self, value: &[u8]) -> Natural {
        let h = self.domain.hash(value);
        self.encrypt(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use crate::group::GroupSize;

    fn setup() -> (SraDomain, HmacDrbg) {
        let rng = HmacDrbg::from_label("sra-tests");
        let domain = SraDomain::new(SafePrimeGroup::preset(GroupSize::S256));
        (domain, rng)
    }

    #[test]
    fn commutativity() {
        let (domain, mut rng) = setup();
        let s1 = SraCipher::generate(domain.clone(), &mut rng);
        let s2 = SraCipher::generate(domain.clone(), &mut rng);
        let x = domain.hash(b"join-value-42");
        let a = s1.encrypt(&s2.encrypt(&x));
        let b = s2.encrypt(&s1.encrypt(&x));
        assert_eq!(a, b);
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let (domain, mut rng) = setup();
        let s = SraCipher::generate(domain.clone(), &mut rng);
        let x = domain.hash(b"value");
        assert_eq!(s.decrypt(&s.encrypt(&x)), x);
    }

    #[test]
    fn double_encryption_peels_in_any_order() {
        let (domain, mut rng) = setup();
        let s1 = SraCipher::generate(domain.clone(), &mut rng);
        let s2 = SraCipher::generate(domain.clone(), &mut rng);
        let x = domain.hash(b"value");
        let both = s1.encrypt(&s2.encrypt(&x));
        assert_eq!(s2.decrypt(&s1.decrypt(&both)), x);
        assert_eq!(s1.decrypt(&s2.decrypt(&both)), x);
    }

    #[test]
    fn equal_values_collide_distinct_values_do_not() {
        let (domain, mut rng) = setup();
        let s1 = SraCipher::generate(domain.clone(), &mut rng);
        let s2 = SraCipher::generate(domain.clone(), &mut rng);
        // The mediator's matching rule: double encryptions are equal iff the
        // underlying values are equal.
        let e_a_12 = s1.encrypt(&s2.encrypt_value(b"alice"));
        let e_a_21 = s2.encrypt(&s1.encrypt_value(b"alice"));
        let e_b_12 = s1.encrypt(&s2.encrypt_value(b"bob"));
        assert_eq!(e_a_12, e_a_21);
        assert_ne!(e_a_12, e_b_12);
    }

    #[test]
    fn single_encryption_hides_value() {
        let (domain, mut rng) = setup();
        let s = SraCipher::generate(domain.clone(), &mut rng);
        let x = domain.hash(b"value");
        assert_ne!(s.encrypt(&x), x);
    }

    #[test]
    fn from_exponent_validates_coprimality() {
        let (domain, _) = setup();
        let q = domain.group().q().clone();
        assert!(SraCipher::from_exponent(domain.clone(), q).is_err());
        assert!(SraCipher::from_exponent(domain.clone(), Natural::zero()).is_err());
        assert!(SraCipher::from_exponent(domain.clone(), Natural::from(3u64)).is_ok());
    }

    #[test]
    fn encryption_stays_in_subgroup() {
        let (domain, mut rng) = setup();
        let s = SraCipher::generate(domain.clone(), &mut rng);
        let y = s.encrypt_value(b"x");
        assert!(domain.group().is_subgroup_element(&y));
    }
}
