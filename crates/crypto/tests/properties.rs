//! Property-based tests for the cryptographic layer: roundtrips under
//! arbitrary inputs, algebraic laws of the homomorphic operations, and
//! failure-injection (tampered ciphertexts must be rejected, never
//! mis-decrypted).

use mpint::Natural;
use proptest::prelude::*;
use secmed_crypto::chacha20::ChaCha20;
use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::group::{GroupSize, SafePrimeGroup};
use secmed_crypto::hmac::{hkdf_expand, hkdf_extract, hmac_sha256};
use secmed_crypto::hybrid::{HybridKeyPair, SessionKey};
use secmed_crypto::paillier::Paillier;
use secmed_crypto::sha256::{sha256, Sha256};
use secmed_crypto::CryptoError;

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha256_distinct_on_suffix_flip(mut data in prop::collection::vec(any::<u8>(), 1..256)) {
        let original = sha256(&data);
        let last = data.len() - 1;
        data[last] ^= 1;
        prop_assert_ne!(sha256(&data), original);
    }

    #[test]
    fn hmac_key_and_message_sensitivity(key in prop::collection::vec(any::<u8>(), 0..80), msg in prop::collection::vec(any::<u8>(), 0..256)) {
        let mac = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        key2.push(0x01);
        prop_assert_ne!(hmac_sha256(&key2, &msg), mac);
        let mut msg2 = msg.clone();
        msg2.push(0x01);
        prop_assert_ne!(hmac_sha256(&key, &msg2), mac);
    }

    #[test]
    fn hkdf_expand_lengths(len in 1usize..500, info in prop::collection::vec(any::<u8>(), 0..32)) {
        let prk = hkdf_extract(b"salt", b"ikm");
        let out = hkdf_expand(&prk, &info, len);
        prop_assert_eq!(out.len(), len);
    }

    #[test]
    fn chacha_roundtrip_and_nontriviality(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(), msg in prop::collection::vec(any::<u8>(), 1..512)) {
        let ct = ChaCha20::new(&key, &nonce).apply(&msg);
        prop_assert_eq!(ChaCha20::new(&key, &nonce).apply(&ct), msg.clone());
        prop_assert_ne!(ct, msg);
    }

    #[test]
    fn chacha_counter_separation(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(), c1 in any::<u32>(), c2 in any::<u32>()) {
        prop_assume!(c1 != c2);
        let b1 = ChaCha20::with_counter(&key, &nonce, c1).block();
        let b2 = ChaCha20::with_counter(&key, &nonce, c2).block();
        prop_assert_ne!(b1, b2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hybrid_tamper_any_body_byte_fails(msg in prop::collection::vec(any::<u8>(), 1..128), seed in any::<u64>(), flip in any::<u8>()) {
        prop_assume!(flip != 0);
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let kp = HybridKeyPair::generate(SafePrimeGroup::preset(GroupSize::S256), &mut rng);
        let ct = kp.public().encrypt(&msg, &mut rng);
        // Session-ciphertext level tamper: re-encrypt under a session key
        // and flip a byte of the body.
        let sk = SessionKey::generate(&mut rng);
        let mut sct = sk.encrypt(&msg, &mut rng);
        // (Field access is private; tamper through serialization instead:
        // decrypting an unrelated ciphertext with this key must fail.)
        let other = SessionKey::generate(&mut rng);
        prop_assert_eq!(other.decrypt(&sct), Err(CryptoError::MacMismatch));
        sct = sk.encrypt(&[flip], &mut rng);
        prop_assert_eq!(sk.decrypt(&sct).unwrap(), vec![flip]);
        // And the hybrid ciphertext still decrypts fine.
        prop_assert_eq!(kp.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn paillier_add_is_commutative_and_associative(a in any::<u32>(), b in any::<u32>(), c in any::<u32>(), seed in any::<u64>()) {
        let kp = Paillier::test_keypair(256, "prop-assoc");
        let pk = kp.public();
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let (ea, eb, ec) = (
            pk.encrypt(&Natural::from(a as u64), &mut rng).unwrap(),
            pk.encrypt(&Natural::from(b as u64), &mut rng).unwrap(),
            pk.encrypt(&Natural::from(c as u64), &mut rng).unwrap(),
        );
        let ab_c = pk.add(&pk.add(&ea, &eb), &ec);
        let a_bc = pk.add(&ea, &pk.add(&eb, &ec));
        // Ciphertexts differ, but plaintexts agree.
        prop_assert_eq!(kp.decrypt(&ab_c), kp.decrypt(&a_bc));
        let ba = pk.add(&eb, &ea);
        prop_assert_eq!(kp.decrypt(&pk.add(&ea, &eb)), kp.decrypt(&ba));
    }

    #[test]
    fn paillier_scale_distributes_over_add(a in any::<u32>(), b in any::<u32>(), g in 1..10_000u64, seed in any::<u64>()) {
        let kp = Paillier::test_keypair(256, "prop-dist");
        let pk = kp.public();
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let ea = pk.encrypt(&Natural::from(a as u64), &mut rng).unwrap();
        let eb = pk.encrypt(&Natural::from(b as u64), &mut rng).unwrap();
        let gamma = Natural::from(g);
        let lhs = pk.scale(&pk.add(&ea, &eb), &gamma);
        let rhs = pk.add(&pk.scale(&ea, &gamma), &pk.scale(&eb, &gamma));
        prop_assert_eq!(kp.decrypt(&lhs), kp.decrypt(&rhs));
    }

    #[test]
    fn group_hash_is_collision_free_on_samples(values in prop::collection::btree_set(prop::collection::vec(any::<u8>(), 1..16), 2..10)) {
        let g = SafePrimeGroup::preset(GroupSize::S256);
        let hashes: Vec<Natural> = values.iter().map(|v| g.hash_to_group(v)).collect();
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn schnorr_rejects_any_message_perturbation(msg in prop::collection::vec(any::<u8>(), 1..64), seed in any::<u64>(), idx in any::<usize>()) {
        use secmed_crypto::schnorr::SchnorrKeyPair;
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let kp = SchnorrKeyPair::generate(SafePrimeGroup::preset(GroupSize::S256), &mut rng);
        let sig = kp.sign(&msg, &mut rng);
        prop_assert!(kp.public().verify(&msg, &sig));
        let mut tampered = msg.clone();
        let i = idx % tampered.len();
        tampered[i] ^= 0x5a;
        prop_assert!(!kp.public().verify(&tampered, &sig));
    }
}
