//! Property-based tests for the cryptographic layer: roundtrips under
//! arbitrary inputs, algebraic laws of the homomorphic operations, and
//! failure-injection (tampered ciphertexts must be rejected, never
//! mis-decrypted).

use mpint::Natural;
use secmed_crypto::chacha20::ChaCha20;
use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::group::{GroupSize, SafePrimeGroup};
use secmed_crypto::hmac::{hkdf_expand, hkdf_extract, hmac_sha256};
use secmed_crypto::hybrid::{HybridKeyPair, SessionKey};
use secmed_crypto::paillier::Paillier;
use secmed_crypto::sha256::{sha256, Sha256};
use secmed_crypto::CryptoError;
use secmed_testkit::{cases, DEFAULT_CASES};

/// Case count for the expensive keypair-generating properties (matching
/// the reduced configuration of the previous framework).
const EXPENSIVE_CASES: u64 = 12;

#[test]
fn sha256_incremental_equals_oneshot() {
    cases(DEFAULT_CASES, "sha256_incremental_equals_oneshot", |g| {
        let data = g.bytes_in(0, 2047);
        let split = g.usize_in(0, 2047).min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), sha256(&data));
    });
}

#[test]
fn sha256_distinct_on_suffix_flip() {
    cases(DEFAULT_CASES, "sha256_distinct_on_suffix_flip", |g| {
        let mut data = g.bytes_in(1, 255);
        let original = sha256(&data);
        let last = data.len() - 1;
        data[last] ^= 1;
        assert_ne!(sha256(&data), original);
    });
}

#[test]
fn hmac_key_and_message_sensitivity() {
    cases(DEFAULT_CASES, "hmac_key_and_message_sensitivity", |g| {
        let key = g.bytes_in(0, 79);
        let msg = g.bytes_in(0, 255);
        let mac = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        key2.push(0x01);
        assert_ne!(hmac_sha256(&key2, &msg), mac);
        let mut msg2 = msg.clone();
        msg2.push(0x01);
        assert_ne!(hmac_sha256(&key, &msg2), mac);
    });
}

#[test]
fn hkdf_expand_lengths() {
    cases(DEFAULT_CASES, "hkdf_expand_lengths", |g| {
        let len = g.usize_in(1, 499);
        let info = g.bytes_in(0, 31);
        let prk = hkdf_extract(b"salt", b"ikm");
        let out = hkdf_expand(&prk, &info, len);
        assert_eq!(out.len(), len);
    });
}

#[test]
fn chacha_roundtrip_and_nontriviality() {
    cases(DEFAULT_CASES, "chacha_roundtrip_and_nontriviality", |g| {
        let key: [u8; 32] = g.bytes(32).try_into().unwrap();
        let nonce: [u8; 12] = g.bytes(12).try_into().unwrap();
        let msg = g.bytes_in(1, 511);
        let ct = ChaCha20::new(&key, &nonce).apply(&msg);
        assert_eq!(ChaCha20::new(&key, &nonce).apply(&ct), msg.clone());
        assert_ne!(ct, msg);
    });
}

#[test]
fn chacha_counter_separation() {
    cases(DEFAULT_CASES, "chacha_counter_separation", |g| {
        let key: [u8; 32] = g.bytes(32).try_into().unwrap();
        let nonce: [u8; 12] = g.bytes(12).try_into().unwrap();
        let c1 = g.u32();
        let c2 = g.u32();
        if c1 == c2 {
            return;
        }
        let b1 = ChaCha20::with_counter(&key, &nonce, c1).block();
        let b2 = ChaCha20::with_counter(&key, &nonce, c2).block();
        assert_ne!(b1, b2);
    });
}

#[test]
fn hybrid_tamper_any_body_byte_fails() {
    cases(EXPENSIVE_CASES, "hybrid_tamper_any_body_byte_fails", |g| {
        let msg = g.bytes_in(1, 127);
        let seed = g.u64();
        let flip = loop {
            let f = g.u8();
            if f != 0 {
                break f;
            }
        };
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let kp = HybridKeyPair::generate(SafePrimeGroup::preset(GroupSize::S256), &mut rng);
        let ct = kp.public().encrypt(&msg, &mut rng);
        // Session-ciphertext level tamper: re-encrypt under a session key
        // and flip a byte of the body.
        let sk = SessionKey::generate(&mut rng);
        let mut sct = sk.encrypt(&msg, &mut rng);
        // (Field access is private; tamper through serialization instead:
        // decrypting an unrelated ciphertext with this key must fail.)
        let other = SessionKey::generate(&mut rng);
        assert_eq!(other.decrypt(&sct), Err(CryptoError::MacMismatch));
        sct = sk.encrypt(&[flip], &mut rng);
        assert_eq!(sk.decrypt(&sct).unwrap(), vec![flip]);
        // And the hybrid ciphertext still decrypts fine.
        assert_eq!(kp.decrypt(&ct).unwrap(), msg);
    });
}

#[test]
fn paillier_add_is_commutative_and_associative() {
    cases(
        EXPENSIVE_CASES,
        "paillier_add_is_commutative_and_associative",
        |g| {
            let (a, b, c) = (g.u32(), g.u32(), g.u32());
            let seed = g.u64();
            let kp = Paillier::test_keypair(256, "prop-assoc");
            let pk = kp.public();
            let mut rng = HmacDrbg::new(&seed.to_be_bytes());
            let (ea, eb, ec) = (
                pk.encrypt(&Natural::from(a as u64), &mut rng).unwrap(),
                pk.encrypt(&Natural::from(b as u64), &mut rng).unwrap(),
                pk.encrypt(&Natural::from(c as u64), &mut rng).unwrap(),
            );
            let ab_c = pk.add(&pk.add(&ea, &eb), &ec);
            let a_bc = pk.add(&ea, &pk.add(&eb, &ec));
            // Ciphertexts differ, but plaintexts agree.
            assert_eq!(kp.decrypt(&ab_c), kp.decrypt(&a_bc));
            let ba = pk.add(&eb, &ea);
            assert_eq!(kp.decrypt(&pk.add(&ea, &eb)), kp.decrypt(&ba));
        },
    );
}

#[test]
fn paillier_scale_distributes_over_add() {
    cases(
        EXPENSIVE_CASES,
        "paillier_scale_distributes_over_add",
        |g| {
            let (a, b) = (g.u32(), g.u32());
            let gamma = Natural::from(1 + g.u64_below(9_999));
            let seed = g.u64();
            let kp = Paillier::test_keypair(256, "prop-dist");
            let pk = kp.public();
            let mut rng = HmacDrbg::new(&seed.to_be_bytes());
            let ea = pk.encrypt(&Natural::from(a as u64), &mut rng).unwrap();
            let eb = pk.encrypt(&Natural::from(b as u64), &mut rng).unwrap();
            let lhs = pk.scale(&pk.add(&ea, &eb), &gamma);
            let rhs = pk.add(&pk.scale(&ea, &gamma), &pk.scale(&eb, &gamma));
            assert_eq!(kp.decrypt(&lhs), kp.decrypt(&rhs));
        },
    );
}

#[test]
fn group_hash_is_collision_free_on_samples() {
    cases(
        EXPENSIVE_CASES,
        "group_hash_is_collision_free_on_samples",
        |gen| {
            use std::collections::BTreeSet;
            let mut values: BTreeSet<Vec<u8>> = BTreeSet::new();
            let target = gen.usize_in(2, 9);
            while values.len() < target {
                values.insert(gen.bytes_in(1, 15));
            }
            let g = SafePrimeGroup::preset(GroupSize::S256);
            let hashes: Vec<Natural> = values.iter().map(|v| g.hash_to_group(v)).collect();
            for (i, a) in hashes.iter().enumerate() {
                for b in &hashes[i + 1..] {
                    assert_ne!(a, b);
                }
            }
        },
    );
}

#[test]
fn schnorr_rejects_any_message_perturbation() {
    cases(
        EXPENSIVE_CASES,
        "schnorr_rejects_any_message_perturbation",
        |g| {
            use secmed_crypto::schnorr::SchnorrKeyPair;
            let msg = g.bytes_in(1, 63);
            let seed = g.u64();
            let idx = g.u64() as usize;
            let mut rng = HmacDrbg::new(&seed.to_be_bytes());
            let kp = SchnorrKeyPair::generate(SafePrimeGroup::preset(GroupSize::S256), &mut rng);
            let sig = kp.sign(&msg, &mut rng);
            assert!(kp.public().verify(&msg, &sig));
            let mut tampered = msg.clone();
            let i = idx % tampered.len();
            tampered[i] ^= 0x5a;
            assert!(!kp.public().verify(&tampered, &sig));
        },
    );
}
