//! DAS-encrypted relations and the mediator-side server join.
//!
//! The encrypted relation `R^S(Etuple, A^S_join)` of the paper: each row
//! carries the hybrid-encrypted tuple bytes (`etuple`) and the index value
//! of its join-attribute partition.  The mediator executes the server
//! query — a filtered cross product over index values — without ever
//! decrypting an `etuple`.

use secmed_crypto::hybrid::HybridCiphertext;
use secmed_pool::Pool;

use crate::index::IndexValue;
use crate::translate::ServerQuery;

/// One row of an encrypted partial result: `⟨etuple, a^S_join⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DasRow {
    /// The encrypted tuple (only the client can open it).
    pub etuple: HybridCiphertext,
    /// The index value of the join attribute's partition.
    pub index: IndexValue,
}

/// An encrypted partial result `R_i^S`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EncryptedDasRelation {
    rows: Vec<DasRow>,
}

/// The server-query result `R_C`: pairs of encrypted rows whose index
/// values satisfy `Cond_S`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerResult {
    pairs: Vec<(DasRow, DasRow)>,
}

impl EncryptedDasRelation {
    /// An empty encrypted relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: DasRow) {
        self.rows.push(row);
    }

    /// The rows.
    pub fn rows(&self) -> &[DasRow] {
        &self.rows
    }

    /// Number of rows — this is the `|R_i|` the mediator learns (Table 1).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Executes the server query `q_S` against two encrypted relations —
    /// the mediator's step 6 of Listing 2.  Pure ciphertext processing: the
    /// only plaintext consulted is the pair of index values.
    ///
    /// Left-major: the outer relation is chunked across the pool's workers
    /// and each chunk scans the full right relation, so the pair order is
    /// identical to the sequential nested loop at any thread count.
    pub fn server_join(
        left: &EncryptedDasRelation,
        right: &EncryptedDasRelation,
        query: &ServerQuery,
        pool: &Pool,
    ) -> ServerResult {
        use std::collections::HashSet;
        let admitted: HashSet<(u64, u64)> = query.pairs().iter().map(|(a, b)| (a.0, b.0)).collect();
        let pairs = pool.par_chunks(&left.rows, |_, chunk| {
            let mut out = Vec::new();
            for l in chunk {
                for r in &right.rows {
                    if admitted.contains(&(l.index.0, r.index.0)) {
                        out.push((l.clone(), r.clone()));
                    }
                }
            }
            out
        });
        ServerResult { pairs }
    }
}

impl ServerResult {
    /// The combined encrypted rows.
    pub fn pairs(&self) -> &[(DasRow, DasRow)] {
        &self.pairs
    }

    /// Size of `R_C` — the upper bound on the global result size that the
    /// mediator learns (Table 1).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the superset is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexTable;
    use crate::partition::PartitionScheme;
    use relalg::Value;
    use secmed_crypto::drbg::HmacDrbg;
    use secmed_crypto::group::{GroupSize, SafePrimeGroup};
    use secmed_crypto::hybrid::HybridKeyPair;
    use std::collections::BTreeSet;

    fn domain(vals: &[i64]) -> BTreeSet<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    fn encrypt_rows(
        values: &[i64],
        table: &IndexTable,
        kp: &HybridKeyPair,
        rng: &mut HmacDrbg,
    ) -> EncryptedDasRelation {
        let mut rel = EncryptedDasRelation::new();
        for &v in values {
            let etuple = kp.public().encrypt(format!("tuple-{v}").as_bytes(), rng);
            let index = table.index_of(&Value::Int(v)).unwrap();
            rel.push(DasRow { etuple, index });
        }
        rel
    }

    #[test]
    fn server_join_with_per_value_partitions_is_exact() {
        let mut rng = HmacDrbg::from_label("das-enc");
        let kp = HybridKeyPair::generate(SafePrimeGroup::preset(GroupSize::S256), &mut rng);

        let d1 = domain(&[1, 2, 3]);
        let d2 = domain(&[2, 3, 4]);
        let t1 = IndexTable::build(&d1, PartitionScheme::PerValue, 1).unwrap();
        let t2 = IndexTable::build(&d2, PartitionScheme::PerValue, 2).unwrap();
        let r1 = encrypt_rows(&[1, 2, 3], &t1, &kp, &mut rng);
        let r2 = encrypt_rows(&[2, 3, 4], &t2, &kp, &mut rng);

        let q = ServerQuery::translate(&t1, &t2);
        let rc = EncryptedDasRelation::server_join(&r1, &r2, &q, &Pool::sequential());
        // Exact: only the matching values 2 and 3 pair up.
        assert_eq!(rc.len(), 2);
        // The client can decrypt both sides of each pair.
        for (l, r) in rc.pairs() {
            let lt = kp.decrypt(&l.etuple).unwrap();
            let rt = kp.decrypt(&r.etuple).unwrap();
            assert_eq!(lt, rt);
        }
    }

    #[test]
    fn coarse_partitions_return_superset() {
        let mut rng = HmacDrbg::from_label("das-coarse");
        let kp = HybridKeyPair::generate(SafePrimeGroup::preset(GroupSize::S256), &mut rng);

        let vals1: Vec<i64> = (0..10).collect();
        let vals2: Vec<i64> = (5..15).collect();
        let d1 = domain(&vals1);
        let d2 = domain(&vals2);
        let t1 = IndexTable::build(&d1, PartitionScheme::EquiWidth(2), 1).unwrap();
        let t2 = IndexTable::build(&d2, PartitionScheme::EquiWidth(2), 2).unwrap();
        let r1 = encrypt_rows(&vals1, &t1, &kp, &mut rng);
        let r2 = encrypt_rows(&vals2, &t2, &kp, &mut rng);

        let q = ServerQuery::translate(&t1, &t2);
        let rc = EncryptedDasRelation::server_join(&r1, &r2, &q, &Pool::with_threads(3));
        // True join size is 5 (values 5..10); coarse buckets give at least
        // that many candidate pairs.
        assert!(rc.len() >= 5, "rc.len() = {}", rc.len());
        // The parallel scan yields exactly the sequential pair order.
        let seq = EncryptedDasRelation::server_join(&r1, &r2, &q, &Pool::sequential());
        assert_eq!(rc, seq);
    }

    #[test]
    fn empty_inputs_give_empty_result() {
        let q = ServerQuery::translate(
            &IndexTable::build(&domain(&[1]), PartitionScheme::PerValue, 1).unwrap(),
            &IndexTable::build(&domain(&[2]), PartitionScheme::PerValue, 2).unwrap(),
        );
        let rc = EncryptedDasRelation::server_join(
            &EncryptedDasRelation::new(),
            &EncryptedDasRelation::new(),
            &q,
            &Pool::with_threads(4),
        );
        assert!(rc.is_empty());
    }
}
