//! Inference-exposure metrics for bucketized data.
//!
//! The paper (Section 6) warns that "small partitions with only a few
//! values are more efficient (less post-processing is necessary) but can
//! leak confidential information", citing Hore et al. [15] and Ceselli et
//! al. [8].  This module quantifies both sides of that trade-off so the
//! `das_partitioning` bench can sweep it:
//!
//! * [`guessing_exposure`] — the adversary's expected probability of
//!   guessing a tuple's join value given only its index value (1.0 for
//!   per-value partitioning, `1/|dom|` for a single partition),
//! * [`entropy_bits`] — average residual entropy of the value within its
//!   partition,
//! * [`superset_factor`] — `|R_C| / |true join|`, the client
//!   post-processing cost.

use std::collections::BTreeSet;

use relalg::Value;

use crate::index::IndexTable;

/// For each partition, the number of *active* values it contains.
fn partition_loads(table: &IndexTable, domain: &BTreeSet<Value>) -> Vec<usize> {
    table
        .entries()
        .iter()
        .map(|(p, _)| domain.iter().filter(|v| p.contains(v)).count())
        .collect()
}

/// Expected probability that an adversary who sees an index value guesses
/// the underlying join value, assuming values are uniform over the active
/// domain: `Σ_p (|p| / N) * (1 / |p|) = #partitions / N` for full-cover
/// partitions — reported per-table so schemes compare directly.
///
/// Returns a value in `(0, 1]`; higher is worse (more exposed).
pub fn guessing_exposure(table: &IndexTable, domain: &BTreeSet<Value>) -> f64 {
    let loads = partition_loads(table, domain);
    let n: usize = loads.iter().sum();
    if n == 0 {
        return 0.0;
    }
    loads
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| (l as f64 / n as f64) * (1.0 / l as f64))
        .sum()
}

/// Average residual Shannon entropy (bits) of a value given its partition,
/// under a uniform prior over active values.  Higher is better (less
/// exposed).
pub fn entropy_bits(table: &IndexTable, domain: &BTreeSet<Value>) -> f64 {
    let loads = partition_loads(table, domain);
    let n: usize = loads.iter().sum();
    if n == 0 {
        return 0.0;
    }
    loads
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| (l as f64 / n as f64) * (l as f64).log2())
        .sum()
}

/// The client-side post-processing cost: size of the server superset
/// relative to the true join size (`>= 1`; `1.0` means the server query
/// was exact).  `true_join_size == 0` yields `f64::INFINITY` when the
/// superset is non-empty and `1.0` when it is empty too.
pub fn superset_factor(server_result_size: usize, true_join_size: usize) -> f64 {
    match (server_result_size, true_join_size) {
        (0, 0) => 1.0,
        (_, 0) => f64::INFINITY,
        (s, t) => s as f64 / t as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionScheme;

    fn domain(n: i64) -> BTreeSet<Value> {
        (0..n).map(Value::Int).collect()
    }

    #[test]
    fn per_value_has_full_exposure_and_zero_entropy() {
        let dom = domain(16);
        let t = IndexTable::build(&dom, PartitionScheme::PerValue, 0).unwrap();
        assert!((guessing_exposure(&t, &dom) - 1.0).abs() < 1e-12);
        assert!(entropy_bits(&t, &dom).abs() < 1e-12);
    }

    #[test]
    fn single_partition_minimizes_exposure() {
        let dom = domain(16);
        let t = IndexTable::build(&dom, PartitionScheme::EquiDepth(1), 0).unwrap();
        assert!((guessing_exposure(&t, &dom) - 1.0 / 16.0).abs() < 1e-12);
        assert!((entropy_bits(&t, &dom) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exposure_is_monotone_in_partition_count() {
        let dom = domain(64);
        let mut last = 0.0;
        for k in [1usize, 2, 4, 8, 16, 32] {
            let t = IndexTable::build(&dom, PartitionScheme::EquiDepth(k), 0).unwrap();
            let e = guessing_exposure(&t, &dom);
            assert!(e >= last, "k={k}: {e} < {last}");
            last = e;
        }
    }

    #[test]
    fn entropy_decreases_with_partition_count() {
        let dom = domain(64);
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 4, 8, 16, 32] {
            let t = IndexTable::build(&dom, PartitionScheme::EquiDepth(k), 0).unwrap();
            let h = entropy_bits(&t, &dom);
            assert!(h <= last, "k={k}");
            last = h;
        }
    }

    #[test]
    fn superset_factor_edges() {
        assert_eq!(superset_factor(0, 0), 1.0);
        assert_eq!(superset_factor(10, 5), 2.0);
        assert!(superset_factor(3, 0).is_infinite());
        assert_eq!(superset_factor(5, 5), 1.0);
    }
}
