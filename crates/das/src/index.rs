//! Index tables: the mapping from partitions to opaque index values
//! (`ITable_{R_i.A_join}` in the paper).

use relalg::bytes::{ByteReader, ByteWriter};
use relalg::Value;
use secmed_crypto::sha256::Sha256;

use crate::partition::{Partition, PartitionScheme};
use crate::DasError;
use std::collections::BTreeSet;

/// An opaque partition identifier.
///
/// The paper: "these identifiers can for example be computed with a
/// collision free hash function that uses properties of the partition."
/// We hash the partition description together with a per-table salt, so
/// index values do not themselves reveal partition contents to the
/// mediator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexValue(pub u64);

/// The partition → index mapping for one attribute of one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexTable {
    entries: Vec<(Partition, IndexValue)>,
    salt: u64,
}

impl IndexTable {
    /// Builds an index table by partitioning `domain` with `scheme`; `salt`
    /// should be fresh per table (it keys the collision-free hash).
    pub fn build(
        domain: &BTreeSet<Value>,
        scheme: PartitionScheme,
        salt: u64,
    ) -> Result<Self, DasError> {
        let partitions = scheme.partition(domain)?;
        let mut entries = Vec::with_capacity(partitions.len());
        let mut used = BTreeSet::new();
        for p in partitions {
            let mut id = hash_partition(&p, salt, 0);
            let mut nonce = 1u64;
            while !used.insert(id) {
                id = hash_partition(&p, salt, nonce);
                nonce += 1;
            }
            entries.push((p, IndexValue(id)));
        }
        Ok(IndexTable { entries, salt })
    }

    /// An index table with no partitions — the degenerate case of an empty
    /// partial result (nothing to index, nothing to leak).
    pub fn empty(salt: u64) -> Self {
        IndexTable {
            entries: Vec::new(),
            salt,
        }
    }

    /// The entries in order.
    pub fn entries(&self) -> &[(Partition, IndexValue)] {
        &self.entries
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no partitions (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The index value of the partition containing `v`.
    pub fn index_of(&self, v: &Value) -> Result<IndexValue, DasError> {
        self.entries
            .iter()
            .find(|(p, _)| p.contains(v))
            .map(|(_, id)| *id)
            .ok_or_else(|| DasError::Unindexed(v.to_string()))
    }

    /// Serializes the table (this byte string is what the datasource
    /// encrypts for the client — `encrypt(ITable)` in Listing 2).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = ByteWriter::new();
        buf.put_u64(self.salt);
        buf.put_u32(self.entries.len() as u32);
        for (p, id) in &self.entries {
            buf.put_u64(id.0);
            match p {
                Partition::Range { lo, hi } => {
                    buf.put_u8(0);
                    buf.put_i64(*lo);
                    buf.put_i64(*hi);
                }
                Partition::Values(set) => {
                    buf.put_u8(1);
                    buf.put_u32(set.len() as u32);
                    for v in set {
                        let enc = relalg::encode_tuple(&relalg::Tuple::new(vec![v.clone()]));
                        buf.put_u32(enc.len() as u32);
                        buf.put_slice(&enc);
                    }
                }
            }
        }
        buf.into_vec()
    }

    /// Deserializes a table.
    pub fn decode(data: &[u8]) -> Result<Self, DasError> {
        let mut buf = ByteReader::new(data);
        let need = |buf: &ByteReader, n: usize| -> Result<(), DasError> {
            if buf.remaining() < n {
                Err(DasError::Codec("truncated index table".to_string()))
            } else {
                Ok(())
            }
        };
        need(&buf, 12)?;
        let salt = buf.get_u64();
        let count = buf.get_u32() as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            need(&buf, 9)?;
            let id = IndexValue(buf.get_u64());
            let partition = match buf.get_u8() {
                0 => {
                    need(&buf, 16)?;
                    let lo = buf.get_i64();
                    let hi = buf.get_i64();
                    Partition::Range { lo, hi }
                }
                1 => {
                    need(&buf, 4)?;
                    let n = buf.get_u32() as usize;
                    let mut set = BTreeSet::new();
                    for _ in 0..n {
                        need(&buf, 4)?;
                        let len = buf.get_u32() as usize;
                        need(&buf, len)?;
                        let enc = buf.copy_to_vec(len);
                        let t = relalg::decode_tuple(&enc)
                            .map_err(|e| DasError::Codec(e.to_string()))?;
                        let v = t
                            .values()
                            .first()
                            .cloned()
                            .ok_or_else(|| DasError::Codec("empty value tuple".to_string()))?;
                        set.insert(v);
                    }
                    Partition::Values(set)
                }
                tag => return Err(DasError::Codec(format!("unknown partition tag {tag}"))),
            };
            entries.push((partition, id));
        }
        if buf.has_remaining() {
            return Err(DasError::Codec("trailing bytes".to_string()));
        }
        Ok(IndexTable { entries, salt })
    }
}

/// Collision-free hash of a partition: SHA-256 over salt, description, and
/// a disambiguating nonce, truncated to 64 bits.
fn hash_partition(p: &Partition, salt: u64, nonce: u64) -> u64 {
    let mut h = Sha256::new();
    h.update(b"secmed-das-index");
    h.update(&salt.to_be_bytes());
    h.update(&nonce.to_be_bytes());
    h.update(p.describe().as_bytes());
    let digest = h.finalize();
    u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain(vals: &[i64]) -> BTreeSet<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn every_domain_value_is_indexed() {
        let dom = domain(&[1, 3, 7, 20, 50]);
        for scheme in [
            PartitionScheme::EquiWidth(3),
            PartitionScheme::EquiDepth(2),
            PartitionScheme::PerValue,
        ] {
            let t = IndexTable::build(&dom, scheme, 42).unwrap();
            for v in &dom {
                t.index_of(v).unwrap();
            }
        }
    }

    #[test]
    fn index_values_are_unique() {
        let dom = domain(&(0..100).collect::<Vec<_>>());
        let t = IndexTable::build(&dom, PartitionScheme::PerValue, 7).unwrap();
        let mut ids: Vec<u64> = t.entries().iter().map(|(_, i)| i.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn unindexed_value_is_error() {
        let dom = domain(&[1, 2]);
        let t = IndexTable::build(&dom, PartitionScheme::PerValue, 0).unwrap();
        assert!(matches!(
            t.index_of(&Value::Int(99)),
            Err(DasError::Unindexed(_))
        ));
    }

    #[test]
    fn different_salts_give_different_ids() {
        let dom = domain(&[1, 2, 3]);
        let t1 = IndexTable::build(&dom, PartitionScheme::PerValue, 1).unwrap();
        let t2 = IndexTable::build(&dom, PartitionScheme::PerValue, 2).unwrap();
        let ids1: Vec<u64> = t1.entries().iter().map(|(_, i)| i.0).collect();
        let ids2: Vec<u64> = t2.entries().iter().map(|(_, i)| i.0).collect();
        assert_ne!(ids1, ids2);
    }

    #[test]
    fn codec_roundtrip_ranges() {
        let dom = domain(&(0..50).collect::<Vec<_>>());
        let t = IndexTable::build(&dom, PartitionScheme::EquiWidth(5), 9).unwrap();
        assert_eq!(IndexTable::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn codec_roundtrip_value_sets() {
        let dom: BTreeSet<Value> = ["alice", "bob", "carol"]
            .iter()
            .map(|&s| Value::from(s))
            .collect();
        let t = IndexTable::build(&dom, PartitionScheme::EquiDepth(2), 9).unwrap();
        assert_eq!(IndexTable::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn codec_rejects_truncation() {
        let dom = domain(&[1, 2, 3]);
        let t = IndexTable::build(&dom, PartitionScheme::PerValue, 0).unwrap();
        let bytes = t.encode();
        for cut in [0, 4, 11, bytes.len() - 1] {
            assert!(IndexTable::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }
}
