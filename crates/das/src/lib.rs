#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Database-as-a-Service (DAS) bucketization — the Hacıgümüş-style
//! encryption scheme of the paper's Section 3.
//!
//! A datasource partitions the active domain of the join attribute
//! ([`partition`]), maps each partition to an opaque index value in an
//! *index table* ([`index`]), and publishes its partial result as
//! `⟨etuple, index⟩` rows ([`encrypted`]).  The client's query translator
//! turns the join into a *server query* over index values (the DNF
//! `Cond_S` over overlapping partitions) and a *client query* for
//! post-processing ([`translate`]).  The [`exposure`] module quantifies the
//! partition-size/inference trade-off the paper cites ([15], [8]).

pub mod encrypted;
pub mod exposure;
pub mod index;
pub mod partition;
pub mod translate;

pub use encrypted::{DasRow, EncryptedDasRelation, ServerResult};
pub use index::{IndexTable, IndexValue};
pub use partition::{Partition, PartitionScheme};
pub use translate::{ClientQuery, ServerQuery};

/// Errors from the DAS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DasError {
    /// The active domain was empty — nothing to partition.
    EmptyDomain,
    /// A value fell outside every partition of an index table.
    Unindexed(String),
    /// An index table could not be decoded.
    Codec(String),
    /// Partitioning parameters were invalid (e.g. zero buckets).
    BadParameters(&'static str),
}

impl std::fmt::Display for DasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DasError::EmptyDomain => write!(f, "active domain is empty"),
            DasError::Unindexed(v) => write!(f, "value {v} not covered by any partition"),
            DasError::Codec(m) => write!(f, "index-table codec error: {m}"),
            DasError::BadParameters(m) => write!(f, "bad partitioning parameters: {m}"),
        }
    }
}

impl std::error::Error for DasError {}
