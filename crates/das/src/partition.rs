//! Active-domain partitioning.
//!
//! The paper (Section 6) notes the central tension: "Small partitions with
//! only a few values are more efficient (less post-processing is
//! necessary) but can leak confidential information."  The schemes here
//! span that spectrum; `benches/das_partitioning.rs` sweeps it.

use std::collections::BTreeSet;

use relalg::Value;

use crate::DasError;

/// One partition of an attribute domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partition {
    /// An inclusive integer range `[lo, hi]` (equi-width partitioning of
    /// `Int` domains).
    Range {
        /// Lower bound, inclusive.
        lo: i64,
        /// Upper bound, inclusive.
        hi: i64,
    },
    /// An explicit value set (equi-depth and per-value partitioning, and
    /// any non-integer domain).
    Values(BTreeSet<Value>),
}

impl Partition {
    /// Does this partition contain `v`?
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            Partition::Range { lo, hi } => match v {
                Value::Int(i) => lo <= i && i <= hi,
                _ => false,
            },
            Partition::Values(set) => set.contains(v),
        }
    }

    /// Could this partition share a value with `other`?
    ///
    /// This is the `p1 ∩ p2 ≠ ∅` test of the paper's `Cond_S`.  For two
    /// ranges the test is interval overlap (which may be a false positive
    /// with respect to *active* values — that is exactly the DAS superset
    /// cost); explicit sets are tested for true intersection.
    pub fn overlaps(&self, other: &Partition) -> bool {
        match (self, other) {
            (Partition::Range { lo: a, hi: b }, Partition::Range { lo: c, hi: d }) => {
                a.max(c) <= b.min(d)
            }
            (Partition::Range { .. }, Partition::Values(set)) => {
                set.iter().any(|v| self.contains(v))
            }
            (Partition::Values(set), Partition::Range { .. }) => {
                set.iter().any(|v| other.contains(v))
            }
            (Partition::Values(a), Partition::Values(b)) => a.intersection(b).next().is_some(),
        }
    }

    /// A human-readable description (also the basis of the partition's
    /// collision-free hash in the index table).
    pub fn describe(&self) -> String {
        match self {
            Partition::Range { lo, hi } => format!("[{lo},{hi}]"),
            Partition::Values(set) => {
                let vals: Vec<String> = set.iter().map(Value::to_string).collect();
                format!("{{{}}}", vals.join(","))
            }
        }
    }
}

/// How a datasource partitions `domactive(A_join)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// `k` equal-width integer ranges spanning the active min..max.
    /// Requires an `Int` domain.
    EquiWidth(usize),
    /// `k` partitions with (nearly) equal numbers of distinct active
    /// values.  Works for any domain type.
    EquiDepth(usize),
    /// One partition per distinct value — most efficient, most revealing.
    PerValue,
}

impl PartitionScheme {
    /// Partitions an active domain.
    pub fn partition(&self, domain: &BTreeSet<Value>) -> Result<Vec<Partition>, DasError> {
        if domain.is_empty() {
            return Err(DasError::EmptyDomain);
        }
        match self {
            PartitionScheme::EquiWidth(k) => {
                if *k == 0 {
                    return Err(DasError::BadParameters("zero buckets"));
                }
                let ints: Vec<i64> = domain
                    .iter()
                    .map(|v| {
                        v.as_int()
                            .ok_or(DasError::BadParameters("equi-width needs an Int domain"))
                    })
                    .collect::<Result<_, _>>()?;
                let lo = *ints.first().expect("non-empty domain");
                let hi = *ints.last().expect("non-empty domain");
                let span = (hi - lo + 1).max(1) as u64;
                let k = (*k as u64).min(span);
                let width = span.div_ceil(k);
                let mut parts = Vec::with_capacity(k as usize);
                let mut start = lo;
                while start <= hi {
                    let end = (start as i128 + width as i128 - 1).min(hi as i128) as i64;
                    parts.push(Partition::Range { lo: start, hi: end });
                    start = match end.checked_add(1) {
                        Some(s) => s,
                        None => break,
                    };
                }
                Ok(parts)
            }
            PartitionScheme::EquiDepth(k) => {
                if *k == 0 {
                    return Err(DasError::BadParameters("zero buckets"));
                }
                let values: Vec<&Value> = domain.iter().collect();
                let k = (*k).min(values.len());
                let per = values.len().div_ceil(k);
                Ok(values
                    .chunks(per)
                    .map(|chunk| Partition::Values(chunk.iter().map(|v| (*v).clone()).collect()))
                    .collect())
            }
            PartitionScheme::PerValue => Ok(domain
                .iter()
                .map(|v| Partition::Values(BTreeSet::from([v.clone()])))
                .collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_domain(vals: &[i64]) -> BTreeSet<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn equi_width_covers_domain() {
        let dom = int_domain(&[1, 5, 10, 15, 20]);
        let parts = PartitionScheme::EquiWidth(4).partition(&dom).unwrap();
        assert_eq!(parts.len(), 4);
        for v in &dom {
            assert_eq!(parts.iter().filter(|p| p.contains(v)).count(), 1, "{v}");
        }
    }

    #[test]
    fn equi_width_single_value_domain() {
        let dom = int_domain(&[7]);
        let parts = PartitionScheme::EquiWidth(5).partition(&dom).unwrap();
        assert_eq!(parts.len(), 1);
        assert!(parts[0].contains(&Value::Int(7)));
    }

    #[test]
    fn equi_width_rejects_strings() {
        let dom: BTreeSet<Value> = [Value::from("x")].into();
        assert!(PartitionScheme::EquiWidth(2).partition(&dom).is_err());
    }

    #[test]
    fn equi_depth_balances_counts() {
        let dom = int_domain(&(0..10).collect::<Vec<_>>());
        let parts = PartitionScheme::EquiDepth(3).partition(&dom).unwrap();
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts
            .iter()
            .map(|p| match p {
                Partition::Values(s) => s.len(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (2..=4).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn equi_depth_works_for_strings() {
        let dom: BTreeSet<Value> = ["a", "b", "c"].iter().map(|&s| Value::from(s)).collect();
        let parts = PartitionScheme::EquiDepth(2).partition(&dom).unwrap();
        assert_eq!(parts.len(), 2);
        for v in &dom {
            assert!(parts.iter().any(|p| p.contains(v)));
        }
    }

    #[test]
    fn per_value_gives_singletons() {
        let dom = int_domain(&[1, 2, 3]);
        let parts = PartitionScheme::PerValue.partition(&dom).unwrap();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn empty_domain_is_error() {
        assert_eq!(
            PartitionScheme::PerValue.partition(&BTreeSet::new()),
            Err(DasError::EmptyDomain)
        );
    }

    #[test]
    fn zero_buckets_is_error() {
        let dom = int_domain(&[1]);
        assert!(PartitionScheme::EquiWidth(0).partition(&dom).is_err());
        assert!(PartitionScheme::EquiDepth(0).partition(&dom).is_err());
    }

    #[test]
    fn range_overlap() {
        let a = Partition::Range { lo: 0, hi: 10 };
        let b = Partition::Range { lo: 10, hi: 20 };
        let c = Partition::Range { lo: 11, hi: 20 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn mixed_overlap() {
        let r = Partition::Range { lo: 0, hi: 10 };
        let inside = Partition::Values(BTreeSet::from([Value::Int(5)]));
        let outside = Partition::Values(BTreeSet::from([Value::Int(50)]));
        assert!(r.overlaps(&inside) && inside.overlaps(&r));
        assert!(!r.overlaps(&outside) && !outside.overlaps(&r));
    }

    #[test]
    fn set_overlap() {
        let a = Partition::Values(BTreeSet::from([Value::Int(1), Value::Int(2)]));
        let b = Partition::Values(BTreeSet::from([Value::Int(2), Value::Int(3)]));
        let c = Partition::Values(BTreeSet::from([Value::Int(9)]));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn describe_is_stable() {
        let p = Partition::Range { lo: 1, hi: 9 };
        assert_eq!(p.describe(), "[1,9]");
        let v = Partition::Values(BTreeSet::from([Value::Int(1), Value::from("x")]));
        assert_eq!(v.describe(), "{1,'x'}");
    }
}
