//! The DAS query translator (client setting, paper Listing 2 step 5).
//!
//! From the two decrypted index tables, the client derives:
//!
//! * the **server query** `q_S = σ_{Cond_S}(R1^S × R2^S)` where `Cond_S`
//!   is the disjunction over all pairs of *overlapping* partitions of
//!   `R1^S.A_join = index(p1) ∧ R2^S.A_join = index(p2)`,
//! * the **client query** `q_C` that re-checks the true join condition on
//!   the decrypted superset.

use relalg::{Predicate, Tuple, Value};

use crate::index::{IndexTable, IndexValue};

/// The server query: the set of index-value pairs the mediator may combine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerQuery {
    pairs: Vec<(IndexValue, IndexValue)>,
}

impl ServerQuery {
    /// Builds `Cond_S` from the two index tables: one disjunct per pair of
    /// overlapping partitions.
    pub fn translate(t1: &IndexTable, t2: &IndexTable) -> Self {
        let mut pairs = Vec::new();
        for (p1, i1) in t1.entries() {
            for (p2, i2) in t2.entries() {
                if p1.overlaps(p2) {
                    pairs.push((*i1, *i2));
                }
            }
        }
        ServerQuery { pairs }
    }

    /// Rebuilds a server query from transported index pairs (the wire form
    /// of `Cond_S`).
    pub fn from_pairs(pairs: Vec<(IndexValue, IndexValue)>) -> Self {
        ServerQuery { pairs }
    }

    /// The allowed index pairs.
    pub fn pairs(&self) -> &[(IndexValue, IndexValue)] {
        &self.pairs
    }

    /// Number of disjuncts in `Cond_S`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no partitions overlap (empty join).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Does `Cond_S` admit this pair of index values?
    pub fn admits(&self, left: IndexValue, right: IndexValue) -> bool {
        self.pairs.contains(&(left, right))
    }

    /// Renders `Cond_S` as a relalg predicate over the encrypted schemas
    /// (`R1S.Ajoin`, `R2S.Ajoin` as integer index columns) — the form in
    /// which it would be shipped as SQL.
    pub fn to_predicate(&self, left_col: &str, right_col: &str) -> Predicate {
        Predicate::any(self.pairs.iter().map(|(i1, i2)| {
            Predicate::eq_lit(left_col, i1.0 as i64).and(Predicate::eq_lit(right_col, i2.0 as i64))
        }))
    }
}

/// The client query: the true join condition, applied after decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientQuery {
    /// The join attribute base names (usually one: the paper's `A_join`).
    pub join_attrs: Vec<String>,
}

impl ClientQuery {
    /// Builds the post-processing query for the given join attributes.
    pub fn new(join_attrs: Vec<String>) -> Self {
        ClientQuery { join_attrs }
    }

    /// The true join test `Cond_C` between a decrypted tuple of `R1` and
    /// one of `R2`, given the column indices of the join attributes.
    pub fn matches(&self, t1: &Tuple, idx1: &[usize], t2: &Tuple, idx2: &[usize]) -> bool {
        idx1.len() == idx2.len() && idx1.iter().zip(idx2).all(|(&a, &b)| t1.at(a) == t2.at(b))
    }

    /// Convenience for the single-attribute case.
    pub fn matches_single(&self, v1: &Value, v2: &Value) -> bool {
        v1 == v2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionScheme;
    use std::collections::BTreeSet;

    fn domain(vals: &[i64]) -> BTreeSet<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn per_value_translation_is_exact() {
        let d1 = domain(&[1, 2, 3]);
        let d2 = domain(&[2, 3, 4]);
        let t1 = IndexTable::build(&d1, PartitionScheme::PerValue, 1).unwrap();
        let t2 = IndexTable::build(&d2, PartitionScheme::PerValue, 2).unwrap();
        let q = ServerQuery::translate(&t1, &t2);
        // Exactly the two common values produce overlapping partitions.
        assert_eq!(q.len(), 2);
        let i1 = t1.index_of(&Value::Int(2)).unwrap();
        let i2 = t2.index_of(&Value::Int(2)).unwrap();
        assert!(q.admits(i1, i2));
        let i3 = t1.index_of(&Value::Int(1)).unwrap();
        assert!(!q.admits(i3, i2));
    }

    #[test]
    fn coarse_partitions_admit_superset() {
        let d1 = domain(&(0..20).collect::<Vec<_>>());
        let d2 = domain(&(10..30).collect::<Vec<_>>());
        let t1 = IndexTable::build(&d1, PartitionScheme::EquiWidth(2), 1).unwrap();
        let t2 = IndexTable::build(&d2, PartitionScheme::EquiWidth(2), 2).unwrap();
        let q = ServerQuery::translate(&t1, &t2);
        // Every genuinely shared value must be admitted through its pair of
        // partitions — soundness of Cond_S.
        for v in 10..20 {
            let i1 = t1.index_of(&Value::Int(v)).unwrap();
            let i2 = t2.index_of(&Value::Int(v)).unwrap();
            assert!(q.admits(i1, i2), "shared value {v} not admitted");
        }
    }

    #[test]
    fn disjoint_domains_give_empty_query() {
        let t1 = IndexTable::build(&domain(&[1, 2]), PartitionScheme::PerValue, 1).unwrap();
        let t2 = IndexTable::build(&domain(&[8, 9]), PartitionScheme::PerValue, 2).unwrap();
        let q = ServerQuery::translate(&t1, &t2);
        assert!(q.is_empty());
    }

    #[test]
    fn predicate_rendering_counts_atoms() {
        let t1 = IndexTable::build(&domain(&[1, 2]), PartitionScheme::PerValue, 1).unwrap();
        let t2 = IndexTable::build(&domain(&[1, 2]), PartitionScheme::PerValue, 2).unwrap();
        let q = ServerQuery::translate(&t1, &t2);
        let pred = q.to_predicate("R1S.Ajoin", "R2S.Ajoin");
        assert_eq!(pred.atom_count(), 2 * q.len());
    }

    #[test]
    fn client_query_checks_true_equality() {
        let cq = ClientQuery::new(vec!["ssn".to_string()]);
        let t1 = Tuple::new(vec![Value::Int(5), Value::from("a")]);
        let t2 = Tuple::new(vec![Value::Int(5), Value::Int(100)]);
        let t3 = Tuple::new(vec![Value::Int(6), Value::Int(100)]);
        assert!(cq.matches(&t1, &[0], &t2, &[0]));
        assert!(!cq.matches(&t1, &[0], &t3, &[0]));
        assert!(cq.matches_single(&Value::Int(1), &Value::Int(1)));
    }
}
