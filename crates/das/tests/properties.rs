//! Property-based tests for the DAS layer: partition soundness, index
//! totality, server-query soundness (no false negatives — the superset
//! property), and codec totality.

use std::collections::BTreeSet;

use relalg::Value;
use secmed_das::exposure::{entropy_bits, guessing_exposure};
use secmed_das::{IndexTable, PartitionScheme, ServerQuery};
use secmed_testkit::{cases, Gen, DEFAULT_CASES};

/// A non-empty integer domain of 1..60 distinct values in [-1000, 1000).
fn int_domain(g: &mut Gen) -> BTreeSet<Value> {
    let target = g.usize_in(1, 59);
    let mut dom = BTreeSet::new();
    while dom.len() < target {
        dom.insert(Value::Int(g.i64_in(-1000, 999)));
    }
    dom
}

fn scheme(g: &mut Gen) -> PartitionScheme {
    match g.usize_in(0, 2) {
        0 => PartitionScheme::EquiWidth(g.usize_in(1, 19)),
        1 => PartitionScheme::EquiDepth(g.usize_in(1, 19)),
        _ => PartitionScheme::PerValue,
    }
}

#[test]
fn partitions_cover_domain_exactly_once() {
    cases(DEFAULT_CASES, "partitions_cover_domain_exactly_once", |g| {
        let dom = int_domain(g);
        let sch = scheme(g);
        let parts = sch.partition(&dom).unwrap();
        for v in &dom {
            let covering = parts.iter().filter(|p| p.contains(v)).count();
            assert_eq!(covering, 1, "value {v} covered {covering} times");
        }
    });
}

#[test]
fn index_table_is_total_and_injective_per_partition() {
    cases(
        DEFAULT_CASES,
        "index_table_is_total_and_injective_per_partition",
        |g| {
            let dom = int_domain(g);
            let sch = scheme(g);
            let salt = g.u64();
            let table = IndexTable::build(&dom, sch, salt).unwrap();
            let mut ids = BTreeSet::new();
            for (_, id) in table.entries() {
                assert!(ids.insert(*id), "duplicate index value");
            }
            for v in &dom {
                table.index_of(v).unwrap();
            }
        },
    );
}

#[test]
fn index_table_codec_total_roundtrip() {
    cases(DEFAULT_CASES, "index_table_codec_total_roundtrip", |g| {
        let dom = int_domain(g);
        let sch = scheme(g);
        let salt = g.u64();
        let table = IndexTable::build(&dom, sch, salt).unwrap();
        assert_eq!(IndexTable::decode(&table.encode()).unwrap(), table);
    });
}

#[test]
fn server_query_never_misses_shared_values() {
    cases(
        DEFAULT_CASES,
        "server_query_never_misses_shared_values",
        |g| {
            let d1 = int_domain(g);
            let d2 = int_domain(g);
            let s1 = scheme(g);
            let s2 = scheme(g);
            let t1 = IndexTable::build(&d1, s1, 1).unwrap();
            let t2 = IndexTable::build(&d2, s2, 2).unwrap();
            let q = ServerQuery::translate(&t1, &t2);
            // Soundness of Cond_S: every genuinely shared value must pass.
            for v in d1.intersection(&d2) {
                let i1 = t1.index_of(v).unwrap();
                let i2 = t2.index_of(v).unwrap();
                assert!(q.admits(i1, i2), "shared value {v} rejected");
            }
        },
    );
}

#[test]
fn pervalue_query_is_exact() {
    cases(DEFAULT_CASES, "pervalue_query_is_exact", |g| {
        let d1 = int_domain(g);
        let d2 = int_domain(g);
        let t1 = IndexTable::build(&d1, PartitionScheme::PerValue, 1).unwrap();
        let t2 = IndexTable::build(&d2, PartitionScheme::PerValue, 2).unwrap();
        let q = ServerQuery::translate(&t1, &t2);
        assert_eq!(q.len(), d1.intersection(&d2).count());
    });
}

#[test]
fn exposure_bounds() {
    cases(DEFAULT_CASES, "exposure_bounds", |g| {
        let dom = int_domain(g);
        let sch = scheme(g);
        let table = IndexTable::build(&dom, sch, 3).unwrap();
        let e = guessing_exposure(&table, &dom);
        assert!(e > 0.0 && e <= 1.0 + 1e-9, "exposure {e} out of range");
        let h = entropy_bits(&table, &dom);
        assert!(h >= -1e-9, "negative entropy {h}");
        assert!(
            h <= (dom.len() as f64).log2() + 1e-9,
            "entropy above log2(|dom|)"
        );
    });
}

#[test]
fn coarsening_equidepth_never_shrinks_cond_s() {
    cases(
        DEFAULT_CASES,
        "coarsening_equidepth_never_shrinks_cond_s",
        |g| {
            let d1 = int_domain(g);
            let d2 = int_domain(g);
            let k = g.usize_in(2, 15);
            let fine1 = IndexTable::build(&d1, PartitionScheme::EquiDepth(k), 1).unwrap();
            let fine2 = IndexTable::build(&d2, PartitionScheme::EquiDepth(k), 2).unwrap();
            let coarse1 = IndexTable::build(&d1, PartitionScheme::EquiDepth(1), 1).unwrap();
            let coarse2 = IndexTable::build(&d2, PartitionScheme::EquiDepth(1), 2).unwrap();
            let fine = ServerQuery::translate(&fine1, &fine2);
            let coarse = ServerQuery::translate(&coarse1, &coarse2);
            // With single buckets, either everything matches (1 pair) or the
            // domains are disjoint; the fine query can only admit fewer or
            // equal *fractions* of the cross product.
            let fine_fraction = fine.len() as f64 / (fine1.len() * fine2.len()) as f64;
            let coarse_fraction = coarse.len() as f64 / (coarse1.len() * coarse2.len()) as f64;
            assert!(fine_fraction <= coarse_fraction + 1e-9);
        },
    );
}
