//! Property-based tests for the DAS layer: partition soundness, index
//! totality, server-query soundness (no false negatives — the superset
//! property), and codec totality.

use std::collections::BTreeSet;

use proptest::prelude::*;
use relalg::Value;
use secmed_das::exposure::{entropy_bits, guessing_exposure};
use secmed_das::{IndexTable, PartitionScheme, ServerQuery};

fn int_domain() -> impl Strategy<Value = BTreeSet<Value>> {
    prop::collection::btree_set(-1000i64..1000, 1..60)
        .prop_map(|s| s.into_iter().map(Value::Int).collect())
}

fn scheme() -> impl Strategy<Value = PartitionScheme> {
    prop_oneof![
        (1usize..20).prop_map(PartitionScheme::EquiWidth),
        (1usize..20).prop_map(PartitionScheme::EquiDepth),
        Just(PartitionScheme::PerValue),
    ]
}

proptest! {
    #[test]
    fn partitions_cover_domain_exactly_once(dom in int_domain(), sch in scheme()) {
        let parts = sch.partition(&dom).unwrap();
        for v in &dom {
            let covering = parts.iter().filter(|p| p.contains(v)).count();
            prop_assert_eq!(covering, 1, "value {} covered {} times", v, covering);
        }
    }

    #[test]
    fn index_table_is_total_and_injective_per_partition(dom in int_domain(), sch in scheme(), salt in any::<u64>()) {
        let table = IndexTable::build(&dom, sch, salt).unwrap();
        let mut ids = BTreeSet::new();
        for (_, id) in table.entries() {
            prop_assert!(ids.insert(*id), "duplicate index value");
        }
        for v in &dom {
            table.index_of(v).unwrap();
        }
    }

    #[test]
    fn index_table_codec_total_roundtrip(dom in int_domain(), sch in scheme(), salt in any::<u64>()) {
        let table = IndexTable::build(&dom, sch, salt).unwrap();
        prop_assert_eq!(IndexTable::decode(&table.encode()).unwrap(), table);
    }

    #[test]
    fn server_query_never_misses_shared_values(
        d1 in int_domain(),
        d2 in int_domain(),
        s1 in scheme(),
        s2 in scheme(),
    ) {
        let t1 = IndexTable::build(&d1, s1, 1).unwrap();
        let t2 = IndexTable::build(&d2, s2, 2).unwrap();
        let q = ServerQuery::translate(&t1, &t2);
        // Soundness of Cond_S: every genuinely shared value must pass.
        for v in d1.intersection(&d2) {
            let i1 = t1.index_of(v).unwrap();
            let i2 = t2.index_of(v).unwrap();
            prop_assert!(q.admits(i1, i2), "shared value {} rejected", v);
        }
    }

    #[test]
    fn pervalue_query_is_exact(d1 in int_domain(), d2 in int_domain()) {
        let t1 = IndexTable::build(&d1, PartitionScheme::PerValue, 1).unwrap();
        let t2 = IndexTable::build(&d2, PartitionScheme::PerValue, 2).unwrap();
        let q = ServerQuery::translate(&t1, &t2);
        prop_assert_eq!(q.len(), d1.intersection(&d2).count());
    }

    #[test]
    fn exposure_bounds(dom in int_domain(), sch in scheme()) {
        let table = IndexTable::build(&dom, sch, 3).unwrap();
        let e = guessing_exposure(&table, &dom);
        prop_assert!(e > 0.0 && e <= 1.0 + 1e-9, "exposure {e} out of range");
        let h = entropy_bits(&table, &dom);
        prop_assert!(h >= -1e-9, "negative entropy {h}");
        prop_assert!(h <= (dom.len() as f64).log2() + 1e-9, "entropy above log2(|dom|)");
    }

    #[test]
    fn coarsening_equidepth_never_shrinks_cond_s(
        d1 in int_domain(),
        d2 in int_domain(),
        k in 2usize..16,
    ) {
        let fine1 = IndexTable::build(&d1, PartitionScheme::EquiDepth(k), 1).unwrap();
        let fine2 = IndexTable::build(&d2, PartitionScheme::EquiDepth(k), 2).unwrap();
        let coarse1 = IndexTable::build(&d1, PartitionScheme::EquiDepth(1), 1).unwrap();
        let coarse2 = IndexTable::build(&d2, PartitionScheme::EquiDepth(1), 2).unwrap();
        let fine = ServerQuery::translate(&fine1, &fine2);
        let coarse = ServerQuery::translate(&coarse1, &coarse2);
        // With single buckets, either everything matches (1 pair) or the
        // domains are disjoint; the fine query can only admit fewer or
        // equal *fractions* of the cross product.
        let fine_fraction = fine.len() as f64 / (fine1.len() * fine2.len()) as f64;
        let coarse_fraction =
            coarse.len() as f64 / (coarse1.len() * coarse2.len()) as f64;
        prop_assert!(fine_fraction <= coarse_fraction + 1e-9);
    }
}
