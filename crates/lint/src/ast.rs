//! An item-level recursive-descent parser over the lexer's token stream.
//!
//! This is deliberately *not* a full Rust grammar: the dataflow rules need
//! item structure (functions, impls, structs, uses), statement structure
//! (let bindings, expressions), and just enough expression shape to follow
//! values through bindings, field accesses, calls, and into branch
//! conditions.  Anything the parser does not understand degrades to
//! [`Expr::Unknown`] — the analysis over-approximates around it rather
//! than erroring, because the lint runs on code that already compiles.
//!
//! Every node records the 1-based source line of its first token plus the
//! index of that token in the file's token stream, so rules can anchor
//! findings and consult the source-level test mask.

use crate::lexer::{Token, TokenKind};

/// A parsed file: the flat list of top-level items.
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item.  Only the shapes the rules consume are modelled; everything
/// else (traits without bodies, macros, type aliases, ...) is skipped.
#[derive(Debug)]
pub enum Item {
    /// A function (free, in an impl, or a default trait method).
    Fn(FnItem),
    /// An `impl` block: the self-type's last path segment plus its items.
    Impl {
        /// Last segment of the implemented type's path.
        type_name: String,
        /// Items inside the block (functions, consts, nested items).
        items: Vec<Item>,
        /// Source line of the `impl` keyword.
        line: u32,
    },
    /// An inline module.
    Mod {
        /// Module name.
        name: String,
        /// Items inside.
        items: Vec<Item>,
        /// Source line.
        line: u32,
    },
    /// A struct definition with named fields (tuple/unit structs keep an
    /// empty field list).
    Struct {
        /// Type name.
        name: String,
        /// Named field identifiers.
        fields: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// A `use` declaration, as its path segments (globs and groups keep
    /// the prefix only).
    Use {
        /// Path segments, e.g. `["secmed_crypto", "metrics", "count"]`.
        path: Vec<String>,
        /// Source line.
        line: u32,
    },
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Parameters in order.  `self` receivers are parameter 0 with the
    /// single name `"self"`.
    pub params: Vec<Param>,
    /// The body (empty for trait signatures / extern declarations).
    pub body: Block,
    /// Source line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (for the test mask).
    pub token_index: usize,
}

/// One parameter: a pattern may bind several names (`(a, b): (u8, u8)`),
/// all of which alias the same positional argument for dataflow purposes.
#[derive(Debug)]
pub struct Param {
    /// Identifiers the parameter pattern binds.
    pub names: Vec<String>,
}

/// A `{ ... }` block.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <init>;` — `names` are the identifiers the pattern
    /// binds; `init` is `None` for uninitialized lets.
    Let {
        /// Identifiers bound by the pattern.
        names: Vec<String>,
        /// Initializer.
        init: Option<Expr>,
        /// `let ... else { ... }` diverging block, when present.
        else_block: Option<Block>,
        /// Source line.
        line: u32,
    },
    /// An expression statement.
    Expr(Expr),
    /// A nested item (fn inside fn, nested mod, ...).
    Item(Box<Item>),
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Identifiers the arm pattern binds (they alias the scrutinee).
    pub binds: Vec<String>,
    /// The `if` guard, when present.
    pub guard: Option<Expr>,
    /// The arm body.
    pub body: Expr,
}

/// One field in a struct literal.
#[derive(Debug)]
pub struct FieldInit {
    /// Field name.
    pub name: String,
    /// Initializer (`None` for shorthand `Struct { name }`).
    pub value: Option<Expr>,
    /// Source line of the field name.
    pub line: u32,
}

/// An expression, shaped for dataflow rather than evaluation.
#[derive(Debug)]
pub enum Expr {
    /// A (possibly qualified) path: `x`, `self.e` is *not* this (that is
    /// [`Expr::Field`]), but `a::b::c` and plain `x` are.
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// `base.name` field access (tuple indices appear as `"0"`, `"1"`).
    Field {
        /// The base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `callee(args)` where the callee is a path.
    Call {
        /// Callee path segments.
        path: Vec<String>,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `recv.name(args)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// A binary operation (`==`, `+`, `..`, ...).
    Binary {
        /// Operator text.
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line of the operator.
        line: u32,
    },
    /// Assignment (including compound `+=` and friends).
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Value.
        value: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `if cond { then } else { alt }`; for `if let PAT = scrut`, `cond`
    /// is the scrutinee and `binds` are the pattern bindings visible in
    /// `then`.
    If {
        /// Condition (or if-let scrutinee).
        cond: Box<Expr>,
        /// Pattern bindings (if-let only).
        binds: Vec<String>,
        /// Then block.
        then: Block,
        /// Else branch (`None`, a block, or a chained if).
        alt: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// `while cond { body }` (while-let handled like if-let).
    While {
        /// Condition (or while-let scrutinee).
        cond: Box<Expr>,
        /// Pattern bindings (while-let only).
        binds: Vec<String>,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `for PAT in iter { body }`.
    For {
        /// Pattern bindings (they alias the iterated value).
        binds: Vec<String>,
        /// The iterated expression (the loop bound).
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `loop { body }`.
    Loop {
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// The scrutinee.
        scrutinee: Box<Expr>,
        /// The arms.
        arms: Vec<Arm>,
        /// Source line.
        line: u32,
    },
    /// A struct literal `Path { field: expr, .. }`.
    StructLit {
        /// Type path segments.
        path: Vec<String>,
        /// Field initializers.
        fields: Vec<FieldInit>,
        /// Whether a `..base` functional-update tail is present.
        has_rest: bool,
        /// Source line.
        line: u32,
    },
    /// A macro invocation `name!(...)`; arguments are re-parsed as a
    /// comma/semicolon-separated expression list where possible.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Parsed argument expressions.
        args: Vec<Expr>,
        /// For `vec![expr; len]`-style macros: index into `args` of the
        /// first expression after a `;` separator.
        semi_at: Option<usize>,
        /// Source line.
        line: u32,
    },
    /// A block expression (incl. `unsafe { ... }`).
    Block(Block),
    /// `return expr?` / `break expr?`.
    Return {
        /// The returned value, when present.
        value: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// A closure; for dataflow the closure's value is its body's value.
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `&expr` / `*expr` / `-expr` / `!expr` — taint-transparent.
    Unary {
        /// Operand.
        expr: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `base[index]`.
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index.
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `(a, b, ...)` tuples and `[a, b, ...]` arrays.
    Tuple {
        /// Element expressions.
        items: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `[value; len]` array-repeat — `len` is an allocation size.
    Repeat {
        /// The repeated value.
        value: Box<Expr>,
        /// The length expression.
        len: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// A literal (string, char, number, bool).
    Lit {
        /// Raw token text (`"0"`, `"50_000"`, `"true"`); empty for the
        /// implicit endpoints of open ranges.
        text: String,
        /// Source line.
        line: u32,
    },
    /// Anything the parser does not model.
    Unknown {
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// The source line of the expression's first token.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Field { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::If { line, .. }
            | Expr::While { line, .. }
            | Expr::For { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Match { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Return { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Index { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Repeat { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Unknown { line } => *line,
            Expr::Block(b) => b.stmts.first().map_or(0, stmt_line),
        }
    }
}

fn stmt_line(s: &Stmt) -> u32 {
    match s {
        Stmt::Let { line, .. } => *line,
        Stmt::Expr(e) => e.line(),
        Stmt::Item(i) => match &**i {
            Item::Fn(f) => f.line,
            Item::Impl { line, .. }
            | Item::Mod { line, .. }
            | Item::Struct { line, .. }
            | Item::Use { line, .. } => *line,
        },
    }
}

/// Keywords that can never start (or continue) an expression operand.
const EXPR_STOPPERS: &[&str] = &["let", "fn", "struct", "enum", "impl", "mod", "use", "trait"];

/// Parses the token stream of one file.
pub fn parse(tokens: &[Token]) -> Ast {
    // Work on code tokens only, remembering original indices.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut p = Parser {
        tokens,
        code,
        pos: 0,
    };
    Ast {
        items: p.items(usize::MAX),
    }
}

struct Parser<'a> {
    tokens: &'a [Token],
    code: Vec<usize>,
    pos: usize,
}

impl<'a> Parser<'a> {
    // -- cursor ------------------------------------------------------

    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        self.code.get(self.pos + ahead).map(|&i| &self.tokens[i])
    }

    fn at_ident(&self, text: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(text))
    }

    fn at_punct(&self, text: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(text))
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    fn token_index(&self) -> usize {
        self.code.get(self.pos).copied().unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.peek(0)?;
        self.pos += 1;
        Some(t)
    }

    fn eat_punct(&mut self, text: &str) -> bool {
        if self.at_punct(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, text: &str) -> bool {
        if self.at_ident(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Skips a balanced bracketed region starting at the current token
    /// (which must be one of `(`/`[`/`{`); robust to early EOF.
    fn skip_balanced(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.pos += 1;
            if depth == 0 {
                return;
            }
        }
    }

    /// Skips a generic parameter list starting at `<`, counting the
    /// lexer's joined `<<`/`>>` as two brackets and ignoring `->`.
    fn skip_generics(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "(" | "[" | "{" => {
                    self.skip_balanced();
                    continue;
                }
                ";" => return, // malformed; bail before eating a statement
                _ => {}
            }
            self.pos += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    // -- items -------------------------------------------------------

    /// Parses items until `}` (when `stop_at_depth` is 0) or EOF.
    fn items(&mut self, mut budget: usize) -> Vec<Item> {
        let mut out = Vec::new();
        while self.peek(0).is_some() && !self.at_punct("}") && budget > 0 {
            budget -= 1;
            let before = self.pos;
            if let Some(item) = self.item() {
                out.push(item);
            }
            if self.pos == before {
                self.pos += 1; // never stall
            }
        }
        out
    }

    /// Parses one item, or skips tokens it cannot classify.
    fn item(&mut self) -> Option<Item> {
        // Attributes and visibility prefix the item keyword.
        while self.at_punct("#") {
            self.pos += 1;
            self.eat_punct("!");
            if self.at_punct("[") {
                self.skip_balanced();
            }
        }
        if self.eat_ident("pub") && self.at_punct("(") {
            self.skip_balanced(); // pub(crate) etc.
        }
        for modifier in ["const", "async", "unsafe", "extern"] {
            if self.at_ident(modifier) && self.peek(1).is_some_and(|t| t.is_ident("fn")) {
                self.pos += 1;
            }
        }
        let t = self.peek(0)?;
        match t.text.as_str() {
            "fn" => self.fn_item().map(Item::Fn),
            "impl" => self.impl_item(),
            "mod" => self.mod_item(),
            "struct" => self.struct_item(),
            "use" => self.use_item(),
            "trait" => self.trait_item(),
            "enum" | "union" => {
                // Skip: name, generics, then the body.
                self.pos += 1;
                self.bump();
                if self.at_punct("<") {
                    self.skip_generics();
                }
                self.skip_to_item_end();
                None
            }
            "static" | "const" | "type" => {
                self.skip_to_item_end();
                None
            }
            _ => {
                // Not an item start; let the caller advance.
                None
            }
        }
    }

    /// Skips to the end of a braceless item (`;`) or past a braced body.
    fn skip_to_item_end(&mut self) {
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                ";" => {
                    self.pos += 1;
                    return;
                }
                "{" => {
                    self.skip_balanced();
                    return;
                }
                "(" | "[" => self.skip_balanced(),
                _ => self.pos += 1,
            }
        }
    }

    fn fn_item(&mut self) -> Option<FnItem> {
        let line = self.line();
        let token_index = self.token_index();
        self.pos += 1; // fn
        let name = self.bump().map(|t| t.text.clone())?;
        if self.at_punct("<") {
            self.skip_generics();
        }
        let params = if self.at_punct("(") {
            self.fn_params()
        } else {
            Vec::new()
        };
        // Return type / where clause: skip to the body `{` or a `;`.
        loop {
            match self.peek(0).map(|t| t.text.as_str()) {
                Some("{") | Some(";") | None => break,
                Some("<") => self.skip_generics(),
                Some("(") | Some("[") => self.skip_balanced(),
                _ => self.pos += 1,
            }
        }
        let body = if self.at_punct("{") {
            self.block()
        } else {
            self.eat_punct(";");
            Block::default()
        };
        Some(FnItem {
            name,
            params,
            body,
            line,
            token_index,
        })
    }

    /// Parses `( ... )` into positional parameters.
    fn fn_params(&mut self) -> Vec<Param> {
        self.pos += 1; // (
        let mut params = Vec::new();
        let mut names = Vec::new();
        let mut in_pattern = true;
        let depth = 0i64;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                ")" if depth == 0 => {
                    self.pos += 1;
                    break;
                }
                "(" | "[" | "{" => {
                    if in_pattern {
                        // Tuple pattern: collect its binders too.
                        let mut inner_depth = 0i64;
                        while let Some(u) = self.peek(0) {
                            match u.text.as_str() {
                                "(" | "[" | "{" => inner_depth += 1,
                                ")" | "]" | "}" => {
                                    inner_depth -= 1;
                                    if inner_depth == 0 {
                                        self.pos += 1;
                                        break;
                                    }
                                }
                                ":" if inner_depth == 1 => {}
                                _ if u.kind == TokenKind::Ident && is_binder(&u.text) => {
                                    names.push(u.text.clone());
                                }
                                _ => {}
                            }
                            self.pos += 1;
                        }
                    } else {
                        self.skip_balanced();
                    }
                    continue;
                }
                "<" => {
                    self.skip_generics();
                    continue;
                }
                "," if depth == 0 => {
                    params.push(Param {
                        names: std::mem::take(&mut names),
                    });
                    in_pattern = true;
                    self.pos += 1;
                    continue;
                }
                ":" if depth == 0 => {
                    in_pattern = false;
                }
                "self" => {
                    names.push("self".to_string());
                    in_pattern = false;
                }
                _ if in_pattern && t.kind == TokenKind::Ident && is_binder(&t.text) => {
                    names.push(t.text.clone());
                }
                _ => {}
            }
            self.pos += 1;
        }
        if !names.is_empty() || !params.is_empty() {
            params.push(Param { names });
        }
        params
    }

    fn impl_item(&mut self) -> Option<Item> {
        let line = self.line();
        self.pos += 1; // impl
        if self.at_punct("<") {
            self.skip_generics();
        }
        // `impl Trait for Type` or `impl Type`: the self type is the path
        // immediately before the `{` — track the last ident seen.
        let mut type_name = String::new();
        loop {
            match self.peek(0).map(|t| (t.kind, t.text.as_str())) {
                None | Some((_, "{")) | Some((_, ";")) => break,
                Some((_, "<")) => self.skip_generics(),
                Some((_, "(")) | Some((_, "[")) => self.skip_balanced(),
                Some((TokenKind::Ident, "where")) => {
                    // where-clause: skip to the `{`.
                    while let Some(t) = self.peek(0) {
                        if t.is_punct("{") {
                            break;
                        }
                        if t.is_punct("<") {
                            self.skip_generics();
                        } else {
                            self.pos += 1;
                        }
                    }
                }
                Some((TokenKind::Ident, text)) => {
                    if text != "for" {
                        type_name = text.to_string();
                    }
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        if !self.eat_punct("{") {
            self.eat_punct(";");
            return None;
        }
        let items = self.items(usize::MAX);
        self.eat_punct("}");
        Some(Item::Impl {
            type_name,
            items,
            line,
        })
    }

    fn mod_item(&mut self) -> Option<Item> {
        let line = self.line();
        self.pos += 1; // mod
        let name = self.bump().map(|t| t.text.clone())?;
        if self.eat_punct(";") {
            return None; // out-of-line module
        }
        if !self.eat_punct("{") {
            return None;
        }
        let items = self.items(usize::MAX);
        self.eat_punct("}");
        Some(Item::Mod { name, items, line })
    }

    fn struct_item(&mut self) -> Option<Item> {
        let line = self.line();
        self.pos += 1; // struct
        let name = self.bump().map(|t| t.text.clone())?;
        if self.at_punct("<") {
            self.skip_generics();
        }
        let mut fields = Vec::new();
        if self.at_punct("(") {
            self.skip_balanced(); // tuple struct
            self.eat_punct(";");
        } else if self.eat_punct("{") {
            // `vis name: Type,` entries; nested braces never appear in a
            // field list, but generics can.
            let mut expect_name = true;
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "}" => {
                        self.pos += 1;
                        break;
                    }
                    "," => {
                        expect_name = true;
                        self.pos += 1;
                    }
                    ":" => {
                        expect_name = false;
                        self.pos += 1;
                    }
                    "<" => self.skip_generics(),
                    "(" | "[" | "{" => self.skip_balanced(),
                    "#" => {
                        self.pos += 1;
                        if self.at_punct("[") {
                            self.skip_balanced();
                        }
                    }
                    "pub" => {
                        self.pos += 1;
                        if self.at_punct("(") {
                            self.skip_balanced();
                        }
                    }
                    _ => {
                        if expect_name && t.kind == TokenKind::Ident {
                            fields.push(t.text.clone());
                            expect_name = false;
                        }
                        self.pos += 1;
                    }
                }
            }
        } else {
            self.eat_punct(";"); // unit struct
        }
        Some(Item::Struct { name, fields, line })
    }

    fn use_item(&mut self) -> Option<Item> {
        let line = self.line();
        self.pos += 1; // use
        let mut path = Vec::new();
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                ";" => {
                    self.pos += 1;
                    break;
                }
                "{" => {
                    // Group import: keep the prefix, skip the group.
                    self.skip_balanced();
                }
                "::" | "*" => self.pos += 1,
                _ => {
                    if t.kind == TokenKind::Ident && t.text != "as" {
                        path.push(t.text.clone());
                    }
                    self.pos += 1;
                }
            }
        }
        Some(Item::Use { path, line })
    }

    fn trait_item(&mut self) -> Option<Item> {
        let line = self.line();
        self.pos += 1; // trait
        let name = self.bump().map(|t| t.text.clone())?;
        // Skip generics / supertraits to the body.
        loop {
            match self.peek(0).map(|t| t.text.as_str()) {
                None | Some("{") | Some(";") => break,
                Some("<") => self.skip_generics(),
                _ => self.pos += 1,
            }
        }
        if !self.eat_punct("{") {
            self.eat_punct(";");
            return None;
        }
        let items = self.items(usize::MAX);
        self.eat_punct("}");
        // Default trait methods are real code; model the trait as an impl
        // so their bodies are analyzed.
        Some(Item::Impl {
            type_name: name,
            items,
            line,
        })
    }

    // -- statements --------------------------------------------------

    fn block(&mut self) -> Block {
        let mut stmts = Vec::new();
        if !self.eat_punct("{") {
            return Block { stmts };
        }
        while let Some(t) = self.peek(0) {
            if t.is_punct("}") {
                self.pos += 1;
                break;
            }
            let before = self.pos;
            if t.is_punct(";") {
                self.pos += 1;
                continue;
            }
            if t.is_ident("let") {
                stmts.push(self.let_stmt());
            } else if matches!(
                t.text.as_str(),
                "fn" | "struct" | "enum" | "impl" | "mod" | "use" | "trait" | "static" | "type"
            ) && t.kind == TokenKind::Ident
            {
                if let Some(item) = self.item() {
                    stmts.push(Stmt::Item(Box::new(item)));
                }
            } else if t.is_punct("#") {
                // Attribute on a statement or nested item.
                self.pos += 1;
                self.eat_punct("!");
                if self.at_punct("[") {
                    self.skip_balanced();
                }
            } else {
                let e = self.expr(true);
                stmts.push(Stmt::Expr(e));
                self.eat_punct(";");
            }
            if self.pos == before {
                self.pos += 1; // never stall
            }
        }
        Block { stmts }
    }

    fn let_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.pos += 1; // let
        let names = self.pattern_binders(&["=", ";"]);
        let mut init = None;
        let mut else_block = None;
        if self.eat_punct("=") {
            init = Some(self.expr(true));
            if self.at_ident("else") {
                self.pos += 1;
                if self.at_punct("{") {
                    else_block = Some(self.block());
                }
            }
        }
        self.eat_punct(";");
        Stmt::Let {
            names,
            init,
            else_block,
            line,
        }
    }

    /// Collects binder identifiers of a pattern, consuming tokens until
    /// one of `stops` at bracket depth 0 (the stop token is not eaten).
    /// A `:` at depth 0 switches into type position (binders no longer
    /// collected, but generics/brackets still skipped).
    fn pattern_binders(&mut self, stops: &[&str]) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i64;
        let mut in_type = false;
        while let Some(t) = self.peek(0) {
            let text = t.text.as_str();
            if depth == 0 && stops.contains(&text) {
                break;
            }
            match text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "<" => {
                    self.skip_generics();
                    continue;
                }
                ":" if depth == 0 => in_type = true,
                "::" => {
                    // Path pattern (`Op::X`): the previous ident was a
                    // path segment, not a binder.
                    if let Some(last) = names.last() {
                        if self
                            .pos
                            .checked_sub(1)
                            .and_then(|p| self.code.get(p))
                            .is_some_and(|&i| self.tokens[i].text == *last)
                        {
                            names.pop();
                        }
                    }
                }
                _ => {
                    if !in_type && t.kind == TokenKind::Ident && is_binder(text) {
                        // `x @ pattern` keeps x; struct-pattern fields
                        // (`Point { x, y }`) bind their shorthand names,
                        // which this collects too — acceptable
                        // over-approximation.
                        names.push(t.text.clone());
                    }
                }
            }
            self.pos += 1;
        }
        names.sort();
        names.dedup();
        names
    }

    // -- expressions -------------------------------------------------

    /// Operator precedence (higher binds tighter).  Assignment is
    /// handled separately (right-associative, lowest).
    fn precedence(op: &str) -> Option<u8> {
        Some(match op {
            "*" | "/" | "%" => 10,
            "+" | "-" => 9,
            "<<" | ">>" => 8,
            "&" => 7,
            "^" => 6,
            "|" => 5,
            "==" | "!=" | "<" | ">" | "<=" | ">=" => 4,
            "&&" => 3,
            "||" => 2,
            ".." | "..=" => 1,
            _ => return None,
        })
    }

    /// Parses an expression.  `structs` controls whether `Path { ... }`
    /// is read as a struct literal (false in condition position).
    fn expr(&mut self, structs: bool) -> Expr {
        self.expr_bp(0, structs)
    }

    fn expr_bp(&mut self, min_bp: u8, structs: bool) -> Expr {
        let mut lhs = self.unary(structs);
        while let Some(t) = self.peek(0) {
            if t.kind != TokenKind::Punct {
                // `as` casts: swallow the type.
                if t.is_ident("as") {
                    self.pos += 1;
                    self.skip_type_in_expr();
                    continue;
                }
                break;
            }
            let op = t.text.clone();
            let line = t.line;
            if op == "="
                || matches!(
                    op.as_str(),
                    "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
                )
            {
                if min_bp > 0 {
                    break;
                }
                self.pos += 1;
                let value = self.expr_bp(0, structs);
                lhs = Expr::Assign {
                    target: Box::new(lhs),
                    value: Box::new(value),
                    line,
                };
                continue;
            }
            let Some(bp) = Self::precedence(&op) else {
                break;
            };
            if bp < min_bp {
                break;
            }
            self.pos += 1;
            // Open ranges: `a..` with nothing rangeable after.
            if (op == ".." || op == "..=") && self.range_rhs_absent() {
                lhs = Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(Expr::Lit {
                        text: String::new(),
                        line,
                    }),
                    line,
                };
                continue;
            }
            let rhs = self.expr_bp(bp + 1, structs);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn range_rhs_absent(&self) -> bool {
        match self.peek(0) {
            None => true,
            Some(t) => matches!(t.text.as_str(), ")" | "]" | "}" | "," | ";" | "{" | "=>"),
        }
    }

    /// Skips a type after `as` (idents, paths, generics, parens).
    fn skip_type_in_expr(&mut self) {
        while let Some(t) = self.peek(0) {
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, _) | (_, "::") | (_, "*") | (_, "&") => self.pos += 1,
                (_, "<") => self.skip_generics(),
                (_, "(") | (_, "[") => self.skip_balanced(),
                _ => break,
            }
            // A single path-ish type: stop unless a connective follows.
            if !matches!(
                self.peek(0).map(|t| t.text.as_str()),
                Some("::") | Some("<")
            ) {
                break;
            }
        }
    }

    fn unary(&mut self, structs: bool) -> Expr {
        let Some(t) = self.peek(0) else {
            return Expr::Unknown { line: 0 };
        };
        let line = t.line;
        match t.text.as_str() {
            "&" | "&&" | "*" | "-" | "!" if t.kind == TokenKind::Punct => {
                self.pos += 1;
                self.eat_ident("mut");
                let inner = self.unary(structs);
                self.postfix(
                    Expr::Unary {
                        expr: Box::new(inner),
                        line,
                    },
                    structs,
                )
            }
            _ => {
                let e = self.primary(structs);
                self.postfix(e, structs)
            }
        }
    }

    fn postfix(&mut self, mut e: Expr, structs: bool) -> Expr {
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "." => {
                    let line = t.line;
                    self.pos += 1;
                    let Some(name_tok) = self.peek(0) else { break };
                    if name_tok.is_ident("await") {
                        self.pos += 1;
                        continue;
                    }
                    let name = name_tok.text.clone();
                    self.pos += 1;
                    // Turbofish on a method: `.collect::<Vec<_>>()`.
                    if self.at_punct("::") {
                        self.pos += 1;
                        if self.at_punct("<") {
                            self.skip_generics();
                        }
                    }
                    if self.at_punct("(") {
                        let args = self.call_args();
                        e = Expr::MethodCall {
                            recv: Box::new(e),
                            name,
                            args,
                            line,
                        };
                    } else {
                        e = Expr::Field {
                            base: Box::new(e),
                            name,
                            line,
                        };
                    }
                }
                "?" => self.pos += 1,
                "(" => {
                    let line = t.line;
                    let args = self.call_args();
                    // Calling a non-path expression (fn pointer, closure
                    // variable): model as a method-less call through
                    // Unknown so argument taint still unions.
                    let mut items = vec![e];
                    items.extend(args);
                    e = Expr::Tuple { items, line };
                }
                "[" => {
                    let line = t.line;
                    self.pos += 1;
                    let index = self.expr(true);
                    self.eat_punct("]");
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                        line,
                    };
                }
                "{" if structs => {
                    // Only a bare path becomes a struct literal.
                    let is_type_path = matches!(
                        &e,
                        Expr::Path { segs, .. }
                            if segs.last().is_some_and(|s| s.starts_with(char::is_uppercase))
                    );
                    if !is_type_path {
                        break;
                    }
                    let Expr::Path { segs, line } = e else {
                        unreachable!()
                    };
                    e = self.struct_lit(segs, line);
                }
                _ => break,
            }
        }
        e
    }

    /// Parses `( ... )` call arguments.
    fn call_args(&mut self) -> Vec<Expr> {
        self.pos += 1; // (
        let mut args = Vec::new();
        loop {
            if self.at_punct(")") {
                self.pos += 1;
                break;
            }
            if self.peek(0).is_none() {
                break;
            }
            let before = self.pos;
            args.push(self.expr(true));
            if self.pos == before {
                self.pos += 1;
            }
            if !self.eat_punct(",") && self.at_punct(")") {
                self.pos += 1;
                break;
            } else if self.pos == before + 1 && !self.at_punct(")") && self.peek(0).is_none() {
                break;
            }
        }
        args
    }

    fn struct_lit(&mut self, path: Vec<String>, line: u32) -> Expr {
        self.pos += 1; // {
        let mut fields = Vec::new();
        let mut has_rest = false;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "}" => {
                    self.pos += 1;
                    break;
                }
                "," => self.pos += 1,
                ".." => {
                    let rest_line = t.line;
                    has_rest = true;
                    self.pos += 1;
                    // `Path { .. }` is a rest *pattern* read in expression
                    // position (e.g. inside `matches!`): there is no base
                    // expression, and parsing one would swallow the `}`.
                    if self.at_punct("}") {
                        continue;
                    }
                    // The base expression of the functional update.
                    let base = self.expr(true);
                    fields.push(FieldInit {
                        name: "..".to_string(),
                        value: Some(base),
                        line: rest_line,
                    });
                }
                _ => {
                    let name_line = t.line;
                    let name = t.text.clone();
                    self.pos += 1;
                    if self.eat_punct(":") {
                        let value = self.expr(true);
                        fields.push(FieldInit {
                            name,
                            value: Some(value),
                            line: name_line,
                        });
                    } else {
                        fields.push(FieldInit {
                            name,
                            value: None,
                            line: name_line,
                        });
                    }
                }
            }
        }
        Expr::StructLit {
            path,
            fields,
            has_rest,
            line,
        }
    }

    fn primary(&mut self, structs: bool) -> Expr {
        let Some(t) = self.peek(0) else {
            return Expr::Unknown { line: 0 };
        };
        let line = t.line;
        match (t.kind, t.text.as_str()) {
            (TokenKind::Number, _) | (TokenKind::Literal, _) | (TokenKind::Lifetime, _) => {
                let text = t.text.clone();
                self.pos += 1;
                // A lifetime here is a loop label: `'a: loop { ... }`.
                if self.eat_punct(":") {
                    return self.primary(structs);
                }
                Expr::Lit { text, line }
            }
            (TokenKind::Ident, "true") | (TokenKind::Ident, "false") => {
                let text = t.text.clone();
                self.pos += 1;
                Expr::Lit { text, line }
            }
            (TokenKind::Ident, "if") => self.if_expr(),
            (TokenKind::Ident, "while") => {
                self.pos += 1;
                let (binds, cond) = self.condition();
                let body = self.block();
                Expr::While {
                    cond: Box::new(cond),
                    binds,
                    body,
                    line,
                }
            }
            (TokenKind::Ident, "for") => {
                self.pos += 1;
                let binds = self.pattern_binders(&["in"]);
                self.eat_ident("in");
                let iter = self.expr(false);
                let body = self.block();
                Expr::For {
                    binds,
                    iter: Box::new(iter),
                    body,
                    line,
                }
            }
            (TokenKind::Ident, "loop") => {
                self.pos += 1;
                let body = self.block();
                Expr::Loop { body, line }
            }
            (TokenKind::Ident, "match") => {
                self.pos += 1;
                let scrutinee = self.expr(false);
                let arms = self.match_arms();
                Expr::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                    line,
                }
            }
            (TokenKind::Ident, "return") | (TokenKind::Ident, "break") => {
                self.pos += 1;
                let value = if self.expr_follows() {
                    Some(Box::new(self.expr(structs)))
                } else {
                    None
                };
                Expr::Return { value, line }
            }
            (TokenKind::Ident, "continue") => {
                self.pos += 1;
                Expr::Unknown { line }
            }
            (TokenKind::Ident, "unsafe") | (TokenKind::Ident, "async") => {
                self.pos += 1;
                if self.at_punct("{") {
                    Expr::Block(self.block())
                } else {
                    Expr::Unknown { line }
                }
            }
            (TokenKind::Ident, "move") => {
                self.pos += 1;
                self.primary(structs) // closure follows
            }
            (TokenKind::Ident, "let") => {
                // A stray `let` in expression position (let-chains):
                // treat `let PAT = rhs` as its rhs.
                self.pos += 1;
                let _binds = self.pattern_binders(&["="]);
                if self.eat_punct("=") {
                    self.expr(false)
                } else {
                    Expr::Unknown { line }
                }
            }
            (TokenKind::Ident, _) => self.path_expr(structs),
            (_, "(") => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    if self.at_punct(")") {
                        self.pos += 1;
                        break;
                    }
                    if self.peek(0).is_none() {
                        break;
                    }
                    let before = self.pos;
                    items.push(self.expr(true));
                    self.eat_punct(",");
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
                if items.len() == 1 {
                    items.pop().unwrap_or(Expr::Unknown { line })
                } else {
                    Expr::Tuple { items, line }
                }
            }
            (_, "[") => {
                self.pos += 1;
                let mut items = Vec::new();
                let mut repeat_len = None;
                loop {
                    if self.at_punct("]") {
                        self.pos += 1;
                        break;
                    }
                    if self.peek(0).is_none() {
                        break;
                    }
                    let before = self.pos;
                    let e = self.expr(true);
                    if self.eat_punct(";") {
                        repeat_len = Some(self.expr(true));
                        items.push(e);
                        self.eat_punct("]");
                        break;
                    }
                    items.push(e);
                    self.eat_punct(",");
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
                match repeat_len {
                    Some(len) => Expr::Repeat {
                        value: Box::new(items.pop().unwrap_or(Expr::Unknown { line })),
                        len: Box::new(len),
                        line,
                    },
                    None => Expr::Tuple { items, line },
                }
            }
            (_, "{") => Expr::Block(self.block()),
            (_, "|") | (_, "||") => self.closure(),
            (_, "..") | (_, "..=") => {
                // Prefix range `..n`.
                self.pos += 1;
                let rhs = if self.range_rhs_absent() {
                    Expr::Lit {
                        text: String::new(),
                        line,
                    }
                } else {
                    self.expr_bp(2, structs)
                };
                Expr::Binary {
                    op: "..".to_string(),
                    lhs: Box::new(Expr::Lit {
                        text: String::new(),
                        line,
                    }),
                    rhs: Box::new(rhs),
                    line,
                }
            }
            _ => {
                self.pos += 1;
                Expr::Unknown { line }
            }
        }
    }

    fn expr_follows(&self) -> bool {
        match self.peek(0) {
            None => false,
            Some(t) => {
                !matches!(t.text.as_str(), ";" | "}" | ")" | "]" | ",")
                    && (t.kind != TokenKind::Ident || !EXPR_STOPPERS.contains(&t.text.as_str()))
            }
        }
    }

    fn if_expr(&mut self) -> Expr {
        let line = self.line();
        self.pos += 1; // if
        let (binds, cond) = self.condition();
        let then = self.block();
        let alt = if self.at_ident("else") {
            self.pos += 1;
            if self.at_ident("if") {
                Some(Box::new(self.if_expr()))
            } else if self.at_punct("{") {
                Some(Box::new(Expr::Block(self.block())))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            binds,
            then,
            alt,
            line,
        }
    }

    /// An `if`/`while` condition: either a plain no-struct expression or
    /// a `let PAT = scrutinee` whose scrutinee becomes the condition.
    fn condition(&mut self) -> (Vec<String>, Expr) {
        if self.at_ident("let") {
            self.pos += 1;
            let binds = self.pattern_binders(&["="]);
            self.eat_punct("=");
            let scrutinee = self.expr(false);
            (binds, scrutinee)
        } else {
            (Vec::new(), self.expr(false))
        }
    }

    fn match_arms(&mut self) -> Vec<Arm> {
        let mut arms = Vec::new();
        if !self.eat_punct("{") {
            return arms;
        }
        while let Some(t) = self.peek(0) {
            if t.is_punct("}") {
                self.pos += 1;
                break;
            }
            if t.is_punct(",") || t.is_punct("|") {
                self.pos += 1;
                continue;
            }
            let before = self.pos;
            let binds = self.pattern_binders(&["=>", "if"]);
            let guard = if self.eat_ident("if") {
                Some(self.expr(false))
            } else {
                None
            };
            if !self.eat_punct("=>") {
                if self.pos == before {
                    self.pos += 1;
                }
                continue;
            }
            let body = self.expr(true);
            arms.push(Arm { binds, guard, body });
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
        arms
    }

    fn closure(&mut self) -> Expr {
        let line = self.line();
        let params = if self.eat_punct("||") {
            Vec::new()
        } else {
            self.pos += 1; // |
            let names = self.pattern_binders(&["|"]);
            self.eat_punct("|");
            names
        };
        // Optional return type: `|x| -> T { ... }`.
        if self.eat_punct("->") {
            self.skip_type_in_expr();
        }
        let body = self.expr(true);
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    /// A path expression: `a`, `a::b`, `a::<T>::b`, then call/struct-lit
    /// dispatch.
    fn path_expr(&mut self, structs: bool) -> Expr {
        let line = self.line();
        let mut segs = Vec::new();
        while let Some(t) = self.peek(0) {
            if t.kind == TokenKind::Ident {
                segs.push(t.text.clone());
                self.pos += 1;
            } else {
                break;
            }
            if self.at_punct("::") {
                self.pos += 1;
                if self.at_punct("<") {
                    self.skip_generics(); // turbofish
                    if !self.at_punct("::") {
                        break;
                    }
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            self.pos += 1;
            return Expr::Unknown { line };
        }
        if self.at_punct("!") {
            // Macro invocation.
            let name = segs.last().cloned().unwrap_or_default();
            self.pos += 1;
            return self.macro_call(name, line);
        }
        if self.at_punct("(") {
            let args = self.call_args();
            return Expr::Call {
                path: segs,
                args,
                line,
            };
        }
        if structs
            && self.at_punct("{")
            && segs
                .last()
                .is_some_and(|s| s.starts_with(char::is_uppercase))
        {
            return self.struct_lit(segs, line);
        }
        Expr::Path { segs, line }
    }

    /// Parses macro arguments as a loose `,`/`;`-separated expression
    /// list inside whichever bracket follows.
    fn macro_call(&mut self, name: String, line: u32) -> Expr {
        let close = match self.peek(0).map(|t| t.text.as_str()) {
            Some("(") => ")",
            Some("[") => "]",
            Some("{") => "}",
            _ => {
                return Expr::Macro {
                    name,
                    args: Vec::new(),
                    semi_at: None,
                    line,
                }
            }
        };
        self.pos += 1;
        let mut args = Vec::new();
        let mut semi_at = None;
        while let Some(t) = self.peek(0) {
            if t.text == close {
                self.pos += 1;
                break;
            }
            if t.is_punct(",") {
                self.pos += 1;
                continue;
            }
            if t.is_punct(";") {
                semi_at = semi_at.or(Some(args.len()));
                self.pos += 1;
                continue;
            }
            let before = self.pos;
            args.push(self.expr(true));
            if self.pos == before {
                self.pos += 1; // token the expr parser refused; skip it
                args.pop();
            }
        }
        Expr::Macro {
            name,
            args,
            semi_at,
            line,
        }
    }
}

/// True when an identifier can be a pattern binder (lowercase start, not
/// a keyword or `_`).
fn is_binder(text: &str) -> bool {
    !matches!(
        text,
        "_" | "mut"
            | "ref"
            | "box"
            | "if"
            | "in"
            | "as"
            | "move"
            | "else"
            | "self"
            | "Self"
            | "true"
            | "false"
            | "const"
            | "dyn"
            | "impl"
            | "where"
    ) && text.starts_with(|c: char| c.is_lowercase() || c == '_')
}

/// Visits every expression under `block`, pre-order (outer before inner),
/// including expressions nested in blocks, arms, closures, and field
/// initializers.  Nested *items* (a fn inside a fn) are not entered —
/// [`for_each_fn`] yields those separately.
pub fn walk_exprs<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = else_block {
                    walk_exprs(b, f);
                }
            }
            Stmt::Expr(e) => walk_expr(e, f),
            Stmt::Item(_) => {}
        }
    }
}

/// Visits `e` and every expression nested inside it, pre-order.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Field { base, .. } => walk_expr(base, f),
        Expr::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, f)),
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            args.iter().for_each(|a| walk_expr(a, f));
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Assign { target, value, .. } => {
            walk_expr(target, f);
            walk_expr(value, f);
        }
        Expr::If {
            cond, then, alt, ..
        } => {
            walk_expr(cond, f);
            walk_exprs(then, f);
            if let Some(a) = alt {
                walk_expr(a, f);
            }
        }
        Expr::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_exprs(body, f);
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_exprs(body, f);
        }
        Expr::Loop { body, .. } => walk_exprs(body, f),
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        Expr::StructLit { fields, .. } => {
            for field in fields {
                if let Some(v) = &field.value {
                    walk_expr(v, f);
                }
            }
        }
        Expr::Macro { args, .. } => args.iter().for_each(|a| walk_expr(a, f)),
        Expr::Block(b) => walk_exprs(b, f),
        Expr::Return { value, .. } => {
            if let Some(v) = value {
                walk_expr(v, f);
            }
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Index { base, index, .. } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Tuple { items, .. } => items.iter().for_each(|i| walk_expr(i, f)),
        Expr::Repeat { value, len, .. } => {
            walk_expr(value, f);
            walk_expr(len, f);
        }
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown { .. } => {}
    }
}

/// Walks every function item in an AST (including those nested in impls,
/// mods, and other functions), with the enclosing impl type name if any.
pub fn for_each_fn<'a>(ast: &'a Ast, f: &mut dyn FnMut(Option<&'a str>, &'a FnItem)) {
    fn walk<'a>(
        items: &'a [Item],
        owner: Option<&'a str>,
        f: &mut dyn FnMut(Option<&'a str>, &'a FnItem),
    ) {
        for item in items {
            match item {
                Item::Fn(func) => {
                    f(owner, func);
                    walk_block_items(&func.body, owner, f);
                }
                Item::Impl {
                    type_name, items, ..
                } => walk(items, Some(type_name.as_str()), f),
                Item::Mod { items, .. } => walk(items, owner, f),
                Item::Struct { .. } | Item::Use { .. } => {}
            }
        }
    }
    fn walk_block_items<'a>(
        block: &'a Block,
        owner: Option<&'a str>,
        f: &mut dyn FnMut(Option<&'a str>, &'a FnItem),
    ) {
        for stmt in &block.stmts {
            if let Stmt::Item(item) = stmt {
                walk(std::slice::from_ref(item), owner, f);
            }
        }
    }
    walk(&ast.items, None, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src))
    }

    fn fns(ast: &Ast) -> Vec<(Option<String>, String)> {
        let mut out = Vec::new();
        for_each_fn(ast, &mut |owner, f| {
            out.push((owner.map(str::to_string), f.name.clone()));
        });
        out
    }

    #[test]
    fn items_and_impls_are_found() {
        let ast = parse_src(
            "struct P { a: u8, b: Vec<u8> }\n\
             impl P {\n    pub fn new(a: u8) -> Self { P { a, b: Vec::new() } }\n}\n\
             fn free(x: u64, (l, r): (u8, u8)) -> u64 { x }\n\
             mod inner { fn nested() {} }\n",
        );
        assert_eq!(
            fns(&ast),
            vec![
                (Some("P".to_string()), "new".to_string()),
                (None, "free".to_string()),
                (None, "nested".to_string()),
            ]
        );
        let Item::Struct { name, fields, .. } = &ast.items[0] else {
            panic!("expected struct, got {:?}", ast.items[0]);
        };
        assert_eq!(name, "P");
        assert_eq!(fields, &["a", "b"]);
    }

    #[test]
    fn params_collect_binders_including_self_and_tuples() {
        let ast = parse_src("impl T { fn m(&mut self, x: u8, (a, b): (u8, u8)) {} }");
        let mut params = Vec::new();
        for_each_fn(&ast, &mut |_, f| {
            params = f.params.iter().map(|p| p.names.clone()).collect();
        });
        assert_eq!(params, vec![vec!["self"], vec!["x"], vec!["a", "b"]]);
    }

    #[test]
    fn let_bindings_and_calls() {
        let ast = parse_src("fn f() { let y = helper(a, b.c); y.method(1); }");
        let Item::Fn(func) = &ast.items[0] else {
            panic!()
        };
        let Stmt::Let { names, init, .. } = &func.body.stmts[0] else {
            panic!("{:?}", func.body.stmts[0])
        };
        assert_eq!(names, &["y"]);
        let Some(Expr::Call { path, args, .. }) = init else {
            panic!("{init:?}")
        };
        assert_eq!(path, &["helper"]);
        assert_eq!(args.len(), 2);
        assert!(matches!(args[1], Expr::Field { .. }));
        let Stmt::Expr(Expr::MethodCall { name, .. }) = &func.body.stmts[1] else {
            panic!("{:?}", func.body.stmts[1])
        };
        assert_eq!(name, "method");
    }

    #[test]
    fn if_while_match_conditions_no_struct_lit() {
        let ast = parse_src(
            "fn f(x: u8) { if x == 1 { } while x < 2 { } match x { 0 => 1, n if n > 3 => n, _ => 0 }; }",
        );
        let Item::Fn(func) = &ast.items[0] else {
            panic!()
        };
        assert!(matches!(
            &func.body.stmts[0],
            Stmt::Expr(Expr::If { cond, .. }) if matches!(**cond, Expr::Binary { .. })
        ));
        assert!(matches!(
            &func.body.stmts[1],
            Stmt::Expr(Expr::While { .. })
        ));
        let Stmt::Expr(Expr::Match { arms, .. }) = &func.body.stmts[2] else {
            panic!("{:?}", func.body.stmts[2])
        };
        assert_eq!(arms.len(), 3);
        assert!(arms[1].guard.is_some());
        assert_eq!(arms[1].binds, vec!["n"]);
    }

    #[test]
    fn if_let_binds_and_scrutinee() {
        let ast = parse_src("fn f(o: Option<u8>) { if let Some(v) = o { v; } }");
        let Item::Fn(func) = &ast.items[0] else {
            panic!()
        };
        let Stmt::Expr(Expr::If { cond, binds, .. }) = &func.body.stmts[0] else {
            panic!("{:?}", func.body.stmts[0])
        };
        assert_eq!(binds, &["v"]);
        assert!(matches!(**cond, Expr::Path { ref segs, .. } if segs == &["o"]));
    }

    #[test]
    fn struct_literals_and_functional_update() {
        let ast = parse_src("fn f() { let p = Policy { max: 3, kind, ..Default::default() }; }");
        let Item::Fn(func) = &ast.items[0] else {
            panic!()
        };
        let Stmt::Let {
            init:
                Some(Expr::StructLit {
                    path,
                    fields,
                    has_rest,
                    ..
                }),
            ..
        } = &func.body.stmts[0]
        else {
            panic!("{:?}", func.body.stmts[0])
        };
        assert_eq!(path, &["Policy"]);
        assert!(*has_rest);
        assert_eq!(fields[0].name, "max");
        assert!(fields[1].value.is_none(), "shorthand field");
    }

    /// A `Path { .. }` rest pattern in expression position (the
    /// `matches!` idiom) must not swallow the closing brace — that
    /// desyncs the parser and folds every following item into one body.
    #[test]
    fn bare_rest_pattern_in_matches_does_not_desync() {
        let ast = parse_src(
            "fn f(v: &Verdict) -> K { if matches!(v, Verdict::Corrupt { .. }) { K::A } else { K::B } }\n\
             fn g() -> Policy { Policy { max: 3 } }",
        );
        let fns: Vec<&str> = ast
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Fn(f) => Some(f.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(fns, ["f", "g"], "both items must survive the rest pattern");
    }

    #[test]
    fn macros_and_repeat_arrays() {
        let ast = parse_src("fn f(n: usize) { let v = vec![0u8; n]; let a = [1; n]; }");
        let Item::Fn(func) = &ast.items[0] else {
            panic!()
        };
        let Stmt::Let {
            init:
                Some(Expr::Macro {
                    name,
                    args,
                    semi_at,
                    ..
                }),
            ..
        } = &func.body.stmts[0]
        else {
            panic!("{:?}", func.body.stmts[0])
        };
        assert_eq!(name, "vec");
        assert_eq!(args.len(), 2);
        assert_eq!(*semi_at, Some(1));
        assert!(matches!(
            &func.body.stmts[1],
            Stmt::Let {
                init: Some(Expr::Repeat { .. }),
                ..
            }
        ));
    }

    #[test]
    fn closures_and_for_loops() {
        let ast = parse_src("fn f(v: Vec<u8>) { for x in v.iter() { } v.map(|e| e + 1); }");
        let Item::Fn(func) = &ast.items[0] else {
            panic!()
        };
        let Stmt::Expr(Expr::For { binds, iter, .. }) = &func.body.stmts[0] else {
            panic!("{:?}", func.body.stmts[0])
        };
        assert_eq!(binds, &["x"]);
        assert!(matches!(**iter, Expr::MethodCall { .. }));
        let Stmt::Expr(Expr::MethodCall { args, .. }) = &func.body.stmts[1] else {
            panic!()
        };
        assert!(matches!(args[0], Expr::Closure { .. }));
    }

    #[test]
    fn generics_and_turbofish_do_not_derail() {
        let ast = parse_src(
            "fn f<T: Clone>(x: Vec<Vec<u8>>) -> Option<T> where T: Default {\n\
                 let v = Vec::<u8>::with_capacity(4);\n\
                 let c: Vec<u8> = x.iter().flatten().copied().collect::<Vec<u8>>();\n\
                 None\n\
             }",
        );
        let Item::Fn(func) = &ast.items[0] else {
            panic!()
        };
        assert_eq!(func.params.len(), 1);
        assert_eq!(func.body.stmts.len(), 3);
        let Stmt::Let {
            init: Some(Expr::Call { path, .. }),
            ..
        } = &func.body.stmts[0]
        else {
            panic!("{:?}", func.body.stmts[0])
        };
        assert_eq!(path, &["Vec", "with_capacity"]);
    }

    #[test]
    fn trait_default_methods_are_functions() {
        let ast = parse_src("trait T { fn required(&self); fn provided(&self) -> u8 { 1 } }");
        assert_eq!(
            fns(&ast),
            vec![
                (Some("T".to_string()), "required".to_string()),
                (Some("T".to_string()), "provided".to_string()),
            ]
        );
    }

    #[test]
    fn tolerant_on_unmodelled_syntax() {
        // Lifetimes, labels, async blocks, weird macros: parse something,
        // never panic, still find the fn.
        let ast = parse_src(
            "fn f<'a>(x: &'a [u8]) -> &'a [u8] {\n\
                 'outer: loop { break 'outer; }\n\
                 matches!(x.len(), 0 | 1);\n\
                 x\n\
             }",
        );
        assert_eq!(fns(&ast).len(), 1);
    }

    #[test]
    fn let_else_is_parsed() {
        let ast = parse_src("fn f(o: Option<u8>) -> u8 { let Some(v) = o else { return 0; }; v }");
        let Item::Fn(func) = &ast.items[0] else {
            panic!()
        };
        let Stmt::Let {
            names, else_block, ..
        } = &func.body.stmts[0]
        else {
            panic!("{:?}", func.body.stmts[0])
        };
        assert_eq!(names, &["v"]);
        assert!(else_block.is_some());
    }

    #[test]
    fn use_paths_are_recorded() {
        let ast = parse_src("use secmed_crypto::metrics::{count, Op};\nuse std::fmt;\n");
        let Item::Use { path, .. } = &ast.items[0] else {
            panic!("{:?}", ast.items[0])
        };
        assert_eq!(path, &["secmed_crypto", "metrics"]);
    }
}
