//! The `lint-baseline.json` ratchet.
//!
//! Findings the team has reviewed and accepted (false positives awaiting
//! an analyzer refinement, or debt burned down incrementally) live in a
//! committed baseline keyed by `(file, rule, line)`.  The ratchet is
//! two-sided:
//!
//! * a finding **not** in the baseline fails CI (new violations cannot
//!   land), and
//! * a baseline entry with no matching finding fails CI too (a fixed
//!   finding must be removed from the baseline in the same commit, so
//!   the file never rots into a blanket allow-list).
//!
//! `secmed-lint --bless-baseline` regenerates the file from the current
//! findings; the diff is the review surface.

use std::collections::BTreeSet;

use secmed_obs::json::{self, Json};

use crate::engine::Finding;

/// One accepted finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Workspace-relative path.
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    /// Why the finding is accepted (free text, for the reviewer).
    pub note: String,
}

/// A parsed baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries, sorted by (file, rule, line).
    pub entries: Vec<Entry>,
}

/// The result of ratcheting findings against a baseline.
#[derive(Debug)]
pub struct Ratchet {
    /// Findings not covered by the baseline — these fail CI.
    pub new_findings: Vec<Finding>,
    /// Baseline entries that no longer match any finding — these fail CI
    /// too (remove them from `lint-baseline.json`).
    pub stale: Vec<Entry>,
    /// Findings silenced by a baseline entry.
    pub matched: usize,
}

impl Ratchet {
    /// True when the ratchet neither admits new findings nor carries
    /// stale entries.
    pub fn clean(&self) -> bool {
        self.new_findings.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Parses a baseline document.  Accepts the shape
    /// `{"entries": [{"file":…, "rule":…, "line":…, "note":…}, …]}`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let items = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| "baseline: missing `entries` array".to_string())?;
        let mut entries = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let field = |k: &str| {
                item.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry {i}: missing `{k}`"))
            };
            let line = item
                .get("line")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("baseline entry {i}: missing `line`"))?;
            entries.push(Entry {
                file: field("file")?,
                rule: field("rule")?,
                line: u32::try_from(line)
                    .map_err(|_| format!("baseline entry {i}: line out of range"))?,
                note: field("note").unwrap_or_default(),
            });
        }
        entries.sort();
        Ok(Baseline { entries })
    }

    /// Serializes the baseline (pretty, trailing newline) for committing.
    pub fn render(&self) -> String {
        let doc = Json::obj([(
            "entries",
            Json::arr(self.entries.iter().map(|e| {
                Json::obj([
                    ("file", Json::from(e.file.as_str())),
                    ("rule", Json::from(e.rule.as_str())),
                    ("line", Json::from(u64::from(e.line))),
                    ("note", Json::from(e.note.as_str())),
                ])
            })),
        )]);
        let mut out = doc.render_pretty();
        out.push('\n');
        out
    }

    /// Builds a baseline accepting exactly the given findings.
    pub fn bless(findings: &[Finding]) -> Baseline {
        let mut entries: Vec<Entry> = findings
            .iter()
            .map(|f| Entry {
                file: f.file.clone(),
                rule: f.rule.to_string(),
                line: f.line,
                note: f.message.clone(),
            })
            .collect();
        entries.sort();
        entries.dedup();
        Baseline { entries }
    }

    /// Splits findings into new-vs-accepted and detects stale entries.
    pub fn ratchet(&self, findings: &[Finding]) -> Ratchet {
        let accepted: BTreeSet<(&str, &str, u32)> = self
            .entries
            .iter()
            .map(|e| (e.file.as_str(), e.rule.as_str(), e.line))
            .collect();
        let mut hit: BTreeSet<(&str, &str, u32)> = BTreeSet::new();
        let mut new_findings = Vec::new();
        let mut matched = 0;
        for f in findings {
            let key = (f.file.as_str(), f.rule, f.line);
            if accepted.contains(&key) {
                hit.insert(key);
                matched += 1;
            } else {
                new_findings.push(f.clone());
            }
        }
        let stale = self
            .entries
            .iter()
            .filter(|e| !hit.contains(&(e.file.as_str(), e.rule.as_str(), e.line)))
            .cloned()
            .collect();
        Ratchet {
            new_findings,
            stale,
            matched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &'static str, line: u32) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: "m".into(),
        }
    }

    #[test]
    fn round_trips_and_sorts() {
        let b = Baseline::bless(&[
            finding("z.rs", "r2", 9),
            finding("a.rs", "r1", 3),
            finding("a.rs", "r1", 3),
        ]);
        assert_eq!(b.entries.len(), 2, "deduped");
        assert_eq!(b.entries[0].file, "a.rs", "sorted");
        let reparsed = Baseline::parse(&b.render()).expect("round trip");
        assert_eq!(reparsed.entries, b.entries);
    }

    #[test]
    fn ratchet_splits_new_matched_and_stale() {
        let b = Baseline::bless(&[finding("a.rs", "r1", 3), finding("b.rs", "r1", 7)]);
        let now = [finding("a.rs", "r1", 3), finding("c.rs", "r2", 1)];
        let r = b.ratchet(&now);
        assert_eq!(r.matched, 1);
        assert_eq!(r.new_findings.len(), 1);
        assert_eq!(r.new_findings[0].file, "c.rs");
        assert_eq!(r.stale.len(), 1);
        assert_eq!(r.stale[0].file, "b.rs");
        assert!(!r.clean());
        assert!(b
            .ratchet(&[finding("a.rs", "r1", 3), finding("b.rs", "r1", 7)])
            .clean());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse(r#"{"entries":[{"file":"a.rs"}]}"#).is_err());
        let empty = Baseline::parse(r#"{"entries":[]}"#).expect("empty ok");
        assert!(empty.entries.is_empty());
        assert!(empty.ratchet(&[]).clean());
    }
}
