//! A whole-workspace call graph over the parsed ASTs.
//!
//! Nodes are function items; edges are call sites resolved *by name* —
//! without type inference the graph is a deliberate over-approximation.
//! Resolution prefers precision where the token stream offers it:
//!
//! 1. `Type::method(...)` paths bind to functions inside an `impl Type`
//!    block (any file),
//! 2. plain `helper(...)` and `recv.method(...)` calls bind to all
//!    functions with that name, preferring same-file candidates when any
//!    exist (the common case for private helpers),
//! 3. cross-crate `secmed_*::module::fn` paths fall back to the last
//!    segment, which resolves because every workspace source is a node.
//!
//! The dataflow rules consume the graph two ways: the taint pass walks
//! *callee* summaries at each call site, and the census rule walks
//! *caller* edges to decide whether an uncounted primitive helper is
//! reachable only through counted entry points.

use std::collections::HashMap;

use crate::ast::{self, Ast, Expr, FnItem};

/// One function node.
pub struct FnNode<'a> {
    /// Workspace-relative path of the defining file.
    pub file: &'a str,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<&'a str>,
    /// The parsed function item.
    pub item: &'a FnItem,
    /// Whether the item sits inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test_region: bool,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// Caller node index.
    pub caller: usize,
    /// Callee node index.
    pub callee: usize,
    /// Source line of the call site.
    pub line: u32,
}

/// The workspace call graph.
pub struct CallGraph<'a> {
    /// All function nodes, in (file, source-order) order.
    pub nodes: Vec<FnNode<'a>>,
    /// Resolved edges.
    pub edges: Vec<CallEdge>,
    by_name: HashMap<&'a str, Vec<usize>>,
    callers: Vec<Vec<usize>>,
}

/// A parsed file paired with its path and test mask, the input to
/// [`CallGraph::build`].
pub struct ParsedFile<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// The parsed AST.
    pub ast: &'a Ast,
    /// Per-token test-region mask (indexed by token index), empty when the
    /// whole file is a test file.
    pub test_mask: &'a [bool],
    /// Whether the entire file is test code.
    pub is_test_file: bool,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph over every function in `files`.
    pub fn build(files: &[ParsedFile<'a>]) -> Self {
        let mut nodes = Vec::new();
        let mut by_name: HashMap<&'a str, Vec<usize>> = HashMap::new();
        for file in files {
            ast::for_each_fn(file.ast, &mut |owner, item| {
                let in_test_region = file.is_test_file
                    || file
                        .test_mask
                        .get(item.token_index)
                        .copied()
                        .unwrap_or(false);
                let idx = nodes.len();
                nodes.push(FnNode {
                    file: file.path,
                    owner,
                    item,
                    in_test_region,
                });
                by_name.entry(item.name.as_str()).or_default().push(idx);
            });
        }
        let mut graph = CallGraph {
            callers: vec![Vec::new(); nodes.len()],
            nodes,
            edges: Vec::new(),
            by_name,
        };
        for caller in 0..graph.nodes.len() {
            let node = &graph.nodes[caller];
            let (file, body) = (node.file, &node.item.body);
            let mut sites: Vec<(u32, Vec<usize>)> = Vec::new();
            ast::walk_exprs(body, &mut |e| match e {
                Expr::Call { path, line, .. } => {
                    sites.push((*line, graph.resolve_path(file, path)));
                }
                Expr::MethodCall { name, line, .. } => {
                    sites.push((*line, graph.resolve_name(file, name)));
                }
                _ => {}
            });
            for (line, callees) in sites {
                for callee in callees {
                    graph.edges.push(CallEdge {
                        caller,
                        callee,
                        line,
                    });
                    graph.callers[callee].push(caller);
                }
            }
        }
        for c in &mut graph.callers {
            c.sort_unstable();
            c.dedup();
        }
        graph
    }

    /// Candidate callees for a path call like `helper(..)`,
    /// `Type::method(..)`, or `secmed_x::module::fn(..)`.
    pub fn resolve_path(&self, from_file: &str, path: &[String]) -> Vec<usize> {
        let Some(name) = path.last() else {
            return Vec::new();
        };
        let candidates = self.resolve_name(from_file, name);
        // `Type::method`: narrow by the owning impl when the qualifier is a
        // type path segment (uppercase first letter).
        if path.len() >= 2 {
            let qualifier = &path[path.len() - 2];
            if qualifier.starts_with(char::is_uppercase) && qualifier != "Self" {
                let narrowed: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| self.nodes[i].owner == Some(qualifier.as_str()))
                    .collect();
                if !narrowed.is_empty() {
                    return narrowed;
                }
            }
        }
        candidates
    }

    /// Candidate callees for a bare name, preferring same-file definitions.
    pub fn resolve_name(&self, from_file: &str, name: &str) -> Vec<usize> {
        let Some(all) = self.by_name.get(name) else {
            return Vec::new();
        };
        let same_file: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].file == from_file)
            .collect();
        if !same_file.is_empty() {
            same_file
        } else {
            all.clone()
        }
    }

    /// Indices of nodes that call `node` (deduplicated).
    pub fn callers_of(&self, node: usize) -> &[usize] {
        &self.callers[node]
    }

    /// Index of the node for `file`/`fn_name` (first match), if any.
    pub fn find(&self, file: &str, fn_name: &str) -> Option<usize> {
        self.by_name
            .get(fn_name)?
            .iter()
            .copied()
            .find(|&i| self.nodes[i].file == file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    #[test]
    fn resolves_same_file_cross_file_and_typed_paths() {
        let a_src = "fn helper() {}\nfn caller() { helper(); secmed_b::codec::shared(); }\n";
        let b_src = "pub fn shared() {}\nimpl Codec { pub fn decode() { shared(); } }\n";
        let a = parse(&lex(a_src));
        let b = parse(&lex(b_src));
        let files = [
            ParsedFile {
                path: "crates/a/src/lib.rs",
                ast: &a,
                test_mask: &[],
                is_test_file: false,
            },
            ParsedFile {
                path: "crates/b/src/lib.rs",
                ast: &b,
                test_mask: &[],
                is_test_file: false,
            },
        ];
        let g = CallGraph::build(&files);
        assert_eq!(g.nodes.len(), 4);
        let helper = g.find("crates/a/src/lib.rs", "helper").unwrap();
        let caller = g.find("crates/a/src/lib.rs", "caller").unwrap();
        let shared = g.find("crates/b/src/lib.rs", "shared").unwrap();
        assert!(g
            .edges
            .iter()
            .any(|e| e.caller == caller && e.callee == helper));
        // Cross-file resolution by last path segment.
        assert!(g
            .edges
            .iter()
            .any(|e| e.caller == caller && e.callee == shared));
        assert_eq!(g.callers_of(shared).len(), 2, "caller + Codec::decode");
        // Typed-path narrowing.
        let decode = g.find("crates/b/src/lib.rs", "decode").unwrap();
        assert_eq!(g.nodes[decode].owner, Some("Codec"));
        let narrowed = g.resolve_path("crates/a/src/lib.rs", &["Codec".into(), "decode".into()]);
        assert_eq!(narrowed, vec![decode]);
    }
}
