//! The pluggable rule engine: rules see lexed sources, parsed ASTs with
//! a workspace call graph, and raw manifests; the engine applies
//! suppressions and audits the suppressions themselves.
//!
//! Per-file rules run in parallel via `secmed-pool` (one task per file,
//! results rejoined in input order), then workspace rules run once over
//! the parsed view, then suppressions are applied sequentially — so the
//! output is byte-identical at any thread count.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use secmed_obs::json::Json;
use secmed_pool::Pool;

use crate::ast::{self, Ast};
use crate::callgraph::{CallGraph, ParsedFile};
use crate::source::SourceFile;

/// Rule id used for problems with the suppression mechanism itself
/// (malformed `lint:allow` comments, unused suppressions).
pub const SUPPRESSION_RULE: &str = "lint-allow";

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule id (e.g. `panic-freedom`).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// The `file:line: rule-id: message` rendering used on stderr/stdout.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }

    /// The machine-readable JSONL record.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("file", Json::from(self.file.as_str())),
            ("line", Json::from(u64::from(self.line))),
            ("rule", Json::from(self.rule)),
            ("message", Json::from(self.message.as_str())),
        ])
    }
}

/// A raw `Cargo.toml` for the dependency-policy rule.
#[derive(Debug)]
pub struct ManifestFile {
    /// Workspace-relative path.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// The parsed whole-workspace view handed to [`Rule::check_workspace`]:
/// every source's AST plus the call graph over all of them.
pub struct WorkspaceView<'a> {
    /// Parsed files, parallel to the engine's source list.
    pub files: Vec<ParsedFile<'a>>,
    /// The call graph over `files`.
    pub graph: CallGraph<'a>,
}

/// A lint rule over lexed sources, the parsed workspace, and/or
/// manifests.  Rules must be `Sync`: per-file checks run in parallel.
pub trait Rule: Sync {
    /// Stable id, used in findings and `lint:allow` comments.
    fn id(&self) -> &'static str;
    /// One-line description for `--list` style output and reports.
    fn description(&self) -> &'static str;
    /// Checks one source file.
    fn check_source(&self, _file: &SourceFile, _findings: &mut Vec<Finding>) {}
    /// Checks the whole parsed workspace (AST/callgraph rules).
    fn check_workspace(&self, _ws: &WorkspaceView<'_>, _findings: &mut Vec<Finding>) {}
    /// Checks one manifest.
    fn check_manifest(&self, _manifest: &ManifestFile, _findings: &mut Vec<Finding>) {}
}

/// The outcome of a full engine run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Surviving findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Files scanned (sources + manifests).
    pub files_scanned: usize,
    /// Suppressions that silenced at least one finding:
    /// `(file, line, rules, reason)`.
    pub suppressions_used: Vec<(String, u32, String, String)>,
}

impl RunOutcome {
    /// True when the workspace is violation-free.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings per rule id, sorted by id.
    pub fn counts_by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// The `rule → count` summary table printed on failure.
    pub fn summary_table(&self) -> String {
        let counts = self.counts_by_rule();
        let width = counts.keys().map(|r| r.len()).max().unwrap_or(4).max(4);
        let mut out = String::new();
        out.push_str(&format!("{:<width$}  count\n", "rule"));
        out.push_str(&format!("{:-<width$}  -----\n", ""));
        for (rule, count) in &counts {
            out.push_str(&format!("{rule:<width$}  {count:>5}\n"));
        }
        out.push_str(&format!(
            "{:<width$}  {:>5}\n",
            "total",
            self.findings.len()
        ));
        out
    }

    /// The JSONL report: one record per finding, then one summary record.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_json().render());
            out.push('\n');
        }
        let by_rule = Json::Object(
            self.counts_by_rule()
                .into_iter()
                .map(|(r, c)| (r.to_string(), Json::from(c)))
                .collect(),
        );
        let summary = Json::obj([
            ("summary", Json::from(true)),
            ("clean", Json::from(self.clean())),
            ("files_scanned", Json::from(self.files_scanned)),
            ("total", Json::from(self.findings.len())),
            ("by_rule", by_rule),
            (
                "suppressions_used",
                Json::arr(self.suppressions_used.iter().map(|(f, l, r, why)| {
                    Json::obj([
                        ("file", Json::from(f.as_str())),
                        ("line", Json::from(u64::from(*l))),
                        ("rules", Json::from(r.as_str())),
                        ("reason", Json::from(why.as_str())),
                    ])
                })),
            ),
        ]);
        out.push_str(&summary.render());
        out.push('\n');
        out
    }
}

/// Runs `rules` over the given sources and manifests on one thread.
pub fn run(
    rules: &[Box<dyn Rule>],
    sources: &[SourceFile],
    manifests: &[ManifestFile],
) -> RunOutcome {
    run_with(rules, sources, manifests, 1)
}

/// Runs `rules` with `threads` workers for the per-file phase (`0` ⇒ the
/// pool default).  Output is identical at any thread count.
pub fn run_with(
    rules: &[Box<dyn Rule>],
    sources: &[SourceFile],
    manifests: &[ManifestFile],
    threads: usize,
) -> RunOutcome {
    let pool = match threads {
        0 => Pool::default(),
        1 => Pool::sequential(),
        n => Pool::with_threads(n),
    };

    // Phase 1 — parse + per-file rules, one task per file.  `par_map`
    // rejoins results in input order, so parallelism cannot reorder
    // findings.
    let per_file: Vec<(Ast, Vec<Finding>)> = pool.par_map(sources, |_, file| {
        let ast = ast::parse(&file.tokens);
        let mut raw = Vec::new();
        for rule in rules {
            rule.check_source(file, &mut raw);
        }
        (ast, raw)
    });

    // Phase 2 — workspace rules over the parsed view.
    let mut asts = Vec::with_capacity(per_file.len());
    let mut findings_raw = Vec::new();
    for (ast, raw) in per_file {
        asts.push(ast);
        findings_raw.extend(raw);
    }
    let files: Vec<ParsedFile<'_>> = sources
        .iter()
        .zip(&asts)
        .map(|(src, ast)| ParsedFile {
            path: &src.path,
            ast,
            test_mask: src.test_mask(),
            is_test_file: src.is_test_file,
        })
        .collect();
    let graph = CallGraph::build(&files);
    let ws = WorkspaceView { files, graph };
    for rule in rules {
        rule.check_workspace(&ws, &mut findings_raw);
    }

    // Phase 3 — suppressions, applied sequentially.  A finding survives
    // unless an audited allow-comment for its rule covers its line; usage
    // is tracked per (suppression, rule) so `lint:allow(a, b)` where only
    // `a` ever fires still reports `b` as unused.
    let by_path: HashMap<&str, usize> = sources
        .iter()
        .enumerate()
        .map(|(i, s)| (s.path.as_str(), i))
        .collect();
    let mut used: Vec<Vec<BTreeSet<&str>>> = sources
        .iter()
        .map(|s| vec![BTreeSet::new(); s.suppressions.len()])
        .collect();
    let mut findings = Vec::new();
    for f in findings_raw {
        let silenced = by_path.get(f.file.as_str()).copied().and_then(|si| {
            sources[si]
                .suppression_for(f.rule, f.line)
                .map(|supp| (si, supp))
        });
        match silenced {
            Some((si, supp)) => {
                used[si][supp].insert(f.rule);
            }
            None => findings.push(f),
        }
    }

    // The suppression mechanism itself is audited.
    for (si, file) in sources.iter().enumerate() {
        for (line, problem) in &file.malformed {
            findings.push(Finding {
                file: file.path.clone(),
                line: *line,
                rule: SUPPRESSION_RULE,
                message: problem.clone(),
            });
        }
        for (supp, s) in file.suppressions.iter().enumerate() {
            let unused: Vec<&str> = s
                .rules
                .iter()
                .map(String::as_str)
                .filter(|r| !used[si][supp].contains(r))
                .collect();
            if !unused.is_empty() {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: s.line,
                    rule: SUPPRESSION_RULE,
                    message: format!(
                        "unused suppression for `{}` — remove it or re-justify it",
                        unused.join(", ")
                    ),
                });
            }
        }
    }

    for manifest in manifests {
        for rule in rules {
            rule.check_manifest(manifest, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let suppressions_used = sources
        .iter()
        .enumerate()
        .flat_map(|(si, f)| {
            f.suppressions
                .iter()
                .enumerate()
                .filter(|&(supp, _)| !used[si][supp].is_empty())
                .map(|(supp, s)| {
                    let rules: Vec<&str> = used[si][supp].iter().copied().collect();
                    (f.path.clone(), s.line, rules.join(", "), s.reason.clone())
                })
                .collect::<Vec<_>>()
        })
        .collect();
    RunOutcome {
        findings,
        files_scanned: sources.len() + manifests.len(),
        suppressions_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct BanFoo;
    impl Rule for BanFoo {
        fn id(&self) -> &'static str {
            "ban-foo"
        }
        fn description(&self) -> &'static str {
            "no foo"
        }
        fn check_source(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
            for t in &file.tokens {
                if t.is_ident("foo") {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: t.line,
                        rule: self.id(),
                        message: "found foo".into(),
                    });
                }
            }
        }
    }

    fn engine_rules() -> Vec<Box<dyn Rule>> {
        vec![Box::new(BanFoo)]
    }

    #[test]
    fn findings_survive_without_suppression() {
        let src = SourceFile::new("crates/x/src/lib.rs", "let foo = 1;");
        let out = run(&engine_rules(), &[src], &[]);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(
            out.findings[0].render(),
            "crates/x/src/lib.rs:1: ban-foo: found foo"
        );
        assert!(!out.clean());
    }

    #[test]
    fn audited_suppression_silences_and_is_reported_used() {
        let src = SourceFile::new(
            "crates/x/src/lib.rs",
            "let foo = 1; // lint:allow(ban-foo) -- test fixture",
        );
        let out = run(&engine_rules(), &[src], &[]);
        assert!(out.clean(), "{:?}", out.findings);
        assert_eq!(out.suppressions_used.len(), 1);
        assert_eq!(out.suppressions_used[0].3, "test fixture");
    }

    #[test]
    fn unreasoned_suppression_is_a_finding_and_does_not_silence() {
        let src = SourceFile::new("crates/x/src/lib.rs", "let foo = 1; // lint:allow(ban-foo)");
        let out = run(&engine_rules(), &[src], &[]);
        let rules: Vec<_> = out.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"ban-foo"));
        assert!(rules.contains(&SUPPRESSION_RULE));
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let src = SourceFile::new(
            "crates/x/src/lib.rs",
            "// lint:allow(ban-foo) -- nothing here\nlet bar = 1;",
        );
        let out = run(&engine_rules(), &[src], &[]);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, SUPPRESSION_RULE);
    }

    #[test]
    fn jsonl_has_one_record_per_finding_plus_summary() {
        let src = SourceFile::new("crates/x/src/lib.rs", "foo(); foo();");
        let out = run(&engine_rules(), &[src], &[]);
        let jsonl = out.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"rule\":\"ban-foo\""));
        assert!(lines[2].contains("\"summary\":true"));
        assert!(lines[2].contains("\"total\":2"));
    }

    #[test]
    fn summary_table_lists_rule_counts() {
        let src = SourceFile::new("crates/x/src/lib.rs", "foo();");
        let out = run(&engine_rules(), &[src], &[]);
        let table = out.summary_table();
        assert!(table.contains("ban-foo"));
        assert!(table.contains("total"));
    }
}
