//! A hand-rolled Rust lexer — just enough token structure for the lint
//! rules.
//!
//! The rules only need to see *code* tokens with line numbers, plus
//! comments (for suppression handling).  String literals, char literals,
//! raw strings, doc comments, and nested block comments must therefore be
//! scanned correctly — an `unwrap` inside a doc example or an error message
//! is not a violation — but full syntactic fidelity (precedence, item
//! structure) is not required.

/// The coarse token classes the rules operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `if`, `match`, ...).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A numeric literal.
    Number,
    /// A string, raw-string, byte-string, or char literal.
    Literal,
    /// Punctuation; multi-character operators (`==`, `!=`, `::`, `->`,
    /// `=>`, `&&`, `||`, `<=`, `>=`, `..`) are joined into one token.
    Punct,
    /// A `// ...` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* ... */` comment (nesting handled).
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text.  For line comments this is the text after `//`; for
    /// block comments the text between the delimiters.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Multi-character operators joined by the lexer, longest first.
const JOINED: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `source` into tokens.  Unterminated constructs (strings, block
/// comments) consume the rest of the input rather than erroring: the lint
/// pass runs on code that already compiles, so this is a robustness
/// fallback, not an expected path.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'b' if self.peek(1) == Some('"') => {
                    self.pos += 1;
                    self.string();
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.pos += 1;
                    self.char_literal();
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(),
                '\'' => self.quote(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    /// Advances past `c`, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.pos += 2;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                self.bump();
                text.push(c);
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    /// A `"..."` string with escapes; the opening quote is at `pos`.
    fn string(&mut self) {
        let line = self.line;
        self.pos += 1; // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// True when `r"`, `r#"`, `br"`, ... starts at `pos`.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1; // past the leading r or b
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self) {
        let line = self.line;
        if self.peek(0) == Some('b') {
            self.pos += 1;
        }
        self.pos += 1; // the r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let mut text = String::new();
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` hash marks.
                for h in 0..hashes {
                    if self.peek(h) != Some('#') {
                        text.push('"');
                        continue 'scan;
                    }
                }
                self.pos += hashes;
                break;
            }
            text.push(c);
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// Either a char literal (`'x'`, `'\n'`) or a lifetime (`'a`), starting
    /// at the quote.
    fn quote(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let lifetime = match next {
            Some('\\') => false,
            Some(c) if is_ident_start(c) => self.peek(2) != Some('\''),
            _ => false,
        };
        if lifetime {
            self.pos += 1;
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.pos += 1;
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.char_literal();
        }
    }

    /// A char literal; the opening quote is at `pos`.
    fn char_literal(&mut self) {
        let line = self.line;
        self.pos += 1;
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '\'' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                // Scientific notation: 1e-5, 2.5E+3.
                if (c == 'e' || c == 'E')
                    && !text.starts_with("0x")
                    && matches!(self.peek(1), Some('+') | Some('-'))
                {
                    text.push(c);
                    self.pos += 1;
                    if let Some(sign) = self.bump() {
                        text.push(sign);
                    }
                    continue;
                }
                text.push(c);
                self.pos += 1;
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Raw identifiers: `r#match` lexes as the identifier `match`.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            if let Some(c) = self.peek(2) {
                if is_ident_start(c) {
                    self.pos += 2;
                }
            }
        }
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        for op in JOINED {
            if self.starts_with(op) {
                self.pos += op.len();
                self.push(TokenKind::Punct, op.to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokenKind::Punct, c.to_string(), line);
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("a.unwrap() == b");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Ident, "unwrap".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
                (TokenKind::Punct, "==".into()),
                (TokenKind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn strings_swallow_code_like_text() {
        let toks = kinds(r#"let s = "x.unwrap() == 1";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = lex("r#\"a \"quoted\" b\"# x");
        assert_eq!(toks[0].kind, TokenKind::Literal);
        assert_eq!(toks[0].text, "a \"quoted\" b");
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = lex(r#"b"payload" b'\n' br"raw""#);
        assert!(toks.iter().all(|t| t.kind == TokenKind::Literal));
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn comments_capture_text_and_lines() {
        let toks = lex("let a = 1; // lint:allow(x) -- why\nlet b = 2;");
        let comment = toks.iter().find(|t| t.is_comment()).unwrap();
        assert_eq!(comment.text, " lint:allow(x) -- why");
        assert_eq!(comment.line, 1);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "code".into()));
    }

    #[test]
    fn doc_comments_do_not_leak_code_tokens() {
        let toks = lex("/// let x = v.unwrap();\nfn f() {}");
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn numbers_including_ranges_and_floats() {
        let toks = kinds("0..10 1.5e-3 0xff_u64");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Number, "0".into()),
                (TokenKind::Punct, "..".into()),
                (TokenKind::Number, "10".into()),
                (TokenKind::Number, "1.5e-3".into()),
                (TokenKind::Number, "0xff_u64".into()),
            ]
        );
    }

    #[test]
    fn joined_operators() {
        let toks = kinds("a != b && c || d => e :: f");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["!=", "&&", "||", "=>", "::"]);
    }

    #[test]
    fn macro_bang_stays_separate() {
        let toks = kinds("panic!(\"boom\")");
        assert_eq!(toks[0], (TokenKind::Ident, "panic".into()));
        assert_eq!(toks[1], (TokenKind::Punct, "!".into()));
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let toks = lex("let s = \"line\nbreak\";\nfinal_ident");
        let last = toks.last().unwrap();
        assert!(last.is_ident("final_ident"));
        assert_eq!(last.line, 3);
    }
}
