//! `secmed-lint` — in-tree static analysis for the secmed workspace.
//!
//! A hand-rolled Rust lexer ([`lexer`]), a test-region and suppression
//! aware source model ([`source`]), and a pluggable rule engine
//! ([`engine`]) enforce the workspace's security invariants as a CI gate:
//!
//! - `panic-freedom` — no aborting escape hatches in protocol/crypto/bigint
//!   code (a panic in the mediator is a DoS lever),
//! - `transport-discipline` — protocol messages flow through the recording
//!   `secmed-core::transport`, keeping traces complete,
//! - `determinism` — wall-clock reads only in `crates/obs` / `crates/bench`,
//! - `dependency-policy` — every `Cargo.toml` dependency is a path dep.
//!
//! plus the AST/callgraph rules layered on the item-level parser
//! ([`ast`], [`callgraph`], [`taint`]):
//!
//! - `secret-flow` — interprocedural taint: key material must not reach
//!   branches, loop bounds, allocation sizes, or `==`/`!=`,
//! - `census-coverage` — modular exponentiations in `crates/crypto` must
//!   bump the primitive census so Table 2 stays exact,
//! - `retry-discipline` — `DeliveryPolicy` bounded, `RunOutcome::Degraded`
//!   explained.
//!
//! Violations render as `file:line: rule-id: message`; a machine-readable
//! JSONL report goes to `target/obs/lint.jsonl`.  Audited escapes use
//! `// lint:allow(rule-id) -- reason` (reason mandatory; unused or
//! malformed suppressions are themselves findings under `lint-allow`).
//! Accepted findings ratchet against the committed `lint-baseline.json`
//! ([`baseline`]): new findings fail, stale entries fail, and
//! `secmed-lint --bless-baseline` regenerates the file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod taint;
pub mod walk;

use std::io;
use std::path::Path;

pub use engine::{Finding, ManifestFile, Rule, RunOutcome};
pub use source::SourceFile;

/// The committed baseline file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Runs the default rule set over the workspace rooted at `root` on one
/// thread.  The outcome is raw — baseline ratcheting is [`gate_workspace`].
pub fn lint_workspace(root: &Path) -> io::Result<RunOutcome> {
    lint_workspace_with(root, 1)
}

/// [`lint_workspace`] with an explicit per-file thread count (`0` ⇒ pool
/// default).  Output is identical at any thread count.
pub fn lint_workspace_with(root: &Path, threads: usize) -> io::Result<RunOutcome> {
    let ws = walk::collect(root)?;
    Ok(engine::run_with(
        &rules::default_rules(),
        &ws.sources,
        &ws.manifests,
        threads,
    ))
}

/// A full CI-gate evaluation: the raw outcome plus the baseline ratchet.
pub struct GateResult {
    /// The raw engine outcome.
    pub outcome: RunOutcome,
    /// Findings split against `lint-baseline.json` (an absent file is an
    /// empty baseline: every finding is new).
    pub ratchet: baseline::Ratchet,
}

impl GateResult {
    /// True when CI should pass: no new findings, no stale baseline
    /// entries.
    pub fn passing(&self) -> bool {
        self.ratchet.clean()
    }
}

/// Lints the workspace and ratchets against the committed baseline.
pub fn gate_workspace(root: &Path, threads: usize) -> io::Result<GateResult> {
    let outcome = lint_workspace_with(root, threads)?;
    let base = load_baseline(root)?;
    let ratchet = base.ratchet(&outcome.findings);
    Ok(GateResult { outcome, ratchet })
}

/// Loads `lint-baseline.json` from `root`; a missing file is an empty
/// baseline, a malformed one is an error (a silently-ignored baseline
/// would un-ratchet CI).
pub fn load_baseline(root: &Path) -> io::Result<baseline::Baseline> {
    let path = root.join(BASELINE_FILE);
    match std::fs::read_to_string(&path) {
        Ok(text) => baseline::Baseline::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(baseline::Baseline::default()),
        Err(e) => Err(e),
    }
}
