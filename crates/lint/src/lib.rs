//! `secmed-lint` — in-tree static analysis for the secmed workspace.
//!
//! A hand-rolled Rust lexer ([`lexer`]), a test-region and suppression
//! aware source model ([`source`]), and a pluggable rule engine
//! ([`engine`]) enforce the workspace's security invariants as a CI gate:
//!
//! - `panic-freedom` — no aborting escape hatches in protocol/crypto/bigint
//!   code (a panic in the mediator is a DoS lever),
//! - `secret-branching` — secret key material never influences control flow
//!   or `==`/`!=` outside approved constant-time helpers,
//! - `transport-discipline` — protocol messages flow through the recording
//!   `secmed-core::transport`, keeping traces complete,
//! - `determinism` — wall-clock reads only in `crates/obs` / `crates/bench`,
//! - `dependency-policy` — every `Cargo.toml` dependency is a path dep.
//!
//! Violations render as `file:line: rule-id: message`; a machine-readable
//! JSONL report goes to `target/lint/report.jsonl`.  Audited escapes use
//! `// lint:allow(rule-id) -- reason` (reason mandatory; unused or
//! malformed suppressions are themselves findings under `lint-allow`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod walk;

use std::io;
use std::path::Path;

pub use engine::{Finding, ManifestFile, Rule, RunOutcome};
pub use source::SourceFile;

/// Runs the default rule set over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<RunOutcome> {
    let ws = walk::collect(root)?;
    Ok(engine::run(
        &rules::default_rules(),
        &ws.sources,
        &ws.manifests,
    ))
}
