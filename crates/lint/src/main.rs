//! The `secmed-lint` binary: scans the workspace, ratchets findings
//! against the committed `lint-baseline.json`, prints violations as
//! `file:line: rule-id: message`, writes `target/obs/lint.jsonl` and a
//! `BENCH_lint.json` wall-time trajectory, and exits non-zero (with a
//! rule → count summary table) when the ratchet fails.
//!
//! ```text
//! secmed-lint [ROOT] [--threads N] [--bless-baseline]
//! ```
//!
//! `--bless-baseline` regenerates `lint-baseline.json` from the current
//! findings — the diff of that file is the review surface for accepting
//! or burning down findings.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use secmed_lint::baseline::Baseline;
use secmed_lint::{gate_workspace, BASELINE_FILE};
use secmed_obs::metrics::{self, Class};
use secmed_obs::trajectory::TrajectoryFile;

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("secmed-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.clone().or_else(workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("secmed-lint: cannot locate the workspace root (no Cargo.toml with [workspace] found)");
            return ExitCode::from(2);
        }
    };

    // Wall time is recorded as a *timing*-class series: analyzer speed is
    // machine-local and must never gate the deterministic bench compare.
    let timer = metrics::start_timer("lint.wall");
    let gate = match gate_workspace(&root, args.threads) {
        Ok(gate) => gate,
        Err(err) => {
            eprintln!("secmed-lint: linting {} failed: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    drop(timer);

    write_reports(&root, &gate.outcome, args.threads);

    if args.bless_baseline {
        let path = root.join(BASELINE_FILE);
        let blessed = Baseline::bless(&gate.outcome.findings);
        let count = blessed.entries.len();
        if let Err(err) = fs::write(&path, blessed.render()) {
            eprintln!("secmed-lint: writing {} failed: {err}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "secmed-lint: blessed {count} finding(s) into {} — review the diff before committing",
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    for finding in &gate.ratchet.new_findings {
        println!("{}", finding.render());
    }
    for entry in &gate.ratchet.stale {
        println!(
            "{}:{}: lint-baseline: stale entry for `{}` — the finding is gone, remove it from {}",
            entry.file, entry.line, entry.rule, BASELINE_FILE
        );
    }
    if gate.passing() {
        eprintln!(
            "secmed-lint: {} files clean ({} audited suppressions in use, {} baselined)",
            gate.outcome.files_scanned,
            gate.outcome.suppressions_used.len(),
            gate.ratchet.matched
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nsecmed-lint: {} new violation(s), {} stale baseline entr(ies) in {} files\n\n{}",
            gate.ratchet.new_findings.len(),
            gate.ratchet.stale.len(),
            gate.outcome.files_scanned,
            gate.outcome.summary_table()
        );
        ExitCode::FAILURE
    }
}

/// Writes `target/obs/lint.jsonl` and `target/bench/BENCH_lint.json`.
/// Report failures are warnings, not gate failures: the findings were
/// already printed.
fn write_reports(root: &Path, outcome: &secmed_lint::RunOutcome, threads: usize) {
    let report_path = root.join("target/obs/lint.jsonl");
    if let Some(dir) = report_path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Err(err) = fs::write(&report_path, outcome.to_jsonl()) {
        eprintln!(
            "secmed-lint: writing {} failed: {err}",
            report_path.display()
        );
    }

    let wall_ns = metrics::histogram(Class::Timing, "lint.wall").load().max();
    let mut traj = TrajectoryFile::new("lint", "secmed-lint", threads as u64);
    traj.push("lint/wall", "ns", vec![wall_ns as f64]);
    traj.set_metrics(&metrics::snapshot());
    if let Err(err) = traj.write_under(&root.join("target/bench")) {
        eprintln!("secmed-lint: writing BENCH_lint.json failed: {err}");
    }
}

struct Args {
    root: Option<PathBuf>,
    threads: usize,
    bless_baseline: bool,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            root: None,
            threads: 0,
            bless_baseline: false,
        };
        let mut it = env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--bless-baseline" => args.bless_baseline = true,
                "--threads" => {
                    let v = it.next().ok_or("--threads requires a value")?;
                    args.threads = v
                        .parse()
                        .map_err(|_| format!("invalid --threads value `{v}`"))?;
                }
                _ if arg.starts_with("--") => {
                    return Err(format!(
                        "unknown flag `{arg}` (expected --threads N or --bless-baseline)"
                    ));
                }
                _ if args.root.is_none() => args.root = Some(PathBuf::from(arg)),
                _ => return Err(format!("unexpected extra argument `{arg}`")),
            }
        }
        Ok(args)
    }
}

/// Finds the workspace root: walk up from the current directory to the
/// first `Cargo.toml` containing `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        dir = dir.parent().map(Path::to_path_buf)?;
    }
}
