//! The `secmed-lint` binary: scans the workspace, prints findings as
//! `file:line: rule-id: message`, writes `target/lint/report.jsonl`, and
//! exits non-zero (with a rule → count summary table) on any violation.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use secmed_lint::lint_workspace;

fn main() -> ExitCode {
    let root = match workspace_root() {
        Some(root) => root,
        None => {
            eprintln!("secmed-lint: cannot locate the workspace root (no Cargo.toml with [workspace] found)");
            return ExitCode::from(2);
        }
    };
    let outcome = match lint_workspace(&root) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("secmed-lint: walking {} failed: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    let report_path = root.join("target/lint/report.jsonl");
    if let Some(dir) = report_path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Err(err) = fs::write(&report_path, outcome.to_jsonl()) {
        eprintln!(
            "secmed-lint: writing {} failed: {err}",
            report_path.display()
        );
    }

    for finding in &outcome.findings {
        println!("{}", finding.render());
    }
    if outcome.clean() {
        eprintln!(
            "secmed-lint: {} files clean ({} audited suppressions in use)",
            outcome.files_scanned,
            outcome.suppressions_used.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nsecmed-lint: {} violation(s) in {} files\n\n{}",
            outcome.findings.len(),
            outcome.files_scanned,
            outcome.summary_table()
        );
        ExitCode::FAILURE
    }
}

/// Finds the workspace root: explicit argument, else walk up from the
/// current directory to the first `Cargo.toml` containing `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    if let Some(arg) = env::args().nth(1) {
        return Some(PathBuf::from(arg));
    }
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        dir = dir.parent().map(Path::to_path_buf)?;
    }
}
