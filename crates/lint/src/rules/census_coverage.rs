//! `census-coverage` — every modular-exponentiation call site in
//! `crates/crypto` must be accounted to the primitive census.
//!
//! Table 2 of the paper and the closed forms in `core/src/cost.rs` count
//! *primitive operations*; the runtime census (`crypto::metrics::count`)
//! is what makes those counts checkable on every protocol run and keeps
//! the deterministic `BENCH_*.json` series exact.  A crypto function that
//! performs a `modpow`/`pow`/`pow_g` without any census bump silently
//! under-counts the very quantity the paper's evaluation reports.
//!
//! A function containing a direct exponentiation is covered when any of:
//!
//! * it *is* the primitive wrapper itself (`pow`, `pow_g`, `modpow`),
//! * its body calls `count(..)` (the census bump),
//! * its name is on the keygen/setup exempt list — one-time operations
//!   the per-run census deliberately excludes, or
//! * every non-test caller (transitively) is covered, i.e. the function
//!   is an internal helper reachable only through counted entry points.

use std::collections::HashMap;

use crate::ast::{walk_exprs, Expr};
use crate::engine::{Finding, Rule, WorkspaceView};

/// Direct modular-exponentiation entry points.
const PRIMITIVE_FAMILY: &[&str] = &["modpow", "pow", "pow_g"];

/// Keygen/setup functions: one-time, outside the per-run census by
/// design (the census counts per-protocol-run work, Table 2 style).
const EXEMPT_FNS: &[&str] = &[
    "generate",
    "new",
    "from_exponent",
    "from_modulus",
    "from_parts",
    "from_safe_prime",
    "preset",
    "certify",
    "is_subgroup_element",
    "random_exponent",
    "random_element",
    "random_unit",
    "test_keypair",
    "gen_prime",
    "derive",
];

/// The census-coverage rule (see module docs).
pub struct CensusCoverage;

impl Rule for CensusCoverage {
    fn id(&self) -> &'static str {
        "census-coverage"
    }

    fn description(&self) -> &'static str {
        "crypto functions performing modular exponentiation must bump the primitive census"
    }

    fn check_workspace(&self, ws: &WorkspaceView<'_>, findings: &mut Vec<Finding>) {
        // covered: None = in progress (cycle), Some(bool) = decided.
        let mut covered: HashMap<usize, Option<bool>> = HashMap::new();
        for (idx, node) in ws.graph.nodes.iter().enumerate() {
            if !node.file.starts_with("crates/crypto/src") || node.in_test_region {
                continue;
            }
            let Some(line) = first_primitive_call(node) else {
                continue;
            };
            if !is_covered(ws, idx, &mut covered) {
                findings.push(Finding {
                    file: node.file.to_string(),
                    line,
                    rule: self.id(),
                    message: format!(
                        "`{}` performs a modular exponentiation but neither it nor any \
                         caller bumps the primitive census — add `count(Op::..)` so \
                         Table 2 stays exact",
                        node.item.name
                    ),
                });
            }
        }
    }
}

/// Line of the first direct `modpow`/`pow`/`pow_g` call in the body.
fn first_primitive_call(node: &crate::callgraph::FnNode<'_>) -> Option<u32> {
    let mut found = None;
    walk_exprs(&node.item.body, &mut |e| {
        let (name, line) = match e {
            Expr::Call { path, line, .. } => (path.last().map(String::as_str), *line),
            Expr::MethodCall { name, line, .. } => (Some(name.as_str()), *line),
            _ => return,
        };
        if let Some(n) = name {
            if PRIMITIVE_FAMILY.contains(&n) && found.is_none() {
                found = Some(line);
            }
        }
    });
    found
}

/// Whether the body contains a census bump (`count(..)` /
/// `metrics::count(..)`), ignoring `debug_assert!`-style contents which
/// the parser already treats as opaque macro arguments we still walk —
/// a census bump inside one would be compiled out, but none exist and a
/// false "covered" there is the conservative direction we accept for a
/// token-free heuristic.
fn has_census_bump(node: &crate::callgraph::FnNode<'_>) -> bool {
    let mut found = false;
    walk_exprs(&node.item.body, &mut |e| {
        if let Expr::Call { path, .. } = e {
            if path.last().map(String::as_str) == Some("count") {
                found = true;
            }
        }
    });
    found
}

/// Coverage decision with cycle handling: a cycle with no census bump
/// anywhere on it is *not* covered.
fn is_covered(ws: &WorkspaceView<'_>, idx: usize, memo: &mut HashMap<usize, Option<bool>>) -> bool {
    match memo.get(&idx) {
        Some(Some(v)) => return *v,
        Some(None) => return false, // cycle: no bump seen on this path
        None => {}
    }
    memo.insert(idx, None);
    let node = &ws.graph.nodes[idx];
    let name = node.item.name.as_str();
    let decided = if PRIMITIVE_FAMILY.contains(&name)
        || EXEMPT_FNS.contains(&name)
        || has_census_bump(node)
    {
        true
    } else {
        // Only intra-crate callers count: cross-crate edges are resolved
        // by bare name and collide with unrelated `decrypt`/`pow`-style
        // methods, and external callers reach crypto through the counted
        // public API anyway.
        let callers: Vec<usize> = ws
            .graph
            .callers_of(idx)
            .iter()
            .copied()
            .filter(|&c| {
                c != idx
                    && !ws.graph.nodes[c].in_test_region
                    && ws.graph.nodes[c].file.starts_with("crates/crypto/src")
            })
            .collect();
        !callers.is_empty() && callers.into_iter().all(|c| is_covered(ws, c, memo))
    };
    memo.insert(idx, Some(decided));
    decided
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        let rules: Vec<Box<dyn Rule>> = vec![Box::new(CensusCoverage)];
        engine::run(
            &rules,
            &[SourceFile::new("crates/crypto/src/thing.rs", src)],
            &[],
        )
        .findings
    }

    #[test]
    fn uncounted_exponentiation_is_flagged() {
        let src = "fn mystery(g: &E, e: &N) -> E { g.pow(e) }";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`mystery`"));
    }

    #[test]
    fn counted_and_wrapper_functions_are_covered() {
        let src = "\
fn pow(g: &E, e: &N) -> E { g.modpow(e) }
fn encrypt(m: &N) -> E { count(Op::PaillierEncrypt); pow(G, m) }
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn helper_covered_through_all_counted_callers() {
        let src = "\
fn inner(e: &N) -> E { G.modpow(e) }
fn enc(m: &N) -> E { count(Op::X); inner(m) }
fn dec(c: &E) -> N { count(Op::Y); inner(c) }
";
        assert!(check(src).is_empty());
        let one_uncounted = "\
fn inner(e: &N) -> E { G.modpow(e) }
fn enc(m: &N) -> E { count(Op::X); inner(m) }
fn sneaky(c: &E) -> N { inner(c) }
";
        let out = check(one_uncounted);
        // Only the helper holds the exponentiation, so the single finding
        // lands there; `sneaky` is the caller that breaks its coverage.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`inner`"));
    }

    #[test]
    fn keygen_and_test_code_are_exempt() {
        let src = "\
fn generate(bits: u32) -> K { G.modpow(r) }
#[cfg(test)]
mod tests { fn t() { G.modpow(r); } }
";
        assert!(check(src).is_empty());
    }
}
