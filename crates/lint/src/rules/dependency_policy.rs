//! `dependency-policy` — the workspace stays offline-only.
//!
//! Every primitive here is implemented in-tree precisely so the whole
//! system can be read, audited, and rebuilt with no network access (the
//! threat model has the mediator operating on ciphertexts only — an
//! unvetted dependency is an unvetted party).  Every `[dependencies]`-like
//! section in every `Cargo.toml` must resolve by `path` (directly or via
//! `workspace = true` onto a path-only `[workspace.dependencies]`); any
//! `git`, `registry`, or bare-version dependency fails the build.
//!
//! The check is a line-oriented parse of the manifest: section headers in
//! brackets, `key = value` entries, inline tables scanned for `path` /
//! `workspace` keys.  That is deliberate — TOML's full grammar is not
//! needed to classify a dependency spec.

use crate::engine::{Finding, ManifestFile, Rule};

/// Section names whose entries are dependency specs.
const DEP_SECTIONS: &[&str] = &[
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// The dependency-policy rule (see module docs).
pub struct DependencyPolicy;

impl Rule for DependencyPolicy {
    fn id(&self) -> &'static str {
        "dependency-policy"
    }

    fn description(&self) -> &'static str {
        "all Cargo.toml dependencies must be path deps (offline-only workspace)"
    }

    fn check_manifest(&self, manifest: &ManifestFile, findings: &mut Vec<Finding>) {
        let mut in_dep_section = false;
        for (idx, raw) in manifest.text.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = header(line) {
                in_dep_section = DEP_SECTIONS
                    .iter()
                    .any(|s| section == *s || section.ends_with(&format!(".{s}")));
                continue;
            }
            if !in_dep_section {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            // `name.workspace = true` / `name.path = "..."` dotted forms.
            if let Some((_, attr)) = key.split_once('.') {
                if attr == "workspace" || attr == "path" {
                    continue;
                }
                // name.version / name.git / ... — classify by the attr.
                findings.push(self.finding(manifest, line_no, key, attr));
                continue;
            }
            if let Some(table) = value.strip_prefix('{') {
                if table.contains("path") || table.contains("workspace") {
                    continue;
                }
                let how = if table.contains("git") {
                    "git"
                } else if table.contains("registry") {
                    "registry"
                } else {
                    "version-only"
                };
                findings.push(self.finding(manifest, line_no, key, how));
                continue;
            }
            // `name = "1.2"` — bare registry version.
            if value.starts_with('"') {
                findings.push(self.finding(manifest, line_no, key, "version-only"));
            }
        }
    }
}

impl DependencyPolicy {
    fn finding(&self, manifest: &ManifestFile, line: u32, key: &str, how: &str) -> Finding {
        Finding {
            file: manifest.path.clone(),
            line,
            rule: self.id(),
            message: format!(
                "dependency `{key}` is a {how} dependency; this workspace is \
                 offline-only — use a `path` dependency on an in-tree crate",
            ),
        }
    }
}

/// Returns the section name if `line` is a `[section]` / `[[section]]` header.
fn header(line: &str) -> Option<&str> {
    let inner = line
        .strip_prefix("[[")
        .and_then(|s| s.strip_suffix("]]"))
        .or_else(|| line.strip_prefix('[').and_then(|s| s.strip_suffix(']')))?;
    Some(inner.trim())
}

/// Drops a `#` comment, respecting (single-line) quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(text: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        DependencyPolicy.check_manifest(
            &ManifestFile {
                path: "crates/x/Cargo.toml".into(),
                text: text.into(),
            },
            &mut out,
        );
        out
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let text = "[dependencies]\nsecmed-obs.workspace = true\n\
                    secmed-core = { path = \"../core\" }\n";
        assert!(check(text).is_empty());
    }

    #[test]
    fn registry_git_and_version_deps_fail() {
        let text = "[dependencies]\nserde = \"1.0\"\n\
                    rand = { git = \"https://example.com/rand\" }\n\
                    toml = { version = \"0.8\" }\n";
        let out = check(text);
        assert_eq!(out.len(), 3);
        assert!(out[0].message.contains("version-only"));
        assert!(out[1].message.contains("git"));
        assert!(out.iter().all(|f| f.rule == "dependency-policy"));
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let text = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\
                    [features]\ndefault = []\n";
        assert!(check(text).is_empty());
    }

    #[test]
    fn workspace_dependencies_section_is_checked() {
        let text = "[workspace.dependencies]\nserde = \"1.0\"\n";
        assert_eq!(check(text).len(), 1);
    }

    #[test]
    fn plan_manifest_shape_passes_and_registry_variant_fails() {
        // The planner crate's real manifest shape: workspace path deps only.
        let check_plan = |text: &str| {
            let mut out = Vec::new();
            DependencyPolicy.check_manifest(
                &ManifestFile {
                    path: "crates/plan/Cargo.toml".into(),
                    text: text.into(),
                },
                &mut out,
            );
            out
        };
        let ok = "[dependencies]\nrelalg.workspace = true\n\
                  secmed-core.workspace = true\n";
        assert!(check_plan(ok).is_empty());
        let bad = "[dependencies]\nrelalg.workspace = true\n\
                   petgraph = \"0.6\"\n";
        let out = check_plan(bad);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].file, "crates/plan/Cargo.toml");
    }

    #[test]
    fn dev_dependencies_are_checked_and_comments_stripped() {
        let text = "[dev-dependencies]\n# registry = not a dep\n\
                    criterion = { version = \"0.5\" } # bench\n";
        let out = check(text);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }
}
