//! `determinism` — wall-clock reads stay inside the observability and
//! bench crates.
//!
//! Protocol runs must be replayable: the paper's efficiency claims (§6)
//! are argued over operation counts, and the repo backs them with
//! deterministic traces plus a dedicated timing harness.  A stray
//! `Instant::now()` in protocol or crypto code either leaks timing into
//! protocol state or silently turns a reproducible test into a flaky one.
//! Outside `crates/obs/` and `crates/bench/`, no code — including tests —
//! may name `Instant` or `SystemTime`.

use crate::engine::{Finding, Rule};
use crate::source::SourceFile;

/// Directories allowed to read the clock.
const EXEMPT: &[&str] = &["crates/obs/", "crates/bench/"];

/// Clock types whose mention is banned.
const BANNED_IDENTS: &[&str] = &["Instant", "SystemTime"];

/// The determinism rule (see module docs).
pub struct Determinism;

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "Instant/SystemTime only in crates/obs and crates/bench"
    }

    fn check_source(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if EXEMPT.iter().any(|dir| file.path.starts_with(dir)) {
            return;
        }
        for &ti in &file.code_indices() {
            let tok = &file.tokens[ti];
            if BANNED_IDENTS.iter().any(|b| tok.is_ident(b)) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: format!(
                        "`{}` makes runs irreproducible; timing belongs in \
                         crates/obs (tracing) or crates/bench (measurement)",
                        tok.text
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        Determinism.check_source(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_clock_reads_anywhere_in_scope() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let out = check("crates/core/src/protocol/pm.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "determinism");
    }

    #[test]
    fn applies_to_test_code_too() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let _ = SystemTime::now(); } }";
        assert_eq!(check("crates/crypto/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn obs_and_bench_are_exempt() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(check("crates/obs/src/timing.rs", src).is_empty());
        assert!(check("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn mentions_in_comments_are_not_code() {
        let src = "// Instant would be wrong here\nfn f() {}";
        assert!(check("crates/core/src/lib.rs", src).is_empty());
    }
}
