//! `determinism` — wall-clock reads stay inside the observability and
//! bench crates, and raw threading stays inside the pool crate.
//!
//! Protocol runs must be replayable: the paper's efficiency claims (§6)
//! are argued over operation counts, and the repo backs them with
//! deterministic traces plus a dedicated timing harness.  A stray
//! `Instant::now()` in protocol or crypto code either leaks timing into
//! protocol state or silently turns a reproducible test into a flaky one.
//! Outside `crates/obs/` and `crates/bench/`, no code — including tests —
//! may name `Instant` or `SystemTime`.
//!
//! The same argument applies to concurrency: `secmed-pool` is the one
//! place allowed to touch `std::thread`, because its order-preserving
//! fork-join API is what keeps parallel runs byte-identical to sequential
//! ones.  Ad hoc `std::thread::spawn` elsewhere reintroduces
//! scheduling-dependent ordering that the pool exists to rule out.

use crate::engine::{Finding, Rule};
use crate::source::SourceFile;

/// Directories allowed to read the clock.
const EXEMPT: &[&str] = &["crates/obs/", "crates/bench/"];

/// Directories allowed to name `std::thread`: the pool crate owns all
/// spawning; obs and bench may query host parallelism for reporting.
const THREAD_EXEMPT: &[&str] = &["crates/pool/", "crates/obs/", "crates/bench/"];

/// Clock types whose mention is banned.
const BANNED_IDENTS: &[&str] = &["Instant", "SystemTime"];

/// The determinism rule (see module docs).
pub struct Determinism;

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "Instant/SystemTime only in crates/obs and crates/bench; std::thread only in crates/pool"
    }

    fn check_source(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        let clock_exempt = EXEMPT.iter().any(|dir| file.path.starts_with(dir));
        let thread_exempt = THREAD_EXEMPT.iter().any(|dir| file.path.starts_with(dir));
        if clock_exempt && thread_exempt {
            return;
        }
        let code = file.code_indices();
        for (ci, &ti) in code.iter().enumerate() {
            let tok = &file.tokens[ti];
            if !clock_exempt && BANNED_IDENTS.iter().any(|b| tok.is_ident(b)) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: format!(
                        "`{}` makes runs irreproducible; timing belongs in \
                         crates/obs (tracing) or crates/bench (measurement)",
                        tok.text
                    ),
                });
                continue;
            }
            // `std :: thread` as a unit: catches both full paths and
            // `use std::thread` imports without flagging the word alone.
            let is_std_thread = tok.is_ident("std")
                && code
                    .get(ci + 1)
                    .is_some_and(|&n| file.tokens[n].is_punct("::"))
                && code
                    .get(ci + 2)
                    .is_some_and(|&n| file.tokens[n].is_ident("thread"));
            if !thread_exempt && is_std_thread {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: "`std::thread` makes result ordering scheduling-dependent; \
                              spawn through secmed-pool's order-preserving fork-join API"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        Determinism.check_source(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_clock_reads_anywhere_in_scope() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let out = check("crates/core/src/protocol/pm.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "determinism");
    }

    #[test]
    fn applies_to_test_code_too() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let _ = SystemTime::now(); } }";
        assert_eq!(check("crates/crypto/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn obs_and_bench_are_exempt() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(check("crates/obs/src/timing.rs", src).is_empty());
        assert!(check("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn mentions_in_comments_are_not_code() {
        let src = "// Instant would be wrong here\nfn f() {}";
        assert!(check("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn flags_std_thread_outside_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let out = check("crates/core/src/protocol/pm.rs", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("secmed-pool"), "{}", out[0].message);
        let import = "use std::thread;\nfn f() { thread::yield_now(); }";
        assert_eq!(check("crates/crypto/src/sra.rs", import).len(), 1);
    }

    #[test]
    fn pool_obs_and_bench_may_name_std_thread() {
        let src = "fn f() { std::thread::scope(|s| { let _ = s; }); }";
        assert!(check("crates/pool/src/lib.rs", src).is_empty());
        assert!(check("crates/obs/src/bench.rs", src).is_empty());
        assert!(check("crates/bench/benches/pool_scaling.rs", src).is_empty());
    }

    #[test]
    fn pool_is_not_exempt_from_the_clock_facet() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(check("crates/pool/src/lib.rs", src).len(), 1);
    }
}
