//! `fault-discipline` — fault plans are constructed at the fabric
//! boundary and in test harnesses, never inside protocol drivers.
//!
//! The chaos suite's determinism argument rests on every fault decision
//! flowing through one seeded interception point in
//! `Transport::deliver`.  A protocol driver that built its own
//! [`FaultPlan`], added an `Outage`, or called `install_faults` mid-run
//! would fork the fault schedule away from the plan the harness seeded —
//! the same chaos seed would no longer reproduce the same log.  Drivers
//! are restricted to the two fault-agnostic questions the transport
//! answers for them (`degrade_on_exhausted`, and matching
//! `MedError::Delivery`); plan construction is allowed only in the
//! transport/engine layer, the test kit, and the bench harnesses.

use crate::engine::{Finding, Rule};
use crate::source::SourceFile;

/// Path prefixes allowed to construct fault plans: the test kit (chaos
/// generators), the bench harnesses (`chaos_sweep`), and the transport
/// module (the fabric trait and its implementations install plans).
const ALLOWED_PREFIXES: &[&str] = &[
    "crates/testkit/",
    "crates/bench/",
    "crates/lint/",
    "crates/core/src/transport/",
];

/// Exact files allowed to construct fault plans: the fabric itself (in
/// its legacy single-file spelling), the engine that installs plans from
/// `RunOptions`, the plan executor that forwards one plan-level schedule
/// into each node's `RunOptions` (never building its own), and the crate
/// root that re-exports the types.
const ALLOWED_FILES: &[&str] = &[
    "crates/core/src/transport.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/plan.rs",
    "crates/core/src/lib.rs",
];

/// Identifiers that mean "I am building or installing a fault schedule".
const BANNED_IDENTS: &[&str] = &["FaultPlan", "LinkMask", "Outage", "install_faults"];

/// The fault-discipline rule (see module docs).
pub struct FaultDiscipline;

impl Rule for FaultDiscipline {
    fn id(&self) -> &'static str {
        "fault-discipline"
    }

    fn description(&self) -> &'static str {
        "fault-plan construction only in the transport/engine layer, testkit, and bench harnesses"
    }

    fn check_source(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !file.path.starts_with("crates/") || !file.path.contains("/src/") {
            return;
        }
        if ALLOWED_PREFIXES.iter().any(|p| file.path.starts_with(p))
            || ALLOWED_FILES.contains(&file.path.as_str())
        {
            return;
        }
        for &ti in &file.code_indices() {
            if file.is_test_token(ti) {
                continue;
            }
            let tok = &file.tokens[ti];
            if let Some(name) = BANNED_IDENTS.iter().find(|n| tok.is_ident(n)) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: format!(
                        "`{name}` outside the fabric boundary; fault schedules are seeded \
                         by the harness and installed via `RunOptions` — a driver that \
                         builds its own would break seed-reproducible chaos runs"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        FaultDiscipline.check_source(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_plan_construction_in_a_driver() {
        let src = "fn f(t: &mut Transport) {\n    let p = FaultPlan::none(\"x\");\n    t.install_faults(p);\n}";
        let out = check("crates/core/src/protocol/das.rs", src);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.rule == "fault-discipline"));
    }

    #[test]
    fn flags_outages_and_masks_too() {
        let src =
            "fn f() { let _ = (Outage { party, from_step: 0, steps: 1 }, LinkMask::default()); }";
        let out = check("crates/core/src/protocol/pm.rs", src);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn transport_engine_lib_testkit_and_bench_are_exempt() {
        let src = "fn f() { let _ = FaultPlan::none(\"x\"); }";
        assert!(check("crates/core/src/transport.rs", src).is_empty());
        assert!(check("crates/core/src/engine.rs", src).is_empty());
        assert!(check("crates/core/src/plan.rs", src).is_empty());
        assert!(check("crates/core/src/lib.rs", src).is_empty());
        // The planner *crate* is not exempt — only core's plan executor.
        assert_eq!(check("crates/plan/src/lib.rs", src).len(), 1);
        assert!(check("crates/testkit/src/lib.rs", src).is_empty());
        assert!(check("crates/bench/src/bin/chaos_sweep.rs", src).is_empty());
    }

    #[test]
    fn degrade_queries_are_not_flagged() {
        let src = "fn f(t: &Transport) -> bool { t.degrade_on_exhausted() }";
        assert!(check("crates/core/src/protocol/commutative.rs", src).is_empty());
    }

    #[test]
    fn test_code_and_integration_tests_are_out_of_scope() {
        let src = "#[cfg(test)]\nmod tests { fn f() { let _ = FaultPlan::none(\"x\"); } }";
        assert!(check("crates/core/src/protocol/das.rs", src).is_empty());
        assert!(check(
            "crates/core/tests/chaos.rs",
            "fn f() { FaultPlan::none(\"x\"); }"
        )
        .is_empty());
    }
}
