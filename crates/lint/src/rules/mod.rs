//! The shipped rule set.
//!
//! Each rule is a small, self-contained module; `default_rules` assembles
//! the set the `secmed-lint` binary and the self-test run.  DESIGN.md's
//! "Static analysis" section maps every rule to the paper property it
//! protects.

mod census_coverage;
mod dependency_policy;
mod determinism;
mod fault_discipline;
mod panic_freedom;
mod retry_discipline;
mod secret_flow;
mod transport_discipline;
mod wire_discipline;

pub use census_coverage::CensusCoverage;
pub use dependency_policy::DependencyPolicy;
pub use determinism::Determinism;
pub use fault_discipline::FaultDiscipline;
pub use panic_freedom::PanicFreedom;
pub use retry_discipline::RetryDiscipline;
pub use secret_flow::SecretFlow;
pub use transport_discipline::TransportDiscipline;
pub use wire_discipline::WireDiscipline;

use crate::engine::Rule;

/// The nine shipped rules, in reporting order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(PanicFreedom),
        Box::new(SecretFlow),
        Box::new(CensusCoverage),
        Box::new(RetryDiscipline),
        Box::new(TransportDiscipline),
        Box::new(WireDiscipline),
        Box::new(FaultDiscipline),
        Box::new(Determinism),
        Box::new(DependencyPolicy),
    ]
}
