//! `panic-freedom` — no aborting escape hatches in protocol hot paths.
//!
//! ROADMAP's north star is a production service; a mediator that aborts on
//! a malformed ciphertext is a denial-of-service lever for any party.  In
//! the directories that execute protocol runs (`crates/core/src/protocol/`)
//! and the layers under them (`crates/crypto/`, `crates/mpint/`,
//! `crates/wire/`), non-test
//! code may not call `.unwrap()` / `.expect(...)` or invoke `panic!` /
//! `unreachable!` / `todo!` / `unimplemented!`.  Errors must surface as
//! typed `Result`s; genuinely unreachable states need an audited
//! `// lint:allow(panic-freedom) -- reason`.

use crate::engine::{Finding, Rule};
use crate::source::SourceFile;

/// Directories the rule applies to.
const SCOPE: &[&str] = &[
    "crates/core/src/protocol/",
    "crates/crypto/src/",
    "crates/mpint/src/",
    "crates/wire/src/",
];

/// Method names that abort on `Err`/`None`.
const BANNED_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that abort unconditionally.
const BANNED_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// The panic-freedom rule (see module docs).
pub struct PanicFreedom;

impl Rule for PanicFreedom {
    fn id(&self) -> &'static str {
        "panic-freedom"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/unreachable! in protocol, crypto, or bigint non-test code"
    }

    fn check_source(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !SCOPE.iter().any(|dir| file.path.starts_with(dir)) {
            return;
        }
        let code = file.code_indices();
        for (ci, &ti) in code.iter().enumerate() {
            if file.is_test_token(ti) {
                continue;
            }
            let tok = &file.tokens[ti];
            let prev = ci.checked_sub(1).map(|p| &file.tokens[code[p]]);
            let next = code.get(ci + 1).map(|&n| &file.tokens[n]);
            let method_call = BANNED_METHODS.contains(&tok.text.as_str())
                && prev.is_some_and(|p| p.is_punct("."))
                && next.is_some_and(|n| n.is_punct("("));
            let macro_call =
                BANNED_MACROS.contains(&tok.text.as_str()) && next.is_some_and(|n| n.is_punct("!"));
            if method_call || macro_call {
                let call = if method_call {
                    format!(".{}()", tok.text)
                } else {
                    format!("{}!", tok.text)
                };
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: format!(
                        "`{call}` can abort a protocol run; return a typed error instead \
                         (or justify with `// lint:allow(panic-freedom) -- reason`)"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        PanicFreedom.check_source(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros_in_scope() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }";
        let out = check("crates/crypto/src/foo.rs", src);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|f| f.rule == "panic-freedom"));
    }

    #[test]
    fn ignores_out_of_scope_paths_and_tests() {
        let src = "fn f() { a.unwrap(); }";
        assert!(check("crates/relalg/src/foo.rs", src).is_empty());
        assert!(check("crates/core/src/lib.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f() { a.unwrap(); } }";
        assert!(check("crates/crypto/src/foo.rs", test_src).is_empty());
    }

    #[test]
    fn fallible_variants_are_fine() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.expect_err(\"e\"); }";
        // unwrap_or / unwrap_or_else / expect_err are different identifiers —
        // they do not abort and must not be flagged.
        assert!(check("crates/mpint/src/foo.rs", src).is_empty());
    }

    #[test]
    fn strings_and_docs_are_not_code() {
        let src = "/// call `.unwrap()` at your peril\nfn f() { let s = \"panic!\"; }";
        assert!(check("crates/crypto/src/foo.rs", src).is_empty());
    }
}
