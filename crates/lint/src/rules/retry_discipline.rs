//! `retry-discipline` — bounded retries and explained degradation.
//!
//! The chaos suite (PR 5) proved the protocol drivers terminate under
//! injected faults *because* every `DeliveryPolicy` carries a finite
//! `max_attempts`; a policy constructed with an unbounded attempt count
//! (or one inherited implicitly through `..` functional update) can spin
//! a mediator forever on a dead peer — a DoS lever the paper's
//! availability discussion rules out.  Similarly, a `RunOutcome::Degraded`
//! without `details` destroys the audit trail the leakage accounting
//! depends on: a degraded run must say *what* was lost.
//!
//! PR 10 extends the same discipline to the session-resilience layer:
//! a `ReconnectPolicy` with `max_reconnects: u32::MAX` redials a dead
//! server forever, and one with `backoff_cap_ns: 0` turns the capped
//! exponential backoff into a tight reconnect spin — both are the same
//! DoS lever wearing a transport hat.
//!
//! All checks are structural, over struct-literal expressions in the
//! AST:
//!
//! * `DeliveryPolicy { .. }` must set `max_attempts` explicitly, and not
//!   to `u32::MAX`,
//! * `ReconnectPolicy { .. }` must set `max_reconnects` explicitly (not
//!   `MAX`) and `backoff_cap_ns` explicitly (not a literal zero),
//! * `RunOutcome::Degraded { .. }` must set `details`, and not to an
//!   evidently-empty `vec![]` / `Vec::new()`.

use crate::ast::{walk_exprs, Expr};
use crate::engine::{Finding, Rule, WorkspaceView};

/// The retry-discipline rule (see module docs).
pub struct RetryDiscipline;

impl Rule for RetryDiscipline {
    fn id(&self) -> &'static str {
        "retry-discipline"
    }

    fn description(&self) -> &'static str {
        "DeliveryPolicy and ReconnectPolicy must bound their retry budgets; \
         RunOutcome::Degraded must attach details"
    }

    fn check_workspace(&self, ws: &WorkspaceView<'_>, findings: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.is_test_file {
                continue;
            }
            crate::ast::for_each_fn(file.ast, &mut |_, item| {
                if file
                    .test_mask
                    .get(item.token_index)
                    .copied()
                    .unwrap_or(false)
                {
                    return;
                }
                walk_exprs(&item.body, &mut |e| {
                    let Expr::StructLit {
                        path,
                        fields,
                        has_rest,
                        line,
                    } = e
                    else {
                        return;
                    };
                    match path.last().map(String::as_str) {
                        Some("DeliveryPolicy") => {
                            check_policy(file.path, fields, *has_rest, *line, findings)
                        }
                        Some("ReconnectPolicy") => {
                            check_reconnect(file.path, fields, *has_rest, *line, findings)
                        }
                        Some("Degraded") if path.len() >= 2 => {
                            check_degraded(file.path, fields, *line, findings)
                        }
                        _ => {}
                    }
                });
            });
        }
    }
}

fn check_policy(
    path: &str,
    fields: &[crate::ast::FieldInit],
    has_rest: bool,
    line: u32,
    findings: &mut Vec<Finding>,
) {
    let finding = |message: String| Finding {
        file: path.to_string(),
        line,
        rule: "retry-discipline",
        message,
    };
    let Some(f) = fields.iter().find(|f| f.name == "max_attempts") else {
        findings.push(finding(format!(
            "DeliveryPolicy constructed without an explicit `max_attempts`{} — \
             every retry loop must be finitely bounded",
            if has_rest {
                " (inherited via `..` functional update)"
            } else {
                ""
            }
        )));
        return;
    };
    if let Some(Expr::Path { segs, .. }) = &f.value {
        if segs.last().map(String::as_str) == Some("MAX") {
            findings.push(finding(
                "DeliveryPolicy sets `max_attempts` to `MAX` — that is an unbounded \
                 retry loop in disguise"
                    .to_string(),
            ));
        }
    }
}

/// True when a numeric literal's token text evaluates to zero
/// (`0`, `0_u64`, `0x0`, ...): digit separators are dropped, any type
/// suffix is stripped, and what remains must be all zeros.
fn is_zero_literal(text: &str) -> bool {
    let compact: String = text.chars().filter(|&c| c != '_').collect();
    let hex = compact.strip_prefix("0x");
    let body = hex
        .or_else(|| compact.strip_prefix("0b"))
        .or_else(|| compact.strip_prefix("0o"))
        .unwrap_or(&compact);
    // The value part ends where a type suffix (`u64`, `usize`) begins.
    let is_digit = |c: char| {
        if hex.is_some() {
            c.is_ascii_hexdigit()
        } else {
            c.is_ascii_digit()
        }
    };
    let end = body.find(|c| !is_digit(c)).unwrap_or(body.len());
    let digits = body.get(..end).unwrap_or("");
    !digits.is_empty() && digits.chars().all(|c| c == '0')
}

fn check_reconnect(
    path: &str,
    fields: &[crate::ast::FieldInit],
    has_rest: bool,
    line: u32,
    findings: &mut Vec<Finding>,
) {
    let finding = |message: String| Finding {
        file: path.to_string(),
        line,
        rule: "retry-discipline",
        message,
    };
    let inherited = if has_rest {
        " (inherited via `..` functional update)"
    } else {
        ""
    };
    match fields.iter().find(|f| f.name == "max_reconnects") {
        None => findings.push(finding(format!(
            "ReconnectPolicy constructed without an explicit `max_reconnects`{inherited} — \
             every redial loop must be finitely bounded"
        ))),
        Some(f) => {
            if let Some(Expr::Path { segs, .. }) = &f.value {
                if segs.last().map(String::as_str) == Some("MAX") {
                    findings.push(finding(
                        "ReconnectPolicy sets `max_reconnects` to `MAX` — that is an \
                         unbounded redial loop in disguise"
                            .to_string(),
                    ));
                }
            }
        }
    }
    match fields.iter().find(|f| f.name == "backoff_cap_ns") {
        None => findings.push(finding(format!(
            "ReconnectPolicy constructed without an explicit `backoff_cap_ns`{inherited} — \
             the backoff ceiling must be stated where the policy is built"
        ))),
        Some(f) => {
            if let Some(Expr::Lit { text, .. }) = &f.value {
                if is_zero_literal(text) {
                    findings.push(finding(
                        "ReconnectPolicy sets `backoff_cap_ns` to zero — a zero cap \
                         collapses the exponential backoff into a reconnect spin"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

fn check_degraded(
    path: &str,
    fields: &[crate::ast::FieldInit],
    line: u32,
    findings: &mut Vec<Finding>,
) {
    let empty = match fields.iter().find(|f| f.name == "details") {
        None => true,
        Some(f) => match &f.value {
            Some(Expr::Macro { name, args, .. }) => name == "vec" && args.is_empty(),
            Some(Expr::Call { path, args, .. }) => {
                args.is_empty() && path.last().map(String::as_str) == Some("new")
            }
            _ => false,
        },
    };
    if empty {
        findings.push(Finding {
            file: path.to_string(),
            line,
            rule: "retry-discipline",
            message: "RunOutcome::Degraded without `details` — a degraded run must record \
                      what was lost for the audit trail"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        let rules: Vec<Box<dyn Rule>> = vec![Box::new(RetryDiscipline)];
        engine::run(
            &rules,
            &[SourceFile::new("crates/core/src/transport.rs", src)],
            &[],
        )
        .findings
    }

    #[test]
    fn bounded_policy_and_detailed_degradation_pass() {
        let src = "\
fn f() -> DeliveryPolicy {
    let o = RunOutcome::Degraded { details: vec![reason], joined: 3 };
    DeliveryPolicy { max_attempts: 4, backoff: Backoff::None }
}
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn missing_and_rest_inherited_max_attempts_are_flagged() {
        let src = "\
fn f() {
    let a = DeliveryPolicy { backoff: Backoff::None };
    let b = DeliveryPolicy { backoff: Backoff::None, ..base };
    let c = DeliveryPolicy { max_attempts: u32::MAX, backoff: Backoff::None };
}
";
        let out = check(src);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out[1].message.contains("functional update"));
        assert!(out[2].message.contains("unbounded"));
    }

    #[test]
    fn bounded_reconnect_policies_pass() {
        let src = "\
fn f() -> ReconnectPolicy {
    let quiet = ReconnectPolicy { max_reconnects: 0, base_backoff_ns: 0, backoff_cap_ns: 1, seed: 0 };
    ReconnectPolicy { max_reconnects: 8, base_backoff_ns: 200_000, backoff_cap_ns: 50_000_000, seed }
}
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn unbounded_or_capless_reconnect_policies_are_flagged() {
        let src = "\
fn f() {
    let a = ReconnectPolicy { base_backoff_ns: 1, backoff_cap_ns: 5, seed: 0 };
    let b = ReconnectPolicy { backoff_cap_ns: 5, ..base };
    let c = ReconnectPolicy { max_reconnects: u32::MAX, base_backoff_ns: 1, backoff_cap_ns: 5, seed: 0 };
    let d = ReconnectPolicy { max_reconnects: 4, base_backoff_ns: 1, backoff_cap_ns: 0, seed: 0 };
    let e = ReconnectPolicy { max_reconnects: 4, base_backoff_ns: 1, backoff_cap_ns: 0_u64, seed: 0 };
    let g = ReconnectPolicy { max_reconnects: 4, seed: 0, ..base };
}
";
        let out = check(src);
        assert_eq!(out.len(), 6, "{out:?}");
        assert!(out[0].message.contains("max_reconnects"));
        assert!(out[1].message.contains("functional update"));
        assert!(out[2].message.contains("unbounded redial"));
        assert!(out[3].message.contains("zero cap"));
        assert!(out[4].message.contains("zero cap"));
        assert!(out[5].message.contains("backoff_cap_ns"));
    }

    #[test]
    fn zero_literal_detection_handles_rust_spellings() {
        for zero in ["0", "00", "0_u64", "0u32", "0x0", "0x00_u64", "0b000"] {
            assert!(is_zero_literal(zero), "{zero} is zero");
        }
        for nonzero in ["1", "0x10", "0xA", "10", "2_000_000", "1u64", ""] {
            assert!(!is_zero_literal(nonzero), "{nonzero} is not zero");
        }
    }

    #[test]
    fn empty_degraded_details_are_flagged() {
        let src = "\
fn f() {
    let a = RunOutcome::Degraded { joined: 0 };
    let b = RunOutcome::Degraded { details: vec![], joined: 0 };
    let c = RunOutcome::Degraded { details: Vec::new(), joined: 0 };
    let d = RunOutcome::Degraded { details, joined: 0 };
}
";
        let out = check(src);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out[0].message.contains("audit trail"));
    }
}
