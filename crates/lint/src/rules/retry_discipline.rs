//! `retry-discipline` — bounded retries and explained degradation.
//!
//! The chaos suite (PR 5) proved the protocol drivers terminate under
//! injected faults *because* every `DeliveryPolicy` carries a finite
//! `max_attempts`; a policy constructed with an unbounded attempt count
//! (or one inherited implicitly through `..` functional update) can spin
//! a mediator forever on a dead peer — a DoS lever the paper's
//! availability discussion rules out.  Similarly, a `RunOutcome::Degraded`
//! without `details` destroys the audit trail the leakage accounting
//! depends on: a degraded run must say *what* was lost.
//!
//! Both checks are structural, over struct-literal expressions in the
//! AST:
//!
//! * `DeliveryPolicy { .. }` must set `max_attempts` explicitly, and not
//!   to `u32::MAX`,
//! * `RunOutcome::Degraded { .. }` must set `details`, and not to an
//!   evidently-empty `vec![]` / `Vec::new()`.

use crate::ast::{walk_exprs, Expr};
use crate::engine::{Finding, Rule, WorkspaceView};

/// The retry-discipline rule (see module docs).
pub struct RetryDiscipline;

impl Rule for RetryDiscipline {
    fn id(&self) -> &'static str {
        "retry-discipline"
    }

    fn description(&self) -> &'static str {
        "DeliveryPolicy must bound max_attempts; RunOutcome::Degraded must attach details"
    }

    fn check_workspace(&self, ws: &WorkspaceView<'_>, findings: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.is_test_file {
                continue;
            }
            crate::ast::for_each_fn(file.ast, &mut |_, item| {
                if file
                    .test_mask
                    .get(item.token_index)
                    .copied()
                    .unwrap_or(false)
                {
                    return;
                }
                walk_exprs(&item.body, &mut |e| {
                    let Expr::StructLit {
                        path,
                        fields,
                        has_rest,
                        line,
                    } = e
                    else {
                        return;
                    };
                    match path.last().map(String::as_str) {
                        Some("DeliveryPolicy") => {
                            check_policy(file.path, fields, *has_rest, *line, findings)
                        }
                        Some("Degraded") if path.len() >= 2 => {
                            check_degraded(file.path, fields, *line, findings)
                        }
                        _ => {}
                    }
                });
            });
        }
    }
}

fn check_policy(
    path: &str,
    fields: &[crate::ast::FieldInit],
    has_rest: bool,
    line: u32,
    findings: &mut Vec<Finding>,
) {
    let finding = |message: String| Finding {
        file: path.to_string(),
        line,
        rule: "retry-discipline",
        message,
    };
    let Some(f) = fields.iter().find(|f| f.name == "max_attempts") else {
        findings.push(finding(format!(
            "DeliveryPolicy constructed without an explicit `max_attempts`{} — \
             every retry loop must be finitely bounded",
            if has_rest {
                " (inherited via `..` functional update)"
            } else {
                ""
            }
        )));
        return;
    };
    if let Some(Expr::Path { segs, .. }) = &f.value {
        if segs.last().map(String::as_str) == Some("MAX") {
            findings.push(finding(
                "DeliveryPolicy sets `max_attempts` to `MAX` — that is an unbounded \
                 retry loop in disguise"
                    .to_string(),
            ));
        }
    }
}

fn check_degraded(
    path: &str,
    fields: &[crate::ast::FieldInit],
    line: u32,
    findings: &mut Vec<Finding>,
) {
    let empty = match fields.iter().find(|f| f.name == "details") {
        None => true,
        Some(f) => match &f.value {
            Some(Expr::Macro { name, args, .. }) => name == "vec" && args.is_empty(),
            Some(Expr::Call { path, args, .. }) => {
                args.is_empty() && path.last().map(String::as_str) == Some("new")
            }
            _ => false,
        },
    };
    if empty {
        findings.push(Finding {
            file: path.to_string(),
            line,
            rule: "retry-discipline",
            message: "RunOutcome::Degraded without `details` — a degraded run must record \
                      what was lost for the audit trail"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        let rules: Vec<Box<dyn Rule>> = vec![Box::new(RetryDiscipline)];
        engine::run(
            &rules,
            &[SourceFile::new("crates/core/src/transport.rs", src)],
            &[],
        )
        .findings
    }

    #[test]
    fn bounded_policy_and_detailed_degradation_pass() {
        let src = "\
fn f() -> DeliveryPolicy {
    let o = RunOutcome::Degraded { details: vec![reason], joined: 3 };
    DeliveryPolicy { max_attempts: 4, backoff: Backoff::None }
}
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn missing_and_rest_inherited_max_attempts_are_flagged() {
        let src = "\
fn f() {
    let a = DeliveryPolicy { backoff: Backoff::None };
    let b = DeliveryPolicy { backoff: Backoff::None, ..base };
    let c = DeliveryPolicy { max_attempts: u32::MAX, backoff: Backoff::None };
}
";
        let out = check(src);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out[1].message.contains("functional update"));
        assert!(out[2].message.contains("unbounded"));
    }

    #[test]
    fn empty_degraded_details_are_flagged() {
        let src = "\
fn f() {
    let a = RunOutcome::Degraded { joined: 0 };
    let b = RunOutcome::Degraded { details: vec![], joined: 0 };
    let c = RunOutcome::Degraded { details: Vec::new(), joined: 0 };
    let d = RunOutcome::Degraded { details, joined: 0 };
}
";
        let out = check(src);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out[0].message.contains("audit trail"));
    }
}
