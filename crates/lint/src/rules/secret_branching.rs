//! `secret-branching` — secret key material must not influence control
//! flow or equality tests.
//!
//! The paper's security reductions (commutative encryption after Agrawal et
//! al. §4, private matching after Freedman et al. §5) model the mediator as
//! learning nothing beyond ciphertext equality; a branch or `==` on a
//! private exponent, Paillier trapdoor, or DRBG state is exactly the kind
//! of data-dependent timing that collapses those arguments in practice.
//! This is a token-level taint check: identifiers drawn from the
//! secret-material registry may not appear inside `if`/`while`/`match`
//! conditions or as operands of `==`/`!=`, except inside approved
//! constant-time helpers (`mac_eq`-style) or their call sites.
//!
//! Key *generation* legitimately inspects candidates (rejection sampling);
//! those sites carry audited `lint:allow` comments — the point is that every
//! such branch is enumerable and reviewed, not that none exist.

use std::collections::BTreeSet;

use crate::engine::{Finding, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// The secret-material registry: `(path suffix, identifiers, what)`.
///
/// Identifiers are matched exactly and only in the named file, so short
/// field names (`e`, `d`, `x`) do not taint unrelated code.
const REGISTRY: &[(&str, &[&str], &str)] = &[
    (
        "crates/crypto/src/paillier.rs",
        &["lambda", "mu", "p", "q", "hp", "hq", "q_inv_p"],
        "Paillier private key material",
    ),
    (
        "crates/crypto/src/sra.rs",
        &["e", "d"],
        "SRA secret exponent",
    ),
    (
        "crates/crypto/src/elgamal.rs",
        &["x"],
        "ElGamal secret exponent",
    ),
    (
        "crates/crypto/src/exp_elgamal.rs",
        &["x"],
        "ElGamal secret exponent",
    ),
    (
        "crates/crypto/src/schnorr.rs",
        &["x", "k"],
        "Schnorr signing key / nonce",
    ),
    (
        "crates/crypto/src/drbg.rs",
        &["key", "value"],
        "DRBG internal state",
    ),
    (
        "crates/crypto/src/hybrid.rs",
        &["enc_key", "mac_key", "keys", "expected"],
        "session key material / computed MAC",
    ),
];

/// Helpers allowed to compare secret-derived values: their bodies and
/// their call sites are exempt.  `mac_eq` is the workspace's constant-time
/// comparator (crates/crypto/src/hmac.rs).
const APPROVED_HELPERS: &[&str] = &["mac_eq", "ct_eq"];

/// Tokens that close off an `==`/`!=` operand scan.
const WINDOW_BOUNDARY: &[&str] = &[";", ",", "{", "}", "=", "&&", "||", "==", "!="];

/// The secret-branching rule (see module docs).
pub struct SecretBranching;

impl Rule for SecretBranching {
    fn id(&self) -> &'static str {
        "secret-branching"
    }

    fn description(&self) -> &'static str {
        "registered secret identifiers may not appear in branch conditions or ==/!= comparisons"
    }

    fn check_source(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        let Some((_, secrets, what)) = REGISTRY
            .iter()
            .find(|(suffix, _, _)| file.path.ends_with(suffix))
        else {
            return;
        };
        let code = file.code_indices();
        let toks: Vec<_> = code.iter().map(|&i| &file.tokens[i]).collect();
        let exempt = exempt_mask(&toks);

        // (line, ident) pairs, deduplicated: `e.is_zero() || e.is_one()`
        // is one reviewable site per identifier, not two findings.
        let mut hits: BTreeSet<(u32, String)> = BTreeSet::new();

        let spans = condition_spans(&toks);
        for &(start, end) in &spans {
            for ci in start..end {
                self.scan(file, &code, &toks, &exempt, ci, secrets, &mut hits);
            }
        }
        for ci in 0..toks.len() {
            let t = toks[ci];
            if !(t.is_punct("==") || t.is_punct("!=")) {
                continue;
            }
            if spans.iter().any(|&(s, e)| ci >= s && ci < e) {
                continue; // already covered by the condition scan
            }
            for wi in operand_window(&toks, ci) {
                self.scan(file, &code, &toks, &exempt, wi, secrets, &mut hits);
            }
        }

        for (line, ident) in hits {
            findings.push(Finding {
                file: file.path.clone(),
                line,
                rule: self.id(),
                message: format!(
                    "secret `{ident}` ({what}) influences a branch or comparison; \
                     use a constant-time helper ({}) or justify with \
                     `// lint:allow(secret-branching) -- reason`",
                    APPROVED_HELPERS.join("/")
                ),
            });
        }
    }
}

impl SecretBranching {
    /// Records a hit when the code token at `ci` is a non-exempt,
    /// non-test secret identifier.
    #[allow(clippy::too_many_arguments)]
    fn scan(
        &self,
        file: &SourceFile,
        code: &[usize],
        toks: &[&crate::lexer::Token],
        exempt: &[bool],
        ci: usize,
        secrets: &[&str],
        hits: &mut BTreeSet<(u32, String)>,
    ) {
        let t = toks[ci];
        if t.kind != TokenKind::Ident || exempt[ci] || file.is_test_token(code[ci]) {
            return;
        }
        if secrets.contains(&t.text.as_str()) {
            hits.insert((t.line, t.text.clone()));
        }
    }
}

/// Spans (half-open, in code-token indices) of `if`/`while`/`match`
/// conditions: from the keyword to the block's opening `{`.
fn condition_spans(toks: &[&crate::lexer::Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("if") || t.is_ident("while") || t.is_ident("match")) {
            continue;
        }
        let mut depth = 0i64;
        for (j, u) in toks.iter().enumerate().skip(i + 1) {
            if u.is_punct("(") || u.is_punct("[") {
                depth += 1;
            } else if u.is_punct(")") || u.is_punct("]") {
                depth -= 1;
            } else if u.is_punct("{") && depth == 0 {
                spans.push((i + 1, j));
                break;
            } else if u.is_punct(";") && depth == 0 {
                break; // malformed / not actually a condition
            }
        }
    }
    spans
}

/// Code-token indices forming the left and right operands of the
/// comparison at `op`, stopping at statement boundaries.
fn operand_window(toks: &[&crate::lexer::Token], op: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    for i in (0..op).rev() {
        let t = toks[i];
        if t.is_punct(")") || t.is_punct("]") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && WINDOW_BOUNDARY.contains(&t.text.as_str()) {
            break;
        }
        out.push(i);
    }
    depth = 0;
    for (i, t) in toks.iter().enumerate().skip(op + 1) {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && WINDOW_BOUNDARY.contains(&t.text.as_str()) {
            break;
        }
        out.push(i);
    }
    out
}

/// Marks tokens inside approved-helper bodies (`fn mac_eq ... { ... }`)
/// and approved-helper call argument lists (`mac_eq( ... )`).
fn exempt_mask(toks: &[&crate::lexer::Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    for i in 0..toks.len() {
        if !APPROVED_HELPERS.contains(&toks[i].text.as_str()) || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let is_def = i > 0 && toks[i - 1].is_ident("fn");
        if is_def {
            // Exempt the whole body.
            if let Some(open) = (i..toks.len()).find(|&j| toks[j].is_punct("{")) {
                let mut depth = 0i64;
                for (j, m) in mask.iter_mut().enumerate().skip(open) {
                    if toks[j].is_punct("{") {
                        depth += 1;
                    } else if toks[j].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            *m = true;
                            break;
                        }
                    }
                    *m = true;
                }
            }
        } else if toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            // Exempt the call's argument list.
            let mut depth = 0i64;
            for (j, m) in mask.iter_mut().enumerate().skip(i + 1) {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        *m = true;
                        break;
                    }
                }
                *m = true;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        SecretBranching.check_source(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_equality_on_paillier_trapdoor() {
        let src = "fn f(&self) -> bool { self.lambda == other.lambda }";
        let out = check("crates/crypto/src/paillier.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "secret-branching");
        assert!(out[0].message.contains("lambda"));
    }

    #[test]
    fn flags_if_and_match_on_secret() {
        let src = "fn f(e: &N) { if e.is_zero() { return; } match e { _ => {} } }";
        let out = check("crates/crypto/src/sra.rs", src);
        // Two distinct sites on one line dedupe to one per (line, ident);
        // here both are on line 1 with ident `e`.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn public_identifiers_and_other_files_are_clean() {
        let src = "fn f(n: &N) { if n.is_zero() { return; } }";
        assert!(check("crates/crypto/src/paillier.rs", src).is_empty());
        let src2 = "fn f(lambda: u64) { if lambda == 0 { } }";
        assert!(check("crates/crypto/src/group.rs", src2).is_empty());
    }

    #[test]
    fn approved_helper_call_site_is_exempt() {
        let src = "fn f(&self) { if !mac_eq(&expected, &ct.mac) { return; } }";
        assert!(check("crates/crypto/src/hybrid.rs", src).is_empty());
    }

    #[test]
    fn approved_helper_body_is_exempt() {
        let src = "fn ct_eq(key: &[u8], other: &[u8]) -> bool { let mut d = 0; if key.len() == 0 { } d == 0 }";
        assert!(check("crates/crypto/src/drbg.rs", src).is_empty());
    }

    #[test]
    fn comparison_outside_any_condition_is_flagged() {
        let src = "fn f(&self) { let leaked = self.key == other.key; }";
        let out = check("crates/crypto/src/drbg.rs", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("key"));
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod tests { fn t(e: u8) { if e == 0 {} } }";
        assert!(check("crates/crypto/src/sra.rs", src).is_empty());
    }
}
