//! `secret-flow` — interprocedural replacement for the old token-level
//! `secret-branching` rule.
//!
//! The paper's security reductions (commutative encryption after Agrawal
//! et al. §4, private matching after Freedman et al. §5) model the
//! mediator as learning nothing beyond ciphertext equality; a branch, a
//! loop bound, an allocation size, or an `==` on a private exponent,
//! Paillier trapdoor, or DRBG state is exactly the data-dependent
//! behavior that collapses those arguments in practice.
//!
//! The old rule scanned single lines of tokens, so a secret that crossed
//! a `let` binding, a helper return, or a call argument escaped it.  This
//! rule runs the whole-workspace taint analysis ([`crate::taint`]) over
//! the call graph instead: seeds propagate through bindings, fields,
//! returns, and call arguments to a fixed point, and every sink a
//! seed-tainted value reaches becomes a finding — including sinks inside
//! a callee reached through a tainted argument, reported at the call
//! site.  Key *generation* legitimately inspects candidates (rejection
//! sampling); those sites carry audited `lint:allow(secret-flow)`
//! comments — the point is that every such branch is enumerable and
//! reviewed, not that none exist.

use crate::engine::{Finding, Rule, WorkspaceView};
use crate::taint::TaintAnalysis;

/// The secret-flow rule (see module docs).
pub struct SecretFlow;

impl Rule for SecretFlow {
    fn id(&self) -> &'static str {
        "secret-flow"
    }

    fn description(&self) -> &'static str {
        "secret key material must not flow into branches, loop bounds, allocation sizes, or ==/!="
    }

    fn check_workspace(&self, ws: &WorkspaceView<'_>, findings: &mut Vec<Finding>) {
        let analysis = TaintAnalysis::run(&ws.graph);
        for leak in analysis.leaks() {
            let node = &ws.graph.nodes[leak.node];
            findings.push(Finding {
                file: node.file.to_string(),
                line: leak.line,
                rule: self.id(),
                message: format!(
                    "in `{}`: {}; route through a constant-time helper or justify with \
                     `// lint:allow(secret-flow) -- reason`",
                    node.item.name, leak.message
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::source::SourceFile;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let rules: Vec<Box<dyn Rule>> = vec![Box::new(SecretFlow)];
        engine::run(&rules, &[SourceFile::new(path, src)], &[])
            .findings
            .into_iter()
            .filter(|f| f.rule == "secret-flow")
            .collect()
    }

    #[test]
    fn multihop_flow_is_flagged_with_function_context() {
        let src = "\
struct K { lambda: u64 }
impl K { fn half(&self) -> u64 { self.lambda / 2 } }
fn schedule(k: &K) -> u64 {
    let rounds = k.half();
    if rounds > 4 { 1 } else { 0 }
}
";
        let out = check("crates/crypto/src/paillier.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("in `schedule`"));
    }

    #[test]
    fn suppression_silences_a_reviewed_site() {
        let src = "\
fn generate(p: u64) -> u64 {
    // lint:allow(secret-flow) -- rejection sampling inspects candidates
    if p == q { 1 } else { 0 }
}
";
        assert!(check("crates/crypto/src/paillier.rs", src).is_empty());
    }

    #[test]
    fn direct_branch_still_flagged_as_before() {
        let src = "fn f(&self) -> bool { self.lambda == other.lambda }";
        let out = check("crates/crypto/src/paillier.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("==`/`!="));
    }
}
