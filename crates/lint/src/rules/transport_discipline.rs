//! `transport-discipline` — protocol code talks through
//! `secmed-core::transport`, nothing else.
//!
//! Every message the mediator, suppliers, and clients exchange must flow
//! through the recording `Transport` so the observability layer sees the
//! complete conversation and the leakage accounting (paper Table 1) stays
//! honest: a side channel built on a raw `std::sync::mpsc` pair or an ad
//! hoc socket would carry plaintext the trace never shows.  In
//! `crates/core/src/` and `crates/das/src/`, non-test code may not name
//! `std::sync::mpsc`, `std::net`, or raw socket types.

use crate::engine::{Finding, Rule};
use crate::source::SourceFile;

/// Directories the rule applies to.  The pool crate is in scope because a
/// worker that opened its own channel or socket could smuggle protocol
/// state past the recording transport just as easily as protocol code.
const SCOPE: &[&str] = &["crates/core/src/", "crates/das/src/", "crates/pool/src/"];

/// Identifiers that indicate an out-of-band channel.  `mpsc` catches both
/// `std::sync::mpsc` paths and `use ... mpsc` imports; the socket types
/// catch `std::net` and raw-fd escape hatches.
const BANNED_IDENTS: &[&str] = &[
    "mpsc",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "UnixStream",
    "UnixListener",
];

/// Two-segment paths banned as a unit (`std :: net`).
const BANNED_PATHS: &[(&str, &str)] = &[("std", "net"), ("std", "os")];

/// The transport-discipline rule (see module docs).
pub struct TransportDiscipline;

impl Rule for TransportDiscipline {
    fn id(&self) -> &'static str {
        "transport-discipline"
    }

    fn description(&self) -> &'static str {
        "protocol code must use secmed-core::transport, not raw channels or sockets"
    }

    fn check_source(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !SCOPE.iter().any(|dir| file.path.starts_with(dir)) {
            return;
        }
        // The transport module itself is the one place allowed to own
        // whatever primitive backs it.
        if file.path.ends_with("/transport.rs") {
            return;
        }
        let code = file.code_indices();
        for (ci, &ti) in code.iter().enumerate() {
            if file.is_test_token(ti) {
                continue;
            }
            let tok = &file.tokens[ti];
            if BANNED_IDENTS.iter().any(|b| tok.is_ident(b)) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: format!(
                        "`{}` bypasses secmed-core::transport; route messages through \
                         the recording Transport so traces stay complete",
                        tok.text
                    ),
                });
                continue;
            }
            let is_path = |&(a, b): &(&str, &str)| {
                tok.is_ident(a)
                    && code
                        .get(ci + 1)
                        .is_some_and(|&n| file.tokens[n].is_punct("::"))
                    && code
                        .get(ci + 2)
                        .is_some_and(|&n| file.tokens[n].is_ident(b))
            };
            if let Some((a, b)) = BANNED_PATHS.iter().find(|p| is_path(p)) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: format!(
                        "`{a}::{b}` bypasses secmed-core::transport; route messages \
                         through the recording Transport so traces stay complete"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        TransportDiscipline.check_source(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_mpsc_and_sockets_in_scope() {
        let src = "use std::sync::mpsc;\nfn f(s: TcpStream) {}";
        let out = check("crates/core/src/protocol/pm.rs", src);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.rule == "transport-discipline"));
    }

    #[test]
    fn flags_std_net_path() {
        let src = "fn f() { let _ = std::net::TcpStream::connect(\"x\"); }";
        let out = check("crates/das/src/lib.rs", src);
        assert!(!out.is_empty());
    }

    #[test]
    fn transport_module_and_out_of_scope_are_exempt() {
        let src = "use std::sync::mpsc;";
        assert!(check("crates/core/src/transport.rs", src).is_empty());
        assert!(check("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod tests { use std::sync::mpsc; }";
        assert!(check("crates/core/src/protocol/pm.rs", src).is_empty());
    }

    #[test]
    fn pool_crate_is_in_scope() {
        let src = "use std::sync::mpsc;";
        assert_eq!(check("crates/pool/src/lib.rs", src).len(), 1);
    }
}
