//! `transport-discipline` — protocol code talks through
//! `secmed-core::transport`, nothing else.
//!
//! Every message the mediator, suppliers, and clients exchange must flow
//! through the recording `Transport` so the observability layer sees the
//! complete conversation and the leakage accounting (paper Table 1) stays
//! honest: a side channel built on a raw `std::sync::mpsc` pair or an ad
//! hoc socket would carry plaintext the trace never shows.  Two checks:
//!
//! * in `crates/core/src/`, `crates/das/src/`, `crates/pool/src/`, and
//!   `crates/plan/src/`, non-test code may not name `std::sync::mpsc`
//!   (the fabric module itself owns whatever primitive backs it);
//! * workspace-wide, `std::net` / `std::os` and raw socket types appear
//!   only where bytes are *supposed* to leave the process: the socket
//!   fabric, `secmed-server`, and `secmed-client`.

use crate::engine::{Finding, Rule};
use crate::source::SourceFile;

/// Directories the channel (`mpsc`) check applies to.  The pool crate is
/// in scope because a worker that opened its own channel could smuggle
/// protocol state past the recording transport just as easily as
/// protocol code; the planner crate is in scope because it sits directly
/// above the protocol layer and must stay a pure function of its inputs.
const SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/das/src/",
    "crates/pool/src/",
    "crates/plan/src/",
];

/// Identifiers that indicate an out-of-band in-process channel.  `mpsc`
/// catches both `std::sync::mpsc` paths and `use ... mpsc` imports.
const BANNED_IDENTS: &[&str] = &["mpsc"];

/// Raw socket types, banned workspace-wide outside [`NET_ALLOWED_FILES`]
/// and [`NET_ALLOWED_PREFIXES`].
const SOCKET_IDENTS: &[&str] = &[
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "UnixStream",
    "UnixListener",
];

/// Two-segment paths banned as a unit (`std :: net`), workspace-wide.
const BANNED_PATHS: &[(&str, &str)] = &[("std", "net"), ("std", "os")];

/// The only file inside the library crates allowed to open sockets: the
/// loopback fabric implementation.
const NET_ALLOWED_FILES: &[&str] = &["crates/core/src/transport/socket.rs"];

/// The process-boundary crates: the server binary that hosts the
/// mediator and the client that dials it.
const NET_ALLOWED_PREFIXES: &[&str] = &["crates/server/src/", "crates/client/src/"];

/// The transport-discipline rule (see module docs).
pub struct TransportDiscipline;

impl Rule for TransportDiscipline {
    fn id(&self) -> &'static str {
        "transport-discipline"
    }

    fn description(&self) -> &'static str {
        "protocol code must use secmed-core::transport, not raw channels or sockets"
    }

    fn check_source(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !file.path.starts_with("crates/") || !file.path.contains("/src/") {
            return;
        }
        // The channel check is scoped to the protocol-bearing crates; the
        // transport module itself is the one place allowed to own
        // whatever primitive backs it.
        let check_channels = SCOPE.iter().any(|dir| file.path.starts_with(dir))
            && !file.path.ends_with("/transport.rs")
            && file.path != "crates/core/src/transport/mod.rs";
        // The socket check is workspace-wide minus the declared process
        // boundaries.
        let check_sockets = !NET_ALLOWED_FILES.contains(&file.path.as_str())
            && !NET_ALLOWED_PREFIXES
                .iter()
                .any(|p| file.path.starts_with(p));
        if !check_channels && !check_sockets {
            return;
        }
        let code = file.code_indices();
        for (ci, &ti) in code.iter().enumerate() {
            if file.is_test_token(ti) {
                continue;
            }
            let tok = &file.tokens[ti];
            if check_channels && BANNED_IDENTS.iter().any(|b| tok.is_ident(b)) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: format!(
                        "`{}` bypasses secmed-core::transport; route messages through \
                         the recording Transport so traces stay complete",
                        tok.text
                    ),
                });
                continue;
            }
            if !check_sockets {
                continue;
            }
            if SOCKET_IDENTS.iter().any(|b| tok.is_ident(b)) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: format!(
                        "`{}` outside the socket fabric and the server/client crates; \
                         bytes leave the process only through SocketFabric",
                        tok.text
                    ),
                });
                continue;
            }
            let is_path = |&(a, b): &(&str, &str)| {
                tok.is_ident(a)
                    && code
                        .get(ci + 1)
                        .is_some_and(|&n| file.tokens[n].is_punct("::"))
                    && code
                        .get(ci + 2)
                        .is_some_and(|&n| file.tokens[n].is_ident(b))
            };
            if let Some((a, b)) = BANNED_PATHS.iter().find(|p| is_path(p)) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: format!(
                        "`{a}::{b}` outside the socket fabric and the server/client \
                         crates; bytes leave the process only through SocketFabric"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        TransportDiscipline.check_source(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_mpsc_and_sockets_in_scope() {
        let src = "use std::sync::mpsc;\nfn f(s: TcpStream) {}";
        let out = check("crates/core/src/protocol/pm.rs", src);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.rule == "transport-discipline"));
    }

    #[test]
    fn flags_std_net_path() {
        let src = "fn f() { let _ = std::net::TcpStream::connect(\"x\"); }";
        let out = check("crates/das/src/lib.rs", src);
        assert!(!out.is_empty());
    }

    #[test]
    fn transport_module_and_out_of_scope_are_exempt() {
        let src = "use std::sync::mpsc;";
        assert!(check("crates/core/src/transport.rs", src).is_empty());
        assert!(check("crates/core/src/transport/mod.rs", src).is_empty());
        assert!(check("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn sockets_are_banned_workspace_wide() {
        // The mpsc scope does not limit the socket check: a bench or
        // testkit helper opening its own socket is still a bypass.
        let src = "fn f(s: TcpStream) { let _ = std::net::TcpListener::bind(\"x\"); }";
        assert_eq!(check("crates/bench/src/lib.rs", src).len(), 3);
        assert_eq!(check("crates/testkit/src/chaos.rs", src).len(), 3);
        // ...but only inside crate sources; generated/output dirs are not.
        assert!(check("target/debug/build/x.rs", src).is_empty());
    }

    #[test]
    fn socket_fabric_and_process_boundary_crates_may_open_sockets() {
        let src = "fn f() { let s = std::net::TcpStream::connect(\"x\"); }";
        assert!(check("crates/core/src/transport/socket.rs", src).is_empty());
        assert!(check("crates/server/src/lib.rs", src).is_empty());
        assert!(check("crates/client/src/bin/secmed-client.rs", src).is_empty());
        // The rest of the transport module is NOT on the net allowlist.
        assert_eq!(check("crates/core/src/transport/mod.rs", src).len(), 2);
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod tests { use std::sync::mpsc; }";
        assert!(check("crates/core/src/protocol/pm.rs", src).is_empty());
    }

    #[test]
    fn pool_crate_is_in_scope() {
        let src = "use std::sync::mpsc;";
        assert_eq!(check("crates/pool/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn plan_crate_is_in_scope() {
        let src = "use std::sync::mpsc;";
        assert_eq!(check("crates/plan/src/lib.rs", src).len(), 1);
        // Sockets are banned there like everywhere outside the allowlist.
        let net = "fn f() { let s = std::net::TcpStream::connect(\"x\"); }";
        assert_eq!(check("crates/plan/src/lib.rs", net).len(), 2);
        // A planner crate free of channels and sockets is clean.
        assert!(check("crates/plan/src/lib.rs", "pub fn plan() {}").is_empty());
    }
}
