//! `wire-discipline` — frame encoding and decoding happen at the fabric
//! boundary, nowhere else.
//!
//! The leakage audit (paper Table 1) is recomputed from the transport's
//! decoded frame log, and the byte accounting is the recorded payload
//! lengths.  Both are only trustworthy if the wire codec is invoked at
//! exactly one boundary: code that called `secmed_wire` directly from,
//! say, the engine or a bench binary could fabricate or re-serialize
//! frames the fabric never carried.  Outside `crates/wire/`,
//! `crates/core/src/protocol/`, the transport module
//! (`crates/core/src/transport/`), and the process-boundary crates
//! (`secmed-server` relays framed blobs, `secmed-client` drives the
//! socket fabric), non-test code may not name `secmed_wire` or call
//! `Frame::encode`/`Frame::decode`.

use crate::engine::{Finding, Rule};
use crate::source::SourceFile;

/// Path prefixes exempt from the rule: the codec itself, the protocol
/// drivers (which build and match frames), the transport module (which
/// encodes on send and decodes on receipt — both the recording fabric
/// and the socket fabric), and the server, whose relay loop peeks frame
/// headers to validate sessions.
const ALLOWED_PREFIXES: &[&str] = &[
    "crates/wire/",
    "crates/core/src/protocol/",
    "crates/core/src/transport/",
    "crates/server/src/",
];

/// Exact files exempt from the rule.
const ALLOWED_FILES: &[&str] = &["crates/core/src/transport.rs"];

/// Two-segment paths that mean "I am running the codec myself".
const BANNED_PATHS: &[(&str, &str)] = &[("Frame", "encode"), ("Frame", "decode")];

/// The wire-discipline rule (see module docs).
pub struct WireDiscipline;

impl Rule for WireDiscipline {
    fn id(&self) -> &'static str {
        "wire-discipline"
    }

    fn description(&self) -> &'static str {
        "frame codec calls only in crates/wire, core protocol drivers, and the transport module"
    }

    fn check_source(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !file.path.starts_with("crates/") || !file.path.contains("/src/") {
            return;
        }
        if ALLOWED_PREFIXES.iter().any(|p| file.path.starts_with(p))
            || ALLOWED_FILES.contains(&file.path.as_str())
        {
            return;
        }
        let code = file.code_indices();
        for (ci, &ti) in code.iter().enumerate() {
            if file.is_test_token(ti) {
                continue;
            }
            let tok = &file.tokens[ti];
            if tok.is_ident("secmed_wire") {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: "`secmed_wire` is reserved for the protocol drivers and the \
                              transport module; use the `secmed-core::transport` re-exports \
                              and let the fabric run the codec"
                        .to_string(),
                });
                continue;
            }
            let is_path = |&(a, b): &(&str, &str)| {
                tok.is_ident(a)
                    && code
                        .get(ci + 1)
                        .is_some_and(|&n| file.tokens[n].is_punct("::"))
                    && code
                        .get(ci + 2)
                        .is_some_and(|&n| file.tokens[n].is_ident(b))
            };
            if let Some((a, b)) = BANNED_PATHS.iter().find(|p| is_path(p)) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tok.line,
                    rule: self.id(),
                    message: format!(
                        "`{a}::{b}` outside the fabric boundary; frames must be encoded \
                         on send and decoded on receipt by the transport, or the byte \
                         accounting and the Table 1 audit drift from reality"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        WireDiscipline.check_source(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_secmed_wire_and_codec_calls_in_engine_code() {
        let src = "use secmed_wire::Frame;\nfn f(b: &[u8]) { let _ = Frame::decode(b); }";
        let out = check("crates/core/src/engine.rs", src);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.rule == "wire-discipline"));
    }

    #[test]
    fn protocol_drivers_transport_and_wire_are_exempt() {
        let src = "use secmed_wire::Frame;\nfn f(fr: &Frame) { let _ = fr.encode(); }";
        assert!(check("crates/core/src/protocol/das.rs", src).is_empty());
        assert!(check("crates/core/src/transport.rs", src).is_empty());
        assert!(check("crates/wire/src/frame.rs", src).is_empty());
    }

    #[test]
    fn integration_tests_are_out_of_scope() {
        let src = "use secmed_wire::Frame;";
        assert!(check("crates/core/tests/protocols.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod tests { use secmed_wire::Frame; }";
        assert!(check("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn bench_binaries_are_in_scope() {
        let src = "fn f(b: &[u8]) { let _ = secmed_wire::Frame::decode(b); }";
        assert!(!check("crates/bench/src/bin/report.rs", src).is_empty());
    }
}
