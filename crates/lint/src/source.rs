//! A lexed source file plus the file-level analyses shared by all rules:
//! which token ranges are test code, and which `lint:allow` suppressions
//! the file declares.

use crate::lexer::{lex, Token, TokenKind};

/// An audited suppression comment:
/// `// lint:allow(rule-id, ...) -- reason`.
///
/// A suppression silences findings of the listed rules on its own line
/// (so it can ride at the end of the offending line) and through the end
/// of the next statement — the comment may span several lines, and the
/// statement it guards may too.  The reason after `--` is mandatory — the
/// whole point is an auditable trail.
#[derive(Debug)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// Last line covered (end of the statement following the comment).
    pub end_line: u32,
    /// The rule ids it silences.
    pub rules: Vec<String>,
    /// The audit reason (non-empty).
    pub reason: String,
}

/// A lexed `.rs` file with workspace-relative path.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// True when the whole file is test/bench/example code.
    pub is_test_file: bool,
    /// Per-token flag: inside a `#[cfg(test)]` or `#[test]` item.
    test_mask: Vec<bool>,
    /// Well-formed suppressions, in order.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppression comments: `(line, problem)`.
    pub malformed: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes and analyzes one file.  `path` must be workspace-relative.
    pub fn new(path: impl Into<String>, source: &str) -> Self {
        let path = path.into();
        let tokens = lex(source);
        let is_test_file = path.starts_with("tests/")
            || path.contains("/tests/")
            || path.contains("/benches/")
            || path.starts_with("examples/")
            || path.contains("/examples/");
        let test_mask = test_mask(&tokens);
        let (mut suppressions, malformed) = collect_suppressions(&tokens);
        for s in &mut suppressions {
            s.end_line = coverage_end(&tokens, s.line);
        }
        SourceFile {
            path,
            tokens,
            is_test_file,
            test_mask,
            suppressions,
            malformed,
        }
    }

    /// True when the token at `index` is test code (either the whole file
    /// is, or the token sits under a test attribute).
    pub fn is_test_token(&self, index: usize) -> bool {
        self.is_test_file || self.test_mask.get(index).copied().unwrap_or(false)
    }

    /// Per-token test-region mask, indexed by token index (empty ⇒ no
    /// test attributes; whole-file test status is `is_test_file`).
    pub fn test_mask(&self) -> &[bool] {
        &self.test_mask
    }

    /// The non-comment token stream indices, in order — rules usually want
    /// to reason about adjacency without comments in between.
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_comment())
            .collect()
    }

    /// Index of the suppression covering `rule` on `line`, if any.  The
    /// engine tracks which (suppression, rule) pairs actually silenced a
    /// finding — the file itself is immutable, so the engine can scan
    /// files from several threads.
    pub fn suppression_for(&self, rule: &str, line: u32) -> Option<usize> {
        self.suppressions
            .iter()
            .position(|s| s.line <= line && line <= s.end_line && s.rules.iter().any(|r| r == rule))
    }
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]` items: after such an
/// attribute, everything from the item's opening `{` to its matching `}`
/// is test code (attributes on brace-less items mark nothing).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                if let Some((open, close)) = item_braces(tokens, attr_end + 1) {
                    for m in mask.iter_mut().take(close + 1).skip(open) {
                        *m = true;
                    }
                    // Also mark the attribute itself and the item header.
                    for m in mask.iter_mut().take(open).skip(i) {
                        *m = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans the bracketed attribute starting at the `[` at `open`; returns the
/// index of the closing `]` and whether the attribute is `test` or
/// `cfg(... test ...)`.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident {
            idents.push(t.text.as_str().to_string());
        }
        i += 1;
    }
    let is_test = match idents.first().map(String::as_str) {
        Some("test") => true,
        Some("cfg") => idents.iter().any(|s| s == "test"),
        _ => false,
    };
    (i, is_test)
}

/// Finds the `{ ... }` of the item following an attribute: the first `{`
/// before any `;`, and its matching `}`.
fn item_braces(tokens: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut open = None;
    for (i, t) in tokens.iter().enumerate().skip(from) {
        if t.is_punct(";") {
            return None;
        }
        if t.is_punct("{") {
            open = Some(i);
            break;
        }
    }
    let open = open?;
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some((open, i));
            }
        }
    }
    None
}

/// Last line a suppression on `line` covers: the end of the statement
/// following the comment — from the first non-comment token after `line`
/// to the first `;`, `{`, or `}` (so the suppression can span a multi-line
/// comment and guard a multi-line statement, but no further).
fn coverage_end(tokens: &[Token], line: u32) -> u32 {
    let Some(first) = tokens.iter().position(|t| !t.is_comment() && t.line > line) else {
        return line;
    };
    for t in &tokens[first..] {
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return t.line;
        }
    }
    tokens.last().map_or(line, |t| t.line)
}

/// Extracts `lint:allow` comments, separating the well-formed from the
/// malformed (missing rule list or missing `-- reason`).
fn collect_suppressions(tokens: &[Token]) -> (Vec<Suppression>, Vec<(u32, String)>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let Some(rest) = t.text.trim().strip_prefix("lint:allow") else {
            continue;
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            bad.push((t.line, "missing rule list after lint:allow".to_string()));
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push((t.line, "unterminated lint:allow rule list".to_string()));
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad.push((t.line, "empty lint:allow rule list".to_string()));
            continue;
        }
        let tail = rest[close + 1..].trim_start();
        let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad.push((
                t.line,
                "lint:allow requires an audit reason: `-- <why this is safe>`".to_string(),
            ));
            continue;
        }
        // A long audit reason may continue over immediately-following
        // comment lines; fold them in so the report shows the full text.
        let mut reason = reason.to_string();
        let mut prev_line = t.line;
        for next in &tokens[i + 1..] {
            if next.kind != TokenKind::LineComment
                || next.line != prev_line + 1
                || next.text.trim().starts_with("lint:allow")
            {
                break;
            }
            reason.push(' ');
            reason.push_str(next.text.trim());
            prev_line = next.line;
        }
        good.push(Suppression {
            line: t.line,
            end_line: t.line, // fixed up by SourceFile::new
            rules,
            reason,
        });
    }
    (good, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_masked() {
        let src =
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        let unwraps: Vec<usize> = (0..f.tokens.len())
            .filter(|&i| f.tokens[i].is_ident("unwrap"))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.is_test_token(unwraps[0]));
        assert!(f.is_test_token(unwraps[1]));
    }

    #[test]
    fn test_fn_attribute_is_masked() {
        let src = "#[test]\nfn check() { v.unwrap(); }\nfn live() { w.unwrap(); }";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        let unwraps: Vec<usize> = (0..f.tokens.len())
            .filter(|&i| f.tokens[i].is_ident("unwrap"))
            .collect();
        assert!(f.is_test_token(unwraps[0]));
        assert!(!f.is_test_token(unwraps[1]));
    }

    #[test]
    fn paths_mark_whole_files_as_tests() {
        for p in [
            "tests/full_stack.rs",
            "crates/core/tests/properties.rs",
            "crates/bench/benches/primitives.rs",
            "examples/quickstart.rs",
        ] {
            assert!(SourceFile::new(p, "fn f() {}").is_test_file, "{p}");
        }
        assert!(!SourceFile::new("crates/core/src/lib.rs", "fn f() {}").is_test_file);
    }

    #[test]
    fn suppression_parsing() {
        let src = "\
let a = 1; // lint:allow(panic-freedom) -- documented contract\n\
// lint:allow(a, b) -- two rules\n\
// lint:allow(panic-freedom)\n\
// lint:allow -- no list\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].rules, vec!["panic-freedom"]);
        assert_eq!(f.suppressions[0].reason, "documented contract");
        assert_eq!(f.suppressions[1].rules, vec!["a", "b"]);
        assert_eq!(f.malformed.len(), 2);
    }

    #[test]
    fn suppression_covers_own_and_next_line() {
        let src = "// lint:allow(r) -- above\nlet x = 1;\nlet y = 2;";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert_eq!(f.suppression_for("r", 1), Some(0));
        assert_eq!(f.suppression_for("r", 2), Some(0));
        assert_eq!(f.suppression_for("r", 3), None);
        assert_eq!(f.suppression_for("other", 2), None);
    }

    #[test]
    fn multiline_reason_is_folded_into_the_audit_trail() {
        let src = "\
// lint:allow(r) -- the first half of the reason\n\
// and the second half.\n\
let x = 1;";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert_eq!(
            f.suppressions[0].reason,
            "the first half of the reason and the second half."
        );
    }

    #[test]
    fn suppression_covers_multiline_comment_and_statement() {
        let src = "\
// lint:allow(r) -- a justification that\n\
// spans two comment lines\n\
let x = foo()\n\
    .bar();\n\
let y = 2;";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(f.suppression_for("r", 3).is_some());
        assert!(f.suppression_for("r", 4).is_some());
        assert!(f.suppression_for("r", 5).is_none());
    }
}
