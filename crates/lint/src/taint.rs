//! Interprocedural secret-taint dataflow.
//!
//! The paper's security argument needs one non-local invariant from the
//! implementation: **key material never influences control flow or message
//! sizes**.  Token-level scanning catches `if self.lambda == x`, but not a
//! secret that travels through a helper return, a `let` binding, or a call
//! argument.  This module closes that gap with a classic two-level design:
//!
//! * **Summaries.** Every function gets a relational summary computed to a
//!   fixed point over the call graph: which parameters flow into the return
//!   value, whether the return value carries secret ("seed") taint of its
//!   own, and which parameters reach a sink (branch/bound/comparison/
//!   allocation) inside the function or its callees.
//! * **Per-function dataflow.** A flow-insensitive-per-loop, name-keyed
//!   environment propagates taint through let-bindings, assignments, field
//!   accesses, struct literals, tuples, and calls (using callee summaries).
//!   Statements are analyzed twice so taint fed back through loop bodies
//!   stabilizes.
//!
//! Taint values are `u64` bitsets: bit 0 is the seed bit (real key
//! material), bit `i + 1` tracks dependence on parameter `i` (capped at 62
//! parameters — beyond that, parameters simply stop being tracked
//! relationally, which only loses precision, not soundness of reporting).
//!
//! **Seeds** come from the per-file registry of key-material names (the
//! registry the old token-level rule used) plus a small set of globally
//! seeded field names.  **Declassifiers** stop propagation: the return
//! value of an approved, censused crypto primitive (an encryption, MAC,
//! signature, DRBG output, ...) is public *by the scheme's security
//! argument* — a ciphertext may be compared, counted, and routed freely;
//! that is the entire point of the paper.  Without this boundary every
//! ciphertext comparison in the mediator would be a false positive.

use std::collections::HashMap;

use crate::ast::{Arm, Block, Expr, Stmt};
use crate::callgraph::CallGraph;

/// Seed bit: the value derives from registered key material.
pub const SEED: u64 = 1;

/// Per-file key-material name registry: `(path suffix, seeded names)`.
/// A name listed for a file taints every identifier *and* field of that
/// name within the file — the same convention the token-level rule used,
/// so existing audited suppressions keep their meaning.
pub const REGISTRY: &[(&str, &[&str])] = &[
    (
        "crates/crypto/src/paillier.rs",
        &["lambda", "mu", "p", "q", "hp", "hq", "q_inv_p", "crt"],
    ),
    ("crates/crypto/src/sra.rs", &["e", "d"]),
    ("crates/crypto/src/elgamal.rs", &["x"]),
    ("crates/crypto/src/exp_elgamal.rs", &["x"]),
    ("crates/crypto/src/schnorr.rs", &["x", "k"]),
    ("crates/crypto/src/drbg.rs", &["key", "value"]),
    (
        "crates/crypto/src/hybrid.rs",
        &["enc_key", "mac_key", "keys", "expected"],
    ),
];

/// Field names seeded in *every* file: secret-key fields that protocol
/// code can reach through accessors, and the leakage-accounting payload
/// count that must never steer control flow outside the audit boundary.
pub const GLOBAL_FIELD_SEEDS: &[&str] = &["lambda", "mu", "q_inv_p", "useful_payloads"];

/// Censused crypto-primitive boundaries whose outputs are public by the
/// scheme's security argument (ciphertexts, signatures, MACs, PRF/DRBG
/// output, decrypted plaintext re-entering the data domain).  A call to
/// one of these *declassifies*: the result carries no taint regardless of
/// the arguments.
pub const DECLASSIFIERS: &[&str] = &[
    // Encryption / decryption boundaries.
    "encrypt",
    "encrypt_reduced",
    "encrypt_bytes",
    "encrypt_value",
    "decrypt",
    "decrypt_plain",
    "decrypt_element",
    "decrypts_to_zero",
    "rerandomize",
    "add",
    "add_plain",
    "scale",
    // KEM / signatures.
    "encapsulate",
    "decapsulate",
    "sign",
    "verify",
    // Hashes, MACs, KDFs.
    "hmac_sha256",
    "kdf",
    "body_mac",
    "mac_eq",
    "ct_eq",
    "hash",
    "hash_to_group",
    "finalize",
    // Randomness: DRBG output is public-by-design pseudorandomness; its
    // *state* (key/value) stays seeded by name.
    "fill",
    "fill_bytes",
    "next_u32",
    "next_u64",
    "random_below",
    "random_exponent",
    "random_element",
    "random_unit",
    "gen_prime",
    "gen_safe_prime",
    "stream",
    "apply",
];

/// Constant-time comparison helpers: their bodies legitimately compare
/// secret-derived bytes, so sinks inside them are exempt.
pub const APPROVED_HELPERS: &[&str] = &["mac_eq", "ct_eq"];

/// Path prefixes whose *sinks* are exempt (taint still propagates
/// through them):
///
/// * `crates/mpint/` — bignum kernels are data-dependent by construction
///   (square-and-multiply walks exponent bits); the paper accounts for
///   their cost in the closed-form model, and the secret-flow invariant
///   guards the protocol layer above them,
/// * `crates/core/src/audit.rs` — the leakage-accounting boundary
///   deliberately inspects `useful_payloads` to *report* leakage,
/// * the observability/bench/test scaffolding, which never touches the
///   wire.
pub const SINK_EXEMPT_PREFIXES: &[&str] = &[
    "crates/mpint/",
    "crates/lint/",
    "crates/obs/",
    "crates/bench/",
    "crates/testkit/",
    "crates/core/src/audit.rs",
];

/// A function's interprocedural summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Taint of the return value: SEED and/or parameter bits.
    pub ret: u64,
    /// Parameter bits that reach a sink inside this function (or
    /// transitively inside a callee).
    pub param_sinks: u64,
}

/// One reported secret flow.
#[derive(Debug)]
pub struct Leak {
    /// Node index of the containing function.
    pub node: usize,
    /// Source line of the sink.
    pub line: u32,
    /// What kind of sink the secret reached.
    pub message: String,
}

/// The taint analysis over a built call graph.
pub struct TaintAnalysis<'a> {
    graph: &'a CallGraph<'a>,
    summaries: Vec<Summary>,
}

/// Context for one function-body pass.
struct FnPass<'g, 'a> {
    graph: &'g CallGraph<'a>,
    summaries: &'g [Summary],
    file: &'a str,
    /// Seeded names for `file` (registry row), empty otherwise.
    seeds: &'static [&'static str],
    env: HashMap<String, u64>,
    /// Accumulated return taint.
    ret: u64,
    /// Accumulated param-sink bits.
    param_sinks: u64,
    /// Sink reporting enabled (off in exempt files/fns and on the first
    /// of the two stabilization passes).
    report: bool,
    /// Findings collected when `report` is set.
    leaks: Vec<(u32, String)>,
}

impl<'a> TaintAnalysis<'a> {
    /// Computes all function summaries to a fixed point.
    pub fn run(graph: &'a CallGraph<'a>) -> Self {
        let mut analysis = TaintAnalysis {
            graph,
            summaries: vec![Summary::default(); graph.nodes.len()],
        };
        // Chaotic iteration: re-evaluate every function until nothing
        // changes.  Summaries only grow (bitset union), so this
        // terminates; the cap is a defensive bound, far above the depth
        // any real call chain needs.
        for _ in 0..24 {
            let mut changed = false;
            for idx in 0..graph.nodes.len() {
                let next = analysis.evaluate(idx, false).0;
                if next != analysis.summaries[idx] {
                    analysis.summaries[idx] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        analysis
    }

    /// The computed summary for a node.
    pub fn summary(&self, node: usize) -> Summary {
        self.summaries[node]
    }

    /// Reporting pass: re-analyzes every non-exempt function and returns
    /// the secret flows that reach sinks.
    pub fn leaks(&self) -> Vec<Leak> {
        let mut out = Vec::new();
        for (idx, node) in self.graph.nodes.iter().enumerate() {
            if node.in_test_region
                || is_sink_exempt_file(node.file)
                || APPROVED_HELPERS.contains(&node.item.name.as_str())
            {
                continue;
            }
            for (line, message) in self.evaluate(idx, true).1 {
                out.push(Leak {
                    node: idx,
                    line,
                    message,
                });
            }
        }
        out
    }

    /// Analyzes one function body; returns its summary and (when
    /// `report` is set) the sink findings.
    fn evaluate(&self, idx: usize, report: bool) -> (Summary, Vec<(u32, String)>) {
        let node = &self.graph.nodes[idx];
        let mut pass = FnPass {
            graph: self.graph,
            summaries: &self.summaries,
            file: node.file,
            seeds: registry_for(node.file),
            env: HashMap::new(),
            ret: 0,
            param_sinks: 0,
            report: false,
            leaks: Vec::new(),
        };
        for (i, param) in node.item.params.iter().enumerate() {
            let bit = param_bit(i);
            for name in &param.names {
                pass.env.insert(name.clone(), bit);
            }
        }
        // Two passes: the first seeds the environment (including taint
        // that only becomes visible after a loop feeds a binding back
        // into itself), the second reports with the stabilized state.
        pass.block(&node.item.body);
        pass.report = report;
        let value = pass.block(&node.item.body);
        let ret = pass.ret | value;
        (
            Summary {
                ret,
                param_sinks: pass.param_sinks,
            },
            pass.leaks,
        )
    }
}

/// The registry row for a file, by path suffix.
fn registry_for(file: &str) -> &'static [&'static str] {
    for (suffix, names) in REGISTRY {
        if file.ends_with(suffix) {
            return names;
        }
    }
    &[]
}

/// Whether sinks in `file` are exempt from reporting.
pub fn is_sink_exempt_file(file: &str) -> bool {
    SINK_EXEMPT_PREFIXES.iter().any(|p| file.starts_with(p))
        || file.contains("/tests/")
        || file.contains("/benches/")
        || file.contains("/examples/")
}

fn param_bit(i: usize) -> u64 {
    if i < 62 {
        2u64 << i
    } else {
        0
    }
}

impl<'g, 'a> FnPass<'g, 'a> {
    /// Analyzes a block; returns the taint of its trailing expression.
    fn block(&mut self, block: &Block) -> u64 {
        let mut last = 0;
        for stmt in &block.stmts {
            last = 0;
            match stmt {
                Stmt::Let {
                    names,
                    init,
                    else_block,
                    ..
                } => {
                    let t = init.as_ref().map_or(0, |e| self.expr(e));
                    for name in names {
                        self.bind(name, t);
                    }
                    if let Some(b) = else_block {
                        self.block(b);
                    }
                }
                Stmt::Expr(e) => last = self.expr(e),
                Stmt::Item(_) => {}
            }
        }
        last
    }

    /// Weak update: loop back-edges may merge multiple reaching values.
    fn bind(&mut self, name: &str, taint: u64) {
        *self.env.entry(name.to_string()).or_insert(0) |= taint;
    }

    /// Name lookup plus registry seeding.
    fn name_taint(&self, name: &str) -> u64 {
        let mut t = self.env.get(name).copied().unwrap_or(0);
        if self.seeds.contains(&name) {
            t |= SEED;
        }
        t
    }

    fn field_taint(&self, name: &str) -> u64 {
        let mut t = 0;
        if self.seeds.contains(&name) || GLOBAL_FIELD_SEEDS.contains(&name) {
            t |= SEED;
        }
        t
    }

    /// Records a sink: reports SEED taint, accumulates param bits.
    fn sink(&mut self, taint: u64, line: u32, what: &str) {
        self.param_sinks |= taint & !SEED;
        if self.report && taint & SEED != 0 {
            self.leaks
                .push((line, format!("secret-derived value reaches {what}")));
        }
    }

    /// Taint of a call given resolved callee summaries.
    fn call(&mut self, name: &str, args: &[u64], callees: &[usize], line: u32) -> u64 {
        if DECLASSIFIERS.contains(&name) {
            return 0;
        }
        // Only trust the resolution when it is precise: a same-file
        // candidate set, or a workspace-unique name.  Common method
        // names (`get`, `run`, `key`, ...) resolve to every same-named
        // function in the tree; unioning those summaries floods the
        // whole workspace with false taint.
        let trusted = !callees.is_empty()
            && (callees.len() == 1
                || callees
                    .iter()
                    .all(|&c| self.graph.nodes[c].file == self.file));
        if !trusted {
            // Unknown function (std, ambiguous, ...): the result may
            // depend on any argument.
            return args.iter().fold(0, |acc, t| acc | t);
        }
        let mut out = 0;
        for &callee in callees {
            let s = self.summaries[callee];
            if s.ret & SEED != 0 {
                out |= SEED;
            }
            let callee_exempt = is_sink_exempt_file(self.graph.nodes[callee].file)
                || APPROVED_HELPERS.contains(&self.graph.nodes[callee].item.name.as_str());
            for (j, &t) in args.iter().enumerate() {
                let bit = param_bit(j);
                if s.ret & bit != 0 {
                    out |= t;
                }
                if s.param_sinks & bit != 0 && !callee_exempt {
                    // The argument reaches a sink inside the callee: that
                    // is a sink from this function's perspective.
                    self.sink(
                        t,
                        line,
                        &format!(
                            "a branch/bound/comparison inside `{}` via argument {}",
                            self.graph.nodes[callee].item.name, j
                        ),
                    );
                }
            }
        }
        out
    }

    /// Analyzes one expression, returning its taint.
    fn expr(&mut self, e: &Expr) -> u64 {
        match e {
            Expr::Path { segs, .. } => match segs.as_slice() {
                [single] => self.name_taint(single),
                _ => 0,
            },
            Expr::Field { base, name, .. } => {
                let b = self.expr(base);
                b | self.field_taint(name)
            }
            Expr::Call { path, args, line } => {
                let arg_taints: Vec<u64> = args.iter().map(|a| self.expr(a)).collect();
                let name = path.last().map(String::as_str).unwrap_or("");
                let callees = self.graph.resolve_path(self.file, path);
                self.call(name, &arg_taints, &callees, *line)
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
            } => {
                let mut arg_taints = vec![self.expr(recv)];
                arg_taints.extend(args.iter().map(|a| self.expr(a)));
                let callees = self.graph.resolve_name(self.file, name);
                // A method's receiver is parameter 0 (`self`); when the
                // candidates are free functions the shift is harmless
                // over-approximation.
                self.call(name, &arg_taints, &callees, *line)
            }
            Expr::Binary { op, lhs, rhs, line } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                if op == "==" || op == "!=" {
                    self.sink(l | r, *line, "an `==`/`!=` comparison");
                }
                l | r
            }
            Expr::Assign { target, value, .. } => {
                let t = self.expr(value);
                match &**target {
                    Expr::Path { segs, .. } if segs.len() == 1 => self.bind(&segs[0], t),
                    other => {
                        let _ = self.expr(other);
                    }
                }
                t
            }
            Expr::If {
                cond,
                binds,
                then,
                alt,
                ..
            } => {
                let c = self.expr(cond);
                self.sink(c, cond.line(), "a branch condition");
                for b in binds {
                    self.bind(b, c);
                }
                let mut v = self.block(then);
                if let Some(a) = alt {
                    v |= self.expr(a);
                }
                v
            }
            Expr::While {
                cond, binds, body, ..
            } => {
                let c = self.expr(cond);
                self.sink(c, cond.line(), "a loop condition");
                for b in binds {
                    self.bind(b, c);
                }
                self.block(body);
                0
            }
            Expr::For {
                binds, iter, body, ..
            } => {
                let it = self.expr(iter);
                self.sink(it, iter.line(), "a loop bound");
                for b in binds {
                    self.bind(b, it);
                }
                self.block(body);
                0
            }
            Expr::Loop { body, .. } => {
                self.block(body);
                0
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let s = self.expr(scrutinee);
                self.sink(s, scrutinee.line(), "a match scrutinee");
                let mut v = 0;
                for Arm { binds, guard, body } in arms {
                    for b in binds {
                        self.bind(b, s);
                    }
                    if let Some(g) = guard {
                        let gt = self.expr(g);
                        self.sink(gt, g.line(), "a match guard");
                    }
                    v |= self.expr(body);
                }
                v
            }
            Expr::StructLit { fields, .. } => {
                // Containers are opaque: building a struct *around* key
                // material does not make the struct itself a branchable
                // secret scalar — the taint re-emerges at the field
                // access (`kp.lambda`) through the name-based field
                // seeds.  Field initializers are still walked for sinks.
                for f in fields {
                    if let Some(v) = &f.value {
                        let _ = self.expr(v);
                    }
                }
                0
            }
            Expr::Macro {
                name,
                args,
                semi_at,
                line,
            } => {
                let taints: Vec<u64> = args.iter().map(|a| self.expr(a)).collect();
                if name == "vec" {
                    if let Some(at) = semi_at {
                        for t in taints.iter().skip(*at) {
                            self.sink(*t, *line, "an allocation length (`vec![_; n]`)");
                        }
                    }
                }
                taints.iter().fold(0, |acc, t| acc | t)
            }
            Expr::Block(b) => self.block(b),
            Expr::Return { value, .. } => {
                let t = value.as_ref().map_or(0, |v| self.expr(v));
                self.ret |= t;
                0
            }
            Expr::Closure { params, body, .. } => {
                for p in params {
                    self.bind(p, 0);
                }
                self.expr(body)
            }
            Expr::Unary { expr, .. } => self.expr(expr),
            Expr::Index { base, index, .. } => {
                let b = self.expr(base);
                let _ = self.expr(index);
                b
            }
            Expr::Tuple { items, .. } => items.iter().map(|i| self.expr(i)).fold(0, |a, t| a | t),
            Expr::Repeat { value, len, line } => {
                let v = self.expr(value);
                let l = self.expr(len);
                self.sink(l, *line, "an array-repeat length (`[v; n]`)");
                v
            }
            Expr::Lit { .. } | Expr::Unknown { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::callgraph::ParsedFile;
    use crate::lexer::lex;

    fn leaks_for(path: &str, src: &str) -> Vec<(u32, String)> {
        let ast = parse(&lex(src));
        let files = [ParsedFile {
            path,
            ast: &ast,
            test_mask: &[],
            is_test_file: false,
        }];
        let graph = CallGraph::build(&files);
        let analysis = TaintAnalysis::run(&graph);
        analysis
            .leaks()
            .into_iter()
            .map(|l| (l.line, l.message))
            .collect()
    }

    #[test]
    fn multihop_return_flow_is_caught() {
        let src = "\
struct K { lambda: u64 }
impl K { fn half(&self) -> u64 { self.lambda / 2 } }
fn schedule(k: &K) -> u64 {
    let rounds = k.half();
    if rounds > 4 { 1 } else { 0 }
}
";
        let leaks = leaks_for("crates/crypto/src/paillier.rs", src);
        assert_eq!(leaks.len(), 1, "{leaks:?}");
        assert_eq!(leaks[0].0, 5);
        assert!(leaks[0].1.contains("branch condition"));
    }

    #[test]
    fn argument_flow_into_callee_sink_is_caught_at_call_site() {
        let src = "\
fn gate(v: u64) -> u64 { if v > 3 { 1 } else { 0 } }
struct K { lambda: u64 }
fn run(k: &K) -> u64 { gate(k.lambda) }
";
        let leaks = leaks_for("crates/crypto/src/paillier.rs", src);
        // One local leak inside `gate`?  No: `v` is only a parameter
        // there (no SEED), so the report lands at the call site.
        assert_eq!(leaks.len(), 1, "{leaks:?}");
        assert_eq!(leaks[0].0, 3);
        assert!(leaks[0].1.contains("inside `gate`"), "{leaks:?}");
    }

    #[test]
    fn declassified_boundaries_stop_taint() {
        let src = "\
struct K { lambda: u64 }
fn run(k: &K) -> u64 {
    let c = encrypt(k.lambda);
    if c > 4 { 1 } else { 0 }
}
";
        let leaks = leaks_for("crates/crypto/src/paillier.rs", src);
        assert!(leaks.is_empty(), "{leaks:?}");
    }

    #[test]
    fn loop_bounds_and_alloc_lengths_are_sinks() {
        let src = "\
struct K { mu: u64 }
fn run(k: &K) {
    let n = k.mu;
    for _i in 0..n { }
    let v = vec![0u8; n as usize];
    let w = Vec::with_capacity(4);
}
";
        let leaks = leaks_for("crates/crypto/src/paillier.rs", src);
        assert_eq!(leaks.len(), 2, "{leaks:?}");
        assert!(leaks[0].1.contains("loop bound"));
        assert!(leaks[1].1.contains("allocation length"));
    }

    #[test]
    fn global_field_seeds_taint_outside_registered_files() {
        let src = "\
fn steer(view: &View) -> u32 {
    match view.useful_payloads { Some(u) if u > 3 => 1, _ => 0 }
}
";
        let leaks = leaks_for("crates/core/src/protocol/pm_extra.rs", src);
        // The scrutinee itself plus the guard on the taint-carrying arm
        // binder: two distinct sinks.
        assert_eq!(leaks.len(), 2, "{leaks:?}");
        assert!(leaks[0].1.contains("match scrutinee"));
        assert!(leaks[1].1.contains("match guard"));
    }

    #[test]
    fn audit_boundary_and_mpint_are_sink_exempt() {
        let src = "\
fn steer(view: &View) -> u32 {
    match view.useful_payloads { Some(u) if u > 3 => 1, _ => 0 }
}
";
        assert!(leaks_for("crates/core/src/audit.rs", src).is_empty());
        assert!(leaks_for("crates/mpint/src/div.rs", src).is_empty());
    }

    #[test]
    fn loop_fed_bindings_stabilize() {
        // Taint enters `acc` only via the loop body's second iteration
        // view; the two-pass evaluation must still catch the branch.
        let src = "\
struct K { lambda: u64 }
fn run(k: &K) -> u64 {
    let mut acc = 0;
    loop {
        if acc > 9 { return acc; }
        acc = acc + k.lambda;
    }
}
";
        let leaks = leaks_for("crates/crypto/src/paillier.rs", src);
        assert_eq!(leaks.len(), 1, "{leaks:?}");
        assert_eq!(leaks[0].0, 5);
    }
}
