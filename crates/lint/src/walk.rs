//! Workspace walker: collects `.rs` sources and `Cargo.toml` manifests,
//! with workspace-relative forward-slash paths so rules can scope by
//! directory prefix on any host.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::engine::ManifestFile;
use crate::source::SourceFile;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".claude"];

/// Path prefixes (workspace-relative) excluded from scanning.  The lint
/// fixtures deliberately violate every rule; they are exercised by the
/// integration tests, not the workspace scan.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures/"];

/// Everything the engine needs from one workspace.
pub struct Workspace {
    /// Lexed `.rs` files.
    pub sources: Vec<SourceFile>,
    /// Raw `Cargo.toml` files.
    pub manifests: Vec<ManifestFile>,
}

/// Walks `root`, collecting sources and manifests.
pub fn collect(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();
    walk_dir(root, &mut files)?;
    files.sort();
    let mut ws = Workspace {
        sources: Vec::new(),
        manifests: Vec::new(),
    };
    for path in files {
        let rel = relative(root, &path);
        if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        if rel.ends_with(".rs") {
            ws.sources.push(SourceFile::new(&rel, &text));
        } else {
            ws.manifests.push(ManifestFile { path: rel, text });
        }
    }
    Ok(ws)
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk_dir(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        // crates/lint -> crates -> workspace root
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("lint crate lives two levels below the workspace root")
            .to_path_buf()
    }

    #[test]
    fn collects_sources_and_manifests_with_relative_paths() {
        let ws = collect(&workspace_root()).expect("walk workspace");
        assert!(ws
            .sources
            .iter()
            .any(|s| s.path == "crates/lint/src/walk.rs"));
        assert!(ws.manifests.iter().any(|m| m.path == "Cargo.toml"));
        assert!(ws
            .manifests
            .iter()
            .any(|m| m.path == "crates/lint/Cargo.toml"));
    }

    #[test]
    fn skips_fixtures_and_target() {
        let ws = collect(&workspace_root()).expect("walk workspace");
        assert!(ws
            .sources
            .iter()
            .all(|s| !s.path.starts_with("crates/lint/tests/fixtures/")));
        assert!(ws.sources.iter().all(|s| !s.path.starts_with("target/")));
    }
}
