// Fixture: scanned as crates/core/src/protocol/fixture.rs — wall-clock
// reads outside crates/obs and crates/bench fire, even in test code.

use std::time::Instant; // line 4

fn elapsed() -> u128 {
    let start = Instant::now(); // line 7
    start.elapsed().as_nanos()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_still_flagged() {
        let _ = std::time::SystemTime::now(); // line 15
    }
}
