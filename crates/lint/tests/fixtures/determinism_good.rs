// Fixture: scanned as crates/obs/src/fixture.rs — the observability crate
// is the sanctioned home for timing.

use std::time::Instant;

fn stamp() -> Instant {
    Instant::now()
}
