//! Fixture: a protocol driver building and installing its own fault
//! schedule — every fault-plan identifier must be flagged.

pub fn sabotage(transport: &mut Transport) {
    let mut plan = FaultPlan::none("driver-local");
    plan.links.push(LinkMask::default());
    plan.outages.push(Outage {
        party: PartyId::Mediator,
        from_step: 0,
        steps: 4,
    });
    transport.install_faults(plan);
}
