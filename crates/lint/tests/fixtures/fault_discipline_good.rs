//! Fixture: a protocol driver using only the fault-agnostic surface the
//! transport exposes — degrade queries and typed delivery errors.

pub fn tolerate(transport: &mut Transport) -> Result<Frame, MedError> {
    match transport.deliver(PartyId::Mediator, PartyId::Client, "L2.4", &frame()) {
        Ok(f) => Ok(f),
        Err(MedError::Delivery(f)) if transport.degrade_on_exhausted() => Ok(fallback(f)),
        Err(e) => Err(e),
    }
}
