// Fixture: scanned as crates/core/src/protocol/fixture.rs — instrumenting
// a driver by reading the wall clock directly is exactly what the
// obs-confined `Clock` abstraction exists to prevent; counters alone do
// not license an `Instant` in protocol code.

fn instrumented_phase() {
    secmed_obs::metrics::incr(
        secmed_obs::metrics::Class::Deterministic,
        "driver.fixture.frames",
        1,
    );
    let started = std::time::Instant::now(); // line 12
    work();
    let _ns = started.elapsed().as_nanos();
}

fn work() {}
