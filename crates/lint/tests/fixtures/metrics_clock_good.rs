// Fixture: scanned as crates/core/src/protocol/fixture.rs — the sanctioned
// instrumentation pattern: deterministic counters for run-report data plus
// the obs-owned timer handle, which keeps the wall clock behind the
// `secmed_obs::metrics::Clock` abstraction and out of driver code.

fn instrumented_phase() {
    secmed_obs::metrics::incr(
        secmed_obs::metrics::Class::Deterministic,
        "driver.fixture.frames",
        1,
    );
    let _timer = secmed_obs::metrics::start_timer("driver.fixture.phase_ns");
    work();
}

fn work() {}
