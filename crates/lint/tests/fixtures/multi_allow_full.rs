// Fixture: scanned as crates/crypto/src/fixture.rs — one audited comment
// covering two rules that both fire on the suppressed line.

fn both(v: Option<u64>) -> u64 {
    // lint:allow(panic-freedom, determinism) -- fixture: expect and Instant on one line.
    v.expect("boom") + (std::time::Instant::now().elapsed().as_nanos() as u64)
}
