// Fixture: scanned as crates/crypto/src/fixture.rs — the same two-rule
// comment where only panic-freedom actually fires: the unused half must
// itself be reported so stale suppressions cannot accumulate.

fn partial(v: Option<u64>) -> u64 {
    // lint:allow(panic-freedom, determinism) -- fixture: only panic-freedom fires.
    v.expect("boom")
}
