// Fixture: scanned as crates/crypto/src/fixture.rs — every construct here
// must fire panic-freedom.

fn decrypt(ct: Option<u64>) -> u64 {
    let a = ct.unwrap(); // line 5
    let b = ct.expect("present"); // line 6
    if a != b {
        panic!("mismatch"); // line 8
    }
    unreachable!() // line 10
}
