// Fixture: scanned as crates/crypto/src/fixture.rs — nothing here may
// fire panic-freedom: fallible combinators, typed errors, doc/string
// mentions, and test-only unwraps are all fine.

/// Call `.unwrap()` at your peril — doc comments are not code.
fn decrypt(ct: Option<u64>) -> Result<u64, &'static str> {
    let a = ct.unwrap_or(0);
    let b = ct.unwrap_or_else(|| 1);
    let msg = "panic! is just a string here";
    let _ = msg;
    ct.ok_or("missing ciphertext").map(|v| v + a + b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        super::decrypt(Some(3)).unwrap();
    }
}
