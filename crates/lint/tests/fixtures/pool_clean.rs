// Fixture: scanned as crates/pool/src/fixture.rs — the pool crate is the
// one place allowed to name `std::thread`, and scoped spawning with
// order-preserving collection passes every rule.

fn scoped_map(items: &[u64]) -> Vec<u64> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .iter()
            .map(|&x| scope.spawn(move || x + 1))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            match handle.join() {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}
