// Fixture: scanned as crates/pool/src/fixture.rs — the pool crate may
// spawn threads, but a worker result channel is still an out-of-band
// message path: transport-discipline covers crates/pool too.

use std::sync::mpsc; // line 5

fn collect_unordered(items: Vec<u64>) -> Vec<u64> {
    let (tx, rx) = mpsc::channel(); // line 8
    std::thread::scope(|scope| {
        for x in items {
            let tx = tx.clone();
            scope.spawn(move || {
                let _ = tx.send(x);
            });
        }
    });
    drop(tx);
    rx.iter().collect()
}
