// Fixture: scanned as crates/crypto/src/paillier.rs — the seeded
// regression from the issue: `==` on a Paillier private-key field.

struct KeyPair {
    lambda: u64,
    mu: u64,
}

impl KeyPair {
    fn same_trapdoor(&self, other: &KeyPair) -> bool {
        self.lambda == other.lambda // line 11: the seeded regression
    }

    fn branch_on_secret(&self) -> u64 {
        if self.mu > 0 {
            // line 15
            1
        } else {
            0
        }
    }
}
