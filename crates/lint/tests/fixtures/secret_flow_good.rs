// Fixture: scanned as crates/crypto/src/hybrid.rs — secret comparisons go
// through the approved constant-time helper, and public values may branch
// freely.

fn mac_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

fn verify(expected: [u8; 32], got: [u8; 32], public_len: usize) -> bool {
    if public_len == 0 {
        return false;
    }
    mac_eq(&expected, &got)
}
