// Fixture: scanned as crates/crypto/src/paillier.rs — the multi-hop leak
// the retired token-level rule provably missed: key material flows through
// a helper *return value* into an innocently named binding, then steers a
// branch, an allocation length, and a callee-internal branch.  No single
// line mentions a secret name next to a branch or comparison token.

struct KeyPair {
    lambda: u64,
    mu: u64,
}

fn half_order(kp: &KeyPair) -> u64 {
    kp.lambda / 2
}

fn clamp(x: u64) -> u64 {
    if x > 64 {
        64
    } else {
        x
    }
}

fn leaky_pad(kp: &KeyPair) -> Vec<u8> {
    let width = half_order(kp);
    if width > 64 {
        return Vec::new();
    }
    vec![0u8; width]
}

fn leaky_clamp(kp: &KeyPair) -> u64 {
    clamp(kp.mu)
}
