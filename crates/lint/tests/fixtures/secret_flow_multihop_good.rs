// Fixture: scanned as crates/crypto/src/paillier.rs — the same multi-hop
// shape over *public* data: the modulus is published with the key, so a
// width derived from it may steer branches and allocations freely.

struct PublicKey {
    n: u64,
}

fn modulus_width(pk: &PublicKey) -> u64 {
    pk.n / 2
}

fn bound(x: u64) -> u64 {
    if x > 64 {
        64
    } else {
        x
    }
}

fn pad(pk: &PublicKey) -> Vec<u8> {
    let width = modulus_width(pk);
    if width > 64 {
        return Vec::new();
    }
    vec![0u8; bound(width)]
}
