//! Fixture: code that opens real sockets.  Clean when mounted at the
//! socket fabric or in the server/client crates, flagged anywhere else.

use std::net::{SocketAddr, TcpListener};

fn serve(addr: SocketAddr) -> std::io::Result<TcpListener> {
    let listener = std::net::TcpListener::bind(addr)?;
    Ok(listener)
}
