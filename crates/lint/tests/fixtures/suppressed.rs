// Fixture: scanned as crates/crypto/src/fixture.rs — an audited
// suppression silences the finding; an unreasoned one does not.

fn with_audit(v: Option<u64>) -> u64 {
    // lint:allow(panic-freedom) -- fixture: demonstrates an audited escape.
    v.expect("audited")
}

fn without_reason(v: Option<u64>) -> u64 {
    v.unwrap() // lint:allow(panic-freedom)
}
