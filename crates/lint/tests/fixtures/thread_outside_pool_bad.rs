// Fixture: scanned as crates/core/src/protocol/fixture.rs — raw
// `std::thread` outside crates/pool fires the determinism rule's
// thread-discipline facet, for imports and full paths alike.

use std::thread; // line 5

fn fan_out(items: Vec<u64>) -> Vec<u64> {
    let handle = std::thread::spawn(move || items); // line 8
    match handle.join() {
        Ok(v) => v,
        Err(_) => Vec::new(),
    }
}
