// Fixture: scanned as crates/core/src/protocol/fixture.rs — raw channels
// and sockets bypass the recording transport.

use std::sync::mpsc; // line 4

fn side_channel(stream: std::net::TcpStream) {
    // line 6
    let (tx, rx) = mpsc::channel::<Vec<u8>>(); // line 8
    let _ = (tx, rx, stream);
}
