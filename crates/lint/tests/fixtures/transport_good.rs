// Fixture: scanned as crates/core/src/protocol/fixture.rs — messages flow
// through the recording transport, so nothing fires.

fn exchange(transport: &mut Transport, msg: Vec<u8>) -> Vec<u8> {
    transport.send("supplier", "mediator", msg);
    transport.recv("mediator")
}

struct Transport;
impl Transport {
    fn send(&mut self, _from: &str, _to: &str, _msg: Vec<u8>) {}
    fn recv(&mut self, _at: &str) -> Vec<u8> {
        Vec::new()
    }
}
