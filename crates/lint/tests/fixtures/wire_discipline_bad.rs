//! Fixture: engine-layer code running the wire codec itself — both the
//! direct `secmed_wire` import and the qualified codec calls must be
//! flagged.

use secmed_wire::Frame;

pub fn smuggle(bytes: &[u8]) -> usize {
    let frame = Frame::decode(bytes).ok();
    match frame {
        Some(f) => Frame::encode(&f).len(),
        None => 0,
    }
}
