//! Fixture: engine-layer code that stays behind the fabric boundary —
//! it hands frames to the transport and reads decoded views back, never
//! touching the codec.

pub fn observe(transport: &secmed_core::Transport) -> usize {
    transport.total_bytes()
}
