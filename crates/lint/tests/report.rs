//! The machine-readable report surface: `target/obs/lint.jsonl` records
//! round-trip through `secmed-obs::json`, carry the fields CI's failure
//! triage needs, and are byte-identical at any per-file thread count.

use secmed_lint::engine::run_with;
use secmed_lint::rules::default_rules;
use secmed_lint::SourceFile;
use secmed_obs::json::parse;

/// A three-file virtual workspace firing three different rules.
fn sources() -> Vec<SourceFile> {
    vec![
        SourceFile::new(
            "crates/crypto/src/paillier.rs",
            include_str!("fixtures/secret_flow_multihop_bad.rs"),
        ),
        SourceFile::new(
            "crates/crypto/src/fixture.rs",
            include_str!("fixtures/panic_freedom_bad.rs"),
        ),
        SourceFile::new(
            "crates/core/src/protocol/fixture.rs",
            include_str!("fixtures/determinism_bad.rs"),
        ),
    ]
}

#[test]
fn jsonl_report_round_trips_through_obs_json() {
    let out = run_with(&default_rules(), &sources(), &[], 1);
    let jsonl = out.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), out.findings.len() + 1);

    // Every finding record parses and carries the triage fields.
    for (raw, finding) in lines.iter().zip(&out.findings) {
        let rec = parse(raw).expect("finding record is valid JSON");
        assert_eq!(
            rec.get("file").and_then(|v| v.as_str()),
            Some(finding.file.as_str())
        );
        assert_eq!(
            rec.get("line").and_then(|v| v.as_u64()),
            Some(u64::from(finding.line))
        );
        assert_eq!(rec.get("rule").and_then(|v| v.as_str()), Some(finding.rule));
        assert_eq!(
            rec.get("message").and_then(|v| v.as_str()),
            Some(finding.message.as_str())
        );
    }

    // The trailing summary record carries exact per-rule counts.
    let summary = parse(lines.last().unwrap()).expect("summary record is valid JSON");
    assert!(lines.last().unwrap().contains("\"summary\":true"));
    assert!(summary.get("clean").is_some());
    let by_rule = summary.get("by_rule").expect("summary has by_rule");
    assert_eq!(
        by_rule.get("secret-flow").and_then(|v| v.as_u64()),
        Some(3),
        "{jsonl}"
    );
    assert_eq!(
        by_rule.get("panic-freedom").and_then(|v| v.as_u64()),
        Some(4)
    );
    assert_eq!(by_rule.get("determinism").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(
        summary.get("total").and_then(|v| v.as_u64()),
        Some(out.findings.len() as u64)
    );
}

/// Findings are path-then-line sorted regardless of which worker lexed
/// which file: one thread and eight threads must render byte-identically.
#[test]
fn report_is_identical_at_one_and_eight_threads() {
    let sequential = run_with(&default_rules(), &sources(), &[], 1);
    let parallel = run_with(&default_rules(), &sources(), &[], 8);
    assert_eq!(sequential.to_jsonl(), parallel.to_jsonl());
    assert_eq!(sequential.files_scanned, parallel.files_scanned);
    assert_eq!(sequential.suppressions_used, parallel.suppressions_used);

    // And the ordering invariant itself: sorted by path, then line.
    let keys: Vec<(&str, u32)> = sequential
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
