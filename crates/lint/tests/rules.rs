//! Fixture-driven rule tests: every rule has at least one fixture it must
//! flag and one it must pass, fed through the real engine (suppression
//! filter included) under virtual workspace paths so path-scoped rules see
//! the directories they guard.

use secmed_lint::engine::{run, ManifestFile};
use secmed_lint::rules::default_rules;
use secmed_lint::SourceFile;

/// Runs the default rule set over one fixture mounted at `path`.
fn lint_at(path: &str, fixture: &str) -> secmed_lint::RunOutcome {
    let src = SourceFile::new(path, fixture);
    run(&default_rules(), &[src], &[])
}

/// Runs the default rule set over one manifest fixture.
fn lint_manifest(fixture: &str) -> secmed_lint::RunOutcome {
    let manifest = ManifestFile {
        path: "crates/fixture/Cargo.toml".into(),
        text: fixture.into(),
    };
    run(&default_rules(), &[], &[manifest])
}

#[test]
fn panic_freedom_flags_bad_fixture() {
    let out = lint_at(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/panic_freedom_bad.rs"),
    );
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        lines,
        vec![
            (5, "panic-freedom"),
            (6, "panic-freedom"),
            (8, "panic-freedom"),
            (10, "panic-freedom"),
        ],
        "{:#?}",
        out.findings
    );
}

#[test]
fn panic_freedom_passes_good_fixture() {
    let out = lint_at(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/panic_freedom_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

/// The retired token-level `secret-branching` heuristic, re-implemented
/// verbatim in spirit: flag any *line* where a registered secret
/// identifier appears next to a branch keyword or an `==`/`!=` token.
/// Kept here as the baseline the interprocedural rule is measured against.
fn token_level_heuristic(src: &str) -> Vec<u32> {
    use secmed_lint::lexer::{lex, TokenKind};
    const SECRETS: &[&str] = &["lambda", "mu", "p", "q", "hp", "hq", "q_inv_p"];
    let mut secret_lines = std::collections::BTreeSet::new();
    let mut sink_lines = std::collections::BTreeSet::new();
    for t in lex(src) {
        match t.kind {
            TokenKind::Ident if SECRETS.contains(&t.text.as_str()) => {
                secret_lines.insert(t.line);
            }
            TokenKind::Ident if ["if", "while", "match"].contains(&t.text.as_str()) => {
                sink_lines.insert(t.line);
            }
            TokenKind::Punct if t.text == "==" || t.text == "!=" => {
                sink_lines.insert(t.line);
            }
            _ => {}
        }
    }
    secret_lines.intersection(&sink_lines).copied().collect()
}

/// The direct cases the old rule already caught stay caught: `==` on a
/// Paillier private-key field and a branch on `self.mu`, with exact file,
/// line, and rule id.
#[test]
fn secret_flow_catches_direct_branching() {
    let src = include_str!("fixtures/secret_flow_direct_bad.rs");
    let out = lint_at("crates/crypto/src/paillier.rs", src);
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        lines,
        vec![(11, "secret-flow"), (15, "secret-flow")],
        "{:#?}",
        out.findings
    );
    let seeded = &out.findings[0];
    assert!(
        seeded.message.contains("`same_trapdoor`")
            && seeded.message.contains("`==`/`!=` comparison"),
        "{}",
        seeded.message
    );
    assert_eq!(
        seeded.render(),
        format!(
            "crates/crypto/src/paillier.rs:11: secret-flow: {}",
            seeded.message
        )
    );
    assert!(
        out.findings[1].message.contains("branch condition"),
        "{}",
        out.findings[1].message
    );
    // The token-level baseline also caught these — same two lines.
    assert_eq!(token_level_heuristic(src), vec![11, 15]);
}

/// The gap the interprocedural rule closes: the secret flows through a
/// helper return into an innocently named binding before reaching a
/// branch, an allocation length, and a callee-internal branch.  The old
/// per-line heuristic sees no line with a secret next to a sink token and
/// reports nothing; the taint analysis reports all three.
#[test]
fn secret_flow_catches_multihop_leak_the_token_rule_missed() {
    let src = include_str!("fixtures/secret_flow_multihop_bad.rs");
    assert_eq!(
        token_level_heuristic(src),
        Vec::<u32>::new(),
        "the multihop fixture must contain no single-line secret+sink pair"
    );
    let out = lint_at("crates/crypto/src/paillier.rs", src);
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        lines,
        vec![
            (26, "secret-flow"),
            (29, "secret-flow"),
            (33, "secret-flow")
        ],
        "{:#?}",
        out.findings
    );
    assert!(
        out.findings[0].message.contains("branch condition"),
        "{}",
        out.findings[0].message
    );
    assert!(
        out.findings[1].message.contains("allocation length"),
        "{}",
        out.findings[1].message
    );
    assert!(
        out.findings[2]
            .message
            .contains("inside `clamp` via argument 0"),
        "{}",
        out.findings[2].message
    );
}

#[test]
fn secret_flow_passes_constant_time_fixture() {
    let out = lint_at(
        "crates/crypto/src/hybrid.rs",
        include_str!("fixtures/secret_flow_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

/// The multihop *shape* is fine over public data: deriving a width from
/// the published modulus and branching on it taints nothing.
#[test]
fn secret_flow_passes_public_multihop_fixture() {
    let out = lint_at(
        "crates/crypto/src/paillier.rs",
        include_str!("fixtures/secret_flow_multihop_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn transport_discipline_flags_bad_fixture() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/transport_bad.rs"),
    );
    assert!(
        out.findings
            .iter()
            .all(|f| f.rule == "transport-discipline"),
        "{:#?}",
        out.findings
    );
    let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
    assert!(lines.contains(&4), "use mpsc: {lines:?}");
    assert!(lines.contains(&6), "TcpStream param: {lines:?}");
    assert!(lines.contains(&8), "mpsc::channel call: {lines:?}");
}

#[test]
fn transport_discipline_passes_good_fixture() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/transport_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn socket_code_is_flagged_outside_the_process_boundary() {
    // Outside the allowlist even harness crates may not open sockets.
    for path in ["crates/bench/src/lib.rs", "crates/core/src/engine.rs"] {
        let out = lint_at(path, include_str!("fixtures/socket_net_fixture.rs"));
        assert!(
            out.findings
                .iter()
                .all(|f| f.rule == "transport-discipline"),
            "{:#?}",
            out.findings
        );
        let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
        assert!(lines.contains(&4), "use std::net: {lines:?}");
        assert!(lines.contains(&7), "bind call: {lines:?}");
    }
}

#[test]
fn socket_code_passes_at_the_declared_process_boundaries() {
    for path in [
        "crates/core/src/transport/socket.rs",
        "crates/server/src/lib.rs",
        "crates/client/src/lib.rs",
    ] {
        let out = lint_at(path, include_str!("fixtures/socket_net_fixture.rs"));
        assert!(out.clean(), "{path}: {:#?}", out.findings);
    }
}

#[test]
fn wire_discipline_flags_bad_fixture() {
    let out = lint_at(
        "crates/core/src/engine.rs",
        include_str!("fixtures/wire_discipline_bad.rs"),
    );
    assert!(
        out.findings.iter().all(|f| f.rule == "wire-discipline"),
        "{:#?}",
        out.findings
    );
    let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
    assert!(lines.contains(&5), "secmed_wire import: {lines:?}");
    assert!(lines.contains(&8), "Frame::decode call: {lines:?}");
    assert!(lines.contains(&10), "Frame::encode call: {lines:?}");
}

#[test]
fn wire_discipline_passes_good_fixture_and_the_boundary_itself() {
    let out = lint_at(
        "crates/core/src/engine.rs",
        include_str!("fixtures/wire_discipline_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
    // The same codec-running code is fine at the fabric boundary — both
    // fabrics — and in the server's relay loop.
    for path in [
        "crates/core/src/transport/mod.rs",
        "crates/core/src/transport/socket.rs",
        "crates/server/src/lib.rs",
    ] {
        let out = lint_at(path, include_str!("fixtures/wire_discipline_bad.rs"));
        assert!(out.clean(), "{path}: {:#?}", out.findings);
    }
}

#[test]
fn fault_discipline_flags_plan_construction_in_a_driver() {
    let out = lint_at(
        "crates/core/src/protocol/das.rs",
        include_str!("fixtures/fault_discipline_bad.rs"),
    );
    assert!(
        out.findings.iter().all(|f| f.rule == "fault-discipline"),
        "{:#?}",
        out.findings
    );
    let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![5, 6, 7, 12], "{:#?}", out.findings);
}

#[test]
fn fault_discipline_passes_degrade_only_driver_and_the_fabric_itself() {
    let out = lint_at(
        "crates/core/src/protocol/das.rs",
        include_str!("fixtures/fault_discipline_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
    // The same plan-building code is fine at the fabric boundary and in
    // the harness crates that seed chaos runs.
    for path in [
        "crates/core/src/transport/mod.rs",
        "crates/core/src/engine.rs",
        "crates/testkit/src/lib.rs",
        "crates/bench/src/bin/chaos_sweep.rs",
    ] {
        let out = lint_at(path, include_str!("fixtures/fault_discipline_bad.rs"));
        assert!(out.clean(), "{path}: {:#?}", out.findings);
    }
}

#[test]
fn determinism_flags_bad_fixture_even_in_tests() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/determinism_bad.rs"),
    );
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        lines,
        vec![(4, "determinism"), (7, "determinism"), (15, "determinism")],
        "{:#?}",
        out.findings
    );
}

#[test]
fn determinism_flags_raw_threading_outside_pool() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/thread_outside_pool_bad.rs"),
    );
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        lines,
        vec![(5, "determinism"), (8, "determinism")],
        "{:#?}",
        out.findings
    );
    assert!(
        out.findings
            .iter()
            .all(|f| f.message.contains("secmed-pool")),
        "{:#?}",
        out.findings
    );
}

#[test]
fn pool_crate_scoped_threading_is_clean() {
    let out = lint_at(
        "crates/pool/src/fixture.rs",
        include_str!("fixtures/pool_clean.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn pool_crate_side_channels_still_fire_transport_discipline() {
    let out = lint_at(
        "crates/pool/src/fixture.rs",
        include_str!("fixtures/pool_mpsc_bad.rs"),
    );
    assert!(
        out.findings
            .iter()
            .all(|f| f.rule == "transport-discipline"),
        "{:#?}",
        out.findings
    );
    let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
    assert!(lines.contains(&5), "use mpsc: {lines:?}");
    assert!(lines.contains(&8), "mpsc::channel call: {lines:?}");
}

#[test]
fn metrics_instrumentation_pattern_is_clean_in_drivers() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/metrics_clock_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn direct_clock_reads_in_instrumented_drivers_still_fire() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/metrics_clock_bad.rs"),
    );
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(lines, vec![(12, "determinism")], "{:#?}", out.findings);
}

#[test]
fn determinism_passes_inside_obs() {
    let out = lint_at(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/determinism_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn dependency_policy_flags_bad_manifest() {
    let out = lint_manifest(include_str!("fixtures/dependency_bad.toml"));
    let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![8, 9, 10, 13], "{:#?}", out.findings);
    assert!(out.findings.iter().all(|f| f.rule == "dependency-policy"));
    assert!(out.findings[0].message.contains("version-only"));
    assert!(out.findings[1].message.contains("git"));
    assert!(out.findings[3].message.contains("registry"));
}

#[test]
fn dependency_policy_passes_good_manifest() {
    let out = lint_manifest(include_str!("fixtures/dependency_good.toml"));
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn audited_suppression_silences_but_unreasoned_does_not() {
    let out = lint_at(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/suppressed.rs"),
    );
    // Line 6's expect is silenced by the audited comment on line 5.
    assert!(
        !out.findings.iter().any(|f| f.line == 6),
        "{:#?}",
        out.findings
    );
    assert_eq!(out.suppressions_used.len(), 1);
    assert!(out.suppressions_used[0].3.contains("audited escape"));
    // Line 10's reason-less comment silences nothing and is itself flagged.
    assert!(out
        .findings
        .iter()
        .any(|f| f.line == 10 && f.rule == "panic-freedom"));
    assert!(out
        .findings
        .iter()
        .any(|f| f.line == 10 && f.rule == "lint-allow"));
}

/// Lexer hardening, exercised end-to-end through the rules: rule-visible
/// constructs inside raw strings, nested block comments, and char
/// literals must not fire, and a lifetime must not be confused with an
/// unterminated char literal (which would swallow the rest of the file).
#[test]
fn lexer_hardening_raw_strings_nested_comments_lifetimes() {
    let src = "fn describe() -> &'static str {\n\
               \x20   let s = r#\"if lambda == 0 { x.unwrap() }\"#;\n\
               \x20   /* if mu > 0 { /* nested: lambda == 1 */ } */\n\
               \x20   let _c = 'x';\n\
               \x20   s\n\
               }\n";
    let out = lint_at("crates/crypto/src/paillier.rs", src);
    assert!(out.clean(), "{:#?}", out.findings);
}

/// Positive control for the above: the same constructs *preceding* a real
/// secret branch must not desynchronise token lines — the finding lands
/// exactly after the raw string and the nested comment.
#[test]
fn lexer_hardening_keeps_lines_straight_after_tricky_tokens() {
    let src = "fn leak(kp: &KeyPair) -> u64 {\n\
               \x20   let _s = r##\"a \"#quoted\"# b\"##;\n\
               \x20   /* outer /* inner */ tail */\n\
               \x20   if kp.lambda > 0 {\n\
               \x20       1\n\
               \x20   } else {\n\
               \x20       0\n\
               \x20   }\n\
               }\n";
    let out = lint_at("crates/crypto/src/paillier.rs", src);
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(lines, vec![(4, "secret-flow")], "{:#?}", out.findings);
}

/// Satellite: one `lint:allow(a, b)` comment where both rules fire on the
/// suppressed line silences both and is recorded once with both rule ids.
#[test]
fn multi_rule_allow_with_both_rules_firing_is_fully_used() {
    let out = lint_at(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/multi_allow_full.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
    assert_eq!(
        out.suppressions_used.len(),
        1,
        "{:#?}",
        out.suppressions_used
    );
    let (_, line, rules, reason) = &out.suppressions_used[0];
    assert_eq!(*line, 5);
    assert!(
        rules.contains("panic-freedom") && rules.contains("determinism"),
        "{rules}"
    );
    assert!(reason.contains("expect and Instant"), "{reason}");
}

/// The other way: only `panic-freedom` fires, so the `determinism` half
/// of the comment is dead weight and must itself be reported, while the
/// used half still counts as a suppression (with only the used rule id).
#[test]
fn multi_rule_allow_with_one_unused_rule_reports_the_unused_half() {
    let out = lint_at(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/multi_allow_partial.rs"),
    );
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(lines, vec![(6, "lint-allow")], "{:#?}", out.findings);
    assert!(
        out.findings[0]
            .message
            .contains("unused suppression for `determinism`"),
        "{}",
        out.findings[0].message
    );
    assert_eq!(
        out.suppressions_used.len(),
        1,
        "{:#?}",
        out.suppressions_used
    );
    let (_, _, rules, _) = &out.suppressions_used[0];
    assert_eq!(rules, "panic-freedom", "only the used subset is recorded");
}

#[test]
fn summary_table_and_jsonl_cover_all_fired_rules() {
    let out = lint_at(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/panic_freedom_bad.rs"),
    );
    let table = out.summary_table();
    assert!(table.contains("panic-freedom"));
    assert!(table.contains("total"));
    let jsonl = out.to_jsonl();
    assert_eq!(jsonl.lines().count(), out.findings.len() + 1);
    let summary = jsonl.lines().last().unwrap();
    assert!(summary.contains("\"summary\":true"));
    assert!(summary.contains("\"panic-freedom\":4"));
}
