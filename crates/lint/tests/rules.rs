//! Fixture-driven rule tests: every rule has at least one fixture it must
//! flag and one it must pass, fed through the real engine (suppression
//! filter included) under virtual workspace paths so path-scoped rules see
//! the directories they guard.

use secmed_lint::engine::{run, ManifestFile};
use secmed_lint::rules::default_rules;
use secmed_lint::SourceFile;

/// Runs the default rule set over one fixture mounted at `path`.
fn lint_at(path: &str, fixture: &str) -> secmed_lint::RunOutcome {
    let src = SourceFile::new(path, fixture);
    run(&default_rules(), &[src], &[])
}

/// Runs the default rule set over one manifest fixture.
fn lint_manifest(fixture: &str) -> secmed_lint::RunOutcome {
    let manifest = ManifestFile {
        path: "crates/fixture/Cargo.toml".into(),
        text: fixture.into(),
    };
    run(&default_rules(), &[], &[manifest])
}

#[test]
fn panic_freedom_flags_bad_fixture() {
    let out = lint_at(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/panic_freedom_bad.rs"),
    );
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        lines,
        vec![
            (5, "panic-freedom"),
            (6, "panic-freedom"),
            (8, "panic-freedom"),
            (10, "panic-freedom"),
        ],
        "{:#?}",
        out.findings
    );
}

#[test]
fn panic_freedom_passes_good_fixture() {
    let out = lint_at(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/panic_freedom_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

/// The seeded regression from the issue: `==` on a Paillier private-key
/// field must be caught with the exact file, line, and rule id.
#[test]
fn secret_branching_catches_seeded_paillier_regression() {
    let out = lint_at(
        "crates/crypto/src/paillier.rs",
        include_str!("fixtures/secret_branching_bad.rs"),
    );
    let seeded = out
        .findings
        .iter()
        .find(|f| f.line == 11)
        .expect("the seeded `lambda ==` regression must be reported");
    assert_eq!(seeded.rule, "secret-branching");
    assert_eq!(seeded.file, "crates/crypto/src/paillier.rs");
    assert!(seeded.message.contains("lambda"), "{}", seeded.message);
    assert_eq!(
        seeded.render(),
        format!(
            "crates/crypto/src/paillier.rs:11: secret-branching: {}",
            seeded.message
        )
    );
    // The `if self.mu > 0` branch is the second finding.
    assert!(
        out.findings
            .iter()
            .any(|f| f.line == 15 && f.rule == "secret-branching" && f.message.contains("mu")),
        "{:#?}",
        out.findings
    );
}

#[test]
fn secret_branching_passes_constant_time_fixture() {
    let out = lint_at(
        "crates/crypto/src/hybrid.rs",
        include_str!("fixtures/secret_branching_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn transport_discipline_flags_bad_fixture() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/transport_bad.rs"),
    );
    assert!(
        out.findings
            .iter()
            .all(|f| f.rule == "transport-discipline"),
        "{:#?}",
        out.findings
    );
    let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
    assert!(lines.contains(&4), "use mpsc: {lines:?}");
    assert!(lines.contains(&6), "TcpStream param: {lines:?}");
    assert!(lines.contains(&8), "mpsc::channel call: {lines:?}");
}

#[test]
fn transport_discipline_passes_good_fixture() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/transport_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn wire_discipline_flags_bad_fixture() {
    let out = lint_at(
        "crates/core/src/engine.rs",
        include_str!("fixtures/wire_discipline_bad.rs"),
    );
    assert!(
        out.findings.iter().all(|f| f.rule == "wire-discipline"),
        "{:#?}",
        out.findings
    );
    let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
    assert!(lines.contains(&5), "secmed_wire import: {lines:?}");
    assert!(lines.contains(&8), "Frame::decode call: {lines:?}");
    assert!(lines.contains(&10), "Frame::encode call: {lines:?}");
}

#[test]
fn wire_discipline_passes_good_fixture_and_the_boundary_itself() {
    let out = lint_at(
        "crates/core/src/engine.rs",
        include_str!("fixtures/wire_discipline_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
    // The same codec-running code is fine at the fabric boundary.
    let out = lint_at(
        "crates/core/src/transport.rs",
        include_str!("fixtures/wire_discipline_bad.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn fault_discipline_flags_plan_construction_in_a_driver() {
    let out = lint_at(
        "crates/core/src/protocol/das.rs",
        include_str!("fixtures/fault_discipline_bad.rs"),
    );
    assert!(
        out.findings.iter().all(|f| f.rule == "fault-discipline"),
        "{:#?}",
        out.findings
    );
    let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![5, 6, 7, 12], "{:#?}", out.findings);
}

#[test]
fn fault_discipline_passes_degrade_only_driver_and_the_fabric_itself() {
    let out = lint_at(
        "crates/core/src/protocol/das.rs",
        include_str!("fixtures/fault_discipline_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
    // The same plan-building code is fine at the fabric boundary and in
    // the harness crates that seed chaos runs.
    for path in [
        "crates/core/src/transport.rs",
        "crates/core/src/engine.rs",
        "crates/testkit/src/lib.rs",
        "crates/bench/src/bin/chaos_sweep.rs",
    ] {
        let out = lint_at(path, include_str!("fixtures/fault_discipline_bad.rs"));
        assert!(out.clean(), "{path}: {:#?}", out.findings);
    }
}

#[test]
fn determinism_flags_bad_fixture_even_in_tests() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/determinism_bad.rs"),
    );
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        lines,
        vec![(4, "determinism"), (7, "determinism"), (15, "determinism")],
        "{:#?}",
        out.findings
    );
}

#[test]
fn determinism_flags_raw_threading_outside_pool() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/thread_outside_pool_bad.rs"),
    );
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        lines,
        vec![(5, "determinism"), (8, "determinism")],
        "{:#?}",
        out.findings
    );
    assert!(
        out.findings
            .iter()
            .all(|f| f.message.contains("secmed-pool")),
        "{:#?}",
        out.findings
    );
}

#[test]
fn pool_crate_scoped_threading_is_clean() {
    let out = lint_at(
        "crates/pool/src/fixture.rs",
        include_str!("fixtures/pool_clean.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn pool_crate_side_channels_still_fire_transport_discipline() {
    let out = lint_at(
        "crates/pool/src/fixture.rs",
        include_str!("fixtures/pool_mpsc_bad.rs"),
    );
    assert!(
        out.findings
            .iter()
            .all(|f| f.rule == "transport-discipline"),
        "{:#?}",
        out.findings
    );
    let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
    assert!(lines.contains(&5), "use mpsc: {lines:?}");
    assert!(lines.contains(&8), "mpsc::channel call: {lines:?}");
}

#[test]
fn metrics_instrumentation_pattern_is_clean_in_drivers() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/metrics_clock_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn direct_clock_reads_in_instrumented_drivers_still_fire() {
    let out = lint_at(
        "crates/core/src/protocol/fixture.rs",
        include_str!("fixtures/metrics_clock_bad.rs"),
    );
    let lines: Vec<(u32, &str)> = out.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(lines, vec![(12, "determinism")], "{:#?}", out.findings);
}

#[test]
fn determinism_passes_inside_obs() {
    let out = lint_at(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/determinism_good.rs"),
    );
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn dependency_policy_flags_bad_manifest() {
    let out = lint_manifest(include_str!("fixtures/dependency_bad.toml"));
    let lines: Vec<u32> = out.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![8, 9, 10, 13], "{:#?}", out.findings);
    assert!(out.findings.iter().all(|f| f.rule == "dependency-policy"));
    assert!(out.findings[0].message.contains("version-only"));
    assert!(out.findings[1].message.contains("git"));
    assert!(out.findings[3].message.contains("registry"));
}

#[test]
fn dependency_policy_passes_good_manifest() {
    let out = lint_manifest(include_str!("fixtures/dependency_good.toml"));
    assert!(out.clean(), "{:#?}", out.findings);
}

#[test]
fn audited_suppression_silences_but_unreasoned_does_not() {
    let out = lint_at(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/suppressed.rs"),
    );
    // Line 6's expect is silenced by the audited comment on line 5.
    assert!(
        !out.findings.iter().any(|f| f.line == 6),
        "{:#?}",
        out.findings
    );
    assert_eq!(out.suppressions_used.len(), 1);
    assert!(out.suppressions_used[0].3.contains("audited escape"));
    // Line 10's reason-less comment silences nothing and is itself flagged.
    assert!(out
        .findings
        .iter()
        .any(|f| f.line == 10 && f.rule == "panic-freedom"));
    assert!(out
        .findings
        .iter()
        .any(|f| f.line == 10 && f.rule == "lint-allow"));
}

#[test]
fn summary_table_and_jsonl_cover_all_fired_rules() {
    let out = lint_at(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/panic_freedom_bad.rs"),
    );
    let table = out.summary_table();
    assert!(table.contains("panic-freedom"));
    assert!(table.contains("total"));
    let jsonl = out.to_jsonl();
    assert_eq!(jsonl.lines().count(), out.findings.len() + 1);
    let summary = jsonl.lines().last().unwrap();
    assert!(summary.contains("\"summary\":true"));
    assert!(summary.contains("\"panic-freedom\":4"));
}
