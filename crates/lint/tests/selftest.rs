//! The shipped workspace must be violation-free: this is the same scan
//! `scripts/ci.sh` runs via `cargo run -p secmed-lint`, executed in-process
//! so `cargo test` alone also guards the invariants.

use std::path::Path;

use secmed_lint::lint_workspace;

#[test]
fn shipped_workspace_is_violation_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the workspace root");
    let outcome = lint_workspace(root).expect("workspace walk succeeds");
    assert!(outcome.files_scanned > 50, "walker found the workspace");
    assert!(
        outcome.clean(),
        "the shipped workspace must lint clean:\n{}",
        outcome
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every suppression in the tree is in active use (unused ones would be
    // findings) and carries its audit reason.
    for (file, line, rules, reason) in &outcome.suppressions_used {
        assert!(!reason.is_empty(), "{file}:{line} ({rules}) lacks a reason");
    }
}
