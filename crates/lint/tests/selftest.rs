//! The shipped workspace must pass the baseline gate: this is the same
//! scan `scripts/ci.sh` runs via `cargo run -p secmed-lint`, executed
//! in-process so `cargo test` alone also guards the invariants.

use std::path::Path;

use secmed_lint::{gate_workspace, lint_workspace_with};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn shipped_workspace_passes_the_baseline_gate() {
    let gate = gate_workspace(workspace_root(), 0).expect("workspace walk succeeds");
    assert!(
        gate.outcome.files_scanned > 50,
        "walker found the workspace"
    );
    assert!(
        gate.passing(),
        "the shipped workspace must pass the ratchet:\nnew findings:\n{}\nstale baseline entries: {:#?}",
        gate.ratchet
            .new_findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n"),
        gate.ratchet.stale
    );
    // Accepted debt is visible, not silent: every live finding is matched
    // by a committed baseline entry.
    assert_eq!(gate.ratchet.matched, gate.outcome.findings.len());
    // Every suppression in the tree is in active use (unused ones would be
    // findings) and carries its audit reason.
    for (file, line, rules, reason) in &gate.outcome.suppressions_used {
        assert!(!reason.is_empty(), "{file}:{line} ({rules}) lacks a reason");
    }
}

/// The parallel per-file phase must not perturb output: the whole real
/// workspace lints to identical findings at one and eight threads.
#[test]
fn workspace_scan_is_thread_count_invariant() {
    let root = workspace_root();
    let one = lint_workspace_with(root, 1).expect("sequential scan");
    let eight = lint_workspace_with(root, 8).expect("parallel scan");
    assert_eq!(one.to_jsonl(), eight.to_jsonl());
}
