//! Conversions: decimal / hexadecimal strings and big-endian byte strings.

use std::fmt;
use std::str::FromStr;

use crate::natural::Natural;
use crate::Error;

impl Natural {
    /// Parses a decimal string (no sign, no whitespace).
    pub fn from_decimal(s: &str) -> Result<Self, Error> {
        if s.is_empty() {
            return Err(Error::Empty);
        }
        let mut acc = Natural::zero();
        let ten = Natural::from(10u64);
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(Error::InvalidDigit(c))? as u64;
            acc = &acc * &ten + Natural::from(d);
        }
        Ok(acc)
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Self, Error> {
        if s.is_empty() {
            return Err(Error::Empty);
        }
        let mut acc = Natural::zero();
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(Error::InvalidDigit(c))? as u64;
            acc = acc.shl_bits(4) + Natural::from(d);
        }
        Ok(acc)
    }

    /// Decimal rendering (used by `Display`).
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Divide by 10^19 (the largest power of ten in a u64) per step.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let chunk = Natural::from(CHUNK);
        let mut groups: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&chunk);
            // The remainder of division by a u64 chunk always fits a u64.
            groups.push(r.to_u64().unwrap_or(0));
            cur = q;
        }
        let mut out = match groups.last() {
            Some(top) => top.to_string(),
            // Unreachable: a non-zero value yields at least one group, and
            // zero returned early — but "0" is the only sane rendering.
            None => return "0".to_string(),
        };
        for g in groups.iter().rev().skip(1) {
            out.push_str(&format!("{g:019}"));
        }
        out
    }

    /// Lowercase hexadecimal rendering, no prefix, no leading zeros.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut out = format!("{:x}", self.limbs[self.limbs.len() - 1]);
        for l in self.limbs.iter().rev().skip(1) {
            out.push_str(&format!("{l:016x}"));
        }
        out
    }

    /// Big-endian byte representation; empty for zero.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.split_off(skip)
    }

    /// Big-endian byte representation left-padded with zeros to `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let bytes = self.to_bytes_be();
        assert!(bytes.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - bytes.len()];
        out.extend_from_slice(&bytes);
        out
    }

    /// Interprets big-endian bytes as an integer (empty slice is zero).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Natural::from_limbs(limbs)
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal())
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bit_len() <= 128 {
            write!(f, "Natural({})", self.to_decimal())
        } else {
            write!(f, "Natural(0x{}, {} bits)", self.to_hex(), self.bit_len())
        }
    }
}

impl fmt::LowerHex for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex())
    }
}

impl FromStr for Natural {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Natural::from_hex(hex)
        } else {
            Natural::from_decimal(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "42",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            let v = Natural::from_decimal(s).unwrap();
            assert_eq!(v.to_decimal(), s);
        }
    }

    #[test]
    fn decimal_with_internal_zero_groups() {
        // Exercises the zero-padding of middle 19-digit groups.
        let s = "100000000000000000000000000000000000001";
        assert_eq!(Natural::from_decimal(s).unwrap().to_decimal(), s);
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "deadbeef",
            "ffffffffffffffff",
            "10000000000000000",
        ] {
            let v = Natural::from_hex(s).unwrap();
            assert_eq!(v.to_hex(), s);
        }
    }

    #[test]
    fn hex_decimal_agree() {
        let v = Natural::from_hex("ff").unwrap();
        assert_eq!(v, Natural::from(255u64));
        assert_eq!("0xff".parse::<Natural>().unwrap(), v);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Natural::from_decimal(""), Err(Error::Empty));
        assert_eq!(Natural::from_decimal("12a"), Err(Error::InvalidDigit('a')));
        assert_eq!(Natural::from_hex("xyz"), Err(Error::InvalidDigit('x')));
    }

    #[test]
    fn bytes_roundtrip() {
        let v: Natural = "123456789123456789123456789".parse().unwrap();
        assert_eq!(Natural::from_bytes_be(&v.to_bytes_be()), v);
        assert!(Natural::zero().to_bytes_be().is_empty());
        assert_eq!(Natural::from_bytes_be(&[]), Natural::zero());
    }

    #[test]
    fn bytes_ignore_leading_zeros() {
        assert_eq!(
            Natural::from_bytes_be(&[0, 0, 1, 2]),
            Natural::from(0x0102u64)
        );
        assert_eq!(Natural::from(0x0102u64).to_bytes_be(), vec![1, 2]);
    }

    #[test]
    fn padded_bytes() {
        let v = Natural::from(0x0102u64);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small() {
        Natural::from(0x010203u64).to_bytes_be_padded(2);
    }

    #[test]
    fn display_and_debug() {
        let v = Natural::from(1234u64);
        assert_eq!(format!("{v}"), "1234");
        assert_eq!(format!("{v:?}"), "Natural(1234)");
        assert_eq!(format!("{v:x}"), "4d2");
    }
}
