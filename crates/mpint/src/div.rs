//! Division with remainder: single-limb short division and Knuth's
//! Algorithm D (TAOCP vol. 2, 4.3.1) for multi-limb divisors.

use crate::natural::{Natural, LIMB_BITS};
use crate::Error;

impl Natural {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero; use [`Natural::checked_div_rem`] for a
    /// fallible variant.
    pub fn div_rem(&self, divisor: &Natural) -> (Natural, Natural) {
        // lint:allow(panic-freedom) -- documented contract: division by
        // zero panics, mirroring primitive `/`; checked_div_rem is the
        // fallible API.
        self.checked_div_rem(divisor).expect("division by zero")
    }

    /// Fallible `(quotient, remainder)`.
    pub fn checked_div_rem(&self, divisor: &Natural) -> Result<(Natural, Natural), Error> {
        if divisor.is_zero() {
            return Err(Error::DivisionByZero);
        }
        if self < divisor {
            return Ok((Natural::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = div_rem_limb(&self.limbs, divisor.limbs[0]);
            return Ok((Natural::from_limbs(q), Natural::from(r)));
        }
        Ok(knuth_d(self, divisor))
    }

    /// `self % modulus`.
    pub fn rem(&self, modulus: &Natural) -> Natural {
        self.div_rem(modulus).1
    }
}

/// Short division by a single limb.
fn div_rem_limb(limbs: &[u64], d: u64) -> (Vec<u64>, u64) {
    debug_assert!(d != 0);
    let mut q = vec![0u64; limbs.len()];
    let mut rem = 0u128;
    for i in (0..limbs.len()).rev() {
        let cur = (rem << 64) | limbs[i] as u128;
        q[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    (q, rem as u64)
}

/// Knuth Algorithm D.  Requires `divisor` with at least 2 limbs and
/// `dividend >= divisor`.
fn knuth_d(dividend: &Natural, divisor: &Natural) -> (Natural, Natural) {
    let n = divisor.limbs.len();
    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = divisor.limbs[n - 1].leading_zeros() as u64;
    let v = divisor.shl_bits(shift);
    let mut u = dividend.shl_bits(shift);
    // Ensure u has an extra high limb for the first quotient digit.
    let m = u.limbs.len() - n; // number of quotient digits is m+1
    u.limbs.push(0);

    let vn1 = v.limbs[n - 1];
    let vn2 = v.limbs[n - 2];
    let mut q = vec![0u64; m + 1];

    // D2-D7: main loop, most significant quotient digit first.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top three dividend limbs and the top
        // two divisor limbs.
        let top = ((u.limbs[j + n] as u128) << 64) | u.limbs[j + n - 1] as u128;
        let mut qhat = top / vn1 as u128;
        let mut rhat = top % vn1 as u128;
        while qhat >= 1u128 << 64
            || qhat * vn2 as u128 > ((rhat << 64) | u.limbs[j + n - 2] as u128)
        {
            qhat -= 1;
            rhat += vn1 as u128;
            if rhat >= 1u128 << 64 {
                break;
            }
        }
        // D4: multiply and subtract u[j..j+n+1] -= qhat * v.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * v.limbs[i] as u128 + carry;
            carry = p >> 64;
            let sub = (u.limbs[j + i] as i128) - (p as u64 as i128) - borrow;
            u.limbs[j + i] = sub as u64;
            borrow = if sub < 0 { 1 } else { 0 };
        }
        let sub = (u.limbs[j + n] as i128) - (carry as i128) - borrow;
        u.limbs[j + n] = sub as u64;

        let mut qj = qhat as u64;
        // D6: add back if we subtracted one time too many.
        if sub < 0 {
            qj -= 1;
            let mut c = 0u64;
            for i in 0..n {
                let (s1, c1) = u.limbs[j + i].overflowing_add(v.limbs[i]);
                let (s2, c2) = s1.overflowing_add(c);
                u.limbs[j + i] = s2;
                c = (c1 as u64) + (c2 as u64);
            }
            u.limbs[j + n] = u.limbs[j + n].wrapping_add(c);
        }
        q[j] = qj;
    }

    // D8: denormalize the remainder.
    u.limbs.truncate(n);
    u.normalize();
    let rem = u.shr_bits(shift);
    (Natural::from_limbs(q), rem)
}

#[allow(dead_code)]
fn limb_bits_unused() -> u32 {
    LIMB_BITS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn division_by_zero_is_error() {
        assert_eq!(n(5).checked_div_rem(&n(0)), Err(Error::DivisionByZero));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_rem_panics_on_zero() {
        let _ = n(5).div_rem(&n(0));
    }

    #[test]
    fn small_cases() {
        assert_eq!(n(7).div_rem(&n(2)), (n(3), n(1)));
        assert_eq!(n(0).div_rem(&n(3)), (n(0), n(0)));
        assert_eq!(n(3).div_rem(&n(7)), (n(0), n(3)));
        assert_eq!(n(42).div_rem(&n(42)), (n(1), n(0)));
    }

    #[test]
    fn single_limb_divisor() {
        let a = n(u128::MAX);
        let (q, r) = a.div_rem(&n(10));
        assert_eq!(&q * &n(10) + &r, a);
        assert!(r < n(10));
    }

    #[test]
    fn multi_limb_divisor_roundtrip() {
        let a: Natural = "340282366920938463463374607431768211455123456789"
            .parse()
            .unwrap();
        let b: Natural = "18446744073709551617".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r < b);
    }

    #[test]
    fn knuth_add_back_case() {
        // Crafted to exercise the D6 add-back branch: dividend top limbs
        // just below a multiple of the divisor.
        let u = Natural::from_limbs(vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
        let v = Natural::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&q * &v + &r, u);
        assert!(r < v);
    }

    #[test]
    fn exact_division() {
        let b: Natural = "987654321987654321987654321".parse().unwrap();
        let q0: Natural = "123456789123456789".parse().unwrap();
        let a = &b * &q0;
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, q0);
        assert!(r.is_zero());
    }

    #[test]
    fn rem_alias() {
        assert_eq!(n(17).rem(&n(5)), n(2));
    }

    #[test]
    fn large_known_quotient() {
        let a = Natural::from(10u64).pow(50);
        let b = Natural::from(10u64).pow(20);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, Natural::from(10u64).pow(30));
        assert!(r.is_zero());
    }
}
